//! Asserts that every dataset/database artifact has the exact shape the
//! paper reports (§3.3, §3.4, §4.2).

use rtlfixer::dataset;
use rtlfixer::rag::GuidanceDatabase;

#[test]
fn verilog_eval_syntax_has_212_entries() {
    assert_eq!(dataset::verilog_eval_syntax(7).len(), 212);
}

#[test]
fn human_suite_is_156_with_71_85_split() {
    let suite = dataset::verilog_eval_human();
    assert_eq!(suite.len(), 156);
    let easy = suite.iter().filter(|p| p.difficulty == dataset::Difficulty::Easy).count();
    assert_eq!(easy, 71);
    assert_eq!(suite.len() - easy, 85);
}

#[test]
fn machine_suite_is_143() {
    assert_eq!(dataset::verilog_eval_machine().len(), 143);
}

#[test]
fn rtllm_suite_is_29() {
    assert_eq!(dataset::rtllm().len(), 29);
}

#[test]
fn guidance_databases_match_section_3_3() {
    let quartus = GuidanceDatabase::quartus();
    assert_eq!(quartus.entries.len(), 45, "11 categories with 45 entries for Quartus");
    assert_eq!(quartus.categories().len(), 11);
    let iverilog = GuidanceDatabase::iverilog();
    assert_eq!(iverilog.entries.len(), 30, "7 categories with 30 entries for iverilog");
    assert_eq!(iverilog.categories().len(), 7);
}

#[test]
fn react_iteration_budget_is_10() {
    // §4 Setup: "we restrict the LLM to a maximum of 10 iterations".
    let strategy = rtlfixer::agent::Strategy::React { max_iterations: 10 };
    assert_eq!(strategy.revision_budget(), 10);
}

#[test]
fn paper_named_examples_exist() {
    // Figure 5's vector100r and Figure 6's conwaylife must be real problems.
    assert!(dataset::suites::find_problem("human/vector100r").is_some());
    assert!(dataset::suites::find_problem("rtllm/conwaylife").is_some());
}

#[test]
fn table1_grid_has_14_cells() {
    assert_eq!(rtlfixer::eval::experiments::table1::PAPER_TABLE1.len(), 14);
}
