//! Cross-crate integration tests: the full RTLFixer pipeline from dataset
//! entry through agent loop to simulation verdict.

use rtlfixer::agent::{Action, RtlFixerBuilder, Strategy};
use rtlfixer::compilers::CompilerKind;
use rtlfixer::dataset::{self, Verdict};
use rtlfixer::llm::{Capability, SimulatedLlm};

fn react_fixer(seed: u64, capability: Capability) -> rtlfixer::agent::RtlFixer<SimulatedLlm> {
    RtlFixerBuilder::new()
        .compiler(CompilerKind::Quartus)
        .strategy(Strategy::React { max_iterations: 10 })
        .with_rag(true)
        .build(SimulatedLlm::new(capability, seed))
}

#[test]
fn fixing_a_dataset_entry_end_to_end() {
    let entries = dataset::verilog_eval_syntax(7);
    // Pick an entry whose base candidate was functionally correct so the
    // fixed code can actually pass simulation.
    let entry = entries
        .iter()
        .find(|e| e.latent_correct)
        .expect("dataset contains latently-correct entries");
    let problem = dataset::suites::find_problem(&entry.problem_id).expect("problem exists");
    assert_eq!(problem.check(&entry.code), Verdict::CompileError);

    // A GPT-4-class agent should fix nearly anything that is not
    // index-arithmetic; retry a few seeds to keep the test deterministic
    // without depending on one specific draw.
    let mut fixed_code = None;
    for seed in 0..8 {
        let mut fixer = react_fixer(seed, Capability::Gpt4Class);
        let outcome = fixer.fix_problem(&entry.description, &entry.code);
        if outcome.success {
            fixed_code = Some(outcome.final_code);
            break;
        }
    }
    let fixed = fixed_code.expect("entry should be fixable by GPT-4-class agent");
    // The fixed code must now compile; depending on the injected error it
    // should usually also pass simulation.
    assert_ne!(problem.check(&fixed), Verdict::CompileError);
}

#[test]
fn all_compiler_personalities_agree_on_dataset_verdicts() {
    let entries = dataset::verilog_eval_syntax(7);
    let compilers: Vec<_> = CompilerKind::ALL.iter().map(|k| k.build()).collect();
    for entry in entries.iter().step_by(17) {
        let verdicts: Vec<bool> = compilers
            .iter()
            .map(|c| c.compile(&entry.code, "main.sv").success)
            .collect();
        assert!(
            verdicts.iter().all(|&v| v == verdicts[0]),
            "personalities disagree on {}",
            entry.problem_id
        );
        assert!(!verdicts[0], "dataset entry compiles: {}", entry.problem_id);
    }
}

#[test]
fn trace_records_the_full_react_protocol() {
    let broken = "module m(input [7:0] in, output reg [7:0] out);\n\
                  always @(posedge clk) out <= in;\nendmodule";
    let mut fixer = react_fixer(3, Capability::Gpt4Class);
    let outcome = fixer.fix(broken);
    assert!(outcome.success);
    let actions: Vec<&Action> = outcome.trace.steps.iter().map(|s| &s.action).collect();
    // Protocol: starts with a compile, ends with Finish.
    assert_eq!(actions.first(), Some(&&Action::Compiler));
    assert_eq!(actions.last(), Some(&&Action::Finish));
    // Every revision is followed (eventually) by a re-compile.
    assert!(outcome.trace.compiler_calls() > outcome.trace.revisions());
    // The transcript renders in Figure 2c shape.
    let rendered = outcome.trace.to_string();
    assert!(rendered.contains("Thought 1:"));
    assert!(rendered.contains("Observation 1:"));
}

#[test]
fn reference_solutions_survive_the_whole_stack() {
    // Reference solution → compiler personalities → simulator → golden
    // model, across suites.
    for problem in dataset::verilog_eval_human().iter().step_by(31) {
        let quartus = CompilerKind::Quartus.build();
        let outcome = quartus.compile(&problem.solution, "main.sv");
        assert!(outcome.success, "{}: {}", problem.id, outcome.log);
        assert_eq!(problem.check(&problem.solution), Verdict::Pass, "{}", problem.id);
    }
}

#[test]
fn fixer_is_idempotent_on_clean_code() {
    let clean = "module m(input a, output y); assign y = ~a; endmodule";
    let mut fixer = react_fixer(5, Capability::Gpt35Class);
    let outcome = fixer.fix(clean);
    assert!(outcome.success);
    assert_eq!(outcome.revisions, 0);
    assert_eq!(outcome.final_code.trim(), clean.trim());
}

#[test]
fn gpt4_one_shot_close_to_react_on_easy_errors() {
    // §4.3.2: GPT-4 barely benefits from ReAct.
    let entries = dataset::verilog_eval_syntax(7);
    let subset: Vec<_> = entries.iter().take(30).collect();
    let mut one_shot_ok = 0;
    let mut react_ok = 0;
    for (idx, entry) in subset.iter().enumerate() {
        let mut os = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::OneShot)
            .with_rag(true)
            .build(SimulatedLlm::new(Capability::Gpt4Class, idx as u64));
        if os.fix_problem(&entry.description, &entry.code).success {
            one_shot_ok += 1;
        }
        let mut re = react_fixer(idx as u64, Capability::Gpt4Class);
        if re.fix_problem(&entry.description, &entry.code).success {
            react_ok += 1;
        }
    }
    assert!(react_ok >= one_shot_ok, "react {react_ok} < one-shot {one_shot_ok}");
    assert!(
        react_ok - one_shot_ok <= 4,
        "GPT-4 gap should be small: one-shot {one_shot_ok}, react {react_ok}"
    );
    assert!(one_shot_ok >= 24, "GPT-4 one-shot should be strong: {one_shot_ok}/30");
}
