//! Property-based tests (proptest) on the core invariants: frontend
//! totality, logic-vector algebra, metric bounds, text-similarity laws and
//! repair-operator soundness.

use proptest::prelude::*;

use rtlfixer::agent::prefixer::prefix_fix;
use rtlfixer::eval::pass_at_k;
use rtlfixer::rag::text::{jaccard_distance, jaccard_similarity};
use rtlfixer::sim::value::LogicVec;
use rtlfixer::verilog::compile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- frontend totality --------------------------------------------

    /// The compiler pipeline never panics, whatever bytes come in.
    #[test]
    fn compile_never_panics(source in ".{0,400}") {
        let _ = compile(&source);
    }

    /// Verilog-looking fragments never panic either.
    #[test]
    fn compile_never_panics_on_verilog_shaped_input(
        body in "(assign [a-z]+ = [a-z0-9&|^~ ]+;\n){0,5}"
    ) {
        let source = format!("module m(input a, output y);\n{body}endmodule");
        let _ = compile(&source);
    }

    /// The pre-fixer is idempotent.
    #[test]
    fn prefixer_is_idempotent(source in ".{0,300}") {
        let once = prefix_fix(&source);
        let twice = prefix_fix(&once);
        prop_assert_eq!(once, twice);
    }

    // ---- logic-vector algebra ------------------------------------------

    #[test]
    fn logicvec_u64_round_trip(width in 1u32..=64, value: u64) {
        let masked = if width == 64 { value } else { value & ((1 << width) - 1) };
        let v = LogicVec::from_u64(width, value);
        prop_assert_eq!(v.to_u64(), Some(masked));
        prop_assert_eq!(v.width(), width);
    }

    #[test]
    fn add_matches_wrapping_arithmetic(width in 1u32..=64, a: u64, b: u64) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.add(&vb).to_u64(), Some((a & mask).wrapping_add(b & mask) & mask));
    }

    #[test]
    fn sub_is_add_inverse(width in 1u32..=48, a: u64, b: u64) {
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        let round_trip = va.add(&vb).sub(&vb);
        prop_assert_eq!(round_trip.to_u64(), va.to_u64());
    }

    #[test]
    fn not_is_involutive(width in 1u32..=100, value: u64) {
        let v = LogicVec::from_u64(width, value);
        prop_assert_eq!(v.not().not(), v);
    }

    #[test]
    fn concat_then_slice_recovers_parts(wa in 1u32..=32, wb in 1u32..=32, a: u64, b: u64) {
        let va = LogicVec::from_u64(wa, a);
        let vb = LogicVec::from_u64(wb, b);
        let joined = va.concat(&vb);
        prop_assert_eq!(joined.width(), wa + wb);
        prop_assert_eq!(joined.slice(wb - 1 + wa, wb), va);
        prop_assert_eq!(joined.slice(wb - 1, 0), vb);
    }

    #[test]
    fn resize_widen_preserves_value(width in 1u32..=48, extra in 1u32..=48, value: u64) {
        let v = LogicVec::from_u64(width, value);
        prop_assert_eq!(v.resize(width + extra).to_u64(), v.to_u64());
    }

    #[test]
    fn shifts_match_u64(width in 1u32..=64, value: u64, shift in 0u32..=63) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let v = LogicVec::from_u64(width, value);
        let masked = value & mask;
        prop_assert_eq!(v.shl(shift).to_u64(), Some(if shift >= width { 0 } else { (masked << shift) & mask }));
        prop_assert_eq!(v.shr(shift).to_u64(), Some(masked >> shift.min(63)));
    }

    #[test]
    fn de_morgan(width in 1u32..=64, a: u64, b: u64) {
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.and(&vb).not(), va.not().or(&vb.not()));
    }

    // ---- metrics ---------------------------------------------------------

    #[test]
    fn pass_at_k_in_unit_interval(n in 1usize..=40, c_frac in 0.0f64..=1.0, k in 1usize..=10) {
        let c = ((n as f64) * c_frac) as usize;
        let p = pass_at_k(n, c.min(n), k);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn pass_at_1_equals_c_over_n(n in 1usize..=40, c_frac in 0.0f64..=1.0) {
        let c = (((n as f64) * c_frac) as usize).min(n);
        let p = pass_at_k(n, c, 1);
        prop_assert!((p - c as f64 / n as f64).abs() < 1e-9);
    }

    // ---- text similarity ---------------------------------------------------

    #[test]
    fn jaccard_is_reflexive_and_bounded(a in "[a-z0-9 ]{0,60}", b in "[a-z0-9 ]{0,60}") {
        prop_assert!((jaccard_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let s = jaccard_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - jaccard_similarity(&b, &a)).abs() < 1e-12);
        prop_assert!((jaccard_distance(&a, &b) - (1.0 - s)).abs() < 1e-12);
    }
}

// ---- printer round-trip over the real benchmark corpus -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Printing any benchmark reference solution and re-parsing it must
    /// produce an error-free tree with the same module count — and the
    /// reprinted design must still pass its golden-model testbench.
    #[test]
    fn printer_round_trip_preserves_solutions(problem_idx in 0usize..156) {
        let problems = rtlfixer::dataset::verilog_eval_human();
        let problem = &problems[problem_idx % problems.len()];
        let parsed = rtlfixer::verilog::parser::parse(&problem.solution);
        prop_assert!(parsed.diagnostics.iter().all(|d| !d.is_error()));
        let printed = rtlfixer::verilog::printer::print_file(&parsed.file);
        let reparsed = rtlfixer::verilog::compile(&printed);
        prop_assert!(
            reparsed.is_ok(),
            "{}: reprint fails to compile:\n{printed}\n{:?}",
            problem.id,
            reparsed.errors()
        );
        prop_assert_eq!(
            problem.check(&printed),
            rtlfixer::dataset::Verdict::Pass,
            "{}: reprinted design fails its golden model",
            &problem.id
        );
    }
}

// ---- repair soundness (randomised over the real dataset) ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Applying the repair operator for a diagnosed error never makes the
    /// error count grow.
    #[test]
    fn repair_never_increases_error_count(entry_idx in 0usize..212) {
        let entries = rtlfixer::dataset::verilog_eval_syntax(7);
        let entry = &entries[entry_idx % entries.len()];
        let analysis = compile(&entry.code);
        let before = analysis.errors().len();
        if let Some(diag) = analysis.errors().first() {
            if let Some(repaired) =
                rtlfixer::llm::repair::repair(&entry.code, diag, &analysis)
            {
                let after = compile(&repaired).errors().len();
                prop_assert!(
                    after <= before,
                    "{}: {before} -> {after} errors\n{repaired}",
                    entry.problem_id
                );
            }
        }
    }
}
