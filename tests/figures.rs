//! Integration tests pinning the paper's *qualitative* figure content:
//! the exact example bugs, logs and behaviours shown in Figures 2, 3, 5
//! and 6.

use rtlfixer::compilers::CompilerKind;
use rtlfixer::rag::{DefaultRetriever, GuidanceDatabase, RetrievalQuery, Retriever};

/// Figure 2a: the reverse-bit-order implementation indexing `out[8]`.
const FIG2A: &str = "module top_module (\n\
                     \u{20}   input [7:0] in,\n\
                     \u{20}   output [7:0] out\n\
                     );\n\
                     assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;\n\
                     endmodule\n";

/// Figure 5: the vector100r implementation with the phantom `clk`.
const FIG5: &str = "module top_module (\n\
                    \u{20}   input [99:0] in,\n\
                    \u{20}   output reg [99:0] out\n\
                    );\n\
                    always @(posedge clk) begin\n\
                    \u{20}   for (int i = 0; i < 100; i = i + 1) begin\n\
                    \u{20}       out[i] <= in[99 - i];\n\
                    \u{20}   end\n\
                    end\n\
                    endmodule\n";

#[test]
fn figure2a_iverilog_feedback_line() {
    // Paper: "main.v:5: error: Index out[8] is out of range.
    //         1 error(s) during elaboration."
    let outcome = CompilerKind::Iverilog.build().compile(FIG2A, "main.v");
    assert!(outcome.log.contains("error: Index out[8] is out of range."));
    assert!(outcome.log.contains("1 error(s) during elaboration."));
}

#[test]
fn figure5_both_compiler_logs() {
    let iverilog = CompilerKind::Iverilog.build().compile(FIG5, "vector100r.sv");
    assert!(
        iverilog
            .log
            .contains("error: Unable to bind wire/reg/memory 'clk' in 'top_module'"),
        "{}",
        iverilog.log
    );
    let quartus = CompilerKind::Quartus.build().compile(FIG5, "vector100r.sv");
    assert!(
        quartus.log.contains(
            "Error (10161): Verilog HDL error at vector100r.sv(5): object \"clk\" is not \
             declared. Verify the object name is correct. If the name is correct, declare \
             the object."
        ),
        "{}",
        quartus.log
    );
    assert!(quartus.log.contains("Quartus Prime Analysis & Synthesis was unsuccessful"));
}

#[test]
fn figure3_guidance_retrieved_for_figure5_log() {
    // The RAG[..] action on the Figure 5 Quartus log must surface the
    // Figure 3 guidance ("replace 'posedge clk' with '*'").
    let quartus = CompilerKind::Quartus.build().compile(FIG5, "vector100r.sv");
    let db = GuidanceDatabase::quartus();
    let hits = DefaultRetriever::new().retrieve(&db, &RetrievalQuery::from_log(quartus.log));
    assert!(!hits.is_empty());
    assert!(
        hits.iter().any(|h| h.entry.guidance.contains("replace 'posedge clk' with '*'")),
        "figure-3 guidance missing from {:?}",
        hits.iter().map(|h| &h.entry.id).collect::<Vec<_>>()
    );
}

#[test]
fn figure6_quartus_reports_negative_index() {
    let fig6 = "module top_module(input [255:0] q, output [255:0] next);\n\
                genvar i, j;\n\
                generate\n\
                for (i = 0; i < 16; i = i + 1) begin : row\n\
                  for (j = 0; j < 16; j = j + 1) begin : col\n\
                    assign next[i*16 + j] = q[(i-1)*16 + (j-1)];\n\
                  end\n\
                end\n\
                endgenerate\n\
                endmodule\n";
    let outcome = CompilerKind::Quartus.build().compile(fig6, "conwaylife.sv");
    // Paper: "index -17 cannot fall outside the declared range [255:0]".
    assert!(
        outcome.log.contains("index -17 cannot fall outside the declared range [255:0]"),
        "{}",
        outcome.log
    );
}

#[test]
fn figure2b_actions_are_the_react_action_space() {
    use rtlfixer::agent::prompts::REACT_INSTRUCTION;
    for action in ["Compiler[code]", "Finish[answer]", "RAG[logs]"] {
        assert!(REACT_INSTRUCTION.contains(action), "missing {action}");
    }
}
