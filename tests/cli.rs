//! End-to-end tests of the `rtlfixer` CLI binary.

use std::process::Command;

fn rtlfixer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtlfixer"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rtlfixer_cli_test_{name}"));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn no_arguments_prints_usage() {
    let output = rtlfixer().output().expect("runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}

#[test]
fn check_reports_errors_and_exit_code() {
    let path = write_temp(
        "check_bad.v",
        "module m(output reg q); always @(posedge clk) q <= 1; endmodule\n",
    );
    let output = rtlfixer()
        .args(["check", path.to_str().expect("utf8"), "--compiler=quartus"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Error (10161)"), "{stdout}");
}

#[test]
fn check_passes_clean_file() {
    let path = write_temp(
        "check_ok.v",
        "module m(input a, output y); assign y = ~a; endmodule\n",
    );
    let output = rtlfixer()
        .args(["check", path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(0));
}

#[test]
fn fix_repairs_phantom_clk_to_stdout() {
    let path = write_temp(
        "fix_clk.v",
        "module m(input [7:0] in, output reg [7:0] out);\n\
         always @(posedge clk) out <= in;\nendmodule\n",
    );
    let output = rtlfixer()
        .args(["fix", path.to_str().expect("utf8"), "--llm=gpt4", "--seed=7"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));
    let fixed = String::from_utf8_lossy(&output.stdout);
    assert!(rtlfixer_verilog_compiles(&fixed), "{fixed}");
    // The original file is untouched without --in-place.
    let original = std::fs::read_to_string(&path).expect("read back");
    assert!(original.contains("posedge clk"));
}

#[test]
fn fix_writes_output_file() {
    let input = write_temp(
        "fix_semi.v",
        "module m(input a, output y);\nassign y = a\nendmodule\n",
    );
    let out_path = std::env::temp_dir().join("rtlfixer_cli_test_fixed.v");
    let _ = std::fs::remove_file(&out_path);
    let output = rtlfixer()
        .args([
            "fix",
            input.to_str().expect("utf8"),
            "--llm=gpt4",
            "--seed=3",
            &format!("--out={}", out_path.display()),
        ])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));
    let fixed = std::fs::read_to_string(&out_path).expect("output written");
    assert!(rtlfixer_verilog_compiles(&fixed), "{fixed}");
}

#[test]
fn dataset_dumps_json_lines() {
    let output = rtlfixer()
        .args(["dataset", "--limit=3"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"problem_id\""));
    }
}

fn rtlfixer_verilog_compiles(source: &str) -> bool {
    rtlfixer::verilog::compile(source).is_ok()
}
