//! # rtlfixer-cache
//!
//! A sharded, concurrent, content-addressed artifact cache — the memoisation
//! substrate under the compile → feedback → repair loop.
//!
//! The evaluation grid replays the same problem corpus across cells and
//! repeats, so the frontend sees each broken source many times, every
//! compiler personality re-renders the same diagnostics, and the testbench
//! re-elaborates identical designs once per proposal. All three computations
//! are pure functions of their inputs, so each artifact is cached once per
//! process behind a content hash:
//!
//! * [`fingerprint128`] — the canonical 128-bit content hash. Cache keys pair
//!   it with whatever non-content coordinates matter (compiler personality,
//!   file name, top module), so a collision requires two distinct inputs to
//!   agree on all 128 bits — negligible at any realistic working-set size.
//! * [`ShardedCache`] — a lock-striped hash map. Workers of the parallel
//!   episode pool hit disjoint shards most of the time, and the value is
//!   computed *outside* the shard lock so a slow miss never blocks readers.
//! * [`enabled`] / [`set_enabled`] — a process-wide kill switch
//!   (`RTLFIXER_CACHE=0` in the environment, or programmatic). Caching is
//!   behaviourally invisible — results are bit-identical on or off — so the
//!   switch exists purely for invariance tests and perf A/B runs.
//!
//! ## Invariance guarantee
//!
//! A cache entry is only ever the memoised result of a pure function of its
//! key. Eviction (a shard clearing when full) and the kill switch therefore
//! change wall-clock time, never results. The repo's invariance suite runs
//! experiment binaries with the cache on and off at several `--jobs` values
//! and asserts byte-identical outputs.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit, seeded. Two runs with independent seeds give the two
/// halves of [`fingerprint128`].
fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64) so short inputs still spread across the
    // whole 64-bit space.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94D0_49BB_1331_11EB);
    hash ^ (hash >> 31)
}

/// The canonical 128-bit content hash: two independently-seeded FNV-1a
/// streams over the same bytes. Stable across processes and platforms.
pub fn fingerprint128(bytes: &[u8]) -> u128 {
    let lo = fnv1a64(bytes, 0);
    let hi = fnv1a64(bytes, 0x9E37_79B9_7F4A_7C15);
    (u128::from(hi) << 64) | u128::from(lo)
}

// Global kill switch: 0 = uninitialised (read RTLFIXER_CACHE lazily),
// 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether caching is active. Defaults to on; the `RTLFIXER_CACHE`
/// environment variable set to `0`, `off`, `false` or `no` disables it at
/// startup, and [`set_enabled`] overrides either way at runtime.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("RTLFIXER_CACHE") {
                Ok(value) => {
                    !matches!(value.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no")
                }
                Err(_) => true,
            };
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns caching on or off process-wide. Intended for invariance tests and
/// A/B timing; flipping it mid-run is safe (results never depend on it).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// A point-in-time view of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute *while the cache was enabled* — real
    /// cold-cache traffic, never kill-switch traffic.
    pub misses: u64,
    /// Lookups that went straight to compute because the cache was
    /// disabled (the `RTLFIXER_CACHE=0` kill switch). Kept separate from
    /// `misses` so an A/B run's 100% bypass is distinguishable from real
    /// cold-cache behaviour.
    pub bypassed: u64,
    /// Entries dropped by capacity-pressure shard clears.
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` over enabled traffic (`0` when there was
    /// none). Bypassed lookups are excluded — they say nothing about
    /// locality.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A lock-striped concurrent memo table.
///
/// Keys carry full equality — the content hash only picks the shard — so the
/// cache is correct even under (astronomically unlikely) fingerprint
/// collisions within a key type. Each shard is bounded: when it reaches
/// capacity it is cleared wholesale, a generation-style eviction that keeps
/// memory flat without bookkeeping on the hit path. Values are handed out by
/// clone, so `V` is typically an `Arc`.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    shard_capacity: usize,
    name: &'static str,
    hits: AtomicU64,
    misses: AtomicU64,
    bypassed: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// Creates a cache with `shards` lock stripes of at most
    /// `shard_capacity` entries each. Shard count is rounded up to a power
    /// of two (minimum 1).
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        Self::named(shards, shard_capacity, "cache")
    }

    /// [`ShardedCache::new`] with a name used in the observability
    /// registry (`cache.<name>.evictions`).
    pub fn named(shards: usize, shard_capacity: usize, name: &'static str) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: shard_capacity.max(1),
            name,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Returns the cached value for `key`, computing and inserting it via
    /// `compute` on a miss. `compute` runs *without* the shard lock held, so
    /// concurrent misses on the same key may compute redundantly — both
    /// arrive at the same value (entries memoise pure functions), and the
    /// first insertion wins.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if !enabled() {
            self.bypassed.fetch_add(1, Ordering::Relaxed);
            return compute();
        }
        if let Some(hit) = self.shard_for(&key).lock().expect("cache shard").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let mut shard = self.shard_for(&key).lock().expect("cache shard");
        // Capacity pressure clears the shard wholesale — but only when this
        // insertion would actually grow it. A concurrent miss on the same
        // key must not clear the shard again and wipe the entry the racing
        // thread just inserted (it would land right back anyway).
        if !shard.contains_key(&key) && shard.len() >= self.shard_capacity {
            let evicted = shard.len() as u64;
            shard.clear();
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            rtlfixer_obs::counter_add(&format!("cache.{}.evictions", self.name), evicted);
        }
        shard.entry(key).or_insert_with(|| value.clone()).clone()
    }

    /// Looks up `key` without computing on a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        if !enabled() {
            self.bypassed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let hit = self.shard_for(key).lock().expect("cache shard").get(key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard").clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypassed: self.bypassed.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().expect("cache shard").len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Tests that assert on exact hit/miss behaviour serialise against the
    /// one test that flips the global switch.
    fn switch_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = fingerprint128(b"module m; endmodule");
        assert_eq!(a, fingerprint128(b"module m; endmodule"));
        assert_ne!(a, fingerprint128(b"module m ; endmodule"));
        assert_ne!(fingerprint128(b""), fingerprint128(b"\0"));
        // The two 64-bit halves are independent streams.
        assert_ne!((a >> 64) as u64, a as u64);
    }

    #[test]
    fn cache_memoises_and_counts() {
        let _guard = switch_lock();
        set_enabled(true);
        let cache: ShardedCache<u64, u64> = ShardedCache::new(4, 16);
        let computed = AtomicUsize::new(0);
        let compute = |v: u64| {
            computed.fetch_add(1, Ordering::Relaxed);
            v * 2
        };
        assert_eq!(cache.get_or_insert_with(7, || compute(7)), 14);
        assert_eq!(cache.get_or_insert_with(7, || compute(7)), 14);
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shard_clears_when_full_but_stays_correct() {
        let _guard = switch_lock();
        set_enabled(true);
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 4);
        for key in 0..64 {
            assert_eq!(cache.get_or_insert_with(key, || key + 1), key + 1);
        }
        assert!(cache.stats().entries <= 4);
        // Capacity clears are no longer silent: every dropped entry counts.
        let stats = cache.stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert_eq!(stats.evictions % 4, 0, "whole shards of 4 drop at once: {stats:?}");
        // Evicted keys recompute to the same value.
        assert_eq!(cache.get_or_insert_with(0, || 1), 1);
    }

    #[test]
    fn racing_duplicate_miss_does_not_clear_a_full_shard() {
        // Regression: two threads miss on the same key concurrently; the
        // loser reaches the insert path with the shard now at capacity and
        // its key already resident. It must NOT clear the shard (wiping
        // the winner's fresh insertion) — the fix checks key residency
        // before applying capacity pressure.
        let _guard = switch_lock();
        set_enabled(true);
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1, 4);
        for key in 0..3 {
            cache.get_or_insert_with(key, || key);
        }
        // Both racers must pass the hit check before either inserts: the
        // barrier inside `compute` only opens once both have missed.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    cache.get_or_insert_with(3, || {
                        barrier.wait();
                        33
                    });
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 4, "the racing clear wiped the shard: {stats:?}");
        assert_eq!(stats.evictions, 0, "no eviction should be recorded: {stats:?}");
        assert_eq!(stats.misses, 5, "both racers count a real miss: {stats:?}");
        for key in 0..3 {
            assert_eq!(cache.get(&key), Some(key), "hot entry survived");
        }
        // A genuinely new key at capacity does clear, and counts it.
        cache.get_or_insert_with(99, || 99);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 4, "{stats:?}");
        assert_eq!(stats.entries, 1, "{stats:?}");
    }

    #[test]
    fn disabled_cache_computes_every_time() {
        let _guard = switch_lock();
        set_enabled(false);
        let cache: ShardedCache<u64, u64> = ShardedCache::new(4, 16);
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            cache.get_or_insert_with(1, || {
                computed.fetch_add(1, Ordering::Relaxed);
                2
            });
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.get(&1), None);
        // Regression: kill-switch traffic is `bypassed`, not `misses` — a
        // disabled run must not masquerade as 100% cold-cache behaviour.
        let stats = cache.stats();
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.bypassed, 4, "3 inserts + 1 get: {stats:?}");
        assert_eq!(stats.hit_rate(), 0.0);
        set_enabled(true);
        // Re-enabled: the same cache resumes memoising.
        cache.get_or_insert_with(1, || 2);
        assert_eq!(cache.get(&1), Some(2));
    }

    #[test]
    fn concurrent_hammering_is_consistent() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(8, 128);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for round in 0..1_000u64 {
                        let key = round % 97;
                        assert_eq!(
                            cache.get_or_insert_with(key, || key.wrapping_mul(31)),
                            key.wrapping_mul(31)
                        );
                    }
                });
            }
        });
        assert!(cache.stats().entries <= 97);
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(4, 16);
        for key in 0..10 {
            cache.get_or_insert_with(key, || key);
        }
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
