//! Prompt templates, following the paper's Figure 2.

/// The system prompt used for generation and repair (Figure 2a header).
pub const SYSTEM_PROMPT: &str = "Implement the Verilog module based on the following \
description. Assume that signals are positive clock/clk edge triggered unless otherwise \
stated.";

/// The ReAct instruction prompt (Figure 2b).
pub const REACT_INSTRUCTION: &str = "Solve a task with interleaving Thought, Action, \
Observation steps. Thought can reason about the current situation, and Action can be the \
following types:
(1) Compiler[code], which compiles the input code and provide error message if there is \
syntax error.
(2) Finish[answer], which returns the answer and finished the task.
(3) RAG[logs], input the compiler log and retrieve expert solutions to fix the syntax error.";

/// The Simple-feedback instruction (§4.3.1).
pub const SIMPLE_INSTRUCTION: &str = "Correct the syntax error in the code.";

/// The question that opens every ReAct episode (Figure 2c).
pub const REACT_QUESTION: &str =
    "What is the syntax error in the given Verilog module implementation and how to fix it?";

/// Renders the One-shot prompt template of Figure 2a.
pub fn one_shot_prompt(problem: &str, erroneous_code: &str, feedback: &str) -> String {
    format!(
        "System Prompt:\n{SYSTEM_PROMPT}\n\n\
         Problem Description:\n{problem}\n\n\
         Erroneous Implementation:\n{erroneous_code}\n\n\
         Feedback:\n{feedback}\n"
    )
}

/// Renders a repair prompt with retrieved guidance appended (the RAG arm).
pub fn rag_prompt(problem: &str, erroneous_code: &str, feedback: &str, guidance: &[String]) -> String {
    let mut prompt = one_shot_prompt(problem, erroneous_code, feedback);
    if !guidance.is_empty() {
        prompt.push_str("\nHuman Expert Guidance:\n");
        for g in guidance {
            prompt.push_str("- ");
            prompt.push_str(g);
            prompt.push('\n');
        }
    }
    prompt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_template_has_all_sections() {
        let p = one_shot_prompt("Reverse the bits.", "module ...", "main.v:5: error: ...");
        assert!(p.contains("System Prompt:"));
        assert!(p.contains("Problem Description:\nReverse the bits."));
        assert!(p.contains("Erroneous Implementation:"));
        assert!(p.contains("Feedback:\nmain.v:5: error: ..."));
    }

    #[test]
    fn react_instruction_lists_three_actions() {
        assert!(REACT_INSTRUCTION.contains("Compiler[code]"));
        assert!(REACT_INSTRUCTION.contains("Finish[answer]"));
        assert!(REACT_INSTRUCTION.contains("RAG[logs]"));
    }

    #[test]
    fn rag_prompt_appends_guidance() {
        let p = rag_prompt("d", "c", "f", &["Check the clk port.".to_owned()]);
        assert!(p.contains("Human Expert Guidance:"));
        assert!(p.contains("- Check the clk port."));
        let without = rag_prompt("d", "c", "f", &[]);
        assert!(!without.contains("Human Expert Guidance:"));
    }
}
