//! # rtlfixer-agent
//!
//! The paper's primary contribution: **RTLFixer**, an autonomous language
//! agent that fixes Verilog syntax errors through an interactive feedback
//! loop (Figure 1).
//!
//! * [`RtlFixer`] — the agent: compile → (retrieve guidance) → revise →
//!   re-compile, under [`Strategy::OneShot`] or [`Strategy::React`].
//! * [`prefixer`] — the rule-based pre-fixer applied to every candidate
//!   (§4 Setup).
//! * [`prompts`] — the Figure 2 prompt templates.
//! * [`trace`] — Thought/Action/Observation episode records (Figure 2c).
//!
//! ## Example
//!
//! ```
//! use rtlfixer_agent::{RtlFixerBuilder, Strategy};
//! use rtlfixer_compilers::CompilerKind;
//! use rtlfixer_llm::{Capability, SimulatedLlm};
//!
//! let llm = SimulatedLlm::new(Capability::Gpt4Class, 42);
//! let mut fixer = RtlFixerBuilder::new()
//!     .compiler(CompilerKind::Quartus)
//!     .strategy(Strategy::React { max_iterations: 10 })
//!     .with_rag(true)
//!     .build(llm);
//! let outcome = fixer.fix(
//!     "module m(input [7:0] in, output reg [7:0] out);
//!      always @(posedge clk) out <= in;
//!      endmodule",
//! );
//! assert!(outcome.success);
//! println!("{}", outcome.trace); // Figure 2c style transcript
//! ```

#![warn(missing_docs)]

pub mod fixer;
pub mod prefixer;
pub mod prompts;
pub mod trace;

pub use fixer::{FixOutcome, RtlFixer, RtlFixerBuilder, Strategy};
pub use trace::{Action, FixTrace, Step};
