//! The RTLFixer agent: the interactive debugging loop of Figure 1.
//!
//! The agent wires together a compiler personality (feedback source), an
//! optional RAG stage (guidance retrieval keyed on the compiler log) and a
//! language model (revision proposals), under one of two strategies:
//!
//! * [`Strategy::OneShot`] — a single feedback turn (the paper's baseline).
//! * [`Strategy::React`] — up to `max_iterations` Thought / Action /
//!   Observation rounds, re-compiling after every revision (§3.2).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rtlfixer_compilers::{Compiler, CompileOutcome, CompilerKind};
use rtlfixer_faults::{self as faults, FaultKind, FaultPlan, FaultSpec};
use rtlfixer_llm::{
    Feedback, GuidanceSnippet, LanguageModel, PromptStyle, RepairRequest, TurnEvent,
};
use rtlfixer_obs as obs;
use rtlfixer_rag::{
    category_brief, distill_enabled, hybrid_enabled, DefaultRetriever, DistilledEntry,
    DistilledSnapshot, DistilledStore, GuidanceDatabase, HybridRetriever, RetrievalQuery,
    Retriever,
};
use rtlfixer_verilog::diag::ErrorCategory;

use crate::prefixer::prefix_fix;
use crate::trace::{Action, FixTrace};

/// Fixing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-turn feedback, no iteration.
    OneShot,
    /// Iterative ReAct loop with at most this many revision rounds (the
    /// paper uses 10).
    React {
        /// Maximum Thought-Action-Observation revision rounds.
        max_iterations: usize,
    },
}

impl Strategy {
    /// The revision budget this strategy allows.
    pub fn revision_budget(self) -> usize {
        match self {
            Strategy::OneShot => 1,
            Strategy::React { max_iterations } => max_iterations,
        }
    }

    /// Prompt style handed to the model.
    pub fn prompt_style(self) -> PromptStyle {
        match self {
            Strategy::OneShot => PromptStyle::OneShot,
            Strategy::React { .. } => PromptStyle::React,
        }
    }

    /// Label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::OneShot => "One-shot",
            Strategy::React { .. } => "ReAct",
        }
    }
}

/// The result of one fixing episode.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// Whether the final code compiles cleanly.
    pub success: bool,
    /// The final (possibly fixed) code.
    pub final_code: String,
    /// Revision rounds used (0 if the input already compiled).
    pub revisions: usize,
    /// Error categories present before fixing.
    pub initial_categories: Vec<ErrorCategory>,
    /// Error categories still present after fixing (empty on success).
    pub remaining_categories: Vec<ErrorCategory>,
    /// Whether any fault or degradation struck the episode (injected LLM /
    /// compiler faults, retriever failures, exhausted retries).
    pub degraded: bool,
    /// Number of `Fault` steps in the trace.
    pub fault_events: usize,
    /// Repair briefs distilled from this episode (non-empty only when the
    /// episode succeeded after at least one revision and a
    /// [`DistilledStore`] was wired in). The caller merges these at its
    /// pool barrier — the episode itself never mutates shared state.
    pub distilled: Vec<DistilledEntry>,
    /// Full ReAct trace.
    pub trace: FixTrace,
}

/// Builder for [`RtlFixer`]; start with [`RtlFixerBuilder::new`].
pub struct RtlFixerBuilder {
    compiler: CompilerKind,
    strategy: Strategy,
    rag: bool,
    database: Option<Arc<GuidanceDatabase>>,
    retriever: Option<Box<dyn Retriever>>,
    distilled: Option<Arc<DistilledStore>>,
    prefixer: bool,
    fault_seed: u64,
    fault_spec: Option<Option<Arc<FaultSpec>>>,
}

impl RtlFixerBuilder {
    /// Starts a builder with the paper's defaults (ReAct ×10, Quartus, RAG,
    /// pre-fixer on).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for RtlFixerBuilder {
    fn default() -> Self {
        RtlFixerBuilder {
            compiler: CompilerKind::Quartus,
            strategy: Strategy::React { max_iterations: 10 },
            rag: true,
            database: None,
            retriever: None,
            distilled: None,
            prefixer: true,
            fault_seed: 0,
            fault_spec: None,
        }
    }
}

impl RtlFixerBuilder {
    /// Selects the compiler personality (feedback source).
    pub fn compiler(mut self, kind: CompilerKind) -> Self {
        self.compiler = kind;
        self
    }

    /// Selects the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables retrieval-augmented guidance.
    pub fn with_rag(mut self, rag: bool) -> Self {
        self.rag = rag;
        self
    }

    /// Overrides the guidance database (default: the edition matching the
    /// compiler).
    pub fn database(mut self, database: GuidanceDatabase) -> Self {
        self.database = Some(Arc::new(database));
        self
    }

    /// Overrides the guidance database with a shared handle.
    ///
    /// Parallel evaluation builds one fixer per episode; passing the same
    /// `Arc` to every builder means all episodes read one database instead
    /// of cloning it per episode.
    pub fn shared_database(mut self, database: Arc<GuidanceDatabase>) -> Self {
        self.database = Some(database);
        self
    }

    /// Overrides the retriever (default: the hybrid scorer, or exact-tag
    /// with Jaccard fallback when `RTLFIXER_RAG_HYBRID` is off).
    pub fn retriever(mut self, retriever: Box<dyn Retriever>) -> Self {
        self.retriever = Some(retriever);
        self
    }

    /// Wires in a distilled-guidance store (DESIGN.md §3k). The episode
    /// snapshots the store once at build time — concurrent merges by other
    /// episodes are invisible to it — and reports its own distilled
    /// entries in [`FixOutcome::distilled`] for the caller to merge at a
    /// barrier. Inert when `RTLFIXER_RAG_DISTILL` is off.
    pub fn distilled(mut self, store: Arc<DistilledStore>) -> Self {
        self.distilled = Some(store);
        self
    }

    /// Enables or disables the rule-based pre-fixer (§4 Setup).
    pub fn prefixer(mut self, enabled: bool) -> Self {
        self.prefixer = enabled;
        self
    }

    /// Seeds the compiler-side fault stream (default 0). Evaluation passes
    /// the episode seed so injected faults are a pure function of the
    /// episode, independent of worker count or scheduling.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Overrides the fault spec explicitly (chaos harness, tests) instead
    /// of reading the process-wide `RTLFIXER_FAULTS` spec. `None` disables
    /// compiler-side faults regardless of the environment.
    pub fn fault_spec(mut self, spec: Option<Arc<FaultSpec>>) -> Self {
        self.fault_spec = Some(spec);
        self
    }

    /// Builds the fixer around a language model.
    pub fn build<L: LanguageModel>(self, llm: L) -> RtlFixer<L> {
        // Default to the process-wide shared edition: episodes are built in
        // the thousands, and the database is read-only throughout.
        let database = self.database.unwrap_or_else(|| match self.compiler {
            CompilerKind::Quartus => GuidanceDatabase::quartus_shared(),
            _ => GuidanceDatabase::iverilog_shared(),
        });
        // Distillation: snapshot the store once so the whole episode sees
        // one consistent generation, and retrieve over the base database
        // extended with the distilled entries (an empty store aliases the
        // base Arc — zero cost).
        let (database, distilled) = match self.distilled {
            Some(store) if distill_enabled() => {
                let merged = store.merged_database(&database);
                (merged, Some(store.snapshot()))
            }
            _ => (database, None),
        };
        let faults = match self.fault_spec {
            Some(spec) => FaultPlan::compiler_with(spec, self.fault_seed),
            None => FaultPlan::compiler(self.fault_seed),
        };
        RtlFixer {
            compiler_kind: self.compiler,
            compiler: self.compiler.build(),
            strategy: self.strategy,
            rag: self.rag,
            database,
            retriever: self.retriever.unwrap_or_else(|| {
                if hybrid_enabled() {
                    Box::new(HybridRetriever::new())
                } else {
                    Box::new(DefaultRetriever::new())
                }
            }),
            distilled,
            prefixer: self.prefixer,
            faults,
            llm,
        }
    }
}

/// The RTLFixer agent. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use rtlfixer_agent::{RtlFixerBuilder, Strategy};
/// use rtlfixer_compilers::CompilerKind;
/// use rtlfixer_llm::{Capability, SimulatedLlm};
///
/// let llm = SimulatedLlm::new(Capability::Gpt4Class, 42);
/// let mut fixer = RtlFixerBuilder::new()
///     .compiler(CompilerKind::Quartus)
///     .strategy(Strategy::React { max_iterations: 10 })
///     .build(llm);
/// let outcome = fixer.fix(
///     "module m(input [7:0] in, output reg [7:0] out);
///      always @(posedge clk) out <= in;
///      endmodule",
/// );
/// assert!(outcome.success);
/// ```
pub struct RtlFixer<L: LanguageModel> {
    compiler_kind: CompilerKind,
    compiler: Box<dyn Compiler>,
    strategy: Strategy,
    rag: bool,
    database: Arc<GuidanceDatabase>,
    retriever: Box<dyn Retriever>,
    distilled: Option<Arc<DistilledSnapshot>>,
    prefixer: bool,
    faults: FaultPlan,
    llm: L,
}

impl<L: LanguageModel> RtlFixer<L> {
    /// The configured compiler personality.
    pub fn compiler_kind(&self) -> CompilerKind {
        self.compiler_kind
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Fixes `source` with an empty problem description.
    pub fn fix(&mut self, source: &str) -> FixOutcome {
        self.fix_problem("", source)
    }

    /// Runs one fixing episode over `source` for `problem`.
    pub fn fix_problem(&mut self, problem: &str, source: &str) -> FixOutcome {
        let _episode_span = obs::span(obs::kind::EPISODE);
        // Per-category episode-duration histograms (the episode scheduler's
        // cost model reads these back via `obs::span_summaries`); the
        // categories are only known after the initial compile, so the span
        // guard can't carry them — time the episode body explicitly.
        let episode_start = _episode_span.is_recording().then(std::time::Instant::now);
        obs::counter_add("agent.episodes", 1);
        let mut code =
            if self.prefixer { prefix_fix(source) } else { source.to_owned() };
        let initial_code = code.clone();
        let mut trace = FixTrace::new();
        let mut degraded = false;
        self.llm.begin_episode();

        let mut outcome = self.compile_checked(
            &code,
            "Submit the implementation to the compiler to check for syntax errors.",
            &mut trace,
            &mut degraded,
        );
        let initial_categories = outcome.error_categories();
        // Kept for distillation: the error shape an eventual success is
        // filed under is the *initial* failing log (the shape the next
        // episode will see on its first compile).
        let initial_log =
            if outcome.success { None } else { Some(outcome.log.clone()) };

        let mut revisions = 0usize;
        let budget = self.strategy.revision_budget();
        while !outcome.success && revisions < budget {
            let _turn_span = obs::span(obs::kind::TURN);
            // RAG stage: retrieve guidance keyed on the compiler log. A
            // panicking retriever degrades the episode to RAG-off for this
            // turn instead of aborting it.
            let guidance: Vec<GuidanceSnippet> = if self.rag {
                let query = RetrievalQuery::from_log(outcome.log.clone())
                    .with_identified(outcome.identified.clone());
                let retrieve_span = obs::span(obs::kind::RETRIEVE);
                let hits = catch_unwind(AssertUnwindSafe(|| {
                    self.retriever.retrieve(&self.database, &query)
                }));
                drop(retrieve_span);
                match hits {
                    Ok(hits) => {
                        obs::counter_add("rag.retrievals", 1);
                        // Retrieval-quality telemetry: evidence share and
                        // the rank of the first trustworthy hit (exact, or
                        // category-confirmed by the feedback layer).
                        for hit in &hits {
                            obs::counter_add(
                                &format!("rag.hits.{}", hit.evidence.slug()),
                                1,
                            );
                        }
                        if let Some(depth) = hits.iter().position(|h| {
                            h.exact || query.identified.contains(&h.entry.category.0)
                        }) {
                            obs::observe("rag.hit_depth", depth as u64);
                        }
                        let mut guidance: Vec<GuidanceSnippet> = hits
                            .iter()
                            .map(|h| GuidanceSnippet {
                                category: h.entry.category.0,
                                text: h.entry.render_brief(),
                                demonstration: h.entry.demonstration.clone(),
                                exact_retrieval: h.exact,
                                anti_patterns: h.entry.anti_patterns.clone(),
                            })
                            .collect();
                        // Distilled-store lookup: a fingerprint hit is a
                        // previously successful repair of this exact error
                        // shape — authoritative, like a tag match.
                        if let Some(snapshot) = &self.distilled {
                            if let Some(entry) = snapshot.lookup(&outcome.log) {
                                obs::counter_add("rag.hits.distilled", 1);
                                let (_, anti) = category_brief(entry.category.0);
                                guidance.push(GuidanceSnippet {
                                    category: entry.category.0,
                                    text: entry.guidance.clone(),
                                    demonstration: None,
                                    exact_retrieval: true,
                                    anti_patterns: anti
                                        .iter()
                                        .map(|s| (*s).to_owned())
                                        .collect(),
                                });
                            }
                        }
                        if !guidance.is_empty() {
                            let obs_lines: Vec<&str> =
                                guidance.iter().map(|g| g.text.as_str()).collect();
                            trace.push(
                                "Search the expert guidance database for this error.",
                                Action::Rag { query: outcome.log.clone() },
                                obs_lines.join("\n"),
                            );
                        }
                        guidance
                    }
                    Err(_) => {
                        degraded = true;
                        trace.push(
                            "The retrieval service failed; continuing without guidance.",
                            Action::Fault { kind: "retriever-error".into() },
                            "",
                        );
                        Vec::new()
                    }
                }
            } else {
                Vec::new()
            };

            let request = RepairRequest {
                code: code.clone(),
                problem: problem.to_owned(),
                feedback: Feedback {
                    log: outcome.log.clone(),
                    identified: outcome.identified.clone(),
                    informativeness: self.compiler.quality().informativeness,
                },
                guidance,
                style: self.strategy.prompt_style(),
                attempt: revisions,
            };
            let turn = self.llm.propose_repair_turn(&request);
            degraded |= turn.is_degraded();
            for event in &turn.events {
                match event {
                    TurnEvent::Fault { kind, .. } => trace.push(
                        "A fault struck the model call.",
                        Action::Fault { kind: kind.slug().into() },
                        "",
                    ),
                    TurnEvent::Retry { backoff_ms, .. } => trace.push(
                        format!("Back off {backoff_ms} ms, then retry the model call."),
                        Action::Retry,
                        "",
                    ),
                    TurnEvent::CircuitOpen => trace.push(
                        "The circuit breaker is open; no model call is made.",
                        Action::Fault { kind: "circuit-open".into() },
                        "",
                    ),
                }
            }
            match turn.response {
                Some(response) => {
                    let mut next = response.code;
                    if turn.malformed {
                        // Salvage the prose-wrapped completion through the
                        // same pre-fixer the paper applies to every
                        // LLM-generated candidate.
                        let salvaged = prefix_fix(&next);
                        if salvaged.contains("module") {
                            faults::record_recovered(FaultKind::MalformedOutput);
                            obs::counter_add("agent.salvaged_completions", 1);
                            next = salvaged;
                        }
                    }
                    trace.push(response.thought, Action::Revise, "");
                    code = next;
                }
                None => {
                    // Exhausted retries (or open breaker): keep the previous
                    // candidate. The turn still consumes a revision so a
                    // fully-unavailable model terminates at the budget.
                    trace.push(
                        "The model is unavailable this turn; keeping the previous candidate.",
                        Action::Revise,
                        "",
                    );
                }
            }
            revisions += 1;

            outcome = self.compile_checked(
                &code,
                "Re-run the compilation on the revised code.",
                &mut trace,
                &mut degraded,
            );
        }

        trace.push(
            if outcome.success {
                "The code now compiles successfully. Returning the final implementation."
            } else {
                "The revision budget is exhausted; returning the best attempt."
            },
            Action::Finish,
            "",
        );

        obs::counter_add("agent.revisions", revisions as u64);
        obs::observe("agent.revisions_per_episode", revisions as u64);
        if outcome.success {
            obs::counter_add("agent.episodes.fixed", 1);
        } else {
            obs::counter_add("agent.episodes.unfixed", 1);
        }
        if degraded {
            obs::counter_add("agent.episodes.degraded", 1);
        }
        let episode_us = episode_start
            .map(|start| u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        for category in &initial_categories {
            obs::counter_add(&format!("agent.episodes.by_category.{category}"), 1);
            obs::counter_add(
                &format!("agent.revisions.by_category.{category}"),
                revisions as u64,
            );
            if let Some(us) = episode_us {
                obs::observe(&format!("span.episode.by_category.{category}.us"), us);
            }
        }

        // Distillation: a successful repair that needed real work becomes a
        // reusable brief filed under the initial error shape. Captured into
        // the outcome only — the caller merges at its pool barrier so the
        // result stays bit-identical at any `--jobs`.
        let distilled = match (&self.distilled, &initial_log) {
            (Some(_), Some(log)) if outcome.success && revisions > 0 => {
                let category = initial_categories
                    .first()
                    .copied()
                    .unwrap_or(ErrorCategory::SyntaxError);
                vec![DistilledEntry::from_episode(
                    log,
                    category,
                    revisions,
                    changed_line_count(&initial_code, &code),
                )]
            }
            _ => Vec::new(),
        };

        FixOutcome {
            success: outcome.success,
            remaining_categories: outcome.error_categories(),
            final_code: code,
            revisions,
            initial_categories,
            degraded,
            fault_events: trace.fault_steps(),
            distilled,
            trace,
        }
    }

    /// One compile with compiler-side fault handling.
    ///
    /// Cached compile: across episodes (and pool workers) identical
    /// candidate sources compile exactly once per process. A drawn
    /// `CompilerCrash` is retried (the real tool flow: resubmit the job) up
    /// to twice; a drawn `GarbledLog` delivers the real verdict under a
    /// noise-corrupted log with no identifiable categories — feedback
    /// quality degrades, the episode continues.
    fn compile_checked(
        &mut self,
        code: &str,
        thought: &str,
        trace: &mut FixTrace,
        degraded: &mut bool,
    ) -> Arc<CompileOutcome> {
        let _compile_span = obs::span(obs::kind::COMPILE);
        obs::counter_add("agent.compiles", 1);
        let mut crashes = 0usize;
        let outcome = loop {
            match self.faults.draw() {
                Some(FaultKind::CompilerCrash) => {
                    *degraded = true;
                    trace.push(
                        "The compiler job died before producing a verdict.",
                        Action::Fault { kind: FaultKind::CompilerCrash.slug().into() },
                        faults::crash_log(),
                    );
                    if crashes < 2 {
                        crashes += 1;
                        trace.push("Resubmit the compilation job.", Action::Retry, "");
                        faults::record_recovered(FaultKind::CompilerCrash);
                        continue;
                    }
                    // Crash-retry budget exhausted: degrade gracefully by
                    // trusting the (cached) frontend verdict anyway rather
                    // than abandoning the episode.
                    faults::record_exhausted(FaultKind::CompilerCrash);
                    break self.compiler.compile_cached(code, "main.sv");
                }
                Some(FaultKind::GarbledLog) => {
                    *degraded = true;
                    let base = self.compiler.compile_cached(code, "main.sv");
                    if base.success {
                        break base;
                    }
                    // The shared cache entry stays pristine; only this
                    // episode sees the corrupted copy.
                    let mut out = (*base).clone();
                    out.log = self.faults.garble_log(&out.log);
                    out.identified.clear();
                    trace.push(
                        "The compiler log arrived corrupted; no error tag is legible.",
                        Action::Fault { kind: FaultKind::GarbledLog.slug().into() },
                        out.log.clone(),
                    );
                    break Arc::new(out);
                }
                _ => break self.compiler.compile_cached(code, "main.sv"),
            }
        };
        trace.push(thought, Action::Compiler, outcome.log.clone());
        outcome
    }
}

/// Positional line diff between the pre-loop candidate and the final code:
/// pairwise-different lines plus the length delta, floored at 1 (a repair
/// that reached success through ≥1 revision changed *something*, even if
/// only whitespace the line iterator normalises away).
fn changed_line_count(before: &str, after: &str) -> usize {
    let a: Vec<&str> = before.lines().collect();
    let b: Vec<&str> = after.lines().collect();
    let common = a.len().min(b.len());
    let mut changed = a.len().max(b.len()) - common;
    for i in 0..common {
        if a[i] != b[i] {
            changed += 1;
        }
    }
    changed.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_llm::{Capability, SimulatedLlm};

    const PHANTOM_CLK: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                               always @(posedge clk) out <= in;\nendmodule";

    fn fixer(
        compiler: CompilerKind,
        strategy: Strategy,
        rag: bool,
        capability: Capability,
        seed: u64,
    ) -> RtlFixer<SimulatedLlm> {
        RtlFixerBuilder::new()
            .compiler(compiler)
            .strategy(strategy)
            .with_rag(rag)
            .build(SimulatedLlm::new(capability, seed))
    }

    #[test]
    fn already_clean_code_finishes_immediately() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt35Class,
            1,
        );
        let outcome = f.fix("module m(input a, output y); assign y = a; endmodule");
        assert!(outcome.success);
        assert_eq!(outcome.revisions, 0);
        assert!(outcome.initial_categories.is_empty());
    }

    #[test]
    fn react_gpt4_fixes_phantom_clk() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            7,
        );
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert_eq!(
            outcome.initial_categories,
            vec![ErrorCategory::UndeclaredIdentifier]
        );
        assert!(outcome.remaining_categories.is_empty());
        assert!(outcome.trace.compiler_calls() >= 2);
    }

    #[test]
    fn one_shot_uses_single_revision() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::OneShot,
            true,
            Capability::Gpt4Class,
            11,
        );
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.revisions <= 1);
    }

    #[test]
    fn react_beats_one_shot_on_average() {
        // Aggregate sanity check of the loop dynamics (Table 1's main
        // qualitative claim), on a moderately hard sample.
        let sample = "module m(input [7:0] a, output reg [7:0] y);\n\
                      always @* begin\n\
                        for (int i = 0; i < 8; i++) y[i] = a[i] & mask;\n\
                      end\nendmodule";
        let runs = 40;
        let mut one_shot_wins = 0;
        let mut react_wins = 0;
        for seed in 0..runs {
            let mut os = fixer(
                CompilerKind::Iverilog,
                Strategy::OneShot,
                false,
                Capability::Gpt35Class,
                seed,
            );
            if os.fix(sample).success {
                one_shot_wins += 1;
            }
            let mut re = fixer(
                CompilerKind::Iverilog,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            if re.fix(sample).success {
                react_wins += 1;
            }
        }
        assert!(
            react_wins > one_shot_wins,
            "react {react_wins} vs one-shot {one_shot_wins}"
        );
    }

    #[test]
    fn rag_improves_quartus_fix_rate() {
        // The Table 1 RAG effect, in miniature: a hard C-style sample.
        let sample = "module m(input [7:0] a, output reg [7:0] s);\n\
                      always @* begin\ns = 0;\ns += a;\nend\nendmodule";
        let runs = 60;
        let mut with_rag = 0;
        let mut without_rag = 0;
        for seed in 0..runs {
            let mut w = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                true,
                Capability::Gpt35Class,
                seed,
            );
            if w.fix(sample).success {
                with_rag += 1;
            }
            let mut wo = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            if wo.fix(sample).success {
                without_rag += 1;
            }
        }
        assert!(with_rag > without_rag, "with {with_rag} vs without {without_rag}");
    }

    #[test]
    fn trace_contains_rag_step_when_retrieval_hits() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            3,
        );
        let outcome = f.fix(PHANTOM_CLK);
        let has_rag = outcome
            .trace
            .steps
            .iter()
            .any(|s| matches!(s.action, Action::Rag { .. }));
        assert!(has_rag, "trace:\n{}", outcome.trace);
    }

    #[test]
    fn successful_episode_with_store_distills_one_entry() {
        let store = Arc::new(DistilledStore::new());
        let mut f = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .distilled(Arc::clone(&store))
            .build(SimulatedLlm::new(Capability::Gpt4Class, 7));
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert!(outcome.revisions >= 1);
        assert_eq!(outcome.distilled.len(), 1);
        assert_eq!(
            outcome.distilled[0].category.0,
            ErrorCategory::UndeclaredIdentifier
        );

        // Without a wired store the same episode distills nothing.
        let mut plain = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            7,
        );
        let outcome = plain.fix(PHANTOM_CLK);
        assert!(outcome.success);
        assert!(outcome.distilled.is_empty());
    }

    #[test]
    fn merged_distilled_entries_surface_in_the_next_episode() {
        // Close the loop: episode 1 distills, the caller merges at its
        // barrier, episode 2 (a fresh fixer over the same store) retrieves
        // the distilled brief for the same error shape.
        let store = Arc::new(DistilledStore::new());
        let mut first = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .distilled(Arc::clone(&store))
            .build(SimulatedLlm::new(Capability::Gpt4Class, 7));
        let outcome = first.fix(PHANTOM_CLK);
        assert!(outcome.success);
        assert_eq!(store.merge(&outcome.distilled), 1);

        let mut second = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .distilled(Arc::clone(&store))
            .build(SimulatedLlm::new(Capability::Gpt4Class, 21));
        let outcome = second.fix(PHANTOM_CLK);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        let saw_distilled = outcome.trace.steps.iter().any(|s| {
            matches!(s.action, Action::Rag { .. })
                && s.observation.contains("A previous repair cleared this exact error shape")
        });
        assert!(saw_distilled, "trace:\n{}", outcome.trace);
    }

    #[test]
    fn markdown_wrapped_input_is_prefixed() {
        let wrapped = format!("Here you go:\n```verilog\n{PHANTOM_CLK}\n```\nEnjoy!");
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            5,
        );
        let outcome = f.fix(&wrapped);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert!(outcome.final_code.starts_with("module"));
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        // The Figure 6 class: index arithmetic, nearly unsolvable.
        let sample = "module m(input [255:0] q, output [255:0] n);\n\
                      genvar i, j;\ngenerate\n\
                      for (i = 0; i < 16; i = i + 1) begin : r\n\
                      for (j = 0; j < 16; j = j + 1) begin : c\n\
                      assign n[i*16 + j] = q[(i-1)*16 + (j-1)];\n\
                      end\nend\nendgenerate\nendmodule";
        let mut failures = 0;
        for seed in 0..10 {
            let mut f = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            let outcome = f.fix(sample);
            if !outcome.success {
                failures += 1;
                assert!(!outcome.remaining_categories.is_empty());
            }
        }
        assert!(failures >= 7, "index arithmetic should mostly fail: {failures}/10");
    }

    // ---- graceful degradation under faults -----------------------------

    use rtlfixer_faults::{FaultKind, FaultSpec};
    use rtlfixer_llm::ResilientModel;

    fn only(kind: FaultKind, rate: f64) -> Option<Arc<FaultSpec>> {
        Some(Arc::new(FaultSpec::none().with_rate(kind, rate)))
    }

    /// A fixer whose LLM transport injects exactly `kind` at `rate`, with
    /// compiler-side faults explicitly off. Explicit specs keep these tests
    /// independent of process-global fault state.
    fn faulty_llm_fixer(
        kind: FaultKind,
        rate: f64,
        seed: u64,
    ) -> RtlFixer<ResilientModel<SimulatedLlm>> {
        RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .fault_spec(None)
            .build(ResilientModel::with_spec(
                SimulatedLlm::new(Capability::Gpt4Class, seed),
                only(kind, rate),
                seed,
            ))
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            7,
        );
        let outcome = f.fix(PHANTOM_CLK);
        assert!(!outcome.degraded);
        assert_eq!(outcome.fault_events, 0);
        assert_eq!(outcome.trace.retries(), 0);
    }

    #[test]
    fn malformed_completions_are_salvaged() {
        // Every completion arrives prose-wrapped; the salvage path must
        // still land a compiling module.
        let mut f = faulty_llm_fixer(FaultKind::MalformedOutput, 1.0, 7);
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert!(outcome.degraded);
        assert!(outcome.fault_events >= 1);
        assert!(outcome.final_code.trim_start().starts_with("module"), "{}", outcome.final_code);
    }

    #[test]
    fn exhausted_turns_keep_previous_candidate_and_terminate() {
        // A permanently-down model: every turn exhausts its retries. The
        // episode must terminate at the revision budget with the original
        // candidate intact, not abort or spin.
        let mut f = faulty_llm_fixer(FaultKind::Timeout, 1.0, 3);
        let outcome = f.fix(PHANTOM_CLK);
        assert!(!outcome.success);
        assert!(outcome.degraded);
        assert_eq!(outcome.revisions, 10, "each dead turn still consumes a revision");
        assert_eq!(outcome.final_code, prefix_fix(PHANTOM_CLK));
        assert_eq!(outcome.remaining_categories, outcome.initial_categories);
    }

    struct PanickyRetriever;

    impl Retriever for PanickyRetriever {
        fn name(&self) -> &str {
            "panicky"
        }

        fn retrieve<'a>(
            &self,
            _db: &'a GuidanceDatabase,
            _query: &RetrievalQuery,
        ) -> Vec<rtlfixer_rag::Retrieved<'a>> {
            panic!("retrieval backend fell over")
        }
    }

    #[test]
    fn retriever_panic_degrades_to_rag_off() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log quiet
        let mut f = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .retriever(Box::new(PanickyRetriever))
            .fault_spec(None)
            .build(SimulatedLlm::new(Capability::Gpt4Class, 7));
        let outcome = f.fix(PHANTOM_CLK);
        std::panic::set_hook(hook);
        assert!(outcome.degraded);
        let retriever_faults = outcome
            .trace
            .steps
            .iter()
            .filter(|s| s.action == Action::Fault { kind: "retriever-error".into() })
            .count();
        assert!(retriever_faults >= 1, "trace:\n{}", outcome.trace);
        // No guidance ever reached the model, so no RAG step either.
        assert!(!outcome.trace.steps.iter().any(|s| matches!(s.action, Action::Rag { .. })));
    }

    #[test]
    fn compiler_crashes_retry_and_continue() {
        let mut f = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .fault_spec(only(FaultKind::CompilerCrash, 1.0))
            .fault_seed(7)
            .build(SimulatedLlm::new(Capability::Gpt4Class, 7));
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.success, "crashes must not sink the episode:\n{}", outcome.trace);
        assert!(outcome.degraded);
        assert!(outcome.trace.retries() >= 2, "crash retries appear in the trace");
        assert!(outcome.fault_events >= 3, "every compile drew a crash");
    }

    #[test]
    fn garbled_logs_degrade_feedback_but_not_the_loop() {
        let mut f = RtlFixerBuilder::new()
            .compiler(CompilerKind::Quartus)
            .strategy(Strategy::React { max_iterations: 10 })
            .with_rag(false)
            .fault_spec(only(FaultKind::GarbledLog, 1.0))
            .fault_seed(5)
            .build(SimulatedLlm::new(Capability::Gpt4Class, 5));
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.degraded);
        assert!(
            outcome
                .trace
                .steps
                .iter()
                .any(|s| s.action == Action::Fault { kind: "garbled-log".into() }),
            "trace:\n{}",
            outcome.trace
        );
        assert!(outcome.revisions <= 10, "loop terminated within budget");
    }

    #[test]
    fn explicit_off_spec_matches_no_layer_run() {
        // `.fault_spec(None)` + a plain model must behave exactly like the
        // pre-fault-layer agent.
        let run = |explicit_off: bool| {
            let builder = RtlFixerBuilder::new()
                .compiler(CompilerKind::Quartus)
                .strategy(Strategy::React { max_iterations: 10 });
            let builder = if explicit_off { builder.fault_spec(None) } else { builder };
            let mut f = builder.build(SimulatedLlm::new(Capability::Gpt35Class, 99));
            let o = f.fix(PHANTOM_CLK);
            (o.success, o.revisions, o.final_code)
        };
        assert_eq!(run(true), run(false));
    }
}
