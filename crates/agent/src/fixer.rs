//! The RTLFixer agent: the interactive debugging loop of Figure 1.
//!
//! The agent wires together a compiler personality (feedback source), an
//! optional RAG stage (guidance retrieval keyed on the compiler log) and a
//! language model (revision proposals), under one of two strategies:
//!
//! * [`Strategy::OneShot`] — a single feedback turn (the paper's baseline).
//! * [`Strategy::React`] — up to `max_iterations` Thought / Action /
//!   Observation rounds, re-compiling after every revision (§3.2).

use std::sync::Arc;

use rtlfixer_compilers::{Compiler, CompilerKind};
use rtlfixer_llm::{Feedback, GuidanceSnippet, LanguageModel, PromptStyle, RepairRequest};
use rtlfixer_rag::{DefaultRetriever, GuidanceDatabase, RetrievalQuery, Retriever};
use rtlfixer_verilog::diag::ErrorCategory;

use crate::prefixer::prefix_fix;
use crate::trace::{Action, FixTrace};

/// Fixing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-turn feedback, no iteration.
    OneShot,
    /// Iterative ReAct loop with at most this many revision rounds (the
    /// paper uses 10).
    React {
        /// Maximum Thought-Action-Observation revision rounds.
        max_iterations: usize,
    },
}

impl Strategy {
    /// The revision budget this strategy allows.
    pub fn revision_budget(self) -> usize {
        match self {
            Strategy::OneShot => 1,
            Strategy::React { max_iterations } => max_iterations,
        }
    }

    /// Prompt style handed to the model.
    pub fn prompt_style(self) -> PromptStyle {
        match self {
            Strategy::OneShot => PromptStyle::OneShot,
            Strategy::React { .. } => PromptStyle::React,
        }
    }

    /// Label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::OneShot => "One-shot",
            Strategy::React { .. } => "ReAct",
        }
    }
}

/// The result of one fixing episode.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// Whether the final code compiles cleanly.
    pub success: bool,
    /// The final (possibly fixed) code.
    pub final_code: String,
    /// Revision rounds used (0 if the input already compiled).
    pub revisions: usize,
    /// Error categories present before fixing.
    pub initial_categories: Vec<ErrorCategory>,
    /// Error categories still present after fixing (empty on success).
    pub remaining_categories: Vec<ErrorCategory>,
    /// Full ReAct trace.
    pub trace: FixTrace,
}

/// Builder for [`RtlFixer`]; start with [`RtlFixerBuilder::new`].
pub struct RtlFixerBuilder {
    compiler: CompilerKind,
    strategy: Strategy,
    rag: bool,
    database: Option<Arc<GuidanceDatabase>>,
    retriever: Option<Box<dyn Retriever>>,
    prefixer: bool,
}

impl RtlFixerBuilder {
    /// Starts a builder with the paper's defaults (ReAct ×10, Quartus, RAG,
    /// pre-fixer on).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for RtlFixerBuilder {
    fn default() -> Self {
        RtlFixerBuilder {
            compiler: CompilerKind::Quartus,
            strategy: Strategy::React { max_iterations: 10 },
            rag: true,
            database: None,
            retriever: None,
            prefixer: true,
        }
    }
}

impl RtlFixerBuilder {
    /// Selects the compiler personality (feedback source).
    pub fn compiler(mut self, kind: CompilerKind) -> Self {
        self.compiler = kind;
        self
    }

    /// Selects the strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables retrieval-augmented guidance.
    pub fn with_rag(mut self, rag: bool) -> Self {
        self.rag = rag;
        self
    }

    /// Overrides the guidance database (default: the edition matching the
    /// compiler).
    pub fn database(mut self, database: GuidanceDatabase) -> Self {
        self.database = Some(Arc::new(database));
        self
    }

    /// Overrides the guidance database with a shared handle.
    ///
    /// Parallel evaluation builds one fixer per episode; passing the same
    /// `Arc` to every builder means all episodes read one database instead
    /// of cloning it per episode.
    pub fn shared_database(mut self, database: Arc<GuidanceDatabase>) -> Self {
        self.database = Some(database);
        self
    }

    /// Overrides the retriever (default: exact-tag with Jaccard fallback).
    pub fn retriever(mut self, retriever: Box<dyn Retriever>) -> Self {
        self.retriever = Some(retriever);
        self
    }

    /// Enables or disables the rule-based pre-fixer (§4 Setup).
    pub fn prefixer(mut self, enabled: bool) -> Self {
        self.prefixer = enabled;
        self
    }

    /// Builds the fixer around a language model.
    pub fn build<L: LanguageModel>(self, llm: L) -> RtlFixer<L> {
        // Default to the process-wide shared edition: episodes are built in
        // the thousands, and the database is read-only throughout.
        let database = self.database.unwrap_or_else(|| match self.compiler {
            CompilerKind::Quartus => GuidanceDatabase::quartus_shared(),
            _ => GuidanceDatabase::iverilog_shared(),
        });
        RtlFixer {
            compiler_kind: self.compiler,
            compiler: self.compiler.build(),
            strategy: self.strategy,
            rag: self.rag,
            database,
            retriever: self.retriever.unwrap_or_else(|| Box::new(DefaultRetriever::new())),
            prefixer: self.prefixer,
            llm,
        }
    }
}

/// The RTLFixer agent. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use rtlfixer_agent::{RtlFixerBuilder, Strategy};
/// use rtlfixer_compilers::CompilerKind;
/// use rtlfixer_llm::{Capability, SimulatedLlm};
///
/// let llm = SimulatedLlm::new(Capability::Gpt4Class, 42);
/// let mut fixer = RtlFixerBuilder::new()
///     .compiler(CompilerKind::Quartus)
///     .strategy(Strategy::React { max_iterations: 10 })
///     .build(llm);
/// let outcome = fixer.fix(
///     "module m(input [7:0] in, output reg [7:0] out);
///      always @(posedge clk) out <= in;
///      endmodule",
/// );
/// assert!(outcome.success);
/// ```
pub struct RtlFixer<L: LanguageModel> {
    compiler_kind: CompilerKind,
    compiler: Box<dyn Compiler>,
    strategy: Strategy,
    rag: bool,
    database: Arc<GuidanceDatabase>,
    retriever: Box<dyn Retriever>,
    prefixer: bool,
    llm: L,
}

impl<L: LanguageModel> RtlFixer<L> {
    /// The configured compiler personality.
    pub fn compiler_kind(&self) -> CompilerKind {
        self.compiler_kind
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Fixes `source` with an empty problem description.
    pub fn fix(&mut self, source: &str) -> FixOutcome {
        self.fix_problem("", source)
    }

    /// Runs one fixing episode over `source` for `problem`.
    pub fn fix_problem(&mut self, problem: &str, source: &str) -> FixOutcome {
        let mut code =
            if self.prefixer { prefix_fix(source) } else { source.to_owned() };
        let mut trace = FixTrace::new();
        self.llm.begin_episode();

        // Cached compile: across episodes (and pool workers) identical
        // candidate sources compile exactly once per process.
        let mut outcome = self.compiler.compile_cached(&code, "main.sv");
        trace.push(
            "Submit the implementation to the compiler to check for syntax errors.",
            Action::Compiler,
            outcome.log.clone(),
        );
        let initial_categories = outcome.error_categories();

        let mut revisions = 0usize;
        let budget = self.strategy.revision_budget();
        while !outcome.success && revisions < budget {
            // RAG stage: retrieve guidance keyed on the compiler log.
            let guidance: Vec<GuidanceSnippet> = if self.rag {
                let query = RetrievalQuery::from_log(outcome.log.clone());
                let hits = self.retriever.retrieve(&self.database, &query);
                if !hits.is_empty() {
                    let obs: Vec<String> =
                        hits.iter().map(|h| h.entry.guidance.clone()).collect();
                    trace.push(
                        "Search the expert guidance database for this error.",
                        Action::Rag { query: outcome.log.clone() },
                        obs.join("\n"),
                    );
                }
                hits.iter()
                    .map(|h| GuidanceSnippet {
                        category: h.entry.category.0,
                        text: h.entry.guidance.clone(),
                        demonstration: h.entry.demonstration.clone(),
                        // Exact-tag hits score exactly 1.0; fuzzy fallback
                        // hits score below it and are uncertain matches.
                        exact_retrieval: h.score >= 1.0,
                    })
                    .collect()
            } else {
                Vec::new()
            };

            let request = RepairRequest {
                code: code.clone(),
                problem: problem.to_owned(),
                feedback: Feedback {
                    log: outcome.log.clone(),
                    identified: outcome.identified.clone(),
                    informativeness: self.compiler.quality().informativeness,
                },
                guidance,
                style: self.strategy.prompt_style(),
                attempt: revisions,
            };
            let response = self.llm.propose_repair(&request);
            trace.push(response.thought.clone(), Action::Revise, "");
            code = response.code;
            revisions += 1;

            outcome = self.compiler.compile_cached(&code, "main.sv");
            trace.push(
                "Re-run the compilation on the revised code.",
                Action::Compiler,
                outcome.log.clone(),
            );
        }

        trace.push(
            if outcome.success {
                "The code now compiles successfully. Returning the final implementation."
            } else {
                "The revision budget is exhausted; returning the best attempt."
            },
            Action::Finish,
            "",
        );

        FixOutcome {
            success: outcome.success,
            remaining_categories: outcome.error_categories(),
            final_code: code,
            revisions,
            initial_categories,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_llm::{Capability, SimulatedLlm};

    const PHANTOM_CLK: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                               always @(posedge clk) out <= in;\nendmodule";

    fn fixer(
        compiler: CompilerKind,
        strategy: Strategy,
        rag: bool,
        capability: Capability,
        seed: u64,
    ) -> RtlFixer<SimulatedLlm> {
        RtlFixerBuilder::new()
            .compiler(compiler)
            .strategy(strategy)
            .with_rag(rag)
            .build(SimulatedLlm::new(capability, seed))
    }

    #[test]
    fn already_clean_code_finishes_immediately() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt35Class,
            1,
        );
        let outcome = f.fix("module m(input a, output y); assign y = a; endmodule");
        assert!(outcome.success);
        assert_eq!(outcome.revisions, 0);
        assert!(outcome.initial_categories.is_empty());
    }

    #[test]
    fn react_gpt4_fixes_phantom_clk() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            7,
        );
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert_eq!(
            outcome.initial_categories,
            vec![ErrorCategory::UndeclaredIdentifier]
        );
        assert!(outcome.remaining_categories.is_empty());
        assert!(outcome.trace.compiler_calls() >= 2);
    }

    #[test]
    fn one_shot_uses_single_revision() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::OneShot,
            true,
            Capability::Gpt4Class,
            11,
        );
        let outcome = f.fix(PHANTOM_CLK);
        assert!(outcome.revisions <= 1);
    }

    #[test]
    fn react_beats_one_shot_on_average() {
        // Aggregate sanity check of the loop dynamics (Table 1's main
        // qualitative claim), on a moderately hard sample.
        let sample = "module m(input [7:0] a, output reg [7:0] y);\n\
                      always @* begin\n\
                        for (int i = 0; i < 8; i++) y[i] = a[i] & mask;\n\
                      end\nendmodule";
        let runs = 40;
        let mut one_shot_wins = 0;
        let mut react_wins = 0;
        for seed in 0..runs {
            let mut os = fixer(
                CompilerKind::Iverilog,
                Strategy::OneShot,
                false,
                Capability::Gpt35Class,
                seed,
            );
            if os.fix(sample).success {
                one_shot_wins += 1;
            }
            let mut re = fixer(
                CompilerKind::Iverilog,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            if re.fix(sample).success {
                react_wins += 1;
            }
        }
        assert!(
            react_wins > one_shot_wins,
            "react {react_wins} vs one-shot {one_shot_wins}"
        );
    }

    #[test]
    fn rag_improves_quartus_fix_rate() {
        // The Table 1 RAG effect, in miniature: a hard C-style sample.
        let sample = "module m(input [7:0] a, output reg [7:0] s);\n\
                      always @* begin\ns = 0;\ns += a;\nend\nendmodule";
        let runs = 60;
        let mut with_rag = 0;
        let mut without_rag = 0;
        for seed in 0..runs {
            let mut w = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                true,
                Capability::Gpt35Class,
                seed,
            );
            if w.fix(sample).success {
                with_rag += 1;
            }
            let mut wo = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            if wo.fix(sample).success {
                without_rag += 1;
            }
        }
        assert!(with_rag > without_rag, "with {with_rag} vs without {without_rag}");
    }

    #[test]
    fn trace_contains_rag_step_when_retrieval_hits() {
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            3,
        );
        let outcome = f.fix(PHANTOM_CLK);
        let has_rag = outcome
            .trace
            .steps
            .iter()
            .any(|s| matches!(s.action, Action::Rag { .. }));
        assert!(has_rag, "trace:\n{}", outcome.trace);
    }

    #[test]
    fn markdown_wrapped_input_is_prefixed() {
        let wrapped = format!("Here you go:\n```verilog\n{PHANTOM_CLK}\n```\nEnjoy!");
        let mut f = fixer(
            CompilerKind::Quartus,
            Strategy::React { max_iterations: 10 },
            true,
            Capability::Gpt4Class,
            5,
        );
        let outcome = f.fix(&wrapped);
        assert!(outcome.success, "trace:\n{}", outcome.trace);
        assert!(outcome.final_code.starts_with("module"));
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        // The Figure 6 class: index arithmetic, nearly unsolvable.
        let sample = "module m(input [255:0] q, output [255:0] n);\n\
                      genvar i, j;\ngenerate\n\
                      for (i = 0; i < 16; i = i + 1) begin : r\n\
                      for (j = 0; j < 16; j = j + 1) begin : c\n\
                      assign n[i*16 + j] = q[(i-1)*16 + (j-1)];\n\
                      end\nend\nendgenerate\nendmodule";
        let mut failures = 0;
        for seed in 0..10 {
            let mut f = fixer(
                CompilerKind::Quartus,
                Strategy::React { max_iterations: 10 },
                false,
                Capability::Gpt35Class,
                seed,
            );
            let outcome = f.fix(sample);
            if !outcome.success {
                failures += 1;
                assert!(!outcome.remaining_categories.is_empty());
            }
        }
        assert!(failures >= 7, "index arithmetic should mostly fail: {failures}/10");
    }
}
