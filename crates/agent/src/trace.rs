//! ReAct episode traces: the Thought / Action / Observation record of one
//! debugging episode, rendered in the style of the paper's Figure 2c.

use std::fmt;

/// One ReAct action (Figure 2b's action space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `Compiler[code]` — submit the current code to the compiler.
    Compiler,
    /// `RAG[logs]` — retrieve expert guidance for a compiler log.
    Rag {
        /// The log excerpt used as the retrieval query.
        query: String,
    },
    /// Revise the code (the model's edit between compiler calls).
    Revise,
    /// A fault struck the episode (LLM transport, compiler crash, garbled
    /// log, retriever failure, open circuit breaker, …).
    Fault {
        /// The fault kind's stable slug (`timeout`, `compiler-crash`, …).
        kind: String,
    },
    /// The resilience layer retried after a fault.
    Retry,
    /// `Finish[answer]` — return the final code.
    Finish,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Compiler => write!(f, "Compiler"),
            Action::Rag { query } => {
                let excerpt: String = query.chars().take(48).collect();
                write!(f, "RAG[..{excerpt}..]")
            }
            Action::Revise => write!(f, "Revise"),
            Action::Fault { kind } => write!(f, "Fault[{kind}]"),
            Action::Retry => write!(f, "Retry"),
            Action::Finish => write!(f, "Finish"),
        }
    }
}

/// One Thought → Action → Observation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The model's reasoning for this step.
    pub thought: String,
    /// The chosen action.
    pub action: Action,
    /// The observation the action produced (compiler log, guidance, …).
    pub observation: String,
}

/// The full trace of one fixing episode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixTrace {
    /// Steps in order.
    pub steps: Vec<Step>,
}

impl FixTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, thought: impl Into<String>, action: Action, observation: impl Into<String>) {
        self.steps.push(Step {
            thought: thought.into(),
            action,
            observation: observation.into(),
        });
    }

    /// Number of compiler interactions in the trace.
    pub fn compiler_calls(&self) -> usize {
        self.steps.iter().filter(|s| s.action == Action::Compiler).count()
    }

    /// Number of code revisions in the trace.
    pub fn revisions(&self) -> usize {
        self.steps.iter().filter(|s| s.action == Action::Revise).count()
    }

    /// Number of fault steps in the trace (injected faults, retriever
    /// failures, open-breaker turns).
    pub fn fault_steps(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s.action, Action::Fault { .. })).count()
    }

    /// Number of resilience retries in the trace.
    pub fn retries(&self) -> usize {
        self.steps.iter().filter(|s| s.action == Action::Retry).count()
    }
}

impl fmt::Display for FixTrace {
    /// Renders in the Figure 2c transcript style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Question:\n{}\n", crate::prompts::REACT_QUESTION)?;
        for (i, step) in self.steps.iter().enumerate() {
            let n = i + 1;
            writeln!(f, "Thought {n}:\n{}", step.thought)?;
            writeln!(f, "Action {n}: {}", step.action)?;
            if !step.observation.is_empty() {
                writeln!(f, "Observation {n}:\n{}", step.observation)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_action_kind() {
        let mut trace = FixTrace::new();
        trace.push("compile it", Action::Compiler, "error: ...");
        trace.push("look it up", Action::Rag { query: "l-value".into() }, "use assign");
        trace.push("revise", Action::Revise, "");
        trace.push("compile again", Action::Compiler, "ok");
        trace.push("the API timed out", Action::Fault { kind: "timeout".into() }, "");
        trace.push("retrying", Action::Retry, "");
        trace.push("done", Action::Finish, "");
        assert_eq!(trace.compiler_calls(), 2);
        assert_eq!(trace.revisions(), 1);
        assert_eq!(trace.fault_steps(), 1);
        assert_eq!(trace.retries(), 1);
    }

    #[test]
    fn fault_action_renders_its_kind() {
        assert_eq!(Action::Fault { kind: "compiler-crash".into() }.to_string(), "Fault[compiler-crash]");
        assert_eq!(Action::Retry.to_string(), "Retry");
    }

    #[test]
    fn display_is_figure2c_shaped() {
        let mut trace = FixTrace::new();
        trace.push("The out signal is a wire.", Action::Compiler, "main.v:15: error: ...");
        let text = trace.to_string();
        assert!(text.starts_with("Question:"));
        assert!(text.contains("Thought 1:"));
        assert!(text.contains("Action 1: Compiler"));
        assert!(text.contains("Observation 1:"));
    }

    #[test]
    fn rag_action_truncates_query() {
        let action = Action::Rag { query: "x".repeat(200) };
        assert!(action.to_string().len() < 80);
    }
}
