//! The rule-based syntax pre-fixer.
//!
//! §4 Setup: *"A simple rule-based syntax fixer is applied to every
//! LLM-generated verilog code, which avoids simple errors such as misplaced
//! timescale derivatives."* The dataset curation (§3.4) additionally
//! extracts code from markdown blocks and strips extraneous prose — the
//! same normalisations live here so both the agent and the curation
//! pipeline share them.

/// Applies all rule-based fixes: markdown extraction, prose stripping and
/// misplaced-directive removal.
///
/// # Examples
///
/// ```
/// use rtlfixer_agent::prefixer::prefix_fix;
///
/// let raw = "Here is the code:\n```verilog\nmodule m(input a, output y);\nassign y = a;\nendmodule\n```\nHope this helps!";
/// let fixed = prefix_fix(raw);
/// assert!(fixed.starts_with("module"));
/// assert!(fixed.trim_end().ends_with("endmodule"));
/// ```
pub fn prefix_fix(source: &str) -> String {
    let code = extract_markdown(source);
    let code = strip_prose(&code);
    remove_misplaced_directives(&code)
}

/// Extracts the contents of the first fenced code block, if any.
pub fn extract_markdown(source: &str) -> String {
    let Some(open) = source.find("```") else {
        return source.to_owned();
    };
    let after_fence = &source[open + 3..];
    // Skip the info string (e.g. `verilog`) to the end of line.
    let body_start = after_fence.find('\n').map_or(0, |i| i + 1);
    let body = &after_fence[body_start..];
    match body.find("```") {
        Some(close) => body[..close].to_owned(),
        None => body.to_owned(),
    }
}

/// Drops prose lines before the first `module`/directive line and after the
/// last `endmodule`.
pub fn strip_prose(source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let code_start = lines.iter().position(|l| {
        let t = l.trim_start();
        t.starts_with("module")
            || t.starts_with('`')
            || t.starts_with("//")
            || t.starts_with("/*")
    });
    let code_end = lines
        .iter()
        .rposition(|l| l.trim_start().starts_with("endmodule"))
        .map(|i| i + 1);
    // Nothing recognisably Verilog: leave the text alone (idempotence —
    // re-slicing arbitrary prose must not keep rewriting it).
    let (Some(start), end) = (code_start, code_end.unwrap_or(lines.len())) else {
        return source.to_owned();
    };
    if start >= end {
        return source.to_owned();
    }
    let mut out = lines[start..end].join("\n");
    out.push('\n');
    out
}

/// Removes `` `timescale ``-style directives that appear after the first
/// `module` keyword (illegal position).
pub fn remove_misplaced_directives(source: &str) -> String {
    let Some(module_pos) = source.find("module") else {
        return source.to_owned();
    };
    let mut out = String::with_capacity(source.len());
    for (idx, line) in source.split_inclusive('\n').scan(0usize, |acc, line| {
        let start = *acc;
        *acc += line.len();
        Some((start, line))
    }) {
        let trimmed = line.trim_start();
        let is_directive = trimmed.starts_with("`timescale")
            || trimmed.starts_with("`default_nettype")
            || trimmed.starts_with("`include");
        if is_directive && idx > module_pos {
            continue;
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fenced_block() {
        let raw = "Sure! Here's the module:\n```verilog\nmodule m;\nendmodule\n```\n";
        assert_eq!(extract_markdown(raw), "module m;\nendmodule\n");
    }

    #[test]
    fn unfenced_passthrough() {
        assert_eq!(extract_markdown("module m;"), "module m;");
    }

    #[test]
    fn unclosed_fence_takes_rest() {
        let raw = "```verilog\nmodule m;\nendmodule";
        assert_eq!(extract_markdown(raw), "module m;\nendmodule");
    }

    #[test]
    fn strips_leading_and_trailing_prose() {
        let raw = "Certainly, see below.\nmodule m;\nendmodule\nLet me know!";
        let out = strip_prose(raw);
        assert_eq!(out, "module m;\nendmodule\n");
    }

    #[test]
    fn keeps_leading_directives() {
        let raw = "`timescale 1ns/1ps\nmodule m;\nendmodule\n";
        assert_eq!(strip_prose(raw), raw);
    }

    #[test]
    fn removes_timescale_inside_module() {
        let raw = "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule\n";
        let out = remove_misplaced_directives(raw);
        assert!(!out.contains("timescale"));
        assert!(rtlfixer_verilog::compile(&out).is_ok());
    }

    #[test]
    fn full_pipeline_produces_compilable_code() {
        let raw = "Here's my solution:\n\n```verilog\nmodule m(input a, output y);\n\
                   `timescale 1ns/1ps\nassign y = ~a;\nendmodule\n```\n\nThis inverts a.";
        let fixed = prefix_fix(raw);
        assert!(rtlfixer_verilog::compile(&fixed).is_ok(), "{fixed}");
    }

    #[test]
    fn clean_code_is_untouched_semantically() {
        let clean = "module m(input a, output y);\nassign y = a;\nendmodule\n";
        assert_eq!(prefix_fix(clean), clean);
    }
}
