//! The rule-based syntax pre-fixer.
//!
//! §4 Setup: *"A simple rule-based syntax fixer is applied to every
//! LLM-generated verilog code, which avoids simple errors such as misplaced
//! timescale derivatives."* The dataset curation (§3.4) additionally
//! extracts code from markdown blocks and strips extraneous prose — the
//! same normalisations live here so both the agent and the curation
//! pipeline share them.

/// Applies all rule-based fixes: markdown extraction, prose stripping and
/// misplaced-directive removal.
///
/// # Examples
///
/// ```
/// use rtlfixer_agent::prefixer::prefix_fix;
///
/// let raw = "Here is the code:\n```verilog\nmodule m(input a, output y);\nassign y = a;\nendmodule\n```\nHope this helps!";
/// let fixed = prefix_fix(raw);
/// assert!(fixed.starts_with("module"));
/// assert!(fixed.trim_end().ends_with("endmodule"));
/// ```
pub fn prefix_fix(source: &str) -> String {
    let code = extract_markdown(source);
    let code = strip_prose(&code);
    remove_misplaced_directives(&code)
}

/// Extracts the contents of the first fenced code block that contains a
/// `module`, if any; falls back to the first fenced block otherwise.
///
/// Real completions often lead with a fenced pseudo-code plan before the
/// actual Verilog block — taking the first block blindly would salvage the
/// plan instead of the code.
pub fn extract_markdown(source: &str) -> String {
    let blocks = fenced_blocks(source);
    let Some(first) = blocks.first() else {
        return source.to_owned();
    };
    blocks.iter().find(|b| b.contains("module")).unwrap_or(first).clone()
}

/// Bodies of every fenced code block in `source`, in order. The opening
/// fence's info string (e.g. `verilog`) is not part of the body.
fn fenced_blocks(source: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut rest = source;
    while let Some(open) = rest.find("```") {
        let after_fence = &rest[open + 3..];
        let body_start = after_fence.find('\n').map_or(0, |i| i + 1);
        let body = &after_fence[body_start..];
        match body.find("```") {
            Some(close) => {
                blocks.push(body[..close].to_owned());
                rest = &body[close + 3..];
            }
            None => {
                blocks.push(body.to_owned());
                break;
            }
        }
    }
    blocks
}

/// Drops prose lines before the first `module`/directive line and after the
/// last `endmodule`.
pub fn strip_prose(source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let code_start = lines.iter().position(|l| {
        let t = l.trim_start();
        t.starts_with("module")
            || t.starts_with('`')
            || t.starts_with("//")
            || t.starts_with("/*")
    });
    let code_end = lines
        .iter()
        .rposition(|l| l.trim_start().starts_with("endmodule"))
        .map(|i| i + 1);
    // Nothing recognisably Verilog: leave the text alone (idempotence —
    // re-slicing arbitrary prose must not keep rewriting it).
    let (Some(start), end) = (code_start, code_end.unwrap_or(lines.len())) else {
        return source.to_owned();
    };
    if start >= end {
        return source.to_owned();
    }
    let mut out = lines[start..end].join("\n");
    out.push('\n');
    out
}

/// Removes `` `timescale ``-style directives that appear after the first
/// `module` keyword (illegal position).
pub fn remove_misplaced_directives(source: &str) -> String {
    let Some(module_pos) = source.find("module") else {
        return source.to_owned();
    };
    let mut out = String::with_capacity(source.len());
    for (idx, line) in source.split_inclusive('\n').scan(0usize, |acc, line| {
        let start = *acc;
        *acc += line.len();
        Some((start, line))
    }) {
        let trimmed = line.trim_start();
        let is_directive = trimmed.starts_with("`timescale")
            || trimmed.starts_with("`default_nettype")
            || trimmed.starts_with("`include");
        if is_directive && idx > module_pos {
            continue;
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fenced_block() {
        let raw = "Sure! Here's the module:\n```verilog\nmodule m;\nendmodule\n```\n";
        assert_eq!(extract_markdown(raw), "module m;\nendmodule\n");
    }

    #[test]
    fn unfenced_passthrough() {
        assert_eq!(extract_markdown("module m;"), "module m;");
    }

    #[test]
    fn unclosed_fence_takes_rest() {
        let raw = "```verilog\nmodule m;\nendmodule";
        assert_eq!(extract_markdown(raw), "module m;\nendmodule");
    }

    #[test]
    fn prefers_block_containing_module_over_decoy() {
        let raw = "Plan first:\n```\n1. inspect\n2. patch\n```\nThen the code:\n\
                   ```verilog\nmodule m;\nendmodule\n```\n";
        assert_eq!(extract_markdown(raw), "module m;\nendmodule\n");
    }

    #[test]
    fn falls_back_to_first_block_without_module() {
        let raw = "```\nplain text\n```\nand\n```\nmore text\n```\n";
        assert_eq!(extract_markdown(raw), "plain text\n");
    }

    #[test]
    fn salvages_malformed_completion() {
        // The shape rtlfixer_faults::malform_completion produces: prose, a
        // decoy non-code fence, then the real ```verilog fence.
        let raw = rtlfixer_faults::malform_completion(
            "module m(input a, output y);\nassign y = a;\nendmodule",
        );
        let fixed = prefix_fix(&raw);
        assert!(fixed.starts_with("module"), "{fixed}");
        assert!(fixed.trim_end().ends_with("endmodule"), "{fixed}");
    }

    #[test]
    fn strips_leading_and_trailing_prose() {
        let raw = "Certainly, see below.\nmodule m;\nendmodule\nLet me know!";
        let out = strip_prose(raw);
        assert_eq!(out, "module m;\nendmodule\n");
    }

    #[test]
    fn keeps_leading_directives() {
        let raw = "`timescale 1ns/1ps\nmodule m;\nendmodule\n";
        assert_eq!(strip_prose(raw), raw);
    }

    #[test]
    fn removes_timescale_inside_module() {
        let raw = "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule\n";
        let out = remove_misplaced_directives(raw);
        assert!(!out.contains("timescale"));
        assert!(rtlfixer_verilog::compile(&out).is_ok());
    }

    #[test]
    fn full_pipeline_produces_compilable_code() {
        let raw = "Here's my solution:\n\n```verilog\nmodule m(input a, output y);\n\
                   `timescale 1ns/1ps\nassign y = ~a;\nendmodule\n```\n\nThis inverts a.";
        let fixed = prefix_fix(raw);
        assert!(rtlfixer_verilog::compile(&fixed).is_ok(), "{fixed}");
    }

    #[test]
    fn clean_code_is_untouched_semantically() {
        let clean = "module m(input a, output y);\nassign y = a;\nendmodule\n";
        assert_eq!(prefix_fix(clean), clean);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        // The pre-fixer runs on every model completion, including its own
        // output when a salvaged candidate round-trips through another
        // repair turn — one application must be a fixed point.
        #[test]
        fn idempotent_on_arbitrary_text(s in ".{0,200}") {
            let once = prefix_fix(&s);
            prop_assert_eq!(prefix_fix(&once), once);
        }

        #[test]
        fn idempotent_on_completion_shaped_text(
            s in "((Sure, here you go!|Hope this helps|1\\. patch the line)\n\
                  |```(verilog|)\n\
                  |module m\\(input a, output y\\);\n\
                  |`timescale 1ns/1ps\n\
                  |assign y = a;\n\
                  |endmodule\n){0,12}"
        ) {
            let once = prefix_fix(&s);
            prop_assert_eq!(prefix_fix(&once), once);
        }

        #[test]
        fn salvaging_malformed_completions_is_a_fixed_point(
            code in "module m;\n(assign y = [a-z];\n){0,3}endmodule\n"
        ) {
            let wrapped = rtlfixer_faults::malform_completion(&code);
            let once = prefix_fix(&wrapped);
            prop_assert!(once.starts_with("module"), "{}", once);
            prop_assert_eq!(prefix_fix(&once), once);
        }
    }
}
