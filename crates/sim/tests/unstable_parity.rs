//! Backend parity for [`SimError::Unstable`]: when combinational logic
//! oscillates, every backend — the full-sweep walker, the event kernel,
//! and the compiled tape — must name the same still-toggling nets, in the
//! same order, with the same `Display` rendering. Downstream feedback
//! (`render_sim_feedback` in rtlfixer-eval) quotes this error verbatim to
//! the repair agent, so any divergence would make agent transcripts
//! depend on which kernel happened to be enabled.

use rtlfixer_sim::{force_sim_backends, value::LogicVec, SimError, Simulator};

/// Two mutually-dependent oscillating nets plus a downstream net, so the
/// error has to agree on a multi-signal, sorted list — not just a single
/// name.
const OSC2: &str = "module osc2(input a, output y);\n\
                    wire p, q;\n\
                    assign p = ~q ^ a;\n\
                    assign q = p;\n\
                    assign y = q;\nendmodule";

fn unstable_signals(event: bool, tape: bool) -> (Vec<String>, String) {
    force_sim_backends(Some(event), Some(tape));
    let analysis = rtlfixer_verilog::compile(OSC2);
    let mut sim = Simulator::new(&analysis, "osc2").expect("design elaborates");
    sim.poke("a", LogicVec::zeros(1)).expect("port");
    let err = sim.settle().expect_err("combinational loop must not settle");
    force_sim_backends(None, None);
    let rendered = err.to_string();
    match err {
        SimError::Unstable { signals } => (signals, rendered),
        other => panic!("expected Unstable, got {other:?}"),
    }
}

#[test]
fn unstable_error_names_identical_signals_under_every_backend() {
    let (sweep, sweep_msg) = unstable_signals(false, false);
    let (event, event_msg) = unstable_signals(true, false);
    let (tape, tape_msg) = unstable_signals(true, true);
    assert!(
        sweep.iter().any(|n| n == "p") && sweep.iter().any(|n| n == "q"),
        "oscillating nets should be named: {sweep:?}"
    );
    assert_eq!(sweep, event, "event kernel names different still-toggling nets");
    assert_eq!(sweep, tape, "tape backend names different still-toggling nets");
    assert_eq!(sweep_msg, event_msg);
    assert_eq!(sweep_msg, tape_msg);
}
