//! Property tests for [`rtlfixer_sim::value::LogicVec`].
//!
//! `LogicVec` keeps widths ≤ 64 in an inline limb pair (`Repr::Small`) and
//! everything wider in boxed limb slices (`Repr::Wide`), with all operators
//! written limb-parallel. These tests pin the operators against a naive
//! bit-at-a-time reference model over `Vec<Bit>`, across widths 1–256 with
//! the 64/65 and 128/129 limb boundaries oversampled, and with x bits mixed
//! in — so a limb-masking or carry-propagation bug in either representation
//! shows up as a disagreement with the obviously-correct model. A separate
//! embedding property checks Small and Wide directly against each other:
//! zero-extending the operands into the multi-limb regime and slicing the
//! result back must not change any low bit.

use proptest::prelude::*;
use rtlfixer_sim::value::{Bit, LogicVec, ReduceOp};

// ---------------------------------------------------------------------------
// Reference model: one `Bit` per position, LSB first.
// ---------------------------------------------------------------------------

fn to_bits(v: &LogicVec) -> Vec<Bit> {
    (0..v.width()).map(|i| v.bit(i)).collect()
}

fn lv(bits: &[Bit]) -> LogicVec {
    LogicVec::from_bits(bits.iter().copied())
}

fn has_x(bits: &[Bit]) -> bool {
    bits.contains(&Bit::X)
}

/// Zero-extends (or truncates) to `w` bits.
fn ext(bits: &[Bit], w: usize) -> Vec<Bit> {
    let mut out: Vec<Bit> = bits.iter().copied().take(w).collect();
    out.resize(w, Bit::Zero);
    out
}

fn bit_and(a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
        (Bit::X, _) | (_, Bit::X) => Bit::X,
        _ => Bit::One,
    }
}

fn bit_or(a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::One, _) | (_, Bit::One) => Bit::One,
        (Bit::X, _) | (_, Bit::X) => Bit::X,
        _ => Bit::Zero,
    }
}

fn bit_xor(a: Bit, b: Bit) -> Bit {
    match (a, b) {
        (Bit::X, _) | (_, Bit::X) => Bit::X,
        _ if a != b => Bit::One,
        _ => Bit::Zero,
    }
}

fn bit_not(a: Bit) -> Bit {
    match a {
        Bit::Zero => Bit::One,
        Bit::One => Bit::Zero,
        Bit::X => Bit::X,
    }
}

fn ref_bitwise(a: &[Bit], b: &[Bit], f: fn(Bit, Bit) -> Bit) -> Vec<Bit> {
    let w = a.len().max(b.len());
    let (a, b) = (ext(a, w), ext(b, w));
    (0..w).map(|i| f(a[i], b[i])).collect()
}

/// Ripple adder over zero-extended operands; `carry` seeds the LSB and
/// `invert_b` turns it into two's-complement subtraction.
fn ref_addsub(a: &[Bit], b: &[Bit], invert_b: bool, mut carry: bool) -> Vec<Bit> {
    let w = a.len().max(b.len());
    if has_x(a) || has_x(b) {
        return vec![Bit::X; w];
    }
    let (a, b) = (ext(a, w), ext(b, w));
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        let ai = a[i] == Bit::One;
        let bi = (b[i] == Bit::One) ^ invert_b;
        let sum = ai ^ bi ^ carry;
        carry = (ai && bi) || (carry && (ai ^ bi));
        out.push(if sum { Bit::One } else { Bit::Zero });
    }
    out
}

fn ref_lt(a: &[Bit], b: &[Bit]) -> Vec<Bit> {
    if has_x(a) || has_x(b) {
        return vec![Bit::X];
    }
    let w = a.len().max(b.len());
    let (a, b) = (ext(a, w), ext(b, w));
    for i in (0..w).rev() {
        if a[i] != b[i] {
            return vec![if a[i] == Bit::Zero { Bit::One } else { Bit::Zero }];
        }
    }
    vec![Bit::Zero]
}

fn ref_eq_case(a: &[Bit], b: &[Bit]) -> Vec<Bit> {
    let w = a.len().max(b.len());
    let eq = ext(a, w) == ext(b, w);
    vec![if eq { Bit::One } else { Bit::Zero }]
}

fn ref_reduce(a: &[Bit], op: ReduceOp) -> Vec<Bit> {
    let bit = match op {
        ReduceOp::And => {
            if a.contains(&Bit::Zero) {
                Bit::Zero
            } else if has_x(a) {
                Bit::X
            } else {
                Bit::One
            }
        }
        ReduceOp::Or => {
            if a.contains(&Bit::One) {
                Bit::One
            } else if has_x(a) {
                Bit::X
            } else {
                Bit::Zero
            }
        }
        ReduceOp::Xor => {
            if has_x(a) {
                Bit::X
            } else if a.iter().filter(|&&b| b == Bit::One).count() % 2 == 1 {
                Bit::One
            } else {
                Bit::Zero
            }
        }
    };
    vec![bit]
}

fn ref_shl(a: &[Bit], n: usize) -> Vec<Bit> {
    (0..a.len()).map(|i| if i >= n { a[i - n] } else { Bit::Zero }).collect()
}

fn ref_shr(a: &[Bit], n: usize) -> Vec<Bit> {
    (0..a.len()).map(|i| a.get(i + n).copied().unwrap_or(Bit::Zero)).collect()
}

fn ref_ashr(a: &[Bit], n: usize) -> Vec<Bit> {
    let msb = *a.last().unwrap();
    (0..a.len()).map(|i| a.get(i + n).copied().unwrap_or(msb)).collect()
}

/// Bits `[hi:lo]`; positions past the source width read as x.
fn ref_slice(a: &[Bit], hi: usize, lo: usize) -> Vec<Bit> {
    (lo..=hi).map(|i| a.get(i).copied().unwrap_or(Bit::X)).collect()
}

fn ref_resize_signed(a: &[Bit], w: usize) -> Vec<Bit> {
    let mut out: Vec<Bit> = a.iter().copied().take(w).collect();
    out.resize(w, *a.last().unwrap());
    out
}

fn ref_truthy(a: &[Bit]) -> Option<bool> {
    if a.contains(&Bit::One) {
        Some(true)
    } else if has_x(a) {
        None
    } else {
        Some(false)
    }
}

fn ref_matches_wildcard(a: &[Bit], label: &[Bit], scrutinee_wild: bool) -> bool {
    let w = a.len().max(label.len());
    let (a, label) = (ext(a, w), ext(label, w));
    (0..w).all(|i| {
        label[i] == Bit::X || (scrutinee_wild && a[i] == Bit::X) || a[i] == label[i]
    })
}

// ---------------------------------------------------------------------------
// Generation: the vendored proptest shim samples integers, so vectors are
// derived from a (width-selector, seed) pair. Widths oversample the limb
// boundaries (64/65, 128/129) where Small↔Wide and single↔multi-limb
// transitions live; bits expand from the seed via splitmix64.
// ---------------------------------------------------------------------------

/// Maps a sampled selector to a width, hitting each limb-boundary edge
/// width half the time and a uniform width in 1–256 otherwise.
fn pick_width(sel: usize, uniform: usize) -> usize {
    const EDGES: [usize; 10] = [1, 2, 63, 64, 65, 127, 128, 129, 255, 256];
    if sel < EDGES.len() {
        EDGES[sel]
    } else {
        uniform
    }
}

/// splitmix64 stream over `seed` — cheap, deterministic per-bit draws.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `width` bits from `seed`: 0 and 1 equally likely, x at 1-in-9 density
/// (or never, for the arithmetic paths that need fully-known operands).
fn gen_bits(width: usize, seed: u64, with_x: bool) -> Vec<Bit> {
    let mut mix = Mix(seed);
    (0..width)
        .map(|_| match mix.next() % 9 {
            0 if with_x => Bit::X,
            r if r % 2 == 1 => Bit::One,
            _ => Bit::Zero,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `from_bits` → `bit` must round-trip; equal bit patterns must compare
    /// equal regardless of construction path (the canonical-repr invariant
    /// behind the derived `PartialEq`/`Hash`).
    #[test]
    fn bit_round_trip(wsel in 0usize..20, wu in 1usize..=256, seed: u64) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        let v = lv(&a);
        prop_assert_eq!(v.width() as usize, a.len());
        prop_assert_eq!(to_bits(&v), a.clone());
        prop_assert_eq!(v.has_x(), has_x(&a));
        let mut rebuilt = LogicVec::xs(a.len() as u32);
        for (i, &b) in a.iter().enumerate() {
            rebuilt.set_bit(i as u32, b);
        }
        prop_assert_eq!(rebuilt, v);
    }

    #[test]
    fn bitwise_ops_agree(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, true);
        let b = gen_bits(pick_width(wb, ub), sb, true);
        let (va, vb) = (lv(&a), lv(&b));
        prop_assert_eq!(va.and(&vb), lv(&ref_bitwise(&a, &b, bit_and)));
        prop_assert_eq!(va.or(&vb), lv(&ref_bitwise(&a, &b, bit_or)));
        prop_assert_eq!(va.xor(&vb), lv(&ref_bitwise(&a, &b, bit_xor)));
        let not: Vec<Bit> = a.iter().map(|&x| bit_not(x)).collect();
        prop_assert_eq!(va.not(), lv(&not));
    }

    #[test]
    fn arithmetic_agrees(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, false);
        let b = gen_bits(pick_width(wb, ub), sb, false);
        let (va, vb) = (lv(&a), lv(&b));
        prop_assert_eq!(va.add(&vb), lv(&ref_addsub(&a, &b, false, false)));
        prop_assert_eq!(va.sub(&vb), lv(&ref_addsub(&a, &b, true, true)));
        let zero = vec![Bit::Zero; a.len()];
        prop_assert_eq!(va.neg(), lv(&ref_addsub(&zero, &a, true, true)));
    }

    /// Any x operand poisons arithmetic to all-x at the wider width.
    #[test]
    fn arithmetic_x_poisons(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, true);
        let b = gen_bits(pick_width(wb, ub), sb, true);
        let (va, vb) = (lv(&a), lv(&b));
        prop_assert_eq!(va.add(&vb), lv(&ref_addsub(&a, &b, false, false)));
        prop_assert_eq!(va.sub(&vb), lv(&ref_addsub(&a, &b, true, true)));
    }

    #[test]
    fn comparisons_agree(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
        known in 0usize..2,
    ) {
        // Half the cases use fully-known operands so the non-poisoned
        // compare paths (limb scans) actually run.
        let a = gen_bits(pick_width(wa, ua), sa, known == 0);
        let b = gen_bits(pick_width(wb, ub), sb, known == 0);
        let (va, vb) = (lv(&a), lv(&b));
        prop_assert_eq!(va.lt(&vb), lv(&ref_lt(&a, &b)));
        prop_assert_eq!(va.eq_case(&vb), lv(&ref_eq_case(&a, &b)));
        let eq_logic = if has_x(&a) || has_x(&b) { vec![Bit::X] } else { ref_eq_case(&a, &b) };
        prop_assert_eq!(va.eq_logic(&vb), lv(&eq_logic));
    }

    #[test]
    fn reductions_agree(wsel in 0usize..20, wu in 1usize..=256, seed: u64) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        let v = lv(&a);
        for op in [ReduceOp::And, ReduceOp::Or, ReduceOp::Xor] {
            prop_assert_eq!(v.reduce(op), lv(&ref_reduce(&a, op)), "op {:?}", op);
        }
    }

    #[test]
    fn shifts_agree(wsel in 0usize..20, wu in 1usize..=256, seed: u64, n in 0usize..300) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        let v = lv(&a);
        prop_assert_eq!(v.shl(n as u32), lv(&ref_shl(&a, n)));
        prop_assert_eq!(v.shr(n as u32), lv(&ref_shr(&a, n)));
        prop_assert_eq!(v.ashr(n as u32), lv(&ref_ashr(&a, n)));
    }

    #[test]
    fn slices_agree(
        wsel in 0usize..20, wu in 1usize..=256, seed: u64,
        lo in 0usize..300, len in 0usize..=80,
    ) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        let hi = lo + len;
        prop_assert_eq!(lv(&a).slice(hi as u32, lo as u32), lv(&ref_slice(&a, hi, lo)));
    }

    #[test]
    fn concat_and_replicate_agree(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
        count in 1u32..=4,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, true);
        let b = gen_bits(pick_width(wb, ub), sb, true);
        let (va, vb) = (lv(&a), lv(&b));
        // `a.concat(&b)`: a is the more significant operand.
        let mut joined = b.clone();
        joined.extend_from_slice(&a);
        prop_assert_eq!(va.concat(&vb), lv(&joined));
        let mut repeated = Vec::new();
        for _ in 0..count {
            repeated.extend_from_slice(&a);
        }
        prop_assert_eq!(va.replicate(count), lv(&repeated));
    }

    #[test]
    fn resizes_agree(wsel in 0usize..20, wu in 1usize..=256, seed: u64, w in 1usize..=300) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        let v = lv(&a);
        prop_assert_eq!(v.resize(w as u32), lv(&ext(&a, w)));
        prop_assert_eq!(v.resize_signed(w as u32), lv(&ref_resize_signed(&a, w)));
    }

    #[test]
    fn truthiness_agrees(wsel in 0usize..20, wu in 1usize..=256, seed: u64) {
        let a = gen_bits(pick_width(wsel, wu), seed, true);
        prop_assert_eq!(lv(&a).truthy(), ref_truthy(&a));
    }

    #[test]
    fn wildcard_matching_agrees(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, true);
        let label = gen_bits(pick_width(wb, ub), sb, true);
        let (va, vl) = (lv(&a), lv(&label));
        prop_assert_eq!(
            va.matches_wildcard(&vl, false),
            ref_matches_wildcard(&a, &label, false)
        );
        prop_assert_eq!(
            va.matches_wildcard(&vl, true),
            ref_matches_wildcard(&a, &label, true)
        );
    }

    /// Small↔Wide cross-check without the reference model: zero-extending
    /// both operands deep into the multi-limb regime and slicing the result
    /// back must leave every low bit unchanged, for every width-preserving
    /// op whose low bits are independent of zero high bits.
    #[test]
    fn wide_embedding_preserves_low_bits(
        wa in 0usize..20, ua in 1usize..=256, sa: u64,
        wb in 0usize..20, ub in 1usize..=256, sb: u64,
        n in 0usize..300,
    ) {
        let a = gen_bits(pick_width(wa, ua), sa, true);
        let b = gen_bits(pick_width(wb, ub), sb, true);
        let (va, vb) = (lv(&a), lv(&b));
        let w = va.width().max(vb.width());
        let (wa, wb) = (va.resize(w + 192), vb.resize(w + 192));
        let low = |v: &LogicVec| v.slice(w - 1, 0);
        prop_assert_eq!(low(&wa.and(&wb)), low(&va.and(&vb)));
        prop_assert_eq!(low(&wa.or(&wb)), low(&va.or(&vb)));
        prop_assert_eq!(low(&wa.xor(&wb)), low(&va.xor(&vb)));
        prop_assert_eq!(low(&wa.add(&wb)), low(&va.add(&vb)));
        prop_assert_eq!(low(&wa.sub(&wb)), low(&va.sub(&vb)));
        if va.width() == w {
            let lown = |v: &LogicVec| v.slice(va.width() - 1, 0);
            prop_assert_eq!(lown(&wa.shl(n as u32)), lown(&va.shl(n as u32)));
            prop_assert_eq!(lown(&wa.shr(n as u32)), lown(&va.shr(n as u32)));
        }
    }
}
