//! Simulator regression tests: semantics corners that have bitten real
//! Verilog simulators (and this one, during development).

use rtlfixer_sim::{value::LogicVec, Simulator};
use rtlfixer_verilog::compile;

fn sim(src: &str, top: &str) -> Simulator {
    let analysis = compile(src);
    assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
    Simulator::new(&analysis, top).expect("elaborates")
}

fn v(width: u32, value: u64) -> LogicVec {
    LogicVec::from_u64(width, value)
}

#[test]
fn blocking_assignments_in_sequential_block_are_ordered() {
    // With blocking assignments, `b` sees the *new* value of `a`.
    let mut s = sim(
        "module m(input clk, input [7:0] d, output reg [7:0] a, output reg [7:0] b);\n\
         always @(posedge clk) begin\n  a = d;\n  b = a + 1;\nend\nendmodule",
        "m",
    );
    s.poke("d", v(8, 10)).unwrap();
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("a").unwrap().to_u64(), Some(10));
    assert_eq!(s.peek("b").unwrap().to_u64(), Some(11));
}

#[test]
fn nonblocking_assignments_read_old_values() {
    // With non-blocking assignments, `b` sees the *old* value of `a`.
    let mut s = sim(
        "module m(input clk, input [7:0] d, output reg [7:0] a, output reg [7:0] b);\n\
         always @(posedge clk) begin\n  a <= d;\n  b <= a + 1;\nend\nendmodule",
        "m",
    );
    s.poke("d", v(8, 10)).unwrap();
    s.clock_cycle("clk").unwrap(); // a: 0->10, b: 0+1
    assert_eq!(s.peek("a").unwrap().to_u64(), Some(10));
    assert_eq!(s.peek("b").unwrap().to_u64(), Some(1));
    s.clock_cycle("clk").unwrap(); // b now sees a==10
    assert_eq!(s.peek("b").unwrap().to_u64(), Some(11));
}

#[test]
fn carry_out_through_concat_assignment() {
    // The context-width rule: {cout, sum} = a + b must keep the carry.
    let mut s = sim(
        "module m(input [7:0] a, input [7:0] b, output [7:0] sum, output cout);\n\
         assign {cout, sum} = a + b;\nendmodule",
        "m",
    );
    s.poke("a", v(8, 200)).unwrap();
    s.poke("b", v(8, 100)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("sum").unwrap().to_u64(), Some(300 % 256));
    assert_eq!(s.peek("cout").unwrap().to_u64(), Some(1));
}

#[test]
fn literal_divisor_keeps_its_32_bit_width() {
    // `(last + k) % 4` assigned to a 2-bit target: the literal 4 must not
    // be truncated to 2 bits (which would divide by zero).
    let mut s = sim(
        "module m(input [1:0] last, input [31:0] k, output [1:0] pick);\n\
         assign pick = (last + k) % 4;\nendmodule",
        "m",
    );
    s.poke("last", v(2, 3)).unwrap();
    s.poke("k", v(32, 1)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("pick").unwrap().to_u64(), Some(0));
}

#[test]
fn x_propagates_through_arithmetic_but_not_gated_and() {
    let mut s = sim(
        "module m(input [3:0] a, output [3:0] add_out, output [3:0] and_out);\n\
         wire [3:0] xv;\n\
         assign xv = 4'bxxxx;\n\
         assign add_out = a + xv;\n\
         assign and_out = 4'b0000 & xv;\nendmodule",
        "m",
    );
    s.poke("a", v(4, 5)).unwrap();
    s.settle().unwrap();
    assert!(s.peek("add_out").unwrap().has_x(), "x must poison addition");
    assert_eq!(s.peek("and_out").unwrap().to_u64(), Some(0), "0 & x = 0");
}

#[test]
fn two_level_hierarchy_with_parameters() {
    let mut s = sim(
        "module leaf #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);\n\
         assign y = ~a;\nendmodule\n\
         module mid #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);\n\
         leaf #(.W(W)) l(.a(a), .y(y));\nendmodule\n\
         module top(input [7:0] p, output [7:0] q);\n\
         mid #(.W(8)) m(.a(p), .y(q));\nendmodule",
        "top",
    );
    s.poke("p", v(8, 0x0F)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0xF0));
}

#[test]
fn memory_word_written_then_read_same_cycle_is_old_value() {
    // Synchronous write, asynchronous read: during the write cycle, the
    // read port sees the committed (new) value only after the edge.
    let mut s = sim(
        "module m(input clk, input we, input [1:0] addr, input [7:0] din, output [7:0] dout);\n\
         reg [7:0] mem [0:3];\n\
         always @(posedge clk) if (we) mem[addr] <= din;\n\
         assign dout = mem[addr];\nendmodule",
        "m",
    );
    s.poke("we", v(1, 1)).unwrap();
    s.poke("addr", v(2, 1)).unwrap();
    s.poke("din", v(8, 0xAB)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0), "before the edge");
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0xAB), "after the edge");
}

#[test]
fn shift_amount_wider_than_width() {
    let mut s = sim(
        "module m(input [7:0] a, input [7:0] n, output [7:0] y);\n\
         assign y = a << n;\nendmodule",
        "m",
    );
    s.poke("a", v(8, 0xFF)).unwrap();
    s.poke("n", v(8, 200)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), Some(0));
}

#[test]
fn casez_default_fires_when_nothing_matches() {
    let mut s = sim(
        "module m(input [3:0] r, output reg [1:0] y);\n\
         always @* begin\n\
           casez (r)\n\
             4'b1zzz: y = 2'd3;\n\
             default: y = 2'd0;\n\
           endcase\nend\nendmodule",
        "m",
    );
    s.poke("r", v(4, 0b0111)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), Some(0));
    s.poke("r", v(4, 0b1000)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), Some(3));
}

#[test]
fn for_loop_over_part_selects() {
    // Sliding window sum of 2-bit fields.
    let mut s = sim(
        "module m(input [7:0] a, output reg [3:0] total);\n\
         integer i;\n\
         always @* begin\n\
           total = 0;\n\
           for (i = 0; i < 4; i = i + 1) total = total + a[i*2 +: 2];\n\
         end\nendmodule",
        "m",
    );
    s.poke("a", v(8, 0b11_10_01_00)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("total").unwrap().to_u64(), Some(6));
}

#[test]
fn function_has_no_side_effects_on_module_state() {
    let mut s = sim(
        "module m(input [7:0] a, output [7:0] y, output [7:0] counter);\n\
         reg [7:0] calls;\n\
         function [7:0] double;\n\
           input [7:0] v;\n\
           begin\n\
             calls = calls + 1;\n\
             double = v * 2;\n\
           end\n\
         endfunction\n\
         assign y = double(a);\n\
         assign counter = calls;\nendmodule",
        "m",
    );
    s.poke("a", v(8, 21)).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y").unwrap().to_u64(), Some(42));
    // The function executed against a shadow state: `calls` stays 0.
    assert_eq!(s.peek("counter").unwrap().to_u64(), Some(0));
}

#[test]
fn initial_block_runs_once_before_cycles() {
    let mut s = sim(
        "module m(input clk, output reg [7:0] q);\n\
         initial q = 8'h7F;\n\
         always @(posedge clk) q <= q + 1;\nendmodule",
        "m",
    );
    s.run_initial().unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0x7F));
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0x80));
}

#[test]
fn conway_full_design_simulates_a_blinker() {
    let problem = rtlfixer_dataset_stub::conway_source();
    let analysis = compile(&problem);
    assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
    let mut s = Simulator::new(&analysis, "top_module").expect("elaborates");
    // Horizontal blinker at row 8, cols 7..9.
    let mut grid = LogicVec::zeros(256);
    for j in 7..10u32 {
        grid = grid.with_bit(8 * 16 + j, rtlfixer_sim::value::Bit::One);
    }
    s.poke("load", v(1, 1)).unwrap();
    s.poke("data", grid.clone()).unwrap();
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q").unwrap(), grid);
    s.poke("load", v(1, 0)).unwrap();
    s.clock_cycle("clk").unwrap();
    let vertical = s.peek("q").unwrap();
    for i in 7..10u32 {
        assert_eq!(vertical.bit(i * 16 + 8), rtlfixer_sim::value::Bit::One, "row {i}");
    }
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q").unwrap(), grid, "period-2 oscillator");
}

/// Inline copy of the conwaylife solution so this crate's tests stay free of
/// a dataset dependency cycle.
mod rtlfixer_dataset_stub {
    pub fn conway_source() -> String {
        "module top_module(input clk, input load, input [255:0] data, output reg [255:0] q);\n\
         wire [255:0] next;\ngenvar i, j;\ngenerate\n\
         for (i = 0; i < 16; i = i + 1) begin : row\n\
           for (j = 0; j < 16; j = j + 1) begin : col\n\
             wire [3:0] count;\n\
             assign count = q[((i+15)%16)*16 + ((j+15)%16)] + q[((i+15)%16)*16 + j]\n\
                          + q[((i+15)%16)*16 + ((j+1)%16)]  + q[i*16 + ((j+15)%16)]\n\
                          + q[i*16 + ((j+1)%16)]            + q[((i+1)%16)*16 + ((j+15)%16)]\n\
                          + q[((i+1)%16)*16 + j]            + q[((i+1)%16)*16 + ((j+1)%16)];\n\
             assign next[i*16 + j] = (count == 3) | ((count == 2) & q[i*16 + j]);\n\
           end\n\
         end\nendgenerate\n\
         always @(posedge clk) begin\n  if (load) q <= data; else q <= next;\nend\nendmodule"
            .to_owned()
    }
}

#[test]
fn memory_word_bit_select_write() {
    // `mem[addr][3:0] <= x` — the WordBits target path.
    let mut s = sim(
        "module m(input clk, input [1:0] addr, input [3:0] nib, output [7:0] q0);\n\
         reg [7:0] mem [0:3];\n\
         always @(posedge clk) mem[addr][3:0] <= nib;\n\
         assign q0 = mem[0];\nendmodule",
        "m",
    );
    s.poke("addr", v(2, 0)).unwrap();
    s.poke("nib", v(4, 0xA)).unwrap();
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q0").unwrap().to_u64(), Some(0x0A));
}

#[test]
fn part_select_write_preserves_other_bits() {
    let mut s = sim(
        "module m(input clk, input [3:0] hi, output reg [7:0] q);\n\
         always @(posedge clk) q[7:4] <= hi;\nendmodule",
        "m",
    );
    s.poke("hi", v(4, 0xF)).unwrap();
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0xF0));
    s.poke("hi", v(4, 0x3)).unwrap();
    s.clock_cycle("clk").unwrap();
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0x30), "low nibble untouched");
}

#[test]
fn dynamic_bit_write_indexed_by_signal() {
    let mut s = sim(
        "module m(input clk, input [2:0] idx, output reg [7:0] q);\n\
         always @(posedge clk) q[idx] <= 1'b1;\nendmodule",
        "m",
    );
    for bit in [1u64, 4, 6] {
        s.poke("idx", v(3, bit)).unwrap();
        s.clock_cycle("clk").unwrap();
    }
    assert_eq!(s.peek("q").unwrap().to_u64(), Some(0b0101_0010));
}

#[test]
fn ascending_range_declaration_bit_order() {
    // `input [0:7] a` — bit 0 is the MSB.
    let mut s = sim(
        "module m(input [0:7] a, output y0, output y7);\n\
         assign y0 = a[0];\nassign y7 = a[7];\nendmodule",
        "m",
    );
    // Poke with raw LogicVec: offset 7 is declared index 0 (MSB side).
    let mut value = LogicVec::zeros(8);
    value.set_bit(7, rtlfixer_sim::value::Bit::One);
    s.poke("a", value).unwrap();
    s.settle().unwrap();
    assert_eq!(s.peek("y0").unwrap().to_u64(), Some(1));
    assert_eq!(s.peek("y7").unwrap().to_u64(), Some(0));
}

#[test]
fn negedge_process_triggers_on_falling_edge_only() {
    let mut s = sim(
        "module m(input clk, output reg [3:0] count);\n\
         always @(negedge clk) count <= count + 1;\nendmodule",
        "m",
    );
    // clock_cycle raises then lowers clk: one negedge per cycle.
    for _ in 0..3 {
        s.clock_cycle("clk").unwrap();
    }
    assert_eq!(s.peek("count").unwrap().to_u64(), Some(3));
}

#[test]
fn vcd_export_of_full_run() {
    use rtlfixer_sim::vcd::VcdRecorder;
    let mut s = sim(
        "module ctr(input clk, input reset, output reg [3:0] q);\n\
         always @(posedge clk) begin\nif (reset) q <= 0; else q <= q + 1;\nend\nendmodule",
        "ctr",
    );
    let mut recorder = VcdRecorder::for_ports("ctr", &s);
    s.poke("reset", v(1, 1)).unwrap();
    s.clock_cycle("clk").unwrap();
    recorder.sample(&s);
    s.poke("reset", v(1, 0)).unwrap();
    for _ in 0..6 {
        s.clock_cycle("clk").unwrap();
        recorder.sample(&s);
    }
    let vcd = recorder.render();
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.lines().filter(|l| l.starts_with('#')).count() >= 6);
}
