//! Property tests for the compiled tape backend's two-state fast path.
//!
//! The fast path executes a process over a `u64` register file only while
//! its input cone is x/z-free, falling back to the four-state ops the
//! moment an unknown enters. These properties drive the same random
//! stimulus — with random x masks injected over a window of mid-run
//! cycles — through a tree-kernel simulator and a tape simulator, and
//! require bit-identical observable state at every cycle. The runtime
//! counters additionally pin that the x window actually forced four-state
//! fallbacks and that the x-free cycles actually ran the fast path, so
//! the property can't pass vacuously with either path disabled.

use std::sync::Mutex;

use proptest::prelude::*;
use rtlfixer_sim::{
    force_sim_backends,
    value::{Bit, LogicVec},
    Simulator,
};

/// `force_sim_backends` is process-global; property runs must not overlap.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Combinational CRC step: a statically-unrolled 8-trip loop with dynamic
/// bit selects — the tape backend's heaviest fast-path codepath.
const CRC16: &str = "module crc16(input [7:0] d, input [15:0] crc_in,\n\
                     output reg [15:0] crc_out);\n\
                     integer i;\n\
                     reg [15:0] c;\n\
                     always @* begin\n\
                       c = crc_in;\n\
                       for (i = 0; i < 8; i = i + 1) begin\n\
                         if (c[15] ^ d[7 - i])\n\
                           c = {c[14:0], 1'b0} ^ 16'h1021;\n\
                         else\n\
                           c = {c[14:0], 1'b0};\n\
                       end\n\
                       crc_out = c;\n\
                     end\nendmodule";

/// Sequential ALU: case dispatch plus non-blocking writes, exercising the
/// fast path's deferred-assignment buffering under edges.
const ALU: &str = "module alu(input clk, input [7:0] a, input [7:0] b,\n\
                   input [2:0] op, output reg [15:0] y);\n\
                   always @(posedge clk) begin\n\
                     case (op)\n\
                       3'd0: y <= a + b;\n\
                       3'd1: y <= a - b;\n\
                       3'd2: y <= a & b;\n\
                       3'd3: y <= a | b;\n\
                       3'd4: y <= a ^ b;\n\
                       3'd5: y <= a * b;\n\
                       3'd6: y <= a << b[2:0];\n\
                       default: y <= (a < b) ? {8'h00, a} : {8'h00, b};\n\
                     endcase\n\
                   end\nendmodule";

fn rnd(state: &mut u64) -> u64 {
    // xorshift64*: deterministic per-case stimulus without pulling rand in.
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A `width`-bit vector holding `value`, with x at every `xmask` position.
fn vec_with_x(width: u32, value: u64, xmask: u64) -> LogicVec {
    LogicVec::from_bits((0..width).map(|i| {
        if xmask >> i & 1 == 1 {
            Bit::X
        } else if value >> i & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }))
}

/// One cycle of stimulus: `(name, width, value, xmask)` pokes. The x mask
/// is non-zero only inside the injection window.
type Poke = (&'static str, u32, u64, u64);

fn crc_stimulus(seed: u64, xwin: (usize, usize), xbits: u64) -> Vec<Vec<Poke>> {
    let mut s = seed | 1;
    (0..40)
        .map(|cycle| {
            let in_window = cycle >= xwin.0 && cycle < xwin.1;
            let dm = if in_window { xbits & 0xFF } else { 0 };
            let cm = if in_window { (xbits >> 8) & 0xFFFF } else { 0 };
            vec![
                ("d", 8, rnd(&mut s) & 0xFF, dm),
                ("crc_in", 16, rnd(&mut s) & 0xFFFF, cm),
            ]
        })
        .collect()
}

fn alu_stimulus(seed: u64, xwin: (usize, usize), xbits: u64) -> Vec<Vec<Poke>> {
    let mut s = seed | 1;
    (0..40)
        .map(|cycle| {
            let in_window = cycle >= xwin.0 && cycle < xwin.1;
            let am = if in_window { xbits & 0xFF } else { 0 };
            let bm = if in_window { (xbits >> 8) & 0xFF } else { 0 };
            vec![
                ("a", 8, rnd(&mut s) & 0xFF, am),
                ("b", 8, rnd(&mut s) & 0xFF, bm),
                ("op", 3, rnd(&mut s) & 0x7, 0),
            ]
        })
        .collect()
}

/// Runs `stimulus` on a fresh simulator under the given backend and
/// returns the per-cycle values of `watch`, plus the fast-path runtime
/// counters `(hits, fallbacks)`.
fn run(
    source: &str,
    module: &str,
    clock: Option<&str>,
    watch: &[&str],
    stimulus: &[Vec<Poke>],
    tape: bool,
) -> (Vec<LogicVec>, (u64, u64)) {
    force_sim_backends(None, Some(tape));
    let analysis = rtlfixer_verilog::compile(source);
    let mut sim = Simulator::new(&analysis, module).expect("design elaborates");
    let mut transcript = Vec::new();
    for pokes in stimulus {
        for (name, width, value, xmask) in pokes {
            sim.poke(name, vec_with_x(*width, *value, *xmask)).expect("port");
        }
        match clock {
            Some(clk) => sim.clock_cycle(clk).expect("cycle"),
            None => sim.settle().expect("settles"),
        }
        for name in watch {
            transcript.push(sim.peek(name).expect("signal").clone());
        }
    }
    let counters = sim.tape_runtime();
    force_sim_backends(None, None);
    (transcript, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mid-run x injection on the combinational CRC: the tape backend must
    /// fall back to four-state ops inside the window, resume the fast path
    /// after it, and stay bit-identical to the tree kernel throughout —
    /// including the internal loop-carried `c` and the loop index `i`.
    #[test]
    fn crc_x_window_is_bit_identical_and_falls_back(
        seed: u64,
        start in 5usize..15,
        len in 1usize..10,
        xsel: u64,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap();
        // At least one x bit lands in `d` or `crc_in`.
        let xbits = xsel | 1;
        let stimulus = crc_stimulus(seed, (start, start + len), xbits);
        let watch = ["crc_out", "c", "i"];
        let (tree, _) = run(CRC16, "crc16", None, &watch, &stimulus, false);
        let (tape, (hits, falls)) = run(CRC16, "crc16", None, &watch, &stimulus, true);
        prop_assert_eq!(tree, tape);
        prop_assert!(falls > 0, "x window never forced a four-state fallback");
        prop_assert!(hits > 0, "x-free cycles never ran the fast path");
    }

    /// Same property over the sequential ALU (non-blocking writes under a
    /// clock edge).
    #[test]
    fn alu_x_window_is_bit_identical_and_falls_back(
        seed: u64,
        start in 5usize..15,
        len in 1usize..10,
        xsel: u64,
    ) {
        let _guard = BACKEND_LOCK.lock().unwrap();
        let xbits = xsel | 1;
        let stimulus = alu_stimulus(seed, (start, start + len), xbits);
        let (tree, _) = run(ALU, "alu", Some("clk"), &["y"], &stimulus, false);
        let (tape, (hits, falls)) = run(ALU, "alu", Some("clk"), &["y"], &stimulus, true);
        prop_assert_eq!(tree, tape);
        prop_assert!(falls > 0, "x window never forced a four-state fallback");
        prop_assert!(hits > 0, "x-free cycles never ran the fast path");
    }

    /// Fully x-free stimulus: the fast path must carry every cycle with no
    /// fallbacks at all, still bit-identical to the tree kernel.
    #[test]
    fn x_free_runs_stay_on_the_fast_path(seed: u64) {
        let _guard = BACKEND_LOCK.lock().unwrap();
        let stimulus = crc_stimulus(seed, (0, 0), 0);
        let watch = ["crc_out", "c", "i"];
        let (tree, _) = run(CRC16, "crc16", None, &watch, &stimulus, false);
        let (tape, (hits, falls)) = run(CRC16, "crc16", None, &watch, &stimulus, true);
        prop_assert_eq!(tree, tape);
        prop_assert_eq!(falls, 0, "x-free run fell back to four-state ops");
        prop_assert!(hits > 0, "x-free run never ran the fast path");
    }
}
