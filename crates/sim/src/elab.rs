//! Elaboration: flattening an analyzed design into a [`Design`] — a set of
//! signals plus combinational, sequential and initial processes that the
//! interpreter executes.
//!
//! Instances are flattened with hierarchical name prefixes (`u1.q`), and
//! generate-for loops are unrolled at elaboration time with the genvar bound
//! as a constant parameter, exactly like a synthesis front-end.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rtlfixer_verilog::ast::{
    Connection, Direction, Edge, Expr, Item, Module, Sensitivity, Stmt,
};
use rtlfixer_verilog::const_eval;
use rtlfixer_verilog::Analysis;

/// Maximum instance nesting depth.
const MAX_DEPTH: usize = 16;
/// Maximum generate-loop unroll count.
const MAX_GEN_UNROLL: i64 = 4096;

/// Why elaboration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// The requested top module does not exist.
    TopNotFound(String),
    /// The analysis contains compile errors; refuse to elaborate.
    CompileErrors(usize),
    /// Instance recursion exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A construct the simulator does not support.
    Unsupported(String),
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::TopNotFound(name) => write!(f, "top module '{name}' not found"),
            ElabError::CompileErrors(n) => write!(f, "design has {n} compile errors"),
            ElabError::TooDeep => write!(f, "instance hierarchy too deep"),
            ElabError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for ElabError {}

/// A flattened signal definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigDef {
    /// Packed width in bits.
    pub width: u32,
    /// Declared most-significant index.
    pub msb: i64,
    /// Declared least-significant index.
    pub lsb: i64,
    /// Declared signed.
    pub signed: bool,
    /// Unpacked (memory) bounds, if any.
    pub words: Option<(i64, i64)>,
}

impl SigDef {
    /// Maps a declared bit index to a zero-based offset, if in range.
    pub fn offset(&self, index: i64) -> Option<u32> {
        let descending = self.msb >= self.lsb;
        let (lo, hi) = if descending { (self.lsb, self.msb) } else { (self.msb, self.lsb) };
        if index < lo || index > hi {
            return None;
        }
        let off = if descending { index - self.lsb } else { self.lsb - index };
        Some(off as u32)
    }

    /// Number of memory words (1 for plain vectors).
    pub fn word_count(&self) -> usize {
        match self.words {
            None => 1,
            Some((a, b)) => (a.abs_diff(b) + 1) as usize,
        }
    }

    /// Maps a declared word index to a zero-based slot, if in range.
    pub fn word_offset(&self, index: i64) -> Option<usize> {
        let (a, b) = self.words?;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if index < lo || index > hi {
            return None;
        }
        Some((index - lo) as usize)
    }
}

/// A top-level port of the elaborated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    /// Port name (top-level, unprefixed).
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// Scope information shared by the processes of one module instance (or one
/// generate-scope within it).
#[derive(Debug, Clone)]
pub struct Scope {
    /// Prefix of the instance this process belongs to (`""` for top,
    /// `"u1."` for a child instance).
    pub module_prefix: String,
    /// Full scope prefix including generate-block scopes
    /// (`"u1.gen[3]."`). Name resolution walks from here back to
    /// [`Scope::module_prefix`].
    pub scope_prefix: String,
    /// Constant bindings: parameters plus enclosing genvar values.
    pub params: Arc<HashMap<String, i64>>,
}

/// A combinational or initial process.
#[derive(Debug, Clone)]
pub struct Proc {
    /// Scope for name resolution.
    pub scope: Scope,
    /// What to execute.
    pub kind: ProcKind,
}

/// Process payload.
#[derive(Debug, Clone)]
pub enum ProcKind {
    /// `assign lhs = rhs` (both in this scope).
    Assign {
        /// Target.
        lhs: Expr,
        /// Source.
        rhs: Expr,
    },
    /// An `always @*` (or initial) body.
    Block(Stmt),
    /// Port bind: copy `expr` (evaluated in this scope) into the child's
    /// input signal (full flattened name).
    BindIn {
        /// Full flattened child signal name.
        child: String,
        /// Parent-scope expression.
        expr: Expr,
    },
    /// Port bind: copy the child's output signal into `lhs` (this scope).
    BindOut {
        /// Parent-scope l-value.
        lhs: Expr,
        /// Full flattened child signal name.
        child: String,
    },
}

/// An edge-triggered process.
#[derive(Debug, Clone)]
pub struct SeqProc {
    /// Scope for name resolution.
    pub scope: Scope,
    /// Triggering edges: polarity + full flattened signal name.
    pub edges: Vec<(Edge, String)>,
    /// Body, executed with non-blocking semantics available.
    pub body: Stmt,
}

/// A user function, resolvable from its defining scope.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Argument names and widths, in order.
    pub args: Vec<(String, u32)>,
    /// Return width.
    pub width: u32,
    /// Body.
    pub body: Stmt,
    /// Defining scope.
    pub scope: Scope,
}

/// Lazily-populated slot for the lowered execution form of a [`Design`]
/// (see `crate::lower`). Computed once per design by the first
/// [`crate::Simulator`] built on it and shared by every simulator after
/// that, including through the `elaborate_shared` design cache.
///
/// Cloning a `Design` deliberately does **not** clone the slot: the clone
/// may be mutated before simulation, which would invalidate the kernel.
#[derive(Debug, Default)]
pub struct LowerCell(pub(crate) std::sync::OnceLock<Arc<crate::lower::Kernel>>);

impl Clone for LowerCell {
    fn clone(&self) -> Self {
        LowerCell::default()
    }
}

/// A fully elaborated (flattened) design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Top module name.
    pub top: String,
    /// All flattened signals.
    pub signals: HashMap<String, SigDef>,
    /// Top-level input ports.
    pub inputs: Vec<PortDef>,
    /// Top-level output ports.
    pub outputs: Vec<PortDef>,
    /// Combinational processes (assigns, always@*, port binds) in order.
    pub comb: Vec<Proc>,
    /// Edge-triggered processes.
    pub seq: Vec<SeqProc>,
    /// Initial processes.
    pub init: Vec<Proc>,
    /// Functions keyed by `{module_prefix}{name}`.
    pub functions: HashMap<String, FunctionDef>,
    /// Cached lowered execution form (never cloned with the design).
    pub(crate) lowered: LowerCell,
}

/// Elaborates `top` from an error-free analysis.
///
/// # Errors
///
/// Returns [`ElabError`] if the analysis has errors, the top module is
/// missing, the hierarchy recurses too deep, or an unsupported construct is
/// encountered.
pub fn elaborate(analysis: &Analysis, top: &str) -> Result<Design, ElabError> {
    let error_count = analysis.errors().len();
    if error_count > 0 {
        return Err(ElabError::CompileErrors(error_count));
    }
    let module = analysis
        .file
        .module(top)
        .ok_or_else(|| ElabError::TopNotFound(top.to_owned()))?;

    let mut design = Design {
        top: top.to_owned(),
        signals: HashMap::new(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        comb: Vec::new(),
        seq: Vec::new(),
        init: Vec::new(),
        functions: HashMap::new(),
        lowered: LowerCell::default(),
    };
    let params = Arc::new(module_params(module, &HashMap::new()));
    elaborate_module(analysis, module, "", Arc::clone(&params), &mut design, 0)?;

    // Top ports.
    for port in &module.ports {
        let width = port_width(port, &params);
        let def = PortDef { name: port.name.clone(), width };
        match port.direction {
            Direction::Input => design.inputs.push(def),
            Direction::Output | Direction::Inout => design.outputs.push(def),
        }
    }
    Ok(design)
}

/// Key of the process-wide design cache: source content hash plus top
/// module name. The fingerprint identifies the source text behind the
/// analysis, so any two analyses of the same source share one elaboration.
type DesignKey = (u128, String);

fn design_cache(
) -> &'static rtlfixer_cache::ShardedCache<DesignKey, Result<Arc<Design>, ElabError>> {
    static CACHE: std::sync::OnceLock<
        rtlfixer_cache::ShardedCache<DesignKey, Result<Arc<Design>, ElabError>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| rtlfixer_cache::ShardedCache::named(64, 128, "designs"))
}

/// [`elaborate`], memoised process-wide behind `(source fingerprint, top)`.
///
/// The testbench harness elaborates the same design once per simulation
/// run — once per proposal in the §5 local search, once per sample in the
/// pass@k harness — yet elaboration is a pure function of the analysed
/// source and the top name. This is the *elaborate-once fast path*:
/// callers get a shared immutable [`Design`] and keep per-run mutable
/// state (signal values) on the side. Failures are memoised too, so
/// repeatedly simulating an unsupported design stays cheap.
pub fn elaborate_shared(analysis: &Analysis, top: &str) -> Result<Arc<Design>, ElabError> {
    let key = (analysis.fingerprint, top.to_owned());
    design_cache().get_or_insert_with(key, || elaborate(analysis, top).map(Arc::new))
}

/// Hit/miss counters of the process-wide [`elaborate_shared`] cache.
pub fn design_cache_stats() -> rtlfixer_cache::CacheStats {
    design_cache().stats()
}

fn port_width(port: &rtlfixer_verilog::ast::Port, env: &HashMap<String, i64>) -> u32 {
    match &port.range {
        None => 1,
        Some(r) => {
            let msb = const_eval::eval(&r.msb, env).unwrap_or(0);
            let lsb = const_eval::eval(&r.lsb, env).unwrap_or(0);
            msb.abs_diff(lsb) as u32 + 1
        }
    }
}

fn module_params(module: &Module, overrides: &HashMap<String, i64>) -> HashMap<String, i64> {
    let mut env = HashMap::new();
    for param in &module.header_params {
        let value = overrides
            .get(&param.name)
            .copied()
            .or_else(|| const_eval::eval(&param.value, &env).ok())
            .unwrap_or(0);
        env.insert(param.name.clone(), value);
    }
    for item in &module.items {
        if let Item::Param(param) = item {
            let value = if !param.local {
                overrides
                    .get(&param.name)
                    .copied()
                    .or_else(|| const_eval::eval(&param.value, &env).ok())
                    .unwrap_or(0)
            } else {
                const_eval::eval(&param.value, &env).unwrap_or(0)
            };
            env.insert(param.name.clone(), value);
        }
    }
    env
}

fn elaborate_module(
    analysis: &Analysis,
    module: &Module,
    prefix: &str,
    params: Arc<HashMap<String, i64>>,
    design: &mut Design,
    depth: usize,
) -> Result<(), ElabError> {
    if depth > MAX_DEPTH {
        return Err(ElabError::TooDeep);
    }
    // Register port signals.
    for port in &module.ports {
        register_signal(
            design,
            &format!("{prefix}{}", port.name),
            &port.range,
            port.signed,
            &None,
            &params,
        );
    }
    let scope = Scope {
        module_prefix: prefix.to_owned(),
        scope_prefix: prefix.to_owned(),
        params: Arc::clone(&params),
    };
    elaborate_items(analysis, module, &module.items, &scope, design, depth)
}

fn register_signal(
    design: &mut Design,
    full_name: &str,
    range: &Option<rtlfixer_verilog::ast::RangeDecl>,
    signed: bool,
    unpacked: &Option<rtlfixer_verilog::ast::RangeDecl>,
    env: &HashMap<String, i64>,
) {
    register_signal_kind(design, full_name, range, signed, unpacked, env, false)
}

#[allow(clippy::too_many_arguments)]
fn register_signal_kind(
    design: &mut Design,
    full_name: &str,
    range: &Option<rtlfixer_verilog::ast::RangeDecl>,
    signed: bool,
    unpacked: &Option<rtlfixer_verilog::ast::RangeDecl>,
    env: &HashMap<String, i64>,
    is_integer: bool,
) {
    let (msb, lsb) = match range {
        None if is_integer => (31, 0),
        None => (0, 0),
        Some(r) => (
            const_eval::eval(&r.msb, env).unwrap_or(0),
            const_eval::eval(&r.lsb, env).unwrap_or(0),
        ),
    };
    let words = unpacked.as_ref().map(|r| {
        (
            const_eval::eval(&r.msb, env).unwrap_or(0),
            const_eval::eval(&r.lsb, env).unwrap_or(0),
        )
    });
    let width = msb.abs_diff(lsb) as u32 + 1;
    design
        .signals
        .entry(full_name.to_owned())
        .and_modify(|def| {
            // A body decl refining a port: prefer the wider/more specific.
            if width > def.width {
                def.width = width;
                def.msb = msb;
                def.lsb = lsb;
            }
            if words.is_some() {
                def.words = words;
            }
            def.signed |= signed;
        })
        .or_insert(SigDef { width, msb, lsb, signed, words });
}

fn elaborate_items(
    analysis: &Analysis,
    module: &Module,
    items: &[Item],
    scope: &Scope,
    design: &mut Design,
    depth: usize,
) -> Result<(), ElabError> {
    for item in items {
        match item {
            Item::Net { kind, signed, range, decls, .. } => {
                let is_integer = *kind == rtlfixer_verilog::ast::NetKind::Integer;
                for decl in decls {
                    let full = format!("{}{}", scope.scope_prefix, decl.name);
                    register_signal_kind(
                        design,
                        &full,
                        range,
                        *signed,
                        &decl.unpacked,
                        &scope.params,
                        is_integer,
                    );
                    if let Some(init) = &decl.init {
                        design.init.push(Proc {
                            scope: scope.clone(),
                            kind: ProcKind::Assign {
                                lhs: Expr::Ident { name: decl.name.clone(), span: decl.span },
                                rhs: init.clone(),
                            },
                        });
                        // Nets with initialisers behave like continuous
                        // assignments for combinational logic.
                        design.comb.push(Proc {
                            scope: scope.clone(),
                            kind: ProcKind::Assign {
                                lhs: Expr::Ident { name: decl.name.clone(), span: decl.span },
                                rhs: init.clone(),
                            },
                        });
                    }
                }
            }
            Item::PortDecl(port) => {
                let full = format!("{}{}", scope.scope_prefix, port.name);
                register_signal(design, &full, &port.range, port.signed, &None, &scope.params);
            }
            Item::Param(_) | Item::Genvar { .. } => {}
            Item::ContinuousAssign { assigns, .. } => {
                for (lhs, rhs) in assigns {
                    design.comb.push(Proc {
                        scope: scope.clone(),
                        kind: ProcKind::Assign { lhs: lhs.clone(), rhs: rhs.clone() },
                    });
                }
            }
            Item::Always { sensitivity, body, .. } => match sensitivity {
                Sensitivity::Star | Sensitivity::Signals(_) | Sensitivity::None => {
                    design
                        .comb
                        .push(Proc { scope: scope.clone(), kind: ProcKind::Block(body.clone()) });
                }
                Sensitivity::Edges(edges) => {
                    let mut resolved = Vec::new();
                    for edge in edges {
                        let name = edge.signal.as_ident().ok_or_else(|| {
                            ElabError::Unsupported("non-identifier edge expression".into())
                        })?;
                        resolved.push((edge.edge, format!("{}{name}", scope.module_prefix)));
                    }
                    design.seq.push(SeqProc {
                        scope: scope.clone(),
                        edges: resolved,
                        body: body.clone(),
                    });
                }
            },
            Item::Initial { body, .. } => {
                design.init.push(Proc { scope: scope.clone(), kind: ProcKind::Block(body.clone()) });
            }
            Item::Instance { module: child_name, name, params: param_conns, conns, .. } => {
                elaborate_instance(
                    analysis,
                    module,
                    child_name,
                    name,
                    param_conns,
                    conns,
                    scope,
                    design,
                    depth,
                )?;
            }
            Item::Generate { items, .. } => {
                elaborate_items(analysis, module, items, scope, design, depth)?;
            }
            Item::GenFor { var, init, cond, step, label, items, .. } => {
                let mut env = (*scope.params).clone();
                let mut value = const_eval::eval(init, &env)
                    .map_err(|_| ElabError::Unsupported("non-constant generate bound".into()))?;
                let mut count = 0i64;
                loop {
                    env.insert(var.clone(), value);
                    match const_eval::eval(cond, &env) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(_) => {
                            return Err(ElabError::Unsupported(
                                "non-constant generate condition".into(),
                            ))
                        }
                    }
                    let iter_scope = Scope {
                        module_prefix: scope.module_prefix.clone(),
                        scope_prefix: match label {
                            Some(l) => format!("{}{l}[{value}].", scope.scope_prefix),
                            None => format!("{}genblk[{value}].", scope.scope_prefix),
                        },
                        params: Arc::new(env.clone()),
                    };
                    elaborate_items(analysis, module, items, &iter_scope, design, depth)?;
                    count += 1;
                    if count > MAX_GEN_UNROLL {
                        return Err(ElabError::Unsupported("generate loop too large".into()));
                    }
                    value = const_eval::eval(step, &env)
                        .map_err(|_| ElabError::Unsupported("non-constant generate step".into()))?;
                }
            }
            Item::Function { name, range, args, body, .. } => {
                let width = match range {
                    None => 1,
                    Some(r) => {
                        let msb = const_eval::eval(&r.msb, &scope.params).unwrap_or(0);
                        let lsb = const_eval::eval(&r.lsb, &scope.params).unwrap_or(0);
                        msb.abs_diff(lsb) as u32 + 1
                    }
                };
                let args = args
                    .iter()
                    .map(|arg| (arg.name.clone(), port_width(arg, &scope.params)))
                    .collect();
                design.functions.insert(
                    format!("{}{name}", scope.module_prefix),
                    FunctionDef { args, width, body: body.clone(), scope: scope.clone() },
                );
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn elaborate_instance(
    analysis: &Analysis,
    _parent: &Module,
    child_name: &str,
    instance: &str,
    param_conns: &[Connection],
    conns: &[Connection],
    scope: &Scope,
    design: &mut Design,
    depth: usize,
) -> Result<(), ElabError> {
    let child = analysis
        .file
        .module(child_name)
        .ok_or_else(|| ElabError::TopNotFound(child_name.to_owned()))?;

    // Parameter overrides, evaluated in the parent's constant scope.
    let mut overrides = HashMap::new();
    for (idx, conn) in param_conns.iter().enumerate() {
        let Some(expr) = &conn.expr else { continue };
        let Ok(value) = const_eval::eval(expr, &scope.params) else { continue };
        match &conn.port {
            Some(name) => {
                overrides.insert(name.clone(), value);
            }
            None => {
                if let Some(param) = child.header_params.get(idx) {
                    overrides.insert(param.name.clone(), value);
                }
            }
        }
    }
    let child_params = module_params(child, &overrides);
    let child_prefix = format!("{}{instance}.", scope.scope_prefix);
    elaborate_module(analysis, child, &child_prefix, Arc::new(child_params), design, depth + 1)?;

    // Port binds.
    let pairs: Vec<(String, Option<Expr>)> = if conns.iter().all(|c| c.port.is_some()) {
        conns
            .iter()
            .map(|c| (c.port.clone().expect("checked"), c.expr.clone()))
            .collect()
    } else {
        child
            .ports
            .iter()
            .zip(conns)
            .map(|(p, c)| (p.name.clone(), c.expr.clone()))
            .collect()
    };
    for (port_name, expr) in pairs {
        let Some(port) = child.port(&port_name) else { continue };
        let Some(expr) = expr else { continue };
        let child_sig = format!("{child_prefix}{port_name}");
        match port.direction {
            Direction::Input => design.comb.push(Proc {
                scope: scope.clone(),
                kind: ProcKind::BindIn { child: child_sig, expr },
            }),
            Direction::Output | Direction::Inout => design.comb.push(Proc {
                scope: scope.clone(),
                kind: ProcKind::BindOut { lhs: expr, child: child_sig },
            }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;

    fn design(src: &str, top: &str) -> Design {
        let analysis = compile(src);
        assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
        elaborate(&analysis, top).expect("elaborates")
    }

    #[test]
    fn simple_module_shapes() {
        let d = design(
            "module m(input [7:0] a, output [7:0] y);\nwire [3:0] t;\n\
             assign t = a[3:0];\nassign y = {4'b0, t};\nendmodule",
            "m",
        );
        assert_eq!(d.inputs.len(), 1);
        assert_eq!(d.inputs[0].width, 8);
        assert_eq!(d.outputs[0].width, 8);
        assert_eq!(d.comb.len(), 2);
        assert_eq!(d.signals.get("t").map(|s| s.width), Some(4));
    }

    #[test]
    fn refuses_broken_design() {
        let analysis = compile("module m(output y); assign y = clk; endmodule");
        assert!(matches!(elaborate(&analysis, "m"), Err(ElabError::CompileErrors(_))));
    }

    #[test]
    fn missing_top_errors() {
        let analysis = compile("module m(input a, output y); assign y = a; endmodule");
        assert!(matches!(elaborate(&analysis, "zz"), Err(ElabError::TopNotFound(_))));
    }

    #[test]
    fn seq_process_edges_resolved() {
        let d = design(
            "module m(input clk, input d, output reg q);\n\
             always @(posedge clk) q <= d;\nendmodule",
            "m",
        );
        assert_eq!(d.seq.len(), 1);
        assert_eq!(d.seq[0].edges, vec![(Edge::Pos, "clk".to_owned())]);
    }

    #[test]
    fn instance_flattening_prefixes_signals() {
        let d = design(
            "module child(input a, output y); wire t; assign t = ~a; assign y = t; endmodule\n\
             module top(input x, output z);\nchild u1(.a(x), .y(z));\nendmodule",
            "top",
        );
        assert!(d.signals.contains_key("u1.t"), "{:?}", d.signals.keys());
        assert!(d.signals.contains_key("u1.a"));
        // 2 child assigns + 2 binds
        assert_eq!(d.comb.len(), 4);
    }

    #[test]
    fn parameter_override_changes_width() {
        let d = design(
            "module child #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);\n\
             assign y = a;\nendmodule\n\
             module top(input [7:0] p, output [7:0] q);\n\
             child #(.W(8)) u(.a(p), .y(q));\nendmodule",
            "top",
        );
        assert_eq!(d.signals.get("u.a").map(|s| s.width), Some(8));
    }

    #[test]
    fn genfor_unrolls_with_scoped_prefix() {
        let d = design(
            "module m(input [3:0] a, output [3:0] y);\n\
             genvar i;\ngenerate\n\
             for (i = 0; i < 4; i = i + 1) begin : g\n\
               wire t;\n\
               assign t = ~a[i];\n\
               assign y[i] = t;\n\
             end\nendgenerate\nendmodule",
            "m",
        );
        assert!(d.signals.contains_key("g[0].t"));
        assert!(d.signals.contains_key("g[3].t"));
        assert_eq!(d.comb.len(), 8);
    }

    #[test]
    fn sigdef_offsets_descending_and_ascending() {
        let desc = SigDef { width: 8, msb: 7, lsb: 0, signed: false, words: None };
        assert_eq!(desc.offset(0), Some(0));
        assert_eq!(desc.offset(7), Some(7));
        assert_eq!(desc.offset(8), None);
        let asc = SigDef { width: 8, msb: 0, lsb: 7, signed: false, words: None };
        assert_eq!(asc.offset(7), Some(0));
        assert_eq!(asc.offset(0), Some(7));
    }

    #[test]
    fn memory_word_offsets() {
        let mem = SigDef { width: 8, msb: 7, lsb: 0, signed: false, words: Some((0, 15)) };
        assert_eq!(mem.word_count(), 16);
        assert_eq!(mem.word_offset(0), Some(0));
        assert_eq!(mem.word_offset(15), Some(15));
        assert_eq!(mem.word_offset(16), None);
    }

    #[test]
    fn elaborate_shared_memoises_per_source_and_top() {
        rtlfixer_cache::set_enabled(true);
        let source = "module shared_elab_probe(input a, output y);\n\
                      assign y = ~a;\nendmodule";
        // Two separate analyses of the same source share one Design.
        let first = compile(source);
        let second = compile(source);
        let a = elaborate_shared(&first, "shared_elab_probe").expect("elaborates");
        let b = elaborate_shared(&second, "shared_elab_probe").expect("elaborates");
        assert!(Arc::ptr_eq(&a, &b), "same (source, top) must share one Design");
        // The shared design matches a direct elaboration.
        let direct = elaborate(&first, "shared_elab_probe").expect("elaborates");
        assert_eq!(a.top, direct.top);
        assert_eq!(a.comb.len(), direct.comb.len());
        assert_eq!(a.signals.len(), direct.signals.len());
        // A different top over the same source is a distinct cache entry.
        assert!(matches!(
            elaborate_shared(&first, "zz"),
            Err(ElabError::TopNotFound(_))
        ));
    }

    #[test]
    fn elaborate_shared_memoises_failures() {
        let analysis = compile("module m(output y); assign y = clk; endmodule");
        let first = elaborate_shared(&analysis, "m");
        let second = elaborate_shared(&analysis, "m");
        assert!(matches!(first, Err(ElabError::CompileErrors(_))));
        assert_eq!(first.err(), second.err());
    }

    #[test]
    fn function_registered() {
        let d = design(
            "module m(input [7:0] a, output [3:0] y);\n\
             function [3:0] ones;\ninput [7:0] v;\ninteger i;\nbegin\n\
               ones = 0;\nfor (i = 0; i < 8; i = i + 1) ones = ones + v[i];\n\
             end\nendfunction\nassign y = ones(a);\nendmodule",
            "m",
        );
        let f = d.functions.get("ones").expect("function");
        assert_eq!(f.width, 4);
        assert_eq!(f.args, vec![("v".to_owned(), 8)]);
    }
}
