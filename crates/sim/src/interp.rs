//! The simulation interpreter: executes the interned execution form
//! ([`crate::lower::Kernel`]) compiled from an elaborated [`Design`], with
//! two-phase (non-blocking) sequential semantics and settle-to-fixpoint
//! combinational evaluation.
//!
//! Compared with the tree-walking interpreter it replaced, the hot loop is
//! allocation-free and event-driven:
//!
//! * Signal state lives in a dense `Vec<StateValue>` slab indexed by
//!   interned `SigId`s; procedural locals live in a reusable `Vec<LogicVec>`
//!   scratch slab indexed by `LocalId`s. No per-sweep `HashMap` clones.
//! * [`Simulator::settle`] is sensitivity-driven: every write marks the
//!   target signal dirty, and a combinational process is only re-run when a
//!   signal in its (statically computed) sensitivity set — everything it may
//!   read *or* write, including transitively through functions — was marked
//!   dirty by the previous sweep, the current sweep, or an external event
//!   (`poke`/`edge`/NBA commit). The write set is part of the sensitivity
//!   set because a read-modify-write target is an input to its own process.
//! * Fixpoint detection compares only the signals actually written during a
//!   sweep against a first-touch snapshot, which is equivalent to the old
//!   whole-state compare (untouched signals cannot differ).
//!
//! * When a process carries a compiled tape ([`crate::tape`]), execution
//!   dispatches over its flat register bytecode (with a two-state `u64`
//!   fast variant when the input cone is x-free) instead of walking the
//!   `KExpr` tree — same semantics, no per-evaluation recursion.
//!
//! Setting `RTLFIXER_SIM_EVENT=0` (or `off`/`false`) disables the
//! event-driven filter and re-runs every combinational process each sweep;
//! `RTLFIXER_SIM_TAPE=0` (or `off`/`false`) disables tape execution and
//! walks the trees. Both are debugging fallbacks that must produce
//! bit-identical results.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use rtlfixer_verilog::ast::{AssignOp, BinaryOp, CaseKind, Edge, SelectMode, UnaryOp};

use crate::elab::Design;
use crate::lower::{
    KBase, KExpr, KExprKind, KLval, KProc, KProcBody, KStmt, KVarRef, Kernel, SigId,
};
use crate::tape::{Op, Tape, TapeStats};
use crate::value::{Bit, LogicVec, ReduceOp};

/// Maximum iterations of the combinational settle loop before the design is
/// declared unstable (combinational oscillation).
const MAX_SETTLE: usize = 64;
/// Maximum iterations of any procedural loop.
pub(crate) const MAX_LOOP: usize = 65_536;
/// Maximum user-function call depth.
const MAX_CALL_DEPTH: usize = 32;

/// One stored signal: a plain vector or a memory array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// Packed vector.
    Vec(LogicVec),
    /// Memory (unpacked array of words).
    Array(Vec<LogicVec>),
}

/// A resolved non-blocking write target.
#[derive(Debug, Clone)]
pub(crate) enum Target {
    Whole(SigId),
    Bits(SigId, u32, u32),
    Word(SigId, usize),
    WordBits(SigId, usize, u32, u32),
}

/// A scheduled non-blocking write.
#[derive(Debug, Clone)]
pub(crate) struct NbaWrite {
    pub(crate) target: Target,
    pub(crate) value: LogicVec,
}

/// Simulation-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational logic failed to reach a fixpoint. `signals` names the
    /// nets still toggling in the final sweep (empty only if unknown).
    Unstable {
        /// Signals that changed value in the last settle sweep, sorted.
        signals: Vec<String>,
    },
    /// Referenced port does not exist.
    NoSuchPort(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unstable { signals } => {
                write!(f, "combinational logic did not settle")?;
                if !signals.is_empty() {
                    write!(
                        f,
                        " (still toggling after {MAX_SETTLE} sweeps: {})",
                        signals.join(", ")
                    )?;
                }
                Ok(())
            }
            SimError::NoSuchPort(name) => write!(f, "no such port '{name}'"),
        }
    }
}

impl std::error::Error for SimError {}

// ---- dirty tracking ---------------------------------------------------------

/// A fixed-capacity bitset over `SigId`s.
#[derive(Debug, Clone)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(bits: usize) -> BitSet {
        BitSet { words: vec![0; bits.div_ceil(64)] }
    }

    /// All bits set (trailing bits past `bits` are harmless: no `SigId`
    /// maps to them).
    pub(crate) fn all(bits: usize) -> BitSet {
        BitSet { words: vec![u64::MAX; bits.div_ceil(64)] }
    }

    pub(crate) fn get(&self, i: SigId) -> bool {
        (self.words[i as usize / 64] >> (i % 64)) & 1 == 1
    }

    pub(crate) fn set(&mut self, i: SigId) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    fn clear(&mut self, i: SigId) {
        self.words[i as usize / 64] &= !(1u64 << (i % 64));
    }

    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

/// Per-sweep change journal: `touched` records a first-touch snapshot of
/// every signal written this sweep (deduplicated through `mask`) so the
/// fixpoint check can compare exactly the slots that might have changed.
pub(crate) struct SweepLog<'a> {
    mask: &'a mut BitSet,
    touched: &'a mut Vec<(SigId, StateValue)>,
}

/// Write observer threaded through execution: every value-changing signal
/// write sets its dirty bit (scheduling dependent processes), and — during a
/// settle sweep — journals the pre-write value.
pub(crate) struct WriteLog<'a> {
    dirty: &'a mut BitSet,
    sweep: Option<SweepLog<'a>>,
}

/// Records that `id` is about to change. Must be called *before* the state
/// slot is mutated (the sweep journal snapshots the old value).
pub(crate) fn note_change(state: &[StateValue], log: &mut Option<WriteLog<'_>>, id: SigId) {
    if let Some(log) = log {
        log.dirty.set(id);
        if let Some(sweep) = &mut log.sweep {
            if !sweep.mask.get(id) {
                sweep.mask.set(id);
                sweep.touched.push((id, state[id as usize].clone()));
            }
        }
    }
}

/// Replaces `state[id]` with `new`, skipping (and not logging) no-op writes.
pub(crate) fn set_state(
    state: &mut [StateValue],
    log: &mut Option<WriteLog<'_>>,
    id: SigId,
    new: StateValue,
) {
    if state[id as usize] == new {
        return;
    }
    note_change(state, log, id);
    state[id as usize] = new;
}

// ---- the simulator ----------------------------------------------------------

/// In-process backend overrides (for A/B testing): 0 = follow the
/// environment, 1 = force off, 2 = force on.
static FORCE_EVENT: AtomicU8 = AtomicU8::new(0);
static FORCE_TAPE: AtomicU8 = AtomicU8::new(0);
static FORCE_THREADED: AtomicU8 = AtomicU8::new(0);
static FORCE_WIDE: AtomicU8 = AtomicU8::new(0);
static FORCE_LANES: AtomicU8 = AtomicU8::new(0);

/// Overrides the simulation backend selection for the current process,
/// bypassing the `RTLFIXER_SIM_EVENT` / `RTLFIXER_SIM_TAPE` environment
/// switches. `None` restores environment-driven behaviour. Intended for
/// in-process A/B invariance tests and benchmarks.
#[doc(hidden)]
pub fn force_sim_backends(event: Option<bool>, tape: Option<bool>) {
    let enc = |v: Option<bool>| match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCE_EVENT.store(enc(event), Ordering::Relaxed);
    FORCE_TAPE.store(enc(tape), Ordering::Relaxed);
}

fn enc_force(v: Option<bool>) -> u8 {
    match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// Overrides threaded-dispatch selection for the current process, bypassing
/// the `RTLFIXER_SIM_THREADED` environment switch. `None` restores
/// environment-driven behaviour. Intended for in-process A/B invariance
/// tests and benchmarks.
#[doc(hidden)]
pub fn force_sim_threaded(threaded: Option<bool>) {
    FORCE_THREADED.store(enc_force(threaded), Ordering::Relaxed);
}

/// Overrides multi-limb fast-path selection for the current process,
/// bypassing the `RTLFIXER_SIM_WIDE` environment switch. Note that the
/// switch is consulted at tape *build* time, so it only affects designs
/// whose tapes have not been compiled yet (fresh processes in practice).
#[doc(hidden)]
pub fn force_sim_wide(wide: Option<bool>) {
    FORCE_WIDE.store(enc_force(wide), Ordering::Relaxed);
}

/// Overrides multi-seed lane-packing selection for the current process,
/// bypassing the `RTLFIXER_SIM_LANES` environment switch.
#[doc(hidden)]
pub fn force_sim_lanes(lanes: Option<bool>) {
    FORCE_LANES.store(enc_force(lanes), Ordering::Relaxed);
}

/// Returns whether the event-driven settle filter is enabled (default yes;
/// `RTLFIXER_SIM_EVENT=0|off|false` forces the full-sweep fallback).
pub(crate) fn event_driven() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    match FORCE_EVENT.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *MODE.get_or_init(|| {
            !matches!(
                std::env::var("RTLFIXER_SIM_EVENT").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// Returns whether compiled-tape execution is enabled (default yes;
/// `RTLFIXER_SIM_TAPE=0|off|false` forces the tree-walking kernel).
pub(crate) fn tape_enabled() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    match FORCE_TAPE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *MODE.get_or_init(|| {
            !matches!(
                std::env::var("RTLFIXER_SIM_TAPE").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// Returns whether threaded-dispatch execution of scalar fast tapes is
/// enabled (default yes; `RTLFIXER_SIM_THREADED=0|off|false` restores the
/// interpreted fast loop).
fn threaded_enabled() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    match FORCE_THREADED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *MODE.get_or_init(|| {
            !matches!(
                std::env::var("RTLFIXER_SIM_THREADED").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// Returns whether multi-limb (2/4-limb) fast tapes may be built (default
/// yes; `RTLFIXER_SIM_WIDE=0|off|false` restores the scalar-only fast
/// path). Consulted at tape build time.
pub(crate) fn wide_enabled() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    match FORCE_WIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *MODE.get_or_init(|| {
            !matches!(
                std::env::var("RTLFIXER_SIM_WIDE").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// Returns whether bit-parallel multi-seed lane packing is enabled (default
/// yes; `RTLFIXER_SIM_LANES=0|off|false` forces scalar per-seed runs).
pub(crate) fn lanes_enabled() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    match FORCE_LANES.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *MODE.get_or_init(|| {
            !matches!(
                std::env::var("RTLFIXER_SIM_LANES").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// A cycle-level simulator over an elaborated design.
///
/// # Examples
///
/// ```
/// use rtlfixer_sim::{Simulator, value::LogicVec};
/// use rtlfixer_verilog::compile;
///
/// let analysis = compile("module inv(input [3:0] a, output [3:0] y);
///                         assign y = ~a; endmodule");
/// let mut sim = Simulator::new(&analysis, "inv")?;
/// sim.poke("a", LogicVec::from_u64(4, 0b1010))?;
/// sim.settle()?;
/// assert_eq!(sim.peek("y").unwrap().to_u64(), Some(0b0101));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Arc<Design>,
    kernel: Arc<Kernel>,
    /// Signal state slab, indexed by `SigId`.
    state: Vec<StateValue>,
    /// Signals dirtied before the current sweep (previous sweep's toggles
    /// plus pending external writes). All-ones after construction/reset.
    prev_dirty: BitSet,
    /// Signals dirtied during the current sweep.
    curr_dirty: BitSet,
    /// Scratch: dedup mask for `touched`.
    touched_mask: BitSet,
    /// Scratch: first-touch snapshots of signals written this sweep.
    touched: Vec<(SigId, StateValue)>,
    /// Scratch: non-blocking assignment queue (reused across edges).
    nba: Vec<NbaWrite>,
    /// Scratch: procedural locals slab (reused across processes).
    locals: Vec<LogicVec>,
    /// Scratch buffers for tape execution (reused across processes).
    scratch: TapeScratch,
    /// Two-state fast-path runs completed without falling back.
    fast_hits: u64,
    /// Two-state fast-path runs that fell back to four-state ops.
    fast_falls: u64,
    /// Counter deltas not yet flushed to `rtlfixer-obs`.
    pending_hits: u64,
    pending_falls: u64,
}

/// Reusable register files and queues for the tape executors.
#[derive(Debug, Clone, Default)]
struct TapeScratch {
    /// Four-state virtual registers (`[0, nlocals)` alias the locals slab).
    regs: Vec<LogicVec>,
    /// Loop counters.
    ctrs: Vec<u64>,
    /// Two-state registers.
    fregs: Vec<u64>,
    /// Two-state loop counters.
    fctrs: Vec<u64>,
    /// Original cone values captured by the fast prologue.
    forig: Vec<u64>,
    /// Non-blocking writes buffered by a fast run, committed on success.
    fnba: Vec<NbaWrite>,
}

impl Simulator {
    /// Elaborates `top` and initialises all signals to zero.
    ///
    /// Elaboration goes through the process-wide
    /// [`crate::elab::elaborate_shared`] cache, so repeated simulations of
    /// the same source share one immutable [`Design`] (and its lowered
    /// kernel) and only the mutable signal state is per-simulator.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::elab::ElabError`] if the design does
    /// not elaborate.
    pub fn new(
        analysis: &rtlfixer_verilog::Analysis,
        top: &str,
    ) -> Result<Simulator, crate::elab::ElabError> {
        Ok(Simulator::from_design(crate::elab::elaborate_shared(analysis, top)?))
    }

    /// Builds a simulator over an already-elaborated (shared) design, with
    /// all signals initialised to zero. The design is lowered to its kernel
    /// form on first use and the kernel is cached on the design, so further
    /// simulators over the same `Arc<Design>` skip straight to state setup.
    pub fn from_design(design: Arc<Design>) -> Simulator {
        let kernel =
            Arc::clone(design.lowered.0.get_or_init(|| Arc::new(crate::lower::lower(&design))));
        let state = Self::zero_state(&kernel);
        let n = kernel.sigs.len();
        Simulator {
            design,
            kernel,
            state,
            prev_dirty: BitSet::all(n),
            curr_dirty: BitSet::new(n),
            touched_mask: BitSet::new(n),
            touched: Vec::new(),
            nba: Vec::new(),
            locals: Vec::new(),
            scratch: TapeScratch::default(),
            fast_hits: 0,
            fast_falls: 0,
            pending_hits: 0,
            pending_falls: 0,
        }
    }

    /// Tape-compilation statistics for this design's kernel (lower-once,
    /// shared across simulators of the same design).
    pub fn tape_stats(&self) -> TapeStats {
        self.kernel.tape_stats
    }

    /// Two-state fast-path runtime counters accumulated by this simulator:
    /// `(hits, fallbacks)` — runs completed entirely in two-state mode vs
    /// runs that re-executed on the four-state ops after x/z entered the
    /// input cone.
    pub fn tape_runtime(&self) -> (u64, u64) {
        (self.fast_hits, self.fast_falls)
    }

    /// Resets every signal (and memory word) back to zero — the state a
    /// fresh simulator starts from. Re-run [`Simulator::run_initial`]
    /// afterwards to re-apply `initial` blocks.
    pub fn reset_state(&mut self) {
        self.state = Self::zero_state(&self.kernel);
        let n = self.kernel.sigs.len();
        self.prev_dirty = BitSet::all(n);
        self.curr_dirty.clear_all();
        self.touched_mask.clear_all();
        self.touched.clear();
    }

    fn zero_state(kernel: &Kernel) -> Vec<StateValue> {
        kernel
            .sigs
            .iter()
            .map(|sig| {
                if sig.def.words.is_some() {
                    StateValue::Array(vec![LogicVec::zeros(sig.def.width); sig.def.word_count()])
                } else {
                    StateValue::Vec(LogicVec::zeros(sig.def.width))
                }
            })
            .collect()
    }

    /// The elaborated design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The lowered kernel.
    pub(crate) fn kernel_ref(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The raw signal state slab.
    pub(crate) fn state_rows(&self) -> &[StateValue] {
        &self.state
    }

    /// Replaces the entire signal state (lane materialisation). Everything
    /// is marked dirty so the next settle re-evaluates every process.
    pub(crate) fn install_state(&mut self, state: Vec<StateValue>) {
        debug_assert_eq!(state.len(), self.kernel.sigs.len());
        self.state = state;
        let n = self.kernel.sigs.len();
        self.prev_dirty = BitSet::all(n);
        self.curr_dirty.clear_all();
        self.touched_mask.clear_all();
        self.touched.clear();
    }

    /// [`Simulator::poke`] by pre-resolved signal id.
    pub(crate) fn poke_id(&mut self, id: SigId, value: LogicVec) {
        let width = self.kernel.sigs[id as usize].def.width;
        let mut log = Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
        set_state(&mut self.state, &mut log, id, StateValue::Vec(value.resize(width)));
    }

    /// Sets a signal (usually a top-level input) without propagation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] for unknown names.
    pub fn poke(&mut self, name: &str, value: LogicVec) -> Result<(), SimError> {
        let &id = self
            .kernel
            .by_name
            .get(name)
            .ok_or_else(|| SimError::NoSuchPort(name.to_owned()))?;
        let width = self.kernel.sigs[id as usize].def.width;
        let mut log = Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
        set_state(&mut self.state, &mut log, id, StateValue::Vec(value.resize(width)));
        Ok(())
    }

    /// Reads a signal's current value (vectors only).
    pub fn peek(&self, name: &str) -> Option<LogicVec> {
        let &id = self.kernel.by_name.get(name)?;
        match &self.state[id as usize] {
            StateValue::Vec(v) => Some(v.clone()),
            StateValue::Array(_) => None,
        }
    }

    /// Reads one word of a memory.
    pub fn peek_word(&self, name: &str, index: usize) -> Option<LogicVec> {
        let &id = self.kernel.by_name.get(name)?;
        match &self.state[id as usize] {
            StateValue::Array(words) => words.get(index).cloned(),
            StateValue::Vec(_) => None,
        }
    }

    /// Runs `initial` processes once (blocking semantics) and settles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if combinational logic oscillates.
    pub fn run_initial(&mut self) -> Result<(), SimError> {
        let kernel = Arc::clone(&self.kernel);
        for proc in &kernel.init {
            self.run_proc(&kernel, proc, false);
        }
        self.settle()
    }

    /// Propagates combinational logic to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if no fixpoint is reached within the
    /// iteration cap (combinational loop), naming the still-toggling nets.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let kernel = Arc::clone(&self.kernel);
        let event = event_driven();
        let mut last_changed: Vec<SigId> = Vec::new();
        for sweep in 0..MAX_SETTLE {
            for proc in &kernel.comb {
                let run = !event
                    || proc
                        .sens
                        .iter()
                        .any(|&s| self.prev_dirty.get(s) || self.curr_dirty.get(s));
                if run {
                    self.run_proc(&kernel, proc, true);
                }
            }
            // End-of-sweep fixpoint check over exactly the slots written
            // this sweep (equivalent to the old full-state compare).
            let touched = std::mem::take(&mut self.touched);
            let mut changed = Vec::new();
            for (id, old) in touched {
                self.touched_mask.clear(id);
                if self.state[id as usize] != old {
                    changed.push(id);
                }
            }
            if changed.is_empty() {
                self.prev_dirty.clear_all();
                self.curr_dirty.clear_all();
                rtlfixer_obs::counter_add("sim.settle_sweeps", sweep as u64 + 1);
                if self.pending_hits > 0 {
                    rtlfixer_obs::counter_add("sim.tape_fast_hits", self.pending_hits);
                    self.pending_hits = 0;
                }
                if self.pending_falls > 0 {
                    rtlfixer_obs::counter_add("sim.tape_fast_fallbacks", self.pending_falls);
                    self.pending_falls = 0;
                }
                return Ok(());
            }
            std::mem::swap(&mut self.prev_dirty, &mut self.curr_dirty);
            self.curr_dirty.clear_all();
            last_changed = changed;
        }
        let mut signals: Vec<String> =
            last_changed.iter().map(|&id| kernel.sigs[id as usize].name.clone()).collect();
        signals.sort();
        signals.dedup();
        Err(SimError::Unstable { signals })
    }

    /// Applies an edge event on `signal`: updates its value, executes every
    /// sequential process sensitive to that edge (non-blocking semantics),
    /// commits, and settles.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn edge(&mut self, signal: &str, edge: Edge) -> Result<(), SimError> {
        let kernel = Arc::clone(&self.kernel);
        let new_val = match edge {
            Edge::Pos => 1,
            Edge::Neg => 0,
        };
        if let Some(&id) = kernel.by_name.get(signal) {
            let width = kernel.sigs[id as usize].def.width;
            let mut log = Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
            set_state(
                &mut self.state,
                &mut log,
                id,
                StateValue::Vec(LogicVec::from_u64(width, new_val)),
            );
        }
        let mut nba = std::mem::take(&mut self.nba);
        nba.clear();
        let mut locals = std::mem::take(&mut self.locals);
        let use_tape = tape_enabled();
        for proc in &kernel.seq {
            if proc.edges.iter().any(|(e, s)| *e == edge && s == signal) {
                if use_tape {
                    if let Some(tape) = &proc.tape {
                        let mut scratch = std::mem::take(&mut self.scratch);
                        let outcome = {
                            let mut log =
                                Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
                            run_tape_auto(
                                &kernel,
                                &mut self.state,
                                tape,
                                &mut scratch,
                                &mut Some(&mut nba),
                                &mut log,
                            )
                        };
                        self.scratch = scratch;
                        match outcome {
                            Some(true) => {
                                self.fast_hits += 1;
                                self.pending_hits += 1;
                            }
                            Some(false) => {
                                self.fast_falls += 1;
                                self.pending_falls += 1;
                            }
                            None => {}
                        }
                        continue;
                    }
                }
                locals.clear();
                locals.resize(proc.nlocals as usize, LogicVec::zeros(1));
                let mut log = Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
                exec(
                    &kernel,
                    &mut self.state,
                    &mut locals,
                    &proc.body,
                    &mut Some(&mut nba),
                    &mut log,
                    0,
                );
            }
        }
        self.locals = locals;
        for write in nba.drain(..) {
            let mut log = Some(WriteLog { dirty: &mut self.prev_dirty, sweep: None });
            commit(&mut self.state, &mut log, write);
        }
        self.nba = nba;
        self.settle()
    }

    /// One full clock cycle: inputs should already be poked. Drives `clk`
    /// low→high (triggering posedge processes) and back low (triggering any
    /// negedge processes), settling in between.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn clock_cycle(&mut self, clk: &str) -> Result<(), SimError> {
        rtlfixer_obs::counter_add("sim.cycles", 1);
        self.settle()?;
        self.edge(clk, Edge::Pos)?;
        self.edge(clk, Edge::Neg)
    }

    /// Runs one combinational/initial process. During a settle sweep
    /// (`sweep`), writes dirty `curr_dirty` and journal into the touched
    /// log; outside a sweep they dirty `prev_dirty` as pending events.
    fn run_proc(&mut self, kernel: &Kernel, proc: &KProc, sweep: bool) {
        if tape_enabled() {
            if let Some(tape) = &proc.tape {
                // The tape assumed a vector-valued bind target at compile
                // time; if elaboration aliased it to a memory, keep the
                // tree path (which skips the copy).
                let vec_ok = match &proc.body {
                    KProcBody::BindOut { child: Some(id), .. } => {
                        matches!(self.state[*id as usize], StateValue::Vec(_))
                    }
                    _ => true,
                };
                if vec_ok {
                    let mut scratch = std::mem::take(&mut self.scratch);
                    let outcome = {
                        let mut log = Some(if sweep {
                            WriteLog {
                                dirty: &mut self.curr_dirty,
                                sweep: Some(SweepLog {
                                    mask: &mut self.touched_mask,
                                    touched: &mut self.touched,
                                }),
                            }
                        } else {
                            WriteLog { dirty: &mut self.prev_dirty, sweep: None }
                        });
                        run_tape_auto(
                            kernel,
                            &mut self.state,
                            tape,
                            &mut scratch,
                            &mut None,
                            &mut log,
                        )
                    };
                    self.scratch = scratch;
                    match outcome {
                        Some(true) => {
                            self.fast_hits += 1;
                            self.pending_hits += 1;
                        }
                        Some(false) => {
                            self.fast_falls += 1;
                            self.pending_falls += 1;
                        }
                        None => {}
                    }
                    return;
                }
            }
        }
        let mut locals = std::mem::take(&mut self.locals);
        locals.clear();
        locals.resize(proc.nlocals as usize, LogicVec::zeros(1));
        let mut log = Some(if sweep {
            WriteLog {
                dirty: &mut self.curr_dirty,
                sweep: Some(SweepLog {
                    mask: &mut self.touched_mask,
                    touched: &mut self.touched,
                }),
            }
        } else {
            WriteLog { dirty: &mut self.prev_dirty, sweep: None }
        });
        match &proc.body {
            KProcBody::Assign { lhs, rhs } => {
                let width = lval_width(kernel, &self.state, &locals, lhs);
                let value = eval_sized(kernel, &self.state, &locals, rhs, width, 0);
                assign(kernel, &mut self.state, &mut locals, lhs, value, &mut None, &mut log);
            }
            KProcBody::Block(body) => {
                exec(kernel, &mut self.state, &mut locals, body, &mut None, &mut log, 0);
            }
            KProcBody::BindIn { child, expr } => {
                let child_width = child.map_or(1, |id| kernel.sigs[id as usize].def.width);
                let value = eval_sized(kernel, &self.state, &locals, expr, child_width, 0);
                if let Some(id) = child {
                    set_state(
                        &mut self.state,
                        &mut log,
                        *id,
                        StateValue::Vec(value.resize(child_width)),
                    );
                }
            }
            KProcBody::BindOut { lhs, child } => {
                if let Some(id) = child {
                    if let StateValue::Vec(value) = &self.state[*id as usize] {
                        let value = value.clone();
                        assign(
                            kernel,
                            &mut self.state,
                            &mut locals,
                            lhs,
                            value,
                            &mut None,
                            &mut log,
                        );
                    }
                }
            }
        }
        self.locals = locals;
    }
}

// ---- expression evaluation --------------------------------------------------

/// Evaluates `expr` against the current state.
fn eval(k: &Kernel, state: &[StateValue], locals: &[LogicVec], expr: &KExpr, depth: usize) -> LogicVec {
    match &expr.kind {
        KExprKind::Const(v) => v.clone(),
        KExprKind::Local(slot) => locals[*slot as usize].clone(),
        KExprKind::Sig(id) => match &state[*id as usize] {
            StateValue::Vec(v) => v.clone(),
            StateValue::Array(_) => LogicVec::xs(1),
        },
        KExprKind::Unary { op, operand } => {
            let v = eval(k, state, locals, operand, depth);
            eval_unary(*op, v)
        }
        KExprKind::Binary { op, lhs, rhs } => {
            let a = eval(k, state, locals, lhs, depth);
            let b = eval(k, state, locals, rhs, depth);
            eval_binary(*op, &a, &b)
        }
        KExprKind::Ternary { cond, then_expr, else_expr } => {
            let c = eval(k, state, locals, cond, depth);
            match c.truthy() {
                Some(true) => eval(k, state, locals, then_expr, depth),
                Some(false) => eval(k, state, locals, else_expr, depth),
                None => {
                    // Verilog merge semantics: equal bits survive, else x.
                    let t = eval(k, state, locals, then_expr, depth);
                    let e = eval(k, state, locals, else_expr, depth);
                    merge_arms(&t, &e)
                }
            }
        }
        KExprKind::Concat(parts) => {
            let mut acc: Option<LogicVec> = None;
            for part in parts.iter() {
                let v = eval(k, state, locals, part, depth);
                acc = Some(match acc {
                    None => v,
                    Some(hi) => hi.concat(&v),
                });
            }
            acc.unwrap_or_else(|| LogicVec::zeros(1))
        }
        KExprKind::Replicate { count, value } => {
            let n = replicate_count(&eval(k, state, locals, count, depth));
            eval(k, state, locals, value, depth).replicate(n)
        }
        KExprKind::Index { base, index } => {
            let idx = eval(k, state, locals, index, depth);
            let Some(idx) = idx.to_u64().map(|v| v as i64) else {
                return LogicVec::xs(1);
            };
            eval_index(k, state, locals, base, idx, depth)
        }
        KExprKind::Select { base, left, right, mode } => {
            eval_select(k, state, locals, base, left, right, *mode, depth)
        }
        KExprKind::Call { func, args } => call_function(k, state, locals, *func, args, depth),
        KExprKind::Clog2(arg) => {
            let v = arg.as_ref().map(|a| eval(k, state, locals, a, depth));
            clog2_val(v.as_ref())
        }
        KExprKind::Pass(arg) => arg
            .as_ref()
            .map(|a| eval(k, state, locals, a, depth))
            .unwrap_or_else(|| LogicVec::xs(1)),
    }
}

/// Evaluates `expr` under an assignment context of `want` bits, applying
/// Verilog's context-determined width rules: operands of arithmetic,
/// bitwise, shift-left and conditional operators widen to the assignment
/// width *before* the operation, so carries out of the natural width are
/// preserved (`{cout, sum} = a + b`). Self-determined contexts
/// (comparisons, reductions, concatenations, indices) fall back to [`eval`].
fn eval_sized(
    k: &Kernel,
    state: &[StateValue],
    locals: &[LogicVec],
    expr: &KExpr,
    want: u32,
    depth: usize,
) -> LogicVec {
    use BinaryOp::*;
    // Verilog context sizing: the expression is evaluated at the *maximum*
    // of the assignment width and every context-determined operand's
    // natural width (a 32-bit literal divisor must not be truncated to the
    // target's 2 bits). Natural widths were precomputed at lowering.
    let target = want.max(expr.nat);
    match &expr.kind {
        KExprKind::Binary { op, lhs, rhs } => match op {
            Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                let a = eval_sized(k, state, locals, lhs, target, depth).resize(target);
                let b = eval_sized(k, state, locals, rhs, target, depth).resize(target);
                eval_binary(*op, &a, &b).resize(target)
            }
            Shl | AShl | Shr | AShr => {
                let a = eval_sized(k, state, locals, lhs, target, depth).resize(target);
                let b = eval(k, state, locals, rhs, depth);
                eval_binary(*op, &a, &b).resize(target)
            }
            _ => eval(k, state, locals, expr, depth).resize(target),
        },
        KExprKind::Unary { op, operand } => match op {
            UnaryOp::BitNot | UnaryOp::Neg | UnaryOp::Plus => {
                let v = eval_sized(k, state, locals, operand, target, depth).resize(target);
                match op {
                    UnaryOp::BitNot => v.not(),
                    UnaryOp::Neg => v.neg(),
                    _ => v,
                }
            }
            _ => eval(k, state, locals, expr, depth).resize(target),
        },
        KExprKind::Ternary { cond, then_expr, else_expr } => {
            let c = eval(k, state, locals, cond, depth);
            match c.truthy() {
                Some(true) => eval_sized(k, state, locals, then_expr, target, depth).resize(target),
                Some(false) => eval_sized(k, state, locals, else_expr, target, depth).resize(target),
                None => eval(k, state, locals, expr, depth).resize(target),
            }
        }
        _ => eval(k, state, locals, expr, depth).resize(target),
    }
}

/// The unary-operator arm of [`eval`], shared with the tape compiler's
/// constant folder and the tape executor.
pub(crate) fn eval_unary(op: UnaryOp, v: LogicVec) -> LogicVec {
    match op {
        UnaryOp::Plus => v,
        UnaryOp::Neg => v.neg(),
        UnaryOp::Not => match v.truthy() {
            Some(b) => LogicVec::from_u64(1, (!b) as u64),
            None => LogicVec::xs(1),
        },
        UnaryOp::BitNot => v.not(),
        UnaryOp::RedAnd => v.reduce(ReduceOp::And),
        UnaryOp::RedOr => v.reduce(ReduceOp::Or),
        UnaryOp::RedXor => v.reduce(ReduceOp::Xor),
        UnaryOp::RedNand => v.reduce(ReduceOp::And).not(),
        UnaryOp::RedNor => v.reduce(ReduceOp::Or).not(),
        UnaryOp::RedXnor => v.reduce(ReduceOp::Xor).not(),
    }
}

/// Verilog merge of an x-condition ternary: equal bits survive, else x.
pub(crate) fn merge_arms(t: &LogicVec, e: &LogicVec) -> LogicVec {
    let width = t.width().max(e.width());
    let (t, e) = (t.resize(width), e.resize(width));
    LogicVec::from_bits(
        (0..width).map(|i| if t.bit(i) == e.bit(i) { t.bit(i) } else { Bit::X }),
    )
}

/// Replication-count clamp (unknown counts default to 1).
pub(crate) fn replicate_count(v: &LogicVec) -> u32 {
    v.to_u64().unwrap_or(1).clamp(1, 4096) as u32
}

/// `$clog2` result (missing/x arguments count as 0).
pub(crate) fn clog2_val(arg: Option<&LogicVec>) -> LogicVec {
    let v = arg.and_then(|v| v.to_u64()).unwrap_or(0);
    LogicVec::from_u64(32, rtlfixer_verilog::const_eval::clog2(v as i64) as u64)
}

/// Zero-based bit index into a computed value (local / expression bases).
pub(crate) fn index_bit(v: &LogicVec, idx: i64) -> LogicVec {
    if idx >= 0 && (idx as u32) < v.width() {
        v.slice(idx as u32, idx as u32)
    } else {
        LogicVec::xs(1)
    }
}

/// `(hi_idx, lo_idx)` of a part select, before offset mapping.
pub(crate) fn select_bounds(l: i64, r: i64, mode: SelectMode) -> (i64, i64) {
    match mode {
        SelectMode::Range => (l, r),
        SelectMode::IndexedUp => (l + r - 1, l),
        SelectMode::IndexedDown => (l, l - r + 1),
    }
}

/// The generic (zero-based) part-select tail of [`eval_select`].
pub(crate) fn select_generic(v: &LogicVec, hi_idx: i64, lo_idx: i64) -> LogicVec {
    let (hi, lo) = (hi_idx.max(lo_idx), hi_idx.min(lo_idx));
    if lo < 0 {
        return LogicVec::xs((hi - lo + 1) as u32);
    }
    v.slice(hi as u32, lo as u32)
}

/// One case-label comparison.
pub(crate) fn case_hit(kind: CaseKind, s: &LogicVec, l: &LogicVec) -> bool {
    match kind {
        CaseKind::Case => s.eq_case(l).to_u64() == Some(1),
        CaseKind::Casez => s.matches_wildcard(l, false),
        CaseKind::Casex => s.matches_wildcard(l, true),
    }
}

pub(crate) fn eval_binary(op: BinaryOp, a: &LogicVec, b: &LogicVec) -> LogicVec {
    use BinaryOp::*;
    let width = a.width().max(b.width());
    match op {
        Add => a.add(b),
        Sub => a.sub(b),
        Mul | Div | Mod | Pow => {
            let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) else {
                return LogicVec::xs(width);
            };
            let result = match op {
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return LogicVec::xs(width);
                    }
                    x / y
                }
                Mod => {
                    if y == 0 {
                        return LogicVec::xs(width);
                    }
                    x % y
                }
                Pow => {
                    let mut acc: u128 = 1;
                    for _ in 0..y.min(128) {
                        acc = acc.wrapping_mul(x);
                    }
                    acc
                }
                _ => unreachable!(),
            };
            LogicVec::from_u128(width, result)
        }
        BitAnd => a.and(b),
        BitOr => a.or(b),
        BitXor => a.xor(b),
        BitXnor => a.xor(b).not(),
        LogAnd => match (a.truthy(), b.truthy()) {
            (Some(false), _) | (_, Some(false)) => LogicVec::from_u64(1, 0),
            (Some(true), Some(true)) => LogicVec::from_u64(1, 1),
            _ => LogicVec::xs(1),
        },
        LogOr => match (a.truthy(), b.truthy()) {
            (Some(true), _) | (_, Some(true)) => LogicVec::from_u64(1, 1),
            (Some(false), Some(false)) => LogicVec::from_u64(1, 0),
            _ => LogicVec::xs(1),
        },
        Eq => a.eq_logic(b),
        Ne => a.eq_logic(b).not(),
        CaseEq => a.eq_case(b),
        CaseNe => a.eq_case(b).not(),
        Lt => a.lt(b),
        Gt => b.lt(a),
        Le => b.lt(a).not(),
        Ge => a.lt(b).not(),
        Shl | AShl => match b.to_u64() {
            Some(n) => a.shl(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
        Shr => match b.to_u64() {
            Some(n) => a.shr(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
        AShr => match b.to_u64() {
            Some(n) => a.ashr(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
    }
}

fn eval_index(
    k: &Kernel,
    state: &[StateValue],
    locals: &[LogicVec],
    base: &KBase,
    idx: i64,
    depth: usize,
) -> LogicVec {
    match base {
        KBase::Local(slot) => {
            // Locals: raw zero-based indexing.
            index_bit(&locals[*slot as usize], idx)
        }
        KBase::Sig(id) => {
            let def = &k.sigs[*id as usize].def;
            match &state[*id as usize] {
                StateValue::Array(words) => match def.word_offset(idx) {
                    Some(slot) => words[slot].clone(),
                    None => LogicVec::xs(def.width),
                },
                StateValue::Vec(v) => match def.offset(idx) {
                    Some(off) => v.slice(off, off),
                    None => LogicVec::xs(1),
                },
            }
        }
        KBase::Expr(e) => {
            // Index on a computed expression: zero-based.
            index_bit(&eval(k, state, locals, e, depth), idx)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_select(
    k: &Kernel,
    state: &[StateValue],
    locals: &[LogicVec],
    base: &KBase,
    left: &KExpr,
    right: &KExpr,
    mode: SelectMode,
    depth: usize,
) -> LogicVec {
    let l = eval(k, state, locals, left, depth).to_u64().map(|v| v as i64);
    let r = eval(k, state, locals, right, depth).to_u64().map(|v| v as i64);
    let (Some(l), Some(r)) = (l, r) else { return LogicVec::xs(1) };
    let (hi_idx, lo_idx) = select_bounds(l, r, mode);
    if let KBase::Sig(id) = base {
        let def = &k.sigs[*id as usize].def;
        if let StateValue::Vec(v) = &state[*id as usize] {
            let (hi_off, lo_off) = match (def.offset(hi_idx), def.offset(lo_idx)) {
                (Some(a), Some(b)) => (a.max(b), a.min(b)),
                _ => return LogicVec::xs((hi_idx.abs_diff(lo_idx) + 1) as u32),
            };
            return v.slice(hi_off, lo_off);
        }
    }
    let v = match base {
        KBase::Local(slot) => locals[*slot as usize].clone(),
        // Only reached for memories (vector signals returned above), which
        // evaluate to a 1-bit x like any whole-array read.
        KBase::Sig(_) => LogicVec::xs(1),
        KBase::Expr(e) => eval(k, state, locals, e, depth),
    };
    select_generic(&v, hi_idx, lo_idx)
}

fn call_function(
    k: &Kernel,
    state: &[StateValue],
    locals: &[LogicVec],
    fid: u32,
    args: &[KExpr],
    depth: usize,
) -> LogicVec {
    if depth >= MAX_CALL_DEPTH {
        return LogicVec::xs(1);
    }
    let f = &k.funcs[fid as usize];
    let mut frame = vec![LogicVec::zeros(1); f.nlocals as usize];
    for ((slot, width), arg) in f.args.iter().zip(args) {
        // Arguments are evaluated in the caller's context.
        frame[*slot as usize] = eval(k, state, locals, arg, depth).resize(*width);
    }
    frame[f.ret_slot as usize] = LogicVec::zeros(f.ret_width);
    // Functions are side-effect free in our subset: execute against a state
    // clone so stray writes cannot corrupt the design.
    let mut shadow = state.to_vec();
    exec(k, &mut shadow, &mut frame, &f.body, &mut None, &mut None, depth + 1);
    frame[f.ret_slot as usize].clone()
}

// ---- statement execution -----------------------------------------------------

fn exec(
    k: &Kernel,
    state: &mut [StateValue],
    locals: &mut [LogicVec],
    stmt: &KStmt,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
    depth: usize,
) {
    match stmt {
        KStmt::Block { zero, stmts } => {
            // Entering the block re-zeroes its declarations (a fresh frame
            // in the old interpreter).
            for (slot, width) in zero.iter() {
                locals[*slot as usize] = LogicVec::zeros(*width);
            }
            for stmt in stmts.iter() {
                exec(k, state, locals, stmt, nba, log, depth);
            }
        }
        KStmt::Assign { lhs, op, rhs } => {
            let width = lval_width(k, state, locals, lhs);
            let value = eval_sized(k, state, locals, rhs, width, depth);
            match op {
                AssignOp::Blocking => {
                    assign(k, state, locals, lhs, value, &mut None, log);
                }
                AssignOp::NonBlocking => {
                    assign(k, state, locals, lhs, value, nba, log);
                }
            }
        }
        KStmt::If { cond, then_branch, else_branch } => {
            let c = eval(k, state, locals, cond, depth);
            if c.truthy() == Some(true) {
                exec(k, state, locals, then_branch, nba, log, depth);
            } else if let Some(els) = else_branch {
                exec(k, state, locals, els, nba, log, depth);
            }
        }
        KStmt::Case { kind, scrutinee, arms, default } => {
            let s = eval(k, state, locals, scrutinee, depth);
            for arm in arms.iter() {
                for label in arm.labels.iter() {
                    let l = eval(k, state, locals, label, depth);
                    if case_hit(*kind, &s, &l) {
                        exec(k, state, locals, &arm.body, nba, log, depth);
                        return;
                    }
                }
            }
            if let Some(default) = default {
                exec(k, state, locals, default, nba, log, depth);
            }
        }
        KStmt::For { decl_slot, var, init, cond, step, body } => {
            if let Some(slot) = decl_slot {
                locals[*slot as usize] = LogicVec::zeros(32);
            }
            let init_val = eval(k, state, locals, init, depth);
            write_ref(k, state, locals, log, var, init_val);
            let mut guard = 0usize;
            loop {
                let c = eval(k, state, locals, cond, depth);
                if c.truthy() != Some(true) {
                    break;
                }
                exec(k, state, locals, body, nba, log, depth);
                let next = eval(k, state, locals, step, depth);
                write_ref(k, state, locals, log, var, next);
                guard += 1;
                if guard >= MAX_LOOP {
                    break;
                }
            }
        }
        KStmt::While { cond, body } => {
            let mut guard = 0usize;
            loop {
                let c = eval(k, state, locals, cond, depth);
                if c.truthy() != Some(true) {
                    break;
                }
                exec(k, state, locals, body, nba, log, depth);
                guard += 1;
                if guard >= MAX_LOOP {
                    break;
                }
            }
        }
        KStmt::Repeat { count, body } => {
            let n = eval(k, state, locals, count, depth).to_u64().unwrap_or(0).min(MAX_LOOP as u64);
            for _ in 0..n {
                exec(k, state, locals, body, nba, log, depth);
            }
        }
        KStmt::Nop => {}
    }
}

/// Writes a plain variable: local slot or module signal.
fn write_ref(
    k: &Kernel,
    state: &mut [StateValue],
    locals: &mut [LogicVec],
    log: &mut Option<WriteLog<'_>>,
    var: &KVarRef,
    value: LogicVec,
) {
    match var {
        KVarRef::Local(slot) => {
            let width = locals[*slot as usize].width();
            locals[*slot as usize] = value.resize(width);
        }
        KVarRef::Sig(id) => {
            let width = k.sigs[*id as usize].def.width;
            set_state(state, log, *id, StateValue::Vec(value.resize(width)));
        }
        KVarRef::None => {}
    }
}

/// Width of an l-value part, for concat splitting.
fn lval_width(k: &Kernel, state: &[StateValue], locals: &[LogicVec], lhs: &KLval) -> u32 {
    match lhs {
        KLval::Whole { width, .. } | KLval::Index { width, .. } => *width,
        KLval::Select { left, right, mode, .. } => {
            let l = eval(k, state, locals, left, 0).to_u64().unwrap_or(0) as i64;
            let r = eval(k, state, locals, right, 0).to_u64().unwrap_or(0) as i64;
            match mode {
                SelectMode::Range => l.abs_diff(r) as u32 + 1,
                _ => r.max(1) as u32,
            }
        }
        KLval::Concat(parts) => parts.iter().map(|p| lval_width(k, state, locals, p)).sum(),
    }
}

/// Resolves and performs (or schedules) an assignment to `lhs`. Local
/// writes commit immediately even under `<=`; signal writes go through
/// `dispatch` (queued when `nba` is active, committed otherwise). Index and
/// select arithmetic is evaluated self-determined (depth 0), like the old
/// `resolve_target`.
fn assign(
    k: &Kernel,
    state: &mut [StateValue],
    locals: &mut [LogicVec],
    lhs: &KLval,
    value: LogicVec,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
) {
    match lhs {
        KLval::Concat(parts) => {
            let total: u32 = parts.iter().map(|p| lval_width(k, state, locals, p)).sum();
            let value = value.resize(total);
            // Parts are MSB-first; slice the value top-down.
            let mut hi = total;
            for part in parts.iter() {
                let w = lval_width(k, state, locals, part);
                let lo = hi - w;
                let chunk = value.slice(hi - 1, lo);
                assign(k, state, locals, part, chunk, nba, log);
                hi = lo;
            }
        }
        KLval::Whole { target, .. } => match target {
            KVarRef::Local(slot) => {
                // Local variable: immediate write regardless of <=.
                let width = locals[*slot as usize].width();
                locals[*slot as usize] = value.resize(width);
            }
            KVarRef::Sig(id) => {
                dispatch(state, log, nba, NbaWrite { target: Target::Whole(*id), value });
            }
            KVarRef::None => {}
        },
        KLval::Index { target, index, .. } => match target {
            KVarRef::None => {}
            KVarRef::Local(slot) => {
                let Some(idx) = eval(k, state, locals, index, 0).to_u64().map(|v| v as u32) else {
                    return;
                };
                write_local_bits(locals, *slot, idx, idx, value);
            }
            KVarRef::Sig(id) => {
                let Some(idx) = eval(k, state, locals, index, 0).to_u64().map(|v| v as i64) else {
                    return;
                };
                let def = &k.sigs[*id as usize].def;
                let target = if def.words.is_some() {
                    let Some(slot) = def.word_offset(idx) else { return };
                    Target::Word(*id, slot)
                } else {
                    let Some(off) = def.offset(idx) else { return };
                    Target::Bits(*id, off, off)
                };
                dispatch(state, log, nba, NbaWrite { target, value });
            }
        },
        KLval::Select { target, word, left, right, mode } => match target {
            KVarRef::None => {}
            KVarRef::Local(slot) => {
                let l = eval(k, state, locals, left, 0).to_u64().unwrap_or(0) as i64;
                let r = eval(k, state, locals, right, 0).to_u64().unwrap_or(0) as i64;
                let (hi, lo) = match mode {
                    SelectMode::Range => (l.max(r), l.min(r)),
                    SelectMode::IndexedUp => (l + r - 1, l),
                    SelectMode::IndexedDown => (l, l - r + 1),
                };
                if lo < 0 {
                    return;
                }
                write_local_bits(locals, *slot, hi as u32, lo as u32, value);
            }
            KVarRef::Sig(id) => {
                let Some(l) = eval(k, state, locals, left, 0).to_u64().map(|v| v as i64) else {
                    return;
                };
                let Some(r) = eval(k, state, locals, right, 0).to_u64().map(|v| v as i64) else {
                    return;
                };
                let (hi_idx, lo_idx) = match mode {
                    SelectMode::Range => (l, r),
                    SelectMode::IndexedUp => (l + r - 1, l),
                    SelectMode::IndexedDown => (l, l - r + 1),
                };
                let def = &k.sigs[*id as usize].def;
                // A select on a memory word (`mem[i][3:0]`) carries the word
                // index; the common vector case has `word == None`.
                let target = if let Some(word) = word {
                    let Some(widx) = eval(k, state, locals, word, 0).to_u64().map(|v| v as i64)
                    else {
                        return;
                    };
                    let Some(slot) = def.word_offset(widx) else { return };
                    let Some(hi) = def.offset(hi_idx) else { return };
                    let Some(lo) = def.offset(lo_idx) else { return };
                    Target::WordBits(*id, slot, hi.max(lo), hi.min(lo))
                } else {
                    let Some(hi) = def.offset(hi_idx) else { return };
                    let Some(lo) = def.offset(lo_idx) else { return };
                    Target::Bits(*id, hi.max(lo), hi.min(lo))
                };
                dispatch(state, log, nba, NbaWrite { target, value });
            }
        },
    }
}

/// Updates bits `hi..=lo` of a local slot (bounds-checked like the old
/// `write_local_select`).
fn write_local_bits(locals: &mut [LogicVec], slot: u32, hi: u32, lo: u32, value: LogicVec) {
    let current = &locals[slot as usize];
    if hi < current.width() {
        let mut updated = current.clone();
        let chunk = value.resize(hi - lo + 1);
        for i in lo..=hi {
            updated.set_bit(i, chunk.bit(i - lo));
        }
        locals[slot as usize] = updated;
    }
}

/// Queues the write when non-blocking assignment is active, else commits.
fn dispatch(
    state: &mut [StateValue],
    log: &mut Option<WriteLog<'_>>,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    write: NbaWrite,
) {
    match nba {
        Some(queue) => queue.push(write),
        None => commit(state, log, write),
    }
}

fn commit(state: &mut [StateValue], log: &mut Option<WriteLog<'_>>, write: NbaWrite) {
    match write.target {
        Target::Whole(id) => match &state[id as usize] {
            StateValue::Vec(old) => {
                let width = old.width();
                set_state(state, log, id, StateValue::Vec(write.value.resize(width)));
            }
            // Whole-array assignment unsupported; ignore.
            StateValue::Array(_) => {}
        },
        Target::Bits(id, hi, lo) => {
            if let StateValue::Vec(old) = &state[id as usize] {
                if hi < old.width() {
                    let mut updated = old.clone();
                    let chunk = write.value.resize(hi - lo + 1);
                    for i in lo..=hi {
                        updated.set_bit(i, chunk.bit(i - lo));
                    }
                    set_state(state, log, id, StateValue::Vec(updated));
                }
            }
        }
        Target::Word(id, slot) => {
            let new = {
                let StateValue::Array(words) = &state[id as usize] else { return };
                let Some(word) = words.get(slot) else { return };
                let new = write.value.resize(word.width());
                if *word == new {
                    return;
                }
                new
            };
            note_change(state, log, id);
            if let StateValue::Array(words) = &mut state[id as usize] {
                words[slot] = new;
            }
        }
        Target::WordBits(id, slot, hi, lo) => {
            let updated = {
                let StateValue::Array(words) = &state[id as usize] else { return };
                let Some(word) = words.get(slot) else { return };
                if hi >= word.width() {
                    return;
                }
                let mut updated = word.clone();
                let chunk = write.value.resize(hi - lo + 1);
                for i in lo..=hi {
                    updated.set_bit(i, chunk.bit(i - lo));
                }
                if updated == *word {
                    return;
                }
                updated
            };
            note_change(state, log, id);
            if let StateValue::Array(words) = &mut state[id as usize] {
                words[slot] = updated;
            }
        }
    }
}

// ---- tape execution ---------------------------------------------------------

/// Routes a tape signal write: queued when the op is non-blocking *and* an
/// NBA queue is active, committed immediately otherwise (mirroring the
/// tree walker, where non-blocking assignments in combinational context
/// commit like blocking ones).
fn tape_dispatch(
    state: &mut [StateValue],
    log: &mut Option<WriteLog<'_>>,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    nb: bool,
    write: NbaWrite,
) {
    if nb {
        dispatch(state, log, nba, write);
    } else {
        commit(state, log, write);
    }
}

/// The `KBase::Sig` part-select path of [`eval_select`], over pre-evaluated
/// bounds (used by `Op::SelectSig` / `Op::SelectSigW`).
fn select_sig_value(
    k: &Kernel,
    state: &[StateValue],
    sig: SigId,
    l: Option<i64>,
    r: Option<i64>,
    mode: SelectMode,
) -> LogicVec {
    let (Some(l), Some(r)) = (l, r) else { return LogicVec::xs(1) };
    let (hi_idx, lo_idx) = select_bounds(l, r, mode);
    let def = &k.sigs[sig as usize].def;
    if let StateValue::Vec(v) = &state[sig as usize] {
        let (hi_off, lo_off) = match (def.offset(hi_idx), def.offset(lo_idx)) {
            (Some(a), Some(b)) => (a.max(b), a.min(b)),
            _ => return LogicVec::xs((hi_idx.abs_diff(lo_idx) + 1) as u32),
        };
        return v.slice(hi_off, lo_off);
    }
    // Memories: a whole-array read is a 1-bit x, selected generically.
    select_generic(&LogicVec::xs(1), hi_idx, lo_idx)
}

/// Runs `tape`, attempting the two-state fast variant first when present.
/// Returns `Some(true)` for a completed fast run, `Some(false)` when the
/// fast run aborted (x/z in the cone or a would-be-x op) and the
/// four-state ops re-ran, `None` when no fast variant exists.
fn run_tape_auto(
    k: &Kernel,
    state: &mut [StateValue],
    tape: &Tape,
    scratch: &mut TapeScratch,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
) -> Option<bool> {
    if let Some(fast) = &tape.fast {
        let TapeScratch { fregs, fctrs, forig, fnba, .. } = scratch;
        let ok = match fast.limbs {
            1 => {
                if threaded_enabled() {
                    crate::thread::run_threaded(
                        k, state, fast, tape.nctrs, fregs, fctrs, forig, fnba, nba, log,
                    )
                } else {
                    crate::fast::run_fast_tape::<1>(
                        k, state, fast, tape.nctrs, fregs, fctrs, forig, fnba, nba, log,
                    )
                }
            }
            2 => crate::fast::run_fast_tape::<2>(
                k, state, fast, tape.nctrs, fregs, fctrs, forig, fnba, nba, log,
            ),
            _ => crate::fast::run_fast_tape::<4>(
                k, state, fast, tape.nctrs, fregs, fctrs, forig, fnba, nba, log,
            ),
        };
        if ok {
            return Some(true);
        }
        // The aborted fast run buffered everything: no state was mutated.
        run_tape(k, state, tape, &mut scratch.regs, &mut scratch.ctrs, nba, log);
        return Some(false);
    }
    run_tape(k, state, tape, &mut scratch.regs, &mut scratch.ctrs, nba, log);
    None
}

/// Executes a four-state tape. Register slots `[0, nlocals)` are the
/// procedural locals slab (handed to [`exec`] verbatim for [`Op::Tree`]
/// escapes); every op mirrors one step of the tree walker exactly, via the
/// same semantic helpers.
fn run_tape(
    k: &Kernel,
    state: &mut [StateValue],
    tape: &Tape,
    regs: &mut Vec<LogicVec>,
    ctrs: &mut Vec<u64>,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
) {
    regs.clear();
    regs.resize(tape.nregs as usize, LogicVec::zeros(1));
    ctrs.clear();
    ctrs.resize(tape.nctrs as usize, 0);
    let nlocals = tape.nlocals as usize;
    let ops = &tape.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Const { dst, c } => regs[*dst as usize] = tape.consts[*c as usize].clone(),
            Op::LoadSig { dst, sig } => {
                regs[*dst as usize] = match &state[*sig as usize] {
                    StateValue::Vec(v) => v.clone(),
                    StateValue::Array(_) => LogicVec::xs(1),
                }
            }
            Op::LoadWord { dst, sig, slot } => {
                regs[*dst as usize] = match &state[*sig as usize] {
                    StateValue::Array(words) => words[*slot].clone(),
                    // A memory whose state slot was overwritten to a vector:
                    // read like an out-of-range word.
                    StateValue::Vec(_) => LogicVec::xs(k.sigs[*sig as usize].def.width),
                }
            }
            Op::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
            Op::Unary { dst, op, src } => {
                let v = eval_unary(*op, regs[*src as usize].clone());
                regs[*dst as usize] = v;
            }
            Op::Binary { dst, op, a, b } => {
                let v = eval_binary(*op, &regs[*a as usize], &regs[*b as usize]);
                regs[*dst as usize] = v;
            }
            Op::Resize { dst, src, width } => {
                let v = regs[*src as usize].resize(*width);
                regs[*dst as usize] = v;
            }
            Op::Merge { dst, t, e } => {
                let v = merge_arms(&regs[*t as usize], &regs[*e as usize]);
                regs[*dst as usize] = v;
            }
            Op::Concat { dst, parts } => {
                let mut acc = regs[parts[0] as usize].clone();
                for &p in &parts[1..] {
                    acc = acc.concat(&regs[p as usize]);
                }
                regs[*dst as usize] = acc;
            }
            Op::ReplicateC { dst, src, count } => {
                let v = regs[*src as usize].replicate(*count);
                regs[*dst as usize] = v;
            }
            Op::ReplicateDyn { dst, count, val } => {
                let n = replicate_count(&regs[*count as usize]);
                let v = regs[*val as usize].replicate(n);
                regs[*dst as usize] = v;
            }
            Op::Slice { dst, src, hi, lo } => {
                let v = regs[*src as usize].slice(*hi, *lo);
                regs[*dst as usize] = v;
            }
            Op::SliceSig { dst, sig, hi, lo } => {
                regs[*dst as usize] = match &state[*sig as usize] {
                    StateValue::Vec(v) => v.slice(*hi, *lo),
                    StateValue::Array(_) => LogicVec::xs(*hi - *lo + 1),
                }
            }
            Op::IndexSig { dst, sig, idx } => {
                let def = &k.sigs[*sig as usize].def;
                let v = match regs[*idx as usize].to_u64().map(|v| v as i64) {
                    None => LogicVec::xs(1),
                    Some(i) => match &state[*sig as usize] {
                        StateValue::Array(words) => match def.word_offset(i) {
                            Some(slot) => words[slot].clone(),
                            None => LogicVec::xs(def.width),
                        },
                        StateValue::Vec(v) => match def.offset(i) {
                            Some(off) => v.slice(off, off),
                            None => LogicVec::xs(1),
                        },
                    },
                };
                regs[*dst as usize] = v;
            }
            Op::IndexVal { dst, base, idx } => {
                let v = match regs[*idx as usize].to_u64().map(|v| v as i64) {
                    None => LogicVec::xs(1),
                    Some(i) => index_bit(&regs[*base as usize], i),
                };
                regs[*dst as usize] = v;
            }
            Op::IndexValC { dst, base, idx } => {
                let v = index_bit(&regs[*base as usize], *idx);
                regs[*dst as usize] = v;
            }
            Op::SelectSig { dst, sig, left, right, mode } => {
                let l = regs[*left as usize].to_u64().map(|v| v as i64);
                let r = regs[*right as usize].to_u64().map(|v| v as i64);
                regs[*dst as usize] = select_sig_value(k, state, *sig, l, r, *mode);
            }
            Op::SelectSigW { dst, sig, left, span, mode } => {
                let l = regs[*left as usize].to_u64().map(|v| v as i64);
                regs[*dst as usize] = select_sig_value(k, state, *sig, l, Some(*span), *mode);
            }
            Op::SelectVal { dst, base, left, right, mode } => {
                let l = regs[*left as usize].to_u64().map(|v| v as i64);
                let r = regs[*right as usize].to_u64().map(|v| v as i64);
                let v = match (l, r) {
                    (Some(l), Some(r)) => {
                        let (hi, lo) = select_bounds(l, r, *mode);
                        select_generic(&regs[*base as usize], hi, lo)
                    }
                    _ => LogicVec::xs(1),
                };
                regs[*dst as usize] = v;
            }
            Op::SelectValW { dst, base, left, span, mode } => {
                let v = match regs[*left as usize].to_u64().map(|v| v as i64) {
                    Some(l) => {
                        let (hi, lo) = select_bounds(l, *span, *mode);
                        select_generic(&regs[*base as usize], hi, lo)
                    }
                    None => LogicVec::xs(1),
                };
                regs[*dst as usize] = v;
            }
            Op::Call { dst, func, args } => {
                let f = &k.funcs[*func as usize];
                let mut frame = vec![LogicVec::zeros(1); f.nlocals as usize];
                for (&(slot, width), &arg) in f.args.iter().zip(args.iter()) {
                    frame[slot as usize] = regs[arg as usize].resize(width);
                }
                frame[f.ret_slot as usize] = LogicVec::zeros(f.ret_width);
                // Same side-effect isolation as `call_function`.
                let mut shadow = state.to_vec();
                exec(k, &mut shadow, &mut frame, &f.body, &mut None, &mut None, 1);
                regs[*dst as usize] = frame[f.ret_slot as usize].clone();
            }
            Op::Clog2 { dst, src } => {
                let v = clog2_val(Some(&regs[*src as usize]));
                regs[*dst as usize] = v;
            }
            Op::ZeroLocal { slot, width } => regs[*slot as usize] = LogicVec::zeros(*width),
            Op::StoreLocal { slot, src, .. } => {
                // Locals resize to their *current* width, like the tree's
                // whole-local write (the baked width serves the fast path).
                let width = regs[*slot as usize].width();
                let v = regs[*src as usize].resize(width);
                regs[*slot as usize] = v;
            }
            Op::StoreLocalBits { slot, idx, src } => {
                if let Some(i) = regs[*idx as usize].to_u64().map(|v| v as u32) {
                    let value = regs[*src as usize].clone();
                    write_local_bits(regs, *slot, i, i, value);
                }
            }
            Op::StoreLocalBitsC { slot, hi, lo, src } => {
                let value = regs[*src as usize].clone();
                write_local_bits(regs, *slot, *hi, *lo, value);
            }
            Op::StoreLocalSel { slot, left, right, mode, src } => {
                let l = regs[*left as usize].to_u64().unwrap_or(0) as i64;
                let r = regs[*right as usize].to_u64().unwrap_or(0) as i64;
                let (hi, lo) = match mode {
                    SelectMode::Range => (l.max(r), l.min(r)),
                    SelectMode::IndexedUp => (l + r - 1, l),
                    SelectMode::IndexedDown => (l, l - r + 1),
                };
                if lo >= 0 {
                    let value = regs[*src as usize].clone();
                    write_local_bits(regs, *slot, hi as u32, lo as u32, value);
                }
            }
            Op::SetSigVec { sig, src, width } => {
                let v = regs[*src as usize].resize(*width);
                set_state(state, log, *sig, StateValue::Vec(v));
            }
            Op::StoreWhole { sig, src, nb } => {
                let value = regs[*src as usize].clone();
                tape_dispatch(state, log, nba, *nb, NbaWrite { target: Target::Whole(*sig), value });
            }
            Op::StoreIndexSig { sig, idx, src, nb } => {
                if let Some(i) = regs[*idx as usize].to_u64().map(|v| v as i64) {
                    let def = &k.sigs[*sig as usize].def;
                    let target = if def.words.is_some() {
                        def.word_offset(i).map(|slot| Target::Word(*sig, slot))
                    } else {
                        def.offset(i).map(|off| Target::Bits(*sig, off, off))
                    };
                    if let Some(target) = target {
                        let value = regs[*src as usize].clone();
                        tape_dispatch(state, log, nba, *nb, NbaWrite { target, value });
                    }
                }
            }
            Op::StoreBitsC { sig, hi, lo, src, nb } => {
                let value = regs[*src as usize].clone();
                tape_dispatch(
                    state,
                    log,
                    nba,
                    *nb,
                    NbaWrite { target: Target::Bits(*sig, *hi, *lo), value },
                );
            }
            Op::StoreWordC { sig, slot, src, nb } => {
                let value = regs[*src as usize].clone();
                tape_dispatch(
                    state,
                    log,
                    nba,
                    *nb,
                    NbaWrite { target: Target::Word(*sig, *slot), value },
                );
            }
            Op::StoreWordBitsC { sig, slot, hi, lo, src, nb } => {
                let value = regs[*src as usize].clone();
                tape_dispatch(
                    state,
                    log,
                    nba,
                    *nb,
                    NbaWrite { target: Target::WordBits(*sig, *slot, *hi, *lo), value },
                );
            }
            Op::StoreSelSig { sig, word, left, right, mode, src, nb } => 'store: {
                let Some(l) = regs[*left as usize].to_u64().map(|v| v as i64) else {
                    break 'store;
                };
                let Some(r) = regs[*right as usize].to_u64().map(|v| v as i64) else {
                    break 'store;
                };
                let (hi_idx, lo_idx) = match mode {
                    SelectMode::Range => (l, r),
                    SelectMode::IndexedUp => (l + r - 1, l),
                    SelectMode::IndexedDown => (l, l - r + 1),
                };
                let def = &k.sigs[*sig as usize].def;
                let target = if let Some(word) = word {
                    let Some(widx) = regs[*word as usize].to_u64().map(|v| v as i64) else {
                        break 'store;
                    };
                    let Some(slot) = def.word_offset(widx) else { break 'store };
                    let Some(hi) = def.offset(hi_idx) else { break 'store };
                    let Some(lo) = def.offset(lo_idx) else { break 'store };
                    Target::WordBits(*sig, slot, hi.max(lo), hi.min(lo))
                } else {
                    let Some(hi) = def.offset(hi_idx) else { break 'store };
                    let Some(lo) = def.offset(lo_idx) else { break 'store };
                    Target::Bits(*sig, hi.max(lo), hi.min(lo))
                };
                let value = regs[*src as usize].clone();
                tape_dispatch(state, log, nba, *nb, NbaWrite { target, value });
            }
            Op::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            Op::BranchTruthy { cond, on_true, on_false, on_x } => {
                pc = match regs[*cond as usize].truthy() {
                    Some(true) => *on_true as usize,
                    Some(false) => *on_false as usize,
                    None => *on_x as usize,
                };
                continue;
            }
            Op::BranchMatch { kind, scrut, label, on_hit } => {
                if case_hit(*kind, &regs[*scrut as usize], &regs[*label as usize]) {
                    pc = *on_hit as usize;
                    continue;
                }
            }
            Op::ZeroCtr { ctr } => ctrs[*ctr as usize] = 0,
            Op::IncCtrJumpLt { ctr, limit, to } => {
                ctrs[*ctr as usize] += 1;
                if ctrs[*ctr as usize] < *limit as u64 {
                    pc = *to as usize;
                    continue;
                }
            }
            Op::RepeatInit { ctr, count } => {
                ctrs[*ctr as usize] =
                    regs[*count as usize].to_u64().unwrap_or(0).min(MAX_LOOP as u64);
            }
            Op::BranchCtrZeroDec { ctr, on_zero } => {
                if ctrs[*ctr as usize] == 0 {
                    pc = *on_zero as usize;
                    continue;
                }
                ctrs[*ctr as usize] -= 1;
            }
            Op::Tree { stmt } => {
                exec(k, state, &mut regs[..nlocals], stmt, nba, log, 0);
            }
        }
        pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;

    fn sim(src: &str, top: &str) -> Simulator {
        let analysis = compile(src);
        assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
        Simulator::new(&analysis, top).expect("elaborates")
    }

    fn v(width: u32, value: u64) -> LogicVec {
        LogicVec::from_u64(width, value)
    }

    #[test]
    fn combinational_inverter() {
        let mut s = sim("module inv(input [3:0] a, output [3:0] y); assign y = ~a; endmodule", "inv");
        s.poke("a", v(4, 0b1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0b0101));
    }

    #[test]
    fn mux_with_ternary() {
        let mut s = sim(
            "module mux(input sel, input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = sel ? b : a;\nendmodule",
            "mux",
        );
        s.poke("a", v(8, 11)).unwrap();
        s.poke("b", v(8, 22)).unwrap();
        s.poke("sel", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(11));
        s.poke("sel", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(22));
    }

    #[test]
    fn always_star_case() {
        let mut s = sim(
            "module dec(input [1:0] s, output reg [3:0] y);\n\
             always @* begin\ncase (s)\n2'd0: y = 4'b0001;\n2'd1: y = 4'b0010;\n\
             2'd2: y = 4'b0100;\ndefault: y = 4'b1000;\nendcase\nend\nendmodule",
            "dec",
        );
        for (input, expect) in [(0, 1), (1, 2), (2, 4), (3, 8)] {
            s.poke("s", v(2, input)).unwrap();
            s.settle().unwrap();
            assert_eq!(s.peek("y").unwrap().to_u64(), Some(expect), "s={input}");
        }
    }

    #[test]
    fn dff_updates_on_posedge_only() {
        let mut s = sim(
            "module dff(input clk, input d, output reg q);\n\
             always @(posedge clk) q <= d;\nendmodule",
            "dff",
        );
        s.poke("d", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0), "no edge yet");
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1));
        s.poke("d", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1), "holds between edges");
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn nonblocking_swap() {
        // The classic NBA test: a and b swap atomically.
        let mut s = sim(
            "module swap(input clk, output reg a, output reg b);\n\
             initial begin a = 1; b = 0; end\n\
             always @(posedge clk) begin a <= b; b <= a; end\nendmodule",
            "swap",
        );
        s.run_initial().unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(1));
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(0));
        assert_eq!(s.peek("b").unwrap().to_u64(), Some(1));
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(1));
        assert_eq!(s.peek("b").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn counter_with_sync_reset() {
        let mut s = sim(
            "module ctr(input clk, input reset, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (reset) q <= 0; else q <= q + 1;\n\
             end\nendmodule",
            "ctr",
        );
        s.poke("reset", v(1, 1)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
        s.poke("reset", v(1, 0)).unwrap();
        for i in 1..=5u64 {
            s.clock_cycle("clk").unwrap();
            assert_eq!(s.peek("q").unwrap().to_u64(), Some(i));
        }
    }

    #[test]
    fn for_loop_bit_reverse() {
        let mut s = sim(
            "module rev(input [7:0] in, output reg [7:0] out);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n\
             end\nendmodule",
            "rev",
        );
        s.poke("in", v(8, 0b1100_1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("out").unwrap().to_u64(), Some(0b0101_0011));
    }

    #[test]
    fn wide_100_bit_reverse() {
        // The paper's vector100r problem (fixed version).
        let mut s = sim(
            "module top_module(input [99:0] in, output reg [99:0] out);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 100; i = i + 1) out[i] = in[99 - i];\n\
             end\nendmodule",
            "top_module",
        );
        let input = LogicVec::from_u128(100, 0b1011);
        s.poke("in", input).unwrap();
        s.settle().unwrap();
        let out = s.peek("out").unwrap();
        assert_eq!(out.bit(99), Bit::One);
        assert_eq!(out.bit(98), Bit::One);
        assert_eq!(out.bit(97), Bit::Zero);
        assert_eq!(out.bit(96), Bit::One);
        assert_eq!(out.slice(95, 0).to_u128(), Some(0));
    }

    #[test]
    fn hierarchical_instance() {
        let mut s = sim(
            "module inv(input a, output y); assign y = ~a; endmodule\n\
             module top(input x, output z);\n\
             wire mid;\ninv u1(.a(x), .y(mid));\ninv u2(.a(mid), .y(z));\nendmodule",
            "top",
        );
        s.poke("x", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("z").unwrap().to_u64(), Some(1));
        assert_eq!(s.peek("mid").unwrap().to_u64(), Some(0));
        s.poke("x", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("z").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn generate_loop_xor() {
        let mut s = sim(
            "module gx(input [3:0] a, input [3:0] b, output [3:0] y);\n\
             genvar i;\ngenerate\n\
             for (i = 0; i < 4; i = i + 1) begin : g\n\
               assign y[i] = a[i] ^ b[i];\n\
             end\nendgenerate\nendmodule",
            "gx",
        );
        s.poke("a", v(4, 0b1100)).unwrap();
        s.poke("b", v(4, 0b1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0b0110));
    }

    #[test]
    fn memory_write_and_read() {
        let mut s = sim(
            "module ram(input clk, input we, input [3:0] addr, input [7:0] din, output [7:0] dout);\n\
             reg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule",
            "ram",
        );
        s.poke("we", v(1, 1)).unwrap();
        s.poke("addr", v(4, 3)).unwrap();
        s.poke("din", v(8, 0x5A)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0x5A));
        assert_eq!(s.peek_word("mem", 3).unwrap().to_u64(), Some(0x5A));
        s.poke("addr", v(4, 4)).unwrap();
        s.poke("we", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn function_call_popcount() {
        let mut s = sim(
            "module pc(input [7:0] a, output [3:0] y);\n\
             function [3:0] ones;\ninput [7:0] v;\ninteger i;\nbegin\n\
               ones = 0;\nfor (i = 0; i < 8; i = i + 1) ones = ones + v[i];\n\
             end\nendfunction\nassign y = ones(a);\nendmodule",
            "pc",
        );
        s.poke("a", v(8, 0b1011_0110)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(5));
    }

    #[test]
    fn concat_lvalue_assignment() {
        let mut s = sim(
            "module sp(input [7:0] a, output [3:0] hi, output [3:0] lo);\n\
             assign {hi, lo} = a;\nendmodule",
            "sp",
        );
        s.poke("a", v(8, 0xC5)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("hi").unwrap().to_u64(), Some(0xC));
        assert_eq!(s.peek("lo").unwrap().to_u64(), Some(0x5));
    }

    #[test]
    fn casez_wildcard_priority() {
        let mut s = sim(
            "module pr(input [3:0] r, output reg [1:0] y);\n\
             always @* begin\n\
               casez (r)\n\
                 4'bzzz1: y = 2'd0;\n\
                 4'bzz1z: y = 2'd1;\n\
                 4'bz1zz: y = 2'd2;\n\
                 4'b1zzz: y = 2'd3;\n\
                 default: y = 2'd0;\n\
               endcase\nend\nendmodule",
            "pr",
        );
        s.poke("r", v(4, 0b0100)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(2));
        s.poke("r", v(4, 0b0101)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0), "priority to LSB arm");
    }

    #[test]
    fn indexed_part_select_rw() {
        let mut s = sim(
            "module ip(input [31:0] a, input [1:0] s, output [7:0] y);\n\
             assign y = a[s*8 +: 8];\nendmodule",
            "ip",
        );
        s.poke("a", v(32, 0xDDCCBBAA)).unwrap();
        for (sel, expect) in [(0u64, 0xAAu64), (1, 0xBB), (2, 0xCC), (3, 0xDD)] {
            s.poke("s", v(2, sel)).unwrap();
            s.settle().unwrap();
            assert_eq!(s.peek("y").unwrap().to_u64(), Some(expect), "sel={sel}");
        }
    }

    #[test]
    fn combinational_loop_detected() {
        let mut s = sim(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
            "osc",
        );
        s.poke("a", v(1, 0)).unwrap();
        match s.settle() {
            Err(SimError::Unstable { signals }) => {
                assert!(
                    signals.iter().any(|n| n == "n"),
                    "oscillating net should be named: {signals:?}"
                );
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
    }

    #[test]
    fn unstable_error_display_names_signals() {
        let mut s = sim(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
            "osc",
        );
        s.poke("a", v(1, 0)).unwrap();
        let err = s.settle().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("did not settle"), "{text}");
        assert!(text.contains('n'), "should name the oscillating net: {text}");
    }

    #[test]
    fn multi_edge_async_style_reset() {
        let mut s = sim(
            "module ar(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n)\n\
               if (!rst_n) q <= 0; else q <= d;\nendmodule",
            "ar",
        );
        s.poke("rst_n", v(1, 1)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1));
        // Async reset without a clock edge.
        s.edge("rst_n", Edge::Neg).unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn shift_register_chain() {
        let mut s = sim(
            "module sr(input clk, input d, output reg [3:0] q);\n\
             always @(posedge clk) q <= {q[2:0], d};\nendmodule",
            "sr",
        );
        for bit in [1u64, 0, 1, 1] {
            s.poke("d", v(1, bit)).unwrap();
            s.clock_cycle("clk").unwrap();
        }
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0b1011));
    }

    #[test]
    fn parameterized_adder() {
        let mut s = sim(
            "module add #(parameter W = 16)(input [W-1:0] a, input [W-1:0] b, output [W-1:0] s);\n\
             assign s = a + b;\nendmodule",
            "add",
        );
        s.poke("a", v(16, 40_000)).unwrap();
        s.poke("b", v(16, 30_000)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("s").unwrap().to_u64(), Some((40_000 + 30_000) % 65_536));
    }

    #[test]
    fn poke_unknown_port_errors() {
        let mut s = sim("module m(input a, output y); assign y = a; endmodule", "m");
        assert!(matches!(s.poke("zz", v(1, 0)), Err(SimError::NoSuchPort(_))));
    }
}
