//! The simulation interpreter: a tree-walking executor over an elaborated
//! [`Design`], with two-phase (non-blocking) sequential semantics and
//! settle-to-fixpoint combinational evaluation.

use std::collections::HashMap;

use rtlfixer_verilog::ast::{
    AssignOp, BinaryOp, CaseKind, Edge, Expr, SelectMode, Stmt, UnaryOp,
};
use rtlfixer_verilog::token::Base;

use crate::elab::{Design, Proc, ProcKind, Scope, SigDef};
use crate::value::{Bit, LogicVec, ReduceOp};

/// Maximum iterations of the combinational settle loop before the design is
/// declared unstable (combinational oscillation).
const MAX_SETTLE: usize = 64;
/// Maximum iterations of any procedural loop.
const MAX_LOOP: usize = 65_536;
/// Maximum user-function call depth.
const MAX_CALL_DEPTH: usize = 32;

/// One stored signal: a plain vector or a memory array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// Packed vector.
    Vec(LogicVec),
    /// Memory (unpacked array of words).
    Array(Vec<LogicVec>),
}

/// A resolved non-blocking write target.
#[derive(Debug, Clone)]
enum Target {
    Whole(String),
    Bits(String, u32, u32),
    Word(String, usize),
    WordBits(String, usize, u32, u32),
    /// Local variables commit immediately even under `<=`.
    Discard,
}

/// A scheduled non-blocking write.
#[derive(Debug, Clone)]
pub(crate) struct NbaWrite {
    target: Target,
    value: LogicVec,
}

/// Simulation-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational logic failed to reach a fixpoint.
    Unstable,
    /// Referenced port does not exist.
    NoSuchPort(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unstable => write!(f, "combinational logic did not settle"),
            SimError::NoSuchPort(name) => write!(f, "no such port '{name}'"),
        }
    }
}

impl std::error::Error for SimError {}

/// A cycle-level simulator over an elaborated design.
///
/// # Examples
///
/// ```
/// use rtlfixer_sim::{Simulator, value::LogicVec};
/// use rtlfixer_verilog::compile;
///
/// let analysis = compile("module inv(input [3:0] a, output [3:0] y);
///                         assign y = ~a; endmodule");
/// let mut sim = Simulator::new(&analysis, "inv")?;
/// sim.poke("a", LogicVec::from_u64(4, 0b1010))?;
/// sim.settle()?;
/// assert_eq!(sim.peek("y").unwrap().to_u64(), Some(0b0101));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    design: std::sync::Arc<Design>,
    state: HashMap<String, StateValue>,
}

impl Simulator {
    /// Elaborates `top` and initialises all signals to zero.
    ///
    /// Elaboration goes through the process-wide
    /// [`crate::elab::elaborate_shared`] cache, so repeated simulations of
    /// the same source share one immutable [`Design`] and only the mutable
    /// signal state is per-simulator.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::elab::ElabError`] if the design does
    /// not elaborate.
    pub fn new(
        analysis: &rtlfixer_verilog::Analysis,
        top: &str,
    ) -> Result<Simulator, crate::elab::ElabError> {
        Ok(Simulator::from_design(crate::elab::elaborate_shared(analysis, top)?))
    }

    /// Builds a simulator over an already-elaborated (shared) design, with
    /// all signals initialised to zero.
    pub fn from_design(design: std::sync::Arc<Design>) -> Simulator {
        let state = Self::zero_state(&design);
        Simulator { design, state }
    }

    /// Resets every signal (and memory word) back to zero — the state a
    /// fresh simulator starts from. Re-run [`Simulator::run_initial`]
    /// afterwards to re-apply `initial` blocks.
    pub fn reset_state(&mut self) {
        self.state = Self::zero_state(&self.design);
    }

    fn zero_state(design: &Design) -> HashMap<String, StateValue> {
        let mut state = HashMap::new();
        for (name, def) in &design.signals {
            let value = if def.words.is_some() {
                StateValue::Array(vec![LogicVec::zeros(def.width); def.word_count()])
            } else {
                StateValue::Vec(LogicVec::zeros(def.width))
            };
            state.insert(name.clone(), value);
        }
        state
    }

    /// The elaborated design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Sets a signal (usually a top-level input) without propagation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] for unknown names.
    pub fn poke(&mut self, name: &str, value: LogicVec) -> Result<(), SimError> {
        let def =
            self.design.signals.get(name).ok_or_else(|| SimError::NoSuchPort(name.to_owned()))?;
        let width = def.width;
        self.state.insert(name.to_owned(), StateValue::Vec(value.resize(width)));
        Ok(())
    }

    /// Reads a signal's current value (vectors only).
    pub fn peek(&self, name: &str) -> Option<LogicVec> {
        match self.state.get(name)? {
            StateValue::Vec(v) => Some(v.clone()),
            StateValue::Array(_) => None,
        }
    }

    /// Reads one word of a memory.
    pub fn peek_word(&self, name: &str, index: usize) -> Option<LogicVec> {
        match self.state.get(name)? {
            StateValue::Array(words) => words.get(index).cloned(),
            StateValue::Vec(_) => None,
        }
    }

    /// Runs `initial` processes once (blocking semantics) and settles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if combinational logic oscillates.
    pub fn run_initial(&mut self) -> Result<(), SimError> {
        let procs = self.design.init.clone();
        for proc in &procs {
            self.run_proc(proc);
        }
        self.settle()
    }

    /// Propagates combinational logic to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if no fixpoint is reached within the
    /// iteration cap (combinational loop).
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE {
            let before = self.state.clone();
            let procs = self.design.comb.clone();
            for proc in &procs {
                self.run_proc(proc);
            }
            if self.state == before {
                return Ok(());
            }
        }
        Err(SimError::Unstable)
    }

    /// Applies an edge event on `signal`: updates its value, executes every
    /// sequential process sensitive to that edge (non-blocking semantics),
    /// commits, and settles.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn edge(&mut self, signal: &str, edge: Edge) -> Result<(), SimError> {
        let new_val = match edge {
            Edge::Pos => 1,
            Edge::Neg => 0,
        };
        if let Some(def) = self.design.signals.get(signal) {
            let width = def.width;
            self.state
                .insert(signal.to_owned(), StateValue::Vec(LogicVec::from_u64(width, new_val)));
        }
        let mut nba = Vec::new();
        let procs = self.design.seq.clone();
        for proc in &procs {
            if proc.edges.iter().any(|(e, s)| *e == edge && s == signal) {
                let mut locals = Vec::new();
                exec(
                    &self.design,
                    &mut self.state,
                    &proc.scope,
                    &mut locals,
                    &proc.body,
                    &mut Some(&mut nba),
                    0,
                );
            }
        }
        for write in nba {
            commit(&mut self.state, write);
        }
        self.settle()
    }

    /// One full clock cycle: inputs should already be poked. Drives `clk`
    /// low→high (triggering posedge processes) and back low (triggering any
    /// negedge processes), settling in between.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from settling.
    pub fn clock_cycle(&mut self, clk: &str) -> Result<(), SimError> {
        self.settle()?;
        self.edge(clk, Edge::Pos)?;
        self.edge(clk, Edge::Neg)
    }

    fn run_proc(&mut self, proc: &Proc) {
        let mut locals = Vec::new();
        match &proc.kind {
            ProcKind::Assign { lhs, rhs } => {
                let width =
                    lvalue_width(&self.design, &self.state, &proc.scope, &locals, lhs);
                let value = eval_sized(
                    &self.design,
                    &self.state,
                    &proc.scope,
                    &locals,
                    rhs,
                    width,
                    0,
                );
                assign_to(
                    &self.design,
                    &mut self.state,
                    &proc.scope,
                    &mut locals,
                    lhs,
                    value,
                    &mut None,
                );
            }
            ProcKind::Block(body) => {
                exec(
                    &self.design,
                    &mut self.state,
                    &proc.scope,
                    &mut locals,
                    body,
                    &mut None,
                    0,
                );
            }
            ProcKind::BindIn { child, expr } => {
                let child_width =
                    self.design.signals.get(child).map_or(1, |def| def.width);
                let value = eval_sized(
                    &self.design,
                    &self.state,
                    &proc.scope,
                    &locals,
                    expr,
                    child_width,
                    0,
                );
                if let Some(def) = self.design.signals.get(child) {
                    let width = def.width;
                    self.state.insert(child.clone(), StateValue::Vec(value.resize(width)));
                }
            }
            ProcKind::BindOut { lhs, child } => {
                if let Some(StateValue::Vec(value)) = self.state.get(child).cloned() {
                    assign_to(
                        &self.design,
                        &mut self.state,
                        &proc.scope,
                        &mut locals,
                        lhs,
                        value,
                        &mut None,
                    );
                }
            }
        }
    }
}

// ---- name resolution ------------------------------------------------------

/// Resolves `name` against the scope chain: `scope_prefix + name`, then
/// stripping one generate-scope segment at a time down to `module_prefix`.
fn resolve_signal(design: &Design, scope: &Scope, name: &str) -> Option<String> {
    let mut prefix = scope.scope_prefix.clone();
    loop {
        let candidate = format!("{prefix}{name}");
        if design.signals.contains_key(&candidate) {
            return Some(candidate);
        }
        if prefix == scope.module_prefix {
            return None;
        }
        // Strip the last `seg.` from the prefix.
        let trimmed = &prefix[..prefix.len() - 1]; // drop trailing '.'
        match trimmed.rfind('.') {
            Some(pos) => prefix = prefix[..pos + 1].to_owned(),
            None => prefix = String::new(),
        }
        if prefix.len() < scope.module_prefix.len() {
            return None;
        }
    }
}

fn signal_def<'d>(design: &'d Design, full: &str) -> Option<&'d SigDef> {
    design.signals.get(full)
}

// ---- expression evaluation --------------------------------------------------

fn param_value(value: i64) -> LogicVec {
    LogicVec::from_u64(32, value as u64)
}

/// Evaluates `expr` in `scope` against the current state.
pub(crate) fn eval(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    expr: &Expr,
    depth: usize,
) -> LogicVec {
    match expr {
        Expr::Ident { name, .. } => {
            for frame in locals.iter().rev() {
                if let Some(v) = frame.get(name) {
                    return v.clone();
                }
            }
            if let Some(value) = scope.params.get(name) {
                return param_value(*value);
            }
            if let Some(full) = resolve_signal(design, scope, name) {
                return match state.get(&full) {
                    Some(StateValue::Vec(v)) => v.clone(),
                    _ => LogicVec::xs(1),
                };
            }
            LogicVec::xs(32)
        }
        Expr::Literal { size, base, digits, .. } => {
            let width = size.unwrap_or(32);
            let radix = base.map_or(10, Base::radix);
            LogicVec::from_digits(width, digits, radix)
        }
        Expr::Str { value, .. } => {
            let width = (8 * value.len().max(1)) as u32;
            let mut acc = LogicVec::zeros(width);
            for (i, byte) in value.bytes().rev().enumerate() {
                for k in 0..8 {
                    if (byte >> k) & 1 == 1 {
                        acc = acc.with_bit((i * 8) as u32 + k, Bit::One);
                    }
                }
            }
            acc
        }
        Expr::Unary { op, operand, .. } => {
            let v = eval(design, state, scope, locals, operand, depth);
            match op {
                UnaryOp::Plus => v,
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => match v.truthy() {
                    Some(b) => LogicVec::from_u64(1, (!b) as u64),
                    None => LogicVec::xs(1),
                },
                UnaryOp::BitNot => v.not(),
                UnaryOp::RedAnd => v.reduce(ReduceOp::And),
                UnaryOp::RedOr => v.reduce(ReduceOp::Or),
                UnaryOp::RedXor => v.reduce(ReduceOp::Xor),
                UnaryOp::RedNand => v.reduce(ReduceOp::And).not(),
                UnaryOp::RedNor => v.reduce(ReduceOp::Or).not(),
                UnaryOp::RedXnor => v.reduce(ReduceOp::Xor).not(),
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval(design, state, scope, locals, lhs, depth);
            let b = eval(design, state, scope, locals, rhs, depth);
            eval_binary(*op, &a, &b)
        }
        Expr::Ternary { cond, then_expr, else_expr, .. } => {
            let c = eval(design, state, scope, locals, cond, depth);
            match c.truthy() {
                Some(true) => eval(design, state, scope, locals, then_expr, depth),
                Some(false) => eval(design, state, scope, locals, else_expr, depth),
                None => {
                    // Verilog merge semantics: equal bits survive, else x.
                    let t = eval(design, state, scope, locals, then_expr, depth);
                    let e = eval(design, state, scope, locals, else_expr, depth);
                    let width = t.width().max(e.width());
                    let (t, e) = (t.resize(width), e.resize(width));
                    LogicVec::from_bits((0..width).map(|i| {
                        if t.bit(i) == e.bit(i) {
                            t.bit(i)
                        } else {
                            Bit::X
                        }
                    }))
                }
            }
        }
        Expr::Concat { parts, .. } => {
            let mut acc: Option<LogicVec> = None;
            for part in parts {
                let v = eval(design, state, scope, locals, part, depth);
                acc = Some(match acc {
                    None => v,
                    Some(hi) => hi.concat(&v),
                });
            }
            acc.unwrap_or_else(|| LogicVec::zeros(1))
        }
        Expr::Replicate { count, value, .. } => {
            let n = eval(design, state, scope, locals, count, depth)
                .to_u64()
                .unwrap_or(1)
                .clamp(1, 4096) as u32;
            eval(design, state, scope, locals, value, depth).replicate(n)
        }
        Expr::Index { base, index, .. } => {
            let idx = eval(design, state, scope, locals, index, depth);
            let Some(idx) = idx.to_u64().map(|v| v as i64) else {
                return LogicVec::xs(1);
            };
            eval_index(design, state, scope, locals, base, idx, depth)
        }
        Expr::Select { base, left, right, mode, .. } => {
            eval_select(design, state, scope, locals, base, left, right, *mode, depth)
        }
        Expr::Call { name, args, .. } => {
            call_function(design, state, scope, locals, name, args, depth)
        }
        Expr::SysCall { name, args, .. } => match name.as_str() {
            "clog2" => {
                let v = args
                    .first()
                    .map(|a| eval(design, state, scope, locals, a, depth))
                    .and_then(|v| v.to_u64())
                    .unwrap_or(0);
                LogicVec::from_u64(32, rtlfixer_verilog::const_eval::clog2(v as i64) as u64)
            }
            "signed" | "unsigned" => args
                .first()
                .map(|a| eval(design, state, scope, locals, a, depth))
                .unwrap_or_else(|| LogicVec::xs(1)),
            "time" | "random" => LogicVec::zeros(32),
            _ => LogicVec::xs(32),
        },
    }
}

/// Evaluates `expr` under an assignment context of `want` bits, applying
/// Verilog's context-determined width rules: operands of arithmetic,
/// bitwise, shift-left and conditional operators widen to the assignment
/// width *before* the operation, so carries out of the natural width are
/// preserved (`{cout, sum} = a + b`). Self-determined contexts
/// (comparisons, reductions, concatenations, indices) fall back to [`eval`].
pub(crate) fn eval_sized(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    expr: &Expr,
    want: u32,
    depth: usize,
) -> LogicVec {
    use BinaryOp::*;
    // Verilog context sizing: the expression is evaluated at the *maximum*
    // of the assignment width and every context-determined operand's
    // natural width (a 32-bit literal divisor must not be truncated to the
    // target's 2 bits).
    let target = want.max(natural_width(design, scope, locals, expr));
    match expr {
        Expr::Binary { op, lhs, rhs, .. } => match op {
            Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                let a =
                    eval_sized(design, state, scope, locals, lhs, target, depth).resize(target);
                let b =
                    eval_sized(design, state, scope, locals, rhs, target, depth).resize(target);
                eval_binary(*op, &a, &b).resize(target)
            }
            Shl | AShl | Shr | AShr => {
                let a =
                    eval_sized(design, state, scope, locals, lhs, target, depth).resize(target);
                let b = eval(design, state, scope, locals, rhs, depth);
                eval_binary(*op, &a, &b).resize(target)
            }
            _ => eval(design, state, scope, locals, expr, depth).resize(target),
        },
        Expr::Unary { op, operand, .. } => match op {
            rtlfixer_verilog::ast::UnaryOp::BitNot
            | rtlfixer_verilog::ast::UnaryOp::Neg
            | rtlfixer_verilog::ast::UnaryOp::Plus => {
                let v = eval_sized(design, state, scope, locals, operand, target, depth)
                    .resize(target);
                match op {
                    rtlfixer_verilog::ast::UnaryOp::BitNot => v.not(),
                    rtlfixer_verilog::ast::UnaryOp::Neg => v.neg(),
                    _ => v,
                }
            }
            _ => eval(design, state, scope, locals, expr, depth).resize(target),
        },
        Expr::Ternary { cond, then_expr, else_expr, .. } => {
            let c = eval(design, state, scope, locals, cond, depth);
            match c.truthy() {
                Some(true) => eval_sized(design, state, scope, locals, then_expr, target, depth)
                    .resize(target),
                Some(false) => eval_sized(design, state, scope, locals, else_expr, target, depth)
                    .resize(target),
                None => eval(design, state, scope, locals, expr, depth).resize(target),
            }
        }
        _ => eval(design, state, scope, locals, expr, depth).resize(target),
    }
}

/// Best-effort natural (self-determined) width of an expression, per the
/// Verilog sizing rules. Used to compute context widths in [`eval_sized`].
fn natural_width(
    design: &Design,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    expr: &Expr,
) -> u32 {
    use BinaryOp::*;
    match expr {
        Expr::Ident { name, .. } => {
            for frame in locals.iter().rev() {
                if let Some(v) = frame.get(name) {
                    return v.width();
                }
            }
            if scope.params.contains_key(name) {
                return 32;
            }
            resolve_signal(design, scope, name)
                .and_then(|full| design.signals.get(&full))
                .map_or(1, |def| def.width)
        }
        Expr::Literal { size, .. } => size.unwrap_or(32),
        Expr::Str { value, .. } => 8 * value.len().max(1) as u32,
        Expr::Unary { op, operand, .. } => match op {
            rtlfixer_verilog::ast::UnaryOp::BitNot
            | rtlfixer_verilog::ast::UnaryOp::Neg
            | rtlfixer_verilog::ast::UnaryOp::Plus => {
                natural_width(design, scope, locals, operand)
            }
            _ => 1,
        },
        Expr::Binary { op, lhs, rhs, .. } => match op {
            Add | Sub | Mul | Div | Mod | Pow | BitAnd | BitOr | BitXor | BitXnor => {
                natural_width(design, scope, locals, lhs)
                    .max(natural_width(design, scope, locals, rhs))
            }
            Shl | AShl | Shr | AShr => natural_width(design, scope, locals, lhs),
            _ => 1,
        },
        Expr::Ternary { then_expr, else_expr, .. } => natural_width(design, scope, locals, then_expr)
            .max(natural_width(design, scope, locals, else_expr)),
        Expr::Concat { parts, .. } => {
            parts.iter().map(|p| natural_width(design, scope, locals, p)).sum()
        }
        Expr::Replicate { .. } => 1, // evaluated self-determined anyway
        Expr::Index { base, .. } => {
            if let Some(name) = base.as_ident() {
                if let Some(full) = resolve_signal(design, scope, name) {
                    if let Some(def) = design.signals.get(&full) {
                        if def.words.is_some() {
                            return def.width;
                        }
                    }
                }
            }
            1
        }
        Expr::Select { .. } => 1, // conservative; evaluated self-determined
        Expr::Call { name, .. } => design
            .functions
            .get(&format!("{}{name}", scope.module_prefix))
            .map_or(1, |f| f.width),
        Expr::SysCall { .. } => 32,
    }
}

fn eval_binary(op: BinaryOp, a: &LogicVec, b: &LogicVec) -> LogicVec {
    use BinaryOp::*;
    let width = a.width().max(b.width());
    match op {
        Add => a.add(b),
        Sub => a.sub(b),
        Mul | Div | Mod | Pow => {
            let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) else {
                return LogicVec::xs(width);
            };
            let result = match op {
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return LogicVec::xs(width);
                    }
                    x / y
                }
                Mod => {
                    if y == 0 {
                        return LogicVec::xs(width);
                    }
                    x % y
                }
                Pow => {
                    let mut acc: u128 = 1;
                    for _ in 0..y.min(128) {
                        acc = acc.wrapping_mul(x);
                    }
                    acc
                }
                _ => unreachable!(),
            };
            LogicVec::from_u128(width, result)
        }
        BitAnd => a.and(b),
        BitOr => a.or(b),
        BitXor => a.xor(b),
        BitXnor => a.xor(b).not(),
        LogAnd => match (a.truthy(), b.truthy()) {
            (Some(false), _) | (_, Some(false)) => LogicVec::from_u64(1, 0),
            (Some(true), Some(true)) => LogicVec::from_u64(1, 1),
            _ => LogicVec::xs(1),
        },
        LogOr => match (a.truthy(), b.truthy()) {
            (Some(true), _) | (_, Some(true)) => LogicVec::from_u64(1, 1),
            (Some(false), Some(false)) => LogicVec::from_u64(1, 0),
            _ => LogicVec::xs(1),
        },
        Eq => a.eq_logic(b),
        Ne => a.eq_logic(b).not(),
        CaseEq => a.eq_case(b),
        CaseNe => a.eq_case(b).not(),
        Lt => a.lt(b),
        Gt => b.lt(a),
        Le => b.lt(a).not(),
        Ge => a.lt(b).not(),
        Shl | AShl => match b.to_u64() {
            Some(n) => a.shl(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
        Shr => match b.to_u64() {
            Some(n) => a.shr(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
        AShr => match b.to_u64() {
            Some(n) => a.ashr(n.min(u64::from(u32::MAX)) as u32),
            None => LogicVec::xs(a.width()),
        },
    }
}

fn eval_index(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    base: &Expr,
    idx: i64,
    depth: usize,
) -> LogicVec {
    if let Some(name) = base.as_ident() {
        // Locals first: raw zero-based indexing.
        for frame in locals.iter().rev() {
            if let Some(v) = frame.get(name) {
                if idx >= 0 && (idx as u32) < v.width() {
                    return v.slice(idx as u32, idx as u32);
                }
                return LogicVec::xs(1);
            }
        }
        if let Some(full) = resolve_signal(design, scope, name) {
            let def = signal_def(design, &full).expect("resolved");
            match state.get(&full) {
                Some(StateValue::Array(words)) => {
                    return match def.word_offset(idx) {
                        Some(slot) => words[slot].clone(),
                        None => LogicVec::xs(def.width),
                    };
                }
                Some(StateValue::Vec(v)) => {
                    return match def.offset(idx) {
                        Some(off) => v.slice(off, off),
                        None => LogicVec::xs(1),
                    };
                }
                None => return LogicVec::xs(1),
            }
        }
    }
    // Index on a computed expression: zero-based.
    let v = eval(design, state, scope, locals, base, depth);
    if idx >= 0 && (idx as u32) < v.width() {
        v.slice(idx as u32, idx as u32)
    } else {
        LogicVec::xs(1)
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_select(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    base: &Expr,
    left: &Expr,
    right: &Expr,
    mode: SelectMode,
    depth: usize,
) -> LogicVec {
    let l = eval(design, state, scope, locals, left, depth).to_u64().map(|v| v as i64);
    let r = eval(design, state, scope, locals, right, depth).to_u64().map(|v| v as i64);
    let (Some(l), Some(r)) = (l, r) else { return LogicVec::xs(1) };
    let (hi_idx, lo_idx) = match mode {
        SelectMode::Range => (l, r),
        SelectMode::IndexedUp => (l + r - 1, l),
        SelectMode::IndexedDown => (l, l - r + 1),
    };
    if let Some(name) = base.as_ident() {
        let is_local = locals.iter().rev().any(|f| f.contains_key(name));
        if !is_local {
            if let Some(full) = resolve_signal(design, scope, name) {
                let def = signal_def(design, &full).expect("resolved");
                if let Some(StateValue::Vec(v)) = state.get(&full) {
                    let (hi_off, lo_off) = match (def.offset(hi_idx), def.offset(lo_idx)) {
                        (Some(a), Some(b)) => (a.max(b), a.min(b)),
                        _ => return LogicVec::xs((hi_idx.abs_diff(lo_idx) + 1) as u32),
                    };
                    return v.slice(hi_off, lo_off);
                }
            }
        }
    }
    let v = eval(design, state, scope, locals, base, depth);
    let (hi, lo) = (hi_idx.max(lo_idx), hi_idx.min(lo_idx));
    if lo < 0 {
        return LogicVec::xs((hi - lo + 1) as u32);
    }
    v.slice(hi as u32, lo as u32)
}

fn call_function(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    name: &str,
    args: &[Expr],
    depth: usize,
) -> LogicVec {
    if depth >= MAX_CALL_DEPTH {
        return LogicVec::xs(1);
    }
    let key = format!("{}{name}", scope.module_prefix);
    let Some(func) = design.functions.get(&key) else {
        return LogicVec::xs(1);
    };
    let mut frame = HashMap::new();
    for ((arg_name, width), arg_expr) in func.args.iter().zip(args) {
        let v = eval(design, state, scope, locals, arg_expr, depth);
        frame.insert(arg_name.clone(), v.resize(*width));
    }
    frame.insert(name.to_owned(), LogicVec::zeros(func.width));
    let mut fn_locals = vec![frame];
    // Functions are side-effect free in our subset: execute against a state
    // clone so stray writes cannot corrupt the design.
    let mut shadow = state.clone();
    exec(design, &mut shadow, &func.scope, &mut fn_locals, &func.body, &mut None, depth + 1);
    fn_locals
        .first()
        .and_then(|f| f.get(name))
        .cloned()
        .unwrap_or_else(|| LogicVec::xs(func.width))
}

// ---- statement execution -----------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn exec(
    design: &Design,
    state: &mut HashMap<String, StateValue>,
    scope: &Scope,
    locals: &mut Vec<HashMap<String, LogicVec>>,
    stmt: &Stmt,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    depth: usize,
) {
    match stmt {
        Stmt::Block { decls, stmts, .. } => {
            let mut frame = HashMap::new();
            for item in decls {
                if let rtlfixer_verilog::ast::Item::Net { kind, range, decls, .. } = item {
                    for decl in decls {
                        let width = match range {
                            Some(r) => {
                                let msb = rtlfixer_verilog::const_eval::eval(&r.msb, &scope.params)
                                    .unwrap_or(0);
                                let lsb = rtlfixer_verilog::const_eval::eval(&r.lsb, &scope.params)
                                    .unwrap_or(0);
                                msb.abs_diff(lsb) as u32 + 1
                            }
                            None => {
                                if *kind == rtlfixer_verilog::ast::NetKind::Integer {
                                    32
                                } else {
                                    1
                                }
                            }
                        };
                        frame.insert(decl.name.clone(), LogicVec::zeros(width));
                    }
                }
            }
            locals.push(frame);
            for stmt in stmts {
                exec(design, state, scope, locals, stmt, nba, depth);
            }
            locals.pop();
        }
        Stmt::Assign { lhs, op, rhs, .. } => {
            let width = lvalue_width(design, state, scope, locals, lhs);
            let value = eval_sized(design, state, scope, locals, rhs, width, depth);
            match op {
                AssignOp::Blocking => {
                    assign_to(design, state, scope, locals, lhs, value, &mut None);
                }
                AssignOp::NonBlocking => {
                    assign_to(design, state, scope, locals, lhs, value, nba);
                }
            }
        }
        Stmt::If { cond, then_branch, else_branch, .. } => {
            let c = eval(design, state, scope, locals, cond, depth);
            if c.truthy() == Some(true) {
                exec(design, state, scope, locals, then_branch, nba, depth);
            } else if let Some(els) = else_branch {
                exec(design, state, scope, locals, els, nba, depth);
            }
        }
        Stmt::Case { kind, scrutinee, arms, default, .. } => {
            let s = eval(design, state, scope, locals, scrutinee, depth);
            for arm in arms {
                for label in &arm.labels {
                    let l = eval(design, state, scope, locals, label, depth);
                    let hit = match kind {
                        CaseKind::Case => s.eq_case(&l).to_u64() == Some(1),
                        CaseKind::Casez => s.matches_wildcard(&l, false),
                        CaseKind::Casex => s.matches_wildcard(&l, true),
                    };
                    if hit {
                        exec(design, state, scope, locals, &arm.body, nba, depth);
                        return;
                    }
                }
            }
            if let Some(default) = default {
                exec(design, state, scope, locals, default, nba, depth);
            }
        }
        Stmt::For { var, decl, init, cond, step, body, .. } => {
            let mut frame = HashMap::new();
            if decl.is_some() {
                frame.insert(var.clone(), LogicVec::zeros(32));
            }
            locals.push(frame);
            let init_val = eval(design, state, scope, locals, init, depth);
            write_var(design, state, scope, locals, var, init_val);
            let mut guard = 0usize;
            loop {
                let c = eval(design, state, scope, locals, cond, depth);
                if c.truthy() != Some(true) {
                    break;
                }
                exec(design, state, scope, locals, body, nba, depth);
                let next = eval(design, state, scope, locals, step, depth);
                write_var(design, state, scope, locals, var, next);
                guard += 1;
                if guard >= MAX_LOOP {
                    break;
                }
            }
            locals.pop();
        }
        Stmt::While { cond, body, .. } => {
            let mut guard = 0usize;
            loop {
                let c = eval(design, state, scope, locals, cond, depth);
                if c.truthy() != Some(true) {
                    break;
                }
                exec(design, state, scope, locals, body, nba, depth);
                guard += 1;
                if guard >= MAX_LOOP {
                    break;
                }
            }
        }
        Stmt::Repeat { count, body, .. } => {
            let n = eval(design, state, scope, locals, count, depth)
                .to_u64()
                .unwrap_or(0)
                .min(MAX_LOOP as u64);
            for _ in 0..n {
                exec(design, state, scope, locals, body, nba, depth);
            }
        }
        Stmt::SysCall { .. } | Stmt::Null(_) => {}
    }
}

/// Writes a plain variable: local frame if present, else module signal.
fn write_var(
    design: &Design,
    state: &mut HashMap<String, StateValue>,
    scope: &Scope,
    locals: &mut [HashMap<String, LogicVec>],
    name: &str,
    value: LogicVec,
) {
    for frame in locals.iter_mut().rev() {
        if let Some(slot) = frame.get_mut(name) {
            let width = slot.width();
            *slot = value.resize(width);
            return;
        }
    }
    if let Some(full) = resolve_signal(design, scope, name) {
        if let Some(def) = design.signals.get(&full) {
            let width = def.width;
            state.insert(full, StateValue::Vec(value.resize(width)));
        }
    }
}

/// Width of an l-value part, for concat splitting.
fn lvalue_width(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    lhs: &Expr,
) -> u32 {
    match lhs {
        Expr::Ident { name, .. } => {
            for frame in locals.iter().rev() {
                if let Some(v) = frame.get(name) {
                    return v.width();
                }
            }
            resolve_signal(design, scope, name)
                .and_then(|full| design.signals.get(&full))
                .map(|def| def.width)
                .unwrap_or(1)
        }
        Expr::Index { base, .. } => {
            // A word select on a memory targets the full word width.
            if let Some(name) = base.as_ident() {
                if let Some(full) = resolve_signal(design, scope, name) {
                    if let Some(def) = design.signals.get(&full) {
                        if def.words.is_some() {
                            return def.width;
                        }
                    }
                }
            }
            1
        }
        Expr::Select { left, right, mode, .. } => {
            let l = eval(design, state, scope, locals, left, 0).to_u64().unwrap_or(0) as i64;
            let r = eval(design, state, scope, locals, right, 0).to_u64().unwrap_or(0) as i64;
            match mode {
                SelectMode::Range => l.abs_diff(r) as u32 + 1,
                _ => r.max(1) as u32,
            }
        }
        Expr::Concat { parts, .. } => {
            parts.iter().map(|p| lvalue_width(design, state, scope, locals, p)).sum()
        }
        _ => 1,
    }
}

/// Resolves and performs (or schedules) an assignment to `lhs`.
pub(crate) fn assign_to(
    design: &Design,
    state: &mut HashMap<String, StateValue>,
    scope: &Scope,
    locals: &mut Vec<HashMap<String, LogicVec>>,
    lhs: &Expr,
    value: LogicVec,
    nba: &mut Option<&mut Vec<NbaWrite>>,
) {
    match lhs {
        Expr::Concat { parts, .. } => {
            let total: u32 =
                parts.iter().map(|p| lvalue_width(design, state, scope, locals, p)).sum();
            let value = value.resize(total);
            // Parts are MSB-first; slice the value top-down.
            let mut hi = total;
            for part in parts {
                let w = lvalue_width(design, state, scope, locals, part);
                let lo = hi - w;
                let chunk = value.slice(hi - 1, lo);
                assign_to(design, state, scope, locals, part, chunk, nba);
                hi = lo;
            }
        }
        _ => {
            let Some(target) = resolve_target(design, state, scope, locals, lhs) else {
                return;
            };
            match target {
                Target::Discard => {
                    // Local variable: immediate write regardless of <=.
                    if let Some(name) = lhs.lvalue_root() {
                        if let Expr::Ident { .. } = lhs {
                            write_var(design, state, scope, locals, name, value);
                        } else {
                            // Bit/part select of a local.
                            write_local_select(design, state, scope, locals, lhs, value);
                        }
                    }
                }
                target => match nba {
                    Some(queue) => queue.push(NbaWrite { target, value }),
                    None => commit(state, NbaWrite { target, value }),
                },
            }
        }
    }
}

fn write_local_select(
    design: &Design,
    state: &mut HashMap<String, StateValue>,
    scope: &Scope,
    locals: &mut [HashMap<String, LogicVec>],
    lhs: &Expr,
    value: LogicVec,
) {
    let (name, hi, lo) = match lhs {
        Expr::Index { base, index, .. } => {
            let Some(name) = base.as_ident() else { return };
            let Some(idx) =
                eval(design, state, scope, locals, index, 0).to_u64().map(|v| v as u32)
            else {
                return;
            };
            (name.to_owned(), idx, idx)
        }
        Expr::Select { base, left, right, mode, .. } => {
            let Some(name) = base.as_ident() else { return };
            let l = eval(design, state, scope, locals, left, 0).to_u64().unwrap_or(0) as i64;
            let r = eval(design, state, scope, locals, right, 0).to_u64().unwrap_or(0) as i64;
            let (hi, lo) = match mode {
                SelectMode::Range => (l.max(r), l.min(r)),
                SelectMode::IndexedUp => (l + r - 1, l),
                SelectMode::IndexedDown => (l, l - r + 1),
            };
            if lo < 0 {
                return;
            }
            (name.to_owned(), hi as u32, lo as u32)
        }
        _ => return,
    };
    for frame in locals.iter_mut().rev() {
        if let Some(slot) = frame.get_mut(&name) {
            if hi < slot.width() {
                let mut updated = slot.clone();
                let chunk = value.resize(hi - lo + 1);
                for i in lo..=hi {
                    updated.set_bit(i, chunk.bit(i - lo));
                }
                *slot = updated;
            }
            return;
        }
    }
}

fn resolve_target(
    design: &Design,
    state: &HashMap<String, StateValue>,
    scope: &Scope,
    locals: &[HashMap<String, LogicVec>],
    lhs: &Expr,
) -> Option<Target> {
    let root = lhs.lvalue_root()?;
    let is_local = locals.iter().rev().any(|f| f.contains_key(root));
    if is_local {
        return Some(Target::Discard);
    }
    let full = resolve_signal(design, scope, root)?;
    let def = design.signals.get(&full)?;
    match lhs {
        Expr::Ident { .. } => Some(Target::Whole(full)),
        Expr::Index { index, .. } => {
            let idx = eval(design, state, scope, locals, index, 0).to_u64()? as i64;
            if def.words.is_some() {
                Some(Target::Word(full, def.word_offset(idx)?))
            } else {
                let off = def.offset(idx)?;
                Some(Target::Bits(full, off, off))
            }
        }
        Expr::Select { base, left, right, mode, .. } => {
            let l = eval(design, state, scope, locals, left, 0).to_u64()? as i64;
            let r = eval(design, state, scope, locals, right, 0).to_u64()? as i64;
            let (hi_idx, lo_idx) = match mode {
                SelectMode::Range => (l, r),
                SelectMode::IndexedUp => (l + r - 1, l),
                SelectMode::IndexedDown => (l, l - r + 1),
            };
            // A select on a memory word (`mem[i][3:0]`) roots at a nested
            // Index; handle the common vector case here.
            if let Expr::Index { index, .. } = base.as_ref() {
                let word_idx = eval(design, state, scope, locals, index, 0).to_u64()? as i64;
                let slot = def.word_offset(word_idx)?;
                let hi = def.offset(hi_idx)?;
                let lo = def.offset(lo_idx)?;
                return Some(Target::WordBits(full, slot, hi.max(lo), hi.min(lo)));
            }
            let hi = def.offset(hi_idx)?;
            let lo = def.offset(lo_idx)?;
            Some(Target::Bits(full, hi.max(lo), hi.min(lo)))
        }
        _ => None,
    }
}

fn commit(state: &mut HashMap<String, StateValue>, write: NbaWrite) {
    match write.target {
        Target::Discard => {}
        Target::Whole(name) => {
            if let Some(StateValue::Vec(old)) = state.get(&name) {
                let width = old.width();
                state.insert(name, StateValue::Vec(write.value.resize(width)));
            } else if let Some(StateValue::Array(_)) = state.get(&name) {
                // Whole-array assignment unsupported; ignore.
            }
        }
        Target::Bits(name, hi, lo) => {
            if let Some(StateValue::Vec(old)) = state.get(&name) {
                if hi < old.width() {
                    let mut updated = old.clone();
                    let chunk = write.value.resize(hi - lo + 1);
                    for i in lo..=hi {
                        updated.set_bit(i, chunk.bit(i - lo));
                    }
                    state.insert(name, StateValue::Vec(updated));
                }
            }
        }
        Target::Word(name, slot) => {
            if let Some(StateValue::Array(words)) = state.get_mut(&name) {
                if let Some(word) = words.get_mut(slot) {
                    let width = word.width();
                    *word = write.value.resize(width);
                }
            }
        }
        Target::WordBits(name, slot, hi, lo) => {
            if let Some(StateValue::Array(words)) = state.get_mut(&name) {
                if let Some(word) = words.get(slot).cloned() {
                    if hi < word.width() {
                        let mut updated = word;
                        let chunk = write.value.resize(hi - lo + 1);
                        for i in lo..=hi {
                            updated.set_bit(i, chunk.bit(i - lo));
                        }
                        words[slot] = updated;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;

    fn sim(src: &str, top: &str) -> Simulator {
        let analysis = compile(src);
        assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
        Simulator::new(&analysis, top).expect("elaborates")
    }

    fn v(width: u32, value: u64) -> LogicVec {
        LogicVec::from_u64(width, value)
    }

    #[test]
    fn combinational_inverter() {
        let mut s = sim("module inv(input [3:0] a, output [3:0] y); assign y = ~a; endmodule", "inv");
        s.poke("a", v(4, 0b1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0b0101));
    }

    #[test]
    fn mux_with_ternary() {
        let mut s = sim(
            "module mux(input sel, input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = sel ? b : a;\nendmodule",
            "mux",
        );
        s.poke("a", v(8, 11)).unwrap();
        s.poke("b", v(8, 22)).unwrap();
        s.poke("sel", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(11));
        s.poke("sel", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(22));
    }

    #[test]
    fn always_star_case() {
        let mut s = sim(
            "module dec(input [1:0] s, output reg [3:0] y);\n\
             always @* begin\ncase (s)\n2'd0: y = 4'b0001;\n2'd1: y = 4'b0010;\n\
             2'd2: y = 4'b0100;\ndefault: y = 4'b1000;\nendcase\nend\nendmodule",
            "dec",
        );
        for (input, expect) in [(0, 1), (1, 2), (2, 4), (3, 8)] {
            s.poke("s", v(2, input)).unwrap();
            s.settle().unwrap();
            assert_eq!(s.peek("y").unwrap().to_u64(), Some(expect), "s={input}");
        }
    }

    #[test]
    fn dff_updates_on_posedge_only() {
        let mut s = sim(
            "module dff(input clk, input d, output reg q);\n\
             always @(posedge clk) q <= d;\nendmodule",
            "dff",
        );
        s.poke("d", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0), "no edge yet");
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1));
        s.poke("d", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1), "holds between edges");
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn nonblocking_swap() {
        // The classic NBA test: a and b swap atomically.
        let mut s = sim(
            "module swap(input clk, output reg a, output reg b);\n\
             initial begin a = 1; b = 0; end\n\
             always @(posedge clk) begin a <= b; b <= a; end\nendmodule",
            "swap",
        );
        s.run_initial().unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(1));
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(0));
        assert_eq!(s.peek("b").unwrap().to_u64(), Some(1));
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("a").unwrap().to_u64(), Some(1));
        assert_eq!(s.peek("b").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn counter_with_sync_reset() {
        let mut s = sim(
            "module ctr(input clk, input reset, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (reset) q <= 0; else q <= q + 1;\n\
             end\nendmodule",
            "ctr",
        );
        s.poke("reset", v(1, 1)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
        s.poke("reset", v(1, 0)).unwrap();
        for i in 1..=5u64 {
            s.clock_cycle("clk").unwrap();
            assert_eq!(s.peek("q").unwrap().to_u64(), Some(i));
        }
    }

    #[test]
    fn for_loop_bit_reverse() {
        let mut s = sim(
            "module rev(input [7:0] in, output reg [7:0] out);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n\
             end\nendmodule",
            "rev",
        );
        s.poke("in", v(8, 0b1100_1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("out").unwrap().to_u64(), Some(0b0101_0011));
    }

    #[test]
    fn wide_100_bit_reverse() {
        // The paper's vector100r problem (fixed version).
        let mut s = sim(
            "module top_module(input [99:0] in, output reg [99:0] out);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 100; i = i + 1) out[i] = in[99 - i];\n\
             end\nendmodule",
            "top_module",
        );
        let input = LogicVec::from_u128(100, 0b1011);
        s.poke("in", input).unwrap();
        s.settle().unwrap();
        let out = s.peek("out").unwrap();
        assert_eq!(out.bit(99), Bit::One);
        assert_eq!(out.bit(98), Bit::One);
        assert_eq!(out.bit(97), Bit::Zero);
        assert_eq!(out.bit(96), Bit::One);
        assert_eq!(out.slice(95, 0).to_u128(), Some(0));
    }

    #[test]
    fn hierarchical_instance() {
        let mut s = sim(
            "module inv(input a, output y); assign y = ~a; endmodule\n\
             module top(input x, output z);\n\
             wire mid;\ninv u1(.a(x), .y(mid));\ninv u2(.a(mid), .y(z));\nendmodule",
            "top",
        );
        s.poke("x", v(1, 1)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("z").unwrap().to_u64(), Some(1));
        assert_eq!(s.peek("mid").unwrap().to_u64(), Some(0));
        s.poke("x", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("z").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn generate_loop_xor() {
        let mut s = sim(
            "module gx(input [3:0] a, input [3:0] b, output [3:0] y);\n\
             genvar i;\ngenerate\n\
             for (i = 0; i < 4; i = i + 1) begin : g\n\
               assign y[i] = a[i] ^ b[i];\n\
             end\nendgenerate\nendmodule",
            "gx",
        );
        s.poke("a", v(4, 0b1100)).unwrap();
        s.poke("b", v(4, 0b1010)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0b0110));
    }

    #[test]
    fn memory_write_and_read() {
        let mut s = sim(
            "module ram(input clk, input we, input [3:0] addr, input [7:0] din, output [7:0] dout);\n\
             reg [7:0] mem [0:15];\n\
             always @(posedge clk) if (we) mem[addr] <= din;\n\
             assign dout = mem[addr];\nendmodule",
            "ram",
        );
        s.poke("we", v(1, 1)).unwrap();
        s.poke("addr", v(4, 3)).unwrap();
        s.poke("din", v(8, 0x5A)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0x5A));
        assert_eq!(s.peek_word("mem", 3).unwrap().to_u64(), Some(0x5A));
        s.poke("addr", v(4, 4)).unwrap();
        s.poke("we", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("dout").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn function_call_popcount() {
        let mut s = sim(
            "module pc(input [7:0] a, output [3:0] y);\n\
             function [3:0] ones;\ninput [7:0] v;\ninteger i;\nbegin\n\
               ones = 0;\nfor (i = 0; i < 8; i = i + 1) ones = ones + v[i];\n\
             end\nendfunction\nassign y = ones(a);\nendmodule",
            "pc",
        );
        s.poke("a", v(8, 0b1011_0110)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(5));
    }

    #[test]
    fn concat_lvalue_assignment() {
        let mut s = sim(
            "module sp(input [7:0] a, output [3:0] hi, output [3:0] lo);\n\
             assign {hi, lo} = a;\nendmodule",
            "sp",
        );
        s.poke("a", v(8, 0xC5)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("hi").unwrap().to_u64(), Some(0xC));
        assert_eq!(s.peek("lo").unwrap().to_u64(), Some(0x5));
    }

    #[test]
    fn casez_wildcard_priority() {
        let mut s = sim(
            "module pr(input [3:0] r, output reg [1:0] y);\n\
             always @* begin\n\
               casez (r)\n\
                 4'bzzz1: y = 2'd0;\n\
                 4'bzz1z: y = 2'd1;\n\
                 4'bz1zz: y = 2'd2;\n\
                 4'b1zzz: y = 2'd3;\n\
                 default: y = 2'd0;\n\
               endcase\nend\nendmodule",
            "pr",
        );
        s.poke("r", v(4, 0b0100)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(2));
        s.poke("r", v(4, 0b0101)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("y").unwrap().to_u64(), Some(0), "priority to LSB arm");
    }

    #[test]
    fn indexed_part_select_rw() {
        let mut s = sim(
            "module ip(input [31:0] a, input [1:0] s, output [7:0] y);\n\
             assign y = a[s*8 +: 8];\nendmodule",
            "ip",
        );
        s.poke("a", v(32, 0xDDCCBBAA)).unwrap();
        for (sel, expect) in [(0u64, 0xAAu64), (1, 0xBB), (2, 0xCC), (3, 0xDD)] {
            s.poke("s", v(2, sel)).unwrap();
            s.settle().unwrap();
            assert_eq!(s.peek("y").unwrap().to_u64(), Some(expect), "sel={sel}");
        }
    }

    #[test]
    fn combinational_loop_detected() {
        let mut s = sim(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
            "osc",
        );
        s.poke("a", v(1, 0)).unwrap();
        assert_eq!(s.settle(), Err(SimError::Unstable));
    }

    #[test]
    fn multi_edge_async_style_reset() {
        let mut s = sim(
            "module ar(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n)\n\
               if (!rst_n) q <= 0; else q <= d;\nendmodule",
            "ar",
        );
        s.poke("rst_n", v(1, 1)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        s.clock_cycle("clk").unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(1));
        // Async reset without a clock edge.
        s.edge("rst_n", Edge::Neg).unwrap();
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn shift_register_chain() {
        let mut s = sim(
            "module sr(input clk, input d, output reg [3:0] q);\n\
             always @(posedge clk) q <= {q[2:0], d};\nendmodule",
            "sr",
        );
        for bit in [1u64, 0, 1, 1] {
            s.poke("d", v(1, bit)).unwrap();
            s.clock_cycle("clk").unwrap();
        }
        assert_eq!(s.peek("q").unwrap().to_u64(), Some(0b1011));
    }

    #[test]
    fn parameterized_adder() {
        let mut s = sim(
            "module add #(parameter W = 16)(input [W-1:0] a, input [W-1:0] b, output [W-1:0] s);\n\
             assign s = a + b;\nendmodule",
            "add",
        );
        s.poke("a", v(16, 40_000)).unwrap();
        s.poke("b", v(16, 30_000)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek("s").unwrap().to_u64(), Some((40_000 + 30_000) % 65_536));
    }

    #[test]
    fn poke_unknown_port_errors() {
        let mut s = sim("module m(input a, output y); assign y = a; endmodule", "m");
        assert!(matches!(s.poke("zz", v(1, 0)), Err(SimError::NoSuchPort(_))));
    }
}
