//! # rtlfixer-sim
//!
//! A cycle-level Verilog simulator over the `rtlfixer-verilog` frontend,
//! standing in for the simulation half of the paper's evaluation stack
//! (VerilogEval measures functional correctness by simulating candidates
//! against golden testbenches).
//!
//! The pipeline is:
//!
//! 1. [`elab::elaborate`] flattens an analyzed design into signals plus
//!    combinational / sequential / initial processes (instances flattened
//!    with hierarchical prefixes, generate loops unrolled).
//! 2. [`Simulator`] executes the design: settle-to-fixpoint combinational
//!    evaluation, two-phase non-blocking sequential semantics, 4-state
//!    values ([`value::LogicVec`]).
//! 3. [`testbench::run_testbench`] compares the device under test against a
//!    Rust [`testbench::ReferenceModel`] over deterministic stimulus.
//!
//! ## Example
//!
//! ```
//! use rtlfixer_sim::{Simulator, value::LogicVec};
//! use rtlfixer_verilog::compile;
//!
//! let analysis = compile(
//!     "module add(input [7:0] a, input [7:0] b, output [7:0] s);
//!      assign s = a + b; endmodule",
//! );
//! let mut sim = Simulator::new(&analysis, "add")?;
//! sim.poke("a", LogicVec::from_u64(8, 17))?;
//! sim.poke("b", LogicVec::from_u64(8, 25))?;
//! sim.settle()?;
//! assert_eq!(sim.peek("s").unwrap().to_u64(), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod elab;
mod fast;
pub mod interp;
mod lanes;
mod lower;
mod tape;
pub mod testbench;
mod thread;
pub mod value;
pub mod vcd;
mod wide;

pub use interp::{
    force_sim_backends, force_sim_lanes, force_sim_threaded, force_sim_wide, SimError, Simulator,
    StateValue,
};
pub use lanes::{LaneAction, LaneRunner, LaneStats};
pub use tape::TapeStats;
pub use testbench::{
    run_testbench, run_testbench_seeds, run_testbench_seeds_with_stats, Clocking, ReferenceModel,
    TestResult,
};
pub use value::LogicVec;
