//! Lowering: compiles an elaborated [`Design`] into the interned,
//! ID-indexed execution form ([`Kernel`]) that the interpreter executes.
//!
//! The lowering pass runs once per design (memoised in
//! `Design::lowered`) and performs every piece of work the old
//! tree-walking interpreter repeated on each evaluation:
//!
//! * **Name interning** — every signal reference is resolved through the
//!   scope chain to a dense `SigId` (`u32` index into a state slab), and
//!   every procedural local to a dense `LocalId` slot in a per-process
//!   scratch vector. Local resolution is purely lexical in our subset, so
//!   it can be done statically: the lowering frame stack mirrors the
//!   runtime frame stack exactly.
//! * **Constant folding** — literals, string literals, parameters and
//!   unresolvable identifiers become [`KExprKind::Const`] values.
//! * **Natural-width precomputation** — the self-determined width of every
//!   expression ([`KExpr::nat`]) is computed once, mirroring the old
//!   `natural_width` rules bit-for-bit (including its quirks, e.g. an
//!   unresolved identifier has natural width 1 but evaluates to 32 x-bits).
//! * **Function specialisation** — user functions are lowered per
//!   `(key, bound-arg-count)` so the old zip-with-actuals arity behaviour
//!   (unbound formals fall through to signal resolution) is preserved.
//! * **Sensitivity sets** — each combinational process records the sorted
//!   set of signals it may read *or* write (including transitively through
//!   function calls). The event-driven settle loop in `interp` only re-runs
//!   a process when one of these signals toggled; writes are included
//!   because a read-modify-write target is itself an input to the process.
//!
//! Everything here is `pub(crate)`: the kernel is an internal execution
//! detail behind the unchanged public `Simulator` API.

use std::collections::{BTreeSet, HashMap};

use rtlfixer_verilog::ast::{
    AssignOp, BinaryOp, CaseKind, Edge, Expr, Item, NetKind, SelectMode, Stmt, UnaryOp,
};
use rtlfixer_verilog::const_eval;
use rtlfixer_verilog::token::Base;

use crate::elab::{Design, FunctionDef, Proc, ProcKind, Scope, SeqProc, SigDef};
use crate::tape::{self, Tape, TapeStats};
use crate::value::{Bit, LogicVec};

/// Dense signal index into the simulator's state slab.
pub(crate) type SigId = u32;
/// Dense local-variable slot index into a process's scratch vector.
pub(crate) type LocalId = u32;

/// One interned signal: its flattened name plus definition.
#[derive(Debug)]
pub(crate) struct KSig {
    pub(crate) name: String,
    pub(crate) def: SigDef,
}

/// The lowered execution form of a [`Design`].
#[derive(Debug)]
pub(crate) struct Kernel {
    /// Signals ordered by flattened name (so IDs are deterministic).
    pub(crate) sigs: Vec<KSig>,
    /// Name → ID lookup for the public poke/peek/edge API.
    pub(crate) by_name: HashMap<String, SigId>,
    /// Combinational processes, in design order.
    pub(crate) comb: Vec<KProc>,
    /// Edge-triggered processes, in design order.
    pub(crate) seq: Vec<KSeqProc>,
    /// Initial processes, in design order.
    pub(crate) init: Vec<KProc>,
    /// Lowered user functions, specialised per bound-argument count.
    pub(crate) funcs: Vec<KFunc>,
    /// Aggregate tape-compilation statistics across all processes.
    pub(crate) tape_stats: TapeStats,
}

/// A lowered combinational or initial process.
#[derive(Debug)]
pub(crate) struct KProc {
    pub(crate) body: KProcBody,
    /// Scratch slots needed to execute the body.
    pub(crate) nlocals: u32,
    /// Sorted signals this process may read or write (incl. via functions).
    pub(crate) sens: Box<[SigId]>,
    /// Compiled bytecode tape (`None`: execute the tree body).
    pub(crate) tape: Option<Tape>,
}

/// Process payload (mirrors `ProcKind`).
#[derive(Debug)]
pub(crate) enum KProcBody {
    Assign { lhs: KLval, rhs: KExpr },
    Block(KStmt),
    BindIn { child: Option<SigId>, expr: KExpr },
    BindOut { lhs: KLval, child: Option<SigId> },
}

/// A lowered edge-triggered process. Edge matching stays string-keyed
/// against the caller-supplied signal name, exactly like the old
/// interpreter (a child instance's `u1.clk` edge never matches a top-level
/// `edge("clk", ..)` call).
#[derive(Debug)]
pub(crate) struct KSeqProc {
    pub(crate) edges: Vec<(Edge, String)>,
    pub(crate) nlocals: u32,
    pub(crate) body: KStmt,
    /// Compiled bytecode tape (`None`: execute the tree body).
    pub(crate) tape: Option<Tape>,
}

/// A lowered function, specialised to a fixed number of bound arguments.
#[derive(Debug)]
pub(crate) struct KFunc {
    /// Scratch slots for one invocation frame.
    pub(crate) nlocals: u32,
    /// `(slot, width)` per bound formal, in order.
    pub(crate) args: Box<[(LocalId, u32)]>,
    /// Slot holding the return value (named after the function; shadows a
    /// same-named argument exactly like the old frame insert did).
    pub(crate) ret_slot: LocalId,
    pub(crate) ret_width: u32,
    pub(crate) body: KStmt,
}

/// A lowered expression with its precomputed natural width.
#[derive(Debug, Clone)]
pub(crate) struct KExpr {
    /// Self-determined width per the old `natural_width` rules.
    pub(crate) nat: u32,
    pub(crate) kind: KExprKind,
}

#[derive(Debug, Clone)]
pub(crate) enum KExprKind {
    Const(LogicVec),
    Sig(SigId),
    Local(LocalId),
    Unary { op: UnaryOp, operand: Box<KExpr> },
    Binary { op: BinaryOp, lhs: Box<KExpr>, rhs: Box<KExpr> },
    Ternary { cond: Box<KExpr>, then_expr: Box<KExpr>, else_expr: Box<KExpr> },
    Concat(Box<[KExpr]>),
    Replicate { count: Box<KExpr>, value: Box<KExpr> },
    Index { base: KBase, index: Box<KExpr> },
    Select { base: KBase, left: Box<KExpr>, right: Box<KExpr>, mode: SelectMode },
    Call { func: u32, args: Box<[KExpr]> },
    Clog2(Option<Box<KExpr>>),
    /// `$signed`/`$unsigned`: passes its argument through (or 1 x-bit).
    Pass(Option<Box<KExpr>>),
}

/// The base of an index/select expression, resolved statically.
#[derive(Debug, Clone)]
pub(crate) enum KBase {
    Local(LocalId),
    Sig(SigId),
    /// Computed base (including parameters and unresolved names, which the
    /// old interpreter routed through generic evaluation).
    Expr(Box<KExpr>),
}

/// A variable reference for whole-variable writes.
#[derive(Debug, Clone)]
pub(crate) enum KVarRef {
    Local(LocalId),
    Sig(SigId),
    /// Unresolvable target: the write is dropped (old behaviour).
    None,
}

/// A lowered l-value.
#[derive(Debug, Clone)]
pub(crate) enum KLval {
    /// Whole variable. `width` is the static l-value width (slot width for
    /// locals, definition width for signals, 1 when unresolved).
    Whole { target: KVarRef, width: u32 },
    /// Single bit / memory word select. `width` keeps the old
    /// `lvalue_width` quirk: it consults signal resolution only (ignoring
    /// locals) and yields the definition width for memories, else 1.
    Index { target: KVarRef, index: Box<KExpr>, width: u32 },
    /// Part select; width is runtime-computed from `left`/`right`.
    /// `word` is the memory word index for `mem[i][hi:lo]` targets.
    Select {
        target: KVarRef,
        word: Option<Box<KExpr>>,
        left: Box<KExpr>,
        right: Box<KExpr>,
        mode: SelectMode,
    },
    Concat(Box<[KLval]>),
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub(crate) enum KStmt {
    /// Entering the block zeroes its declared slots (a fresh frame in the
    /// old interpreter), then runs the statements.
    Block { zero: Box<[(LocalId, u32)]>, stmts: Box<[KStmt]> },
    Assign { lhs: KLval, op: AssignOp, rhs: KExpr },
    If { cond: KExpr, then_branch: Box<KStmt>, else_branch: Option<Box<KStmt>> },
    Case { kind: CaseKind, scrutinee: KExpr, arms: Box<[KArm]>, default: Option<Box<KStmt>> },
    For {
        /// Slot zeroed on entry when the loop declares its variable.
        decl_slot: Option<LocalId>,
        var: KVarRef,
        init: KExpr,
        cond: KExpr,
        step: KExpr,
        body: Box<KStmt>,
    },
    While { cond: KExpr, body: Box<KStmt> },
    Repeat { count: KExpr, body: Box<KStmt> },
    Nop,
}

/// One case arm.
#[derive(Debug, Clone)]
pub(crate) struct KArm {
    pub(crate) labels: Box<[KExpr]>,
    pub(crate) body: KStmt,
}

// ---- lowering pass ---------------------------------------------------------

/// A lexical frame: declared names with their slots and widths. Later
/// entries shadow earlier ones (mirroring `HashMap::insert` overwrite).
#[derive(Default)]
struct Frame {
    entries: Vec<(String, LocalId, u32)>,
}

/// Per-process lowering context: the lexical frame stack plus collected
/// signal references and function calls.
struct BodyCx<'d> {
    scope: &'d Scope,
    frames: Vec<Frame>,
    next_local: u32,
    refs: BTreeSet<SigId>,
    calls: BTreeSet<u32>,
}

impl<'d> BodyCx<'d> {
    fn new(scope: &'d Scope) -> Self {
        BodyCx { scope, frames: Vec::new(), next_local: 0, refs: BTreeSet::new(), calls: BTreeSet::new() }
    }

    fn alloc(&mut self) -> LocalId {
        let id = self.next_local;
        self.next_local += 1;
        id
    }

    fn lookup_local(&self, name: &str) -> Option<(LocalId, u32)> {
        for frame in self.frames.iter().rev() {
            for (n, slot, width) in frame.entries.iter().rev() {
                if n == name {
                    return Some((*slot, *width));
                }
            }
        }
        None
    }
}

/// A lowered process before its sensitivity set is finalised (function
/// reference sets are only complete after the transitive-closure pass).
struct ProtoProc {
    body: KProcBody,
    nlocals: u32,
    refs: BTreeSet<SigId>,
    calls: BTreeSet<u32>,
}

struct Lowering<'d> {
    design: &'d Design,
    sigs: Vec<KSig>,
    by_name: HashMap<String, SigId>,
    funcs: Vec<KFunc>,
    /// Signals each function references directly (closed transitively later).
    func_refs: Vec<BTreeSet<SigId>>,
    /// Functions each function calls directly.
    func_calls: Vec<BTreeSet<u32>>,
    /// `(key, bound-arg-count)` → function ID.
    func_ids: HashMap<(String, usize), u32>,
}

/// Lowers a design. Infallible: unresolvable constructs lower to the same
/// do-nothing / x-valued behaviour the old interpreter produced at runtime.
pub(crate) fn lower(design: &Design) -> Kernel {
    let mut names: Vec<&str> = design.signals.keys().map(String::as_str).collect();
    names.sort_unstable();
    let mut sigs = Vec::with_capacity(names.len());
    let mut by_name = HashMap::with_capacity(names.len());
    for name in names {
        let id = sigs.len() as SigId;
        sigs.push(KSig { name: name.to_owned(), def: design.signals[name].clone() });
        by_name.insert(name.to_owned(), id);
    }

    let mut lw = Lowering {
        design,
        sigs,
        by_name,
        funcs: Vec::new(),
        func_refs: Vec::new(),
        func_calls: Vec::new(),
        func_ids: HashMap::new(),
    };

    let comb: Vec<ProtoProc> = design.comb.iter().map(|p| lw.lower_proc(p)).collect();
    let init: Vec<ProtoProc> = design.init.iter().map(|p| lw.lower_proc(p)).collect();
    let seq: Vec<KSeqProc> = design.seq.iter().map(|p| lw.lower_seq(p)).collect();

    // Close function reference sets over the call graph (A calls B calls C:
    // C's signals reach A after two iterations).
    loop {
        let mut changed = false;
        for i in 0..lw.func_calls.len() {
            let callees: Vec<u32> = lw.func_calls[i].iter().copied().collect();
            for c in callees {
                if c as usize == i {
                    continue;
                }
                let add: Vec<SigId> = lw.func_refs[c as usize]
                    .iter()
                    .copied()
                    .filter(|s| !lw.func_refs[i].contains(s))
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    lw.func_refs[i].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let finish = |proto: ProtoProc, lw: &Lowering<'_>| -> KProc {
        let mut sens = proto.refs;
        for c in &proto.calls {
            sens.extend(lw.func_refs[*c as usize].iter().copied());
        }
        KProc {
            body: proto.body,
            nlocals: proto.nlocals,
            sens: sens.into_iter().collect(),
            tape: None,
        }
    };
    let comb: Vec<KProc> = comb.into_iter().map(|p| finish(p, &lw)).collect();
    let init: Vec<KProc> = init.into_iter().map(|p| finish(p, &lw)).collect();

    let mut kernel =
        Kernel { sigs: lw.sigs, by_name: lw.by_name, comb, seq, init, funcs: lw.funcs, tape_stats: TapeStats::default() };

    // Tape compilation runs after the kernel is assembled (it borrows the
    // signal/function tables immutably) and attaches in a second phase.
    let mut stats = TapeStats::default();
    let absorb = |t: (Option<Tape>, TapeStats), stats: &mut TapeStats| {
        stats.absorb(&t.1);
        t.0
    };
    let comb_tapes: Vec<Option<Tape>> = kernel
        .comb
        .iter()
        .map(|p| absorb(tape::compile_proc(&kernel.sigs, &kernel.funcs, p.nlocals, &p.body), &mut stats))
        .collect();
    let init_tapes: Vec<Option<Tape>> = kernel
        .init
        .iter()
        .map(|p| absorb(tape::compile_proc(&kernel.sigs, &kernel.funcs, p.nlocals, &p.body), &mut stats))
        .collect();
    let seq_tapes: Vec<Option<Tape>> = kernel
        .seq
        .iter()
        .map(|p| absorb(tape::compile_seq(&kernel.sigs, &kernel.funcs, p.nlocals, &p.body), &mut stats))
        .collect();
    for (p, t) in kernel.comb.iter_mut().zip(comb_tapes) {
        p.tape = t;
    }
    for (p, t) in kernel.init.iter_mut().zip(init_tapes) {
        p.tape = t;
    }
    for (p, t) in kernel.seq.iter_mut().zip(seq_tapes) {
        p.tape = t;
    }
    kernel.tape_stats = stats;
    kernel
}

impl<'d> Lowering<'d> {
    /// Replicates the old `resolve_signal` scope-chain walk over interned
    /// names: `scope_prefix + name`, stripping one generate-scope segment
    /// at a time down to `module_prefix`.
    fn resolve_sig(&self, scope: &Scope, name: &str) -> Option<SigId> {
        let mut prefix = scope.scope_prefix.clone();
        loop {
            let candidate = format!("{prefix}{name}");
            if let Some(&id) = self.by_name.get(&candidate) {
                return Some(id);
            }
            if prefix == scope.module_prefix {
                return None;
            }
            let trimmed = &prefix[..prefix.len() - 1]; // drop trailing '.'
            match trimmed.rfind('.') {
                Some(pos) => prefix = prefix[..pos + 1].to_owned(),
                None => prefix = String::new(),
            }
            if prefix.len() < scope.module_prefix.len() {
                return None;
            }
        }
    }

    fn lower_proc(&mut self, proc: &Proc) -> ProtoProc {
        let mut cx = BodyCx::new(&proc.scope);
        let body = match &proc.kind {
            ProcKind::Assign { lhs, rhs } => {
                let klhs = self.lower_lval(&mut cx, lhs);
                let krhs = self.lower_expr(&mut cx, rhs);
                KProcBody::Assign { lhs: klhs, rhs: krhs }
            }
            ProcKind::Block(stmt) => KProcBody::Block(self.lower_stmt(&mut cx, stmt)),
            ProcKind::BindIn { child, expr } => {
                let id = self.by_name.get(child).copied();
                if let Some(id) = id {
                    cx.refs.insert(id); // write target
                }
                KProcBody::BindIn { child: id, expr: self.lower_expr(&mut cx, expr) }
            }
            ProcKind::BindOut { lhs, child } => {
                let id = self.by_name.get(child).copied();
                if let Some(id) = id {
                    cx.refs.insert(id); // read source
                }
                KProcBody::BindOut { lhs: self.lower_lval(&mut cx, lhs), child: id }
            }
        };
        ProtoProc { body, nlocals: cx.next_local, refs: cx.refs, calls: cx.calls }
    }

    fn lower_seq(&mut self, proc: &SeqProc) -> KSeqProc {
        let mut cx = BodyCx::new(&proc.scope);
        let body = self.lower_stmt(&mut cx, &proc.body);
        KSeqProc { edges: proc.edges.clone(), nlocals: cx.next_local, body, tape: None }
    }

    /// Lowers a function for a given bound-argument count, interning it.
    /// The ID is registered before the body is lowered so recursion
    /// terminates.
    fn intern_func(
        &mut self,
        key: &str,
        func: &'d FunctionDef,
        nbound: usize,
        call_name: &str,
    ) -> u32 {
        if let Some(&id) = self.func_ids.get(&(key.to_owned(), nbound)) {
            return id;
        }
        let fid = self.funcs.len() as u32;
        self.funcs.push(KFunc {
            nlocals: 0,
            args: Box::new([]),
            ret_slot: 0,
            ret_width: func.width,
            body: KStmt::Nop,
        });
        self.func_refs.push(BTreeSet::new());
        self.func_calls.push(BTreeSet::new());
        self.func_ids.insert((key.to_owned(), nbound), fid);

        let mut cx = BodyCx::new(&func.scope);
        let mut frame = Frame::default();
        let mut args = Vec::with_capacity(nbound);
        for (arg_name, width) in func.args.iter().take(nbound) {
            let slot = cx.alloc();
            frame.entries.push((arg_name.clone(), slot, *width));
            args.push((slot, *width));
        }
        // The return variable is keyed by the (unprefixed) call name and
        // inserted after the arguments, shadowing a same-named argument —
        // exactly like the old frame insert.
        let ret_slot = cx.alloc();
        frame.entries.push((call_name.to_owned(), ret_slot, func.width));
        cx.frames.push(frame);
        let body = self.lower_stmt(&mut cx, &func.body);
        cx.frames.pop();

        self.funcs[fid as usize] = KFunc {
            nlocals: cx.next_local,
            args: args.into_boxed_slice(),
            ret_slot,
            ret_width: func.width,
            body,
        };
        self.func_refs[fid as usize] = cx.refs;
        self.func_calls[fid as usize] = cx.calls;
        fid
    }

    /// The old `natural_width` Index quirk: the base identifier is resolved
    /// through signal resolution only (locals are *not* consulted), and the
    /// width is the definition width for memories, else 1.
    fn index_nat(&self, cx: &BodyCx<'_>, base: &Expr) -> u32 {
        if let Some(name) = base.as_ident() {
            if let Some(id) = self.resolve_sig(cx.scope, name) {
                let def = &self.sigs[id as usize].def;
                if def.words.is_some() {
                    return def.width;
                }
            }
        }
        1
    }

    /// Lowers an index/select base: locals first, then signals, then the
    /// generic expression path (which covers parameters and unresolved
    /// names) — the exact order of the old `eval_index`/`eval_select`.
    fn lower_base(&mut self, cx: &mut BodyCx<'_>, base: &Expr) -> KBase {
        if let Some(name) = base.as_ident() {
            if let Some((slot, _)) = cx.lookup_local(name) {
                return KBase::Local(slot);
            }
            if let Some(id) = self.resolve_sig(cx.scope, name) {
                cx.refs.insert(id);
                return KBase::Sig(id);
            }
        }
        KBase::Expr(Box::new(self.lower_expr(cx, base)))
    }

    fn lower_expr(&mut self, cx: &mut BodyCx<'_>, expr: &Expr) -> KExpr {
        use BinaryOp::*;
        match expr {
            Expr::Ident { name, .. } => {
                if let Some((slot, width)) = cx.lookup_local(name) {
                    return KExpr { nat: width, kind: KExprKind::Local(slot) };
                }
                if let Some(value) = cx.scope.params.get(name) {
                    return KExpr {
                        nat: 32,
                        kind: KExprKind::Const(LogicVec::from_u64(32, *value as u64)),
                    };
                }
                if let Some(id) = self.resolve_sig(cx.scope, name) {
                    cx.refs.insert(id);
                    return KExpr {
                        nat: self.sigs[id as usize].def.width,
                        kind: KExprKind::Sig(id),
                    };
                }
                // Unresolved: evaluates to 32 x-bits, natural width 1.
                KExpr { nat: 1, kind: KExprKind::Const(LogicVec::xs(32)) }
            }
            Expr::Literal { size, base, digits, .. } => {
                let width = size.unwrap_or(32);
                let radix = base.map_or(10, Base::radix);
                KExpr { nat: width, kind: KExprKind::Const(LogicVec::from_digits(width, digits, radix)) }
            }
            Expr::Str { value, .. } => {
                let width = (8 * value.len().max(1)) as u32;
                let mut acc = LogicVec::zeros(width);
                for (i, byte) in value.bytes().rev().enumerate() {
                    for k in 0..8 {
                        if (byte >> k) & 1 == 1 {
                            acc = acc.with_bit((i * 8) as u32 + k, Bit::One);
                        }
                    }
                }
                KExpr { nat: width, kind: KExprKind::Const(acc) }
            }
            Expr::Unary { op, operand, .. } => {
                let o = self.lower_expr(cx, operand);
                let nat = match op {
                    UnaryOp::BitNot | UnaryOp::Neg | UnaryOp::Plus => o.nat,
                    _ => 1,
                };
                KExpr { nat, kind: KExprKind::Unary { op: *op, operand: Box::new(o) } }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.lower_expr(cx, lhs);
                let b = self.lower_expr(cx, rhs);
                let nat = match op {
                    Add | Sub | Mul | Div | Mod | Pow | BitAnd | BitOr | BitXor | BitXnor => {
                        a.nat.max(b.nat)
                    }
                    Shl | AShl | Shr | AShr => a.nat,
                    _ => 1,
                };
                KExpr { nat, kind: KExprKind::Binary { op: *op, lhs: Box::new(a), rhs: Box::new(b) } }
            }
            Expr::Ternary { cond, then_expr, else_expr, .. } => {
                let c = self.lower_expr(cx, cond);
                let t = self.lower_expr(cx, then_expr);
                let e = self.lower_expr(cx, else_expr);
                KExpr {
                    nat: t.nat.max(e.nat),
                    kind: KExprKind::Ternary {
                        cond: Box::new(c),
                        then_expr: Box::new(t),
                        else_expr: Box::new(e),
                    },
                }
            }
            Expr::Concat { parts, .. } => {
                let mut kparts = Vec::with_capacity(parts.len());
                for part in parts {
                    kparts.push(self.lower_expr(cx, part));
                }
                let nat = kparts.iter().map(|p| p.nat).sum();
                KExpr { nat, kind: KExprKind::Concat(kparts.into_boxed_slice()) }
            }
            Expr::Replicate { count, value, .. } => {
                let n = self.lower_expr(cx, count);
                let v = self.lower_expr(cx, value);
                KExpr {
                    nat: 1, // evaluated self-determined anyway
                    kind: KExprKind::Replicate { count: Box::new(n), value: Box::new(v) },
                }
            }
            Expr::Index { base, index, .. } => {
                let nat = self.index_nat(cx, base);
                let kbase = self.lower_base(cx, base);
                let kindex = self.lower_expr(cx, index);
                KExpr { nat, kind: KExprKind::Index { base: kbase, index: Box::new(kindex) } }
            }
            Expr::Select { base, left, right, mode, .. } => {
                let kbase = self.lower_base(cx, base);
                let l = self.lower_expr(cx, left);
                let r = self.lower_expr(cx, right);
                KExpr {
                    nat: 1, // conservative; evaluated self-determined
                    kind: KExprKind::Select {
                        base: kbase,
                        left: Box::new(l),
                        right: Box::new(r),
                        mode: *mode,
                    },
                }
            }
            Expr::Call { name, args, .. } => {
                let design = self.design;
                let key = format!("{}{name}", cx.scope.module_prefix);
                let Some(func) = design.functions.get(&key) else {
                    // Missing function: 1 x-bit, natural width 1.
                    return KExpr { nat: 1, kind: KExprKind::Const(LogicVec::xs(1)) };
                };
                // Only the formals with matching actuals are bound; surplus
                // actuals are dropped and unbound formals fall through to
                // signal resolution inside the body (old zip behaviour).
                let nbound = args.len().min(func.args.len());
                let fid = self.intern_func(&key, func, nbound, name);
                cx.calls.insert(fid);
                let mut kargs = Vec::with_capacity(nbound);
                for arg in &args[..nbound] {
                    kargs.push(self.lower_expr(cx, arg));
                }
                KExpr {
                    nat: func.width,
                    kind: KExprKind::Call { func: fid, args: kargs.into_boxed_slice() },
                }
            }
            Expr::SysCall { name, args, .. } => match name.as_str() {
                "clog2" => {
                    let arg = args.first().map(|a| Box::new(self.lower_expr(cx, a)));
                    KExpr { nat: 32, kind: KExprKind::Clog2(arg) }
                }
                "signed" | "unsigned" => {
                    let arg = args.first().map(|a| Box::new(self.lower_expr(cx, a)));
                    KExpr { nat: 32, kind: KExprKind::Pass(arg) }
                }
                "time" | "random" => {
                    KExpr { nat: 32, kind: KExprKind::Const(LogicVec::zeros(32)) }
                }
                _ => KExpr { nat: 32, kind: KExprKind::Const(LogicVec::xs(32)) },
            },
        }
    }

    fn lower_stmt(&mut self, cx: &mut BodyCx<'_>, stmt: &Stmt) -> KStmt {
        match stmt {
            Stmt::Block { decls, stmts, .. } => {
                let mut frame = Frame::default();
                let mut zero = Vec::new();
                for item in decls {
                    if let Item::Net { kind, range, decls, .. } = item {
                        for decl in decls {
                            let width = match range {
                                Some(r) => {
                                    let msb =
                                        const_eval::eval(&r.msb, &cx.scope.params).unwrap_or(0);
                                    let lsb =
                                        const_eval::eval(&r.lsb, &cx.scope.params).unwrap_or(0);
                                    msb.abs_diff(lsb) as u32 + 1
                                }
                                None => {
                                    if *kind == NetKind::Integer {
                                        32
                                    } else {
                                        1
                                    }
                                }
                            };
                            let slot = cx.alloc();
                            frame.entries.push((decl.name.clone(), slot, width));
                            zero.push((slot, width));
                        }
                    }
                }
                cx.frames.push(frame);
                let mut body = Vec::with_capacity(stmts.len());
                for s in stmts {
                    body.push(self.lower_stmt(cx, s));
                }
                cx.frames.pop();
                KStmt::Block { zero: zero.into_boxed_slice(), stmts: body.into_boxed_slice() }
            }
            Stmt::Assign { lhs, op, rhs, .. } => {
                let klhs = self.lower_lval(cx, lhs);
                let krhs = self.lower_expr(cx, rhs);
                KStmt::Assign { lhs: klhs, op: *op, rhs: krhs }
            }
            Stmt::If { cond, then_branch, else_branch, .. } => KStmt::If {
                cond: self.lower_expr(cx, cond),
                then_branch: Box::new(self.lower_stmt(cx, then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.lower_stmt(cx, e))),
            },
            Stmt::Case { kind, scrutinee, arms, default, .. } => {
                let kscrutinee = self.lower_expr(cx, scrutinee);
                let mut karms = Vec::with_capacity(arms.len());
                for arm in arms {
                    let mut labels = Vec::with_capacity(arm.labels.len());
                    for label in &arm.labels {
                        labels.push(self.lower_expr(cx, label));
                    }
                    karms.push(KArm {
                        labels: labels.into_boxed_slice(),
                        body: self.lower_stmt(cx, &arm.body),
                    });
                }
                KStmt::Case {
                    kind: *kind,
                    scrutinee: kscrutinee,
                    arms: karms.into_boxed_slice(),
                    default: default.as_ref().map(|d| Box::new(self.lower_stmt(cx, d))),
                }
            }
            Stmt::For { var, decl, init, cond, step, body, .. } => {
                let mut frame = Frame::default();
                let decl_slot = if decl.is_some() {
                    let slot = cx.alloc();
                    frame.entries.push((var.clone(), slot, 32));
                    Some(slot)
                } else {
                    None
                };
                cx.frames.push(frame);
                let var_ref = if let Some((slot, _)) = cx.lookup_local(var) {
                    KVarRef::Local(slot)
                } else if let Some(id) = self.resolve_sig(cx.scope, var) {
                    cx.refs.insert(id); // write target
                    KVarRef::Sig(id)
                } else {
                    KVarRef::None
                };
                let init = self.lower_expr(cx, init);
                let cond = self.lower_expr(cx, cond);
                let step = self.lower_expr(cx, step);
                let body = Box::new(self.lower_stmt(cx, body));
                cx.frames.pop();
                KStmt::For { decl_slot, var: var_ref, init, cond, step, body }
            }
            Stmt::While { cond, body, .. } => KStmt::While {
                cond: self.lower_expr(cx, cond),
                body: Box::new(self.lower_stmt(cx, body)),
            },
            Stmt::Repeat { count, body, .. } => KStmt::Repeat {
                count: self.lower_expr(cx, count),
                body: Box::new(self.lower_stmt(cx, body)),
            },
            Stmt::SysCall { .. } | Stmt::Null(_) => KStmt::Nop,
        }
    }

    fn lower_lval(&mut self, cx: &mut BodyCx<'_>, lhs: &Expr) -> KLval {
        match lhs {
            Expr::Concat { parts, .. } => {
                let mut kparts = Vec::with_capacity(parts.len());
                for part in parts {
                    kparts.push(self.lower_lval(cx, part));
                }
                KLval::Concat(kparts.into_boxed_slice())
            }
            Expr::Ident { name, .. } => {
                if let Some((slot, width)) = cx.lookup_local(name) {
                    return KLval::Whole { target: KVarRef::Local(slot), width };
                }
                if let Some(id) = self.resolve_sig(cx.scope, name) {
                    cx.refs.insert(id); // write target
                    return KLval::Whole {
                        target: KVarRef::Sig(id),
                        width: self.sigs[id as usize].def.width,
                    };
                }
                KLval::Whole { target: KVarRef::None, width: 1 }
            }
            Expr::Index { base, index, .. } => {
                let width = self.index_nat(cx, base);
                let target = self.lval_target(cx, lhs, base, &mut None);
                KLval::Index { target, index: Box::new(self.lower_expr(cx, index)), width }
            }
            Expr::Select { base, left, right, mode, .. } => {
                let mut word = None;
                let target = self.lval_target(cx, lhs, base, &mut Some(&mut word));
                KLval::Select {
                    target,
                    word,
                    left: Box::new(self.lower_expr(cx, left)),
                    right: Box::new(self.lower_expr(cx, right)),
                    mode: *mode,
                }
            }
            // Exotic l-values resolve no target and have width 1.
            _ => KLval::Whole { target: KVarRef::None, width: 1 },
        }
    }

    /// Resolves the write target for an index/select l-value, mirroring
    /// `resolve_target` + `write_local_select`: the *root* identifier picks
    /// local vs signal, but a local is only writable when the base is the
    /// identifier itself (nested bases were silently dropped). For signal
    /// part-selects with a `mem[i][hi:lo]` shape, the word index expression
    /// is captured into `word`.
    fn lval_target(
        &mut self,
        cx: &mut BodyCx<'_>,
        lhs: &Expr,
        base: &Expr,
        word: &mut Option<&mut Option<Box<KExpr>>>,
    ) -> KVarRef {
        let Some(root) = lhs.lvalue_root() else {
            return KVarRef::None;
        };
        let root = root.to_owned();
        if cx.lookup_local(&root).is_some() {
            return match base.as_ident().and_then(|n| cx.lookup_local(n)) {
                Some((slot, _)) => KVarRef::Local(slot),
                None => KVarRef::None,
            };
        }
        if let Some(id) = self.resolve_sig(cx.scope, &root) {
            cx.refs.insert(id); // write target
            if let Some(word) = word.as_mut() {
                if let Expr::Index { index, .. } = base {
                    **word = Some(Box::new(self.lower_expr(cx, index)));
                }
            }
            return KVarRef::Sig(id);
        }
        KVarRef::None
    }
}
