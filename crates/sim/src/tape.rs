//! Tape compilation: lowers each kernel process one step further, from
//! [`crate::lower::KExpr`] trees into a flat register-based bytecode
//! ("tape") executed by a tight dispatch loop in [`crate::interp`].
//!
//! The pipeline per process:
//!
//! 1. **Compilation** — statements and expressions are flattened into
//!    [`Op`]s over dense virtual registers. Registers `[0, nlocals)` alias
//!    the process's procedural locals (so the [`Op::Tree`] escape hatch can
//!    hand the register file to the tree-walking interpreter unchanged);
//!    temporaries are bump-allocated above them. Every op delegates to the
//!    *same* semantic helpers as the tree walker ([`crate::interp`]), so
//!    results are bit-identical by construction.
//! 2. **Constant folding** — pure ops whose operands are all compile-time
//!    constants are evaluated during compilation (using those same
//!    helpers); branches on constant conditions compile only the taken arm.
//! 3. **Dead-op elimination** — pure ops whose result register is never
//!    read (typically exposed by folding and dropped writes) are removed
//!    and jump targets remapped.
//! 4. **Two-state fast path** — when every value in the process's input
//!    cone has a static width of at most 64 bits and no x/z can enter it,
//!    a parallel [`FOp`] tape over a plain `u64` register file is emitted.
//!    Its prologue verifies the cone is x-free (falling back to the
//!    four-state tape otherwise), all writes are buffered in shadow
//!    registers, and any op that *would* produce x/z (division by zero,
//!    out-of-range select) aborts cleanly before any state is mutated.
//!
//! Statement shapes outside the op set (runtime-width part-select
//! l-values, `repeat` is compiled, but e.g. exotic concat l-values) fall
//! back per-statement via [`Op::Tree`], or per-process by returning `None`
//! from [`compile_body`] (the interpreter then uses the PR 4 tree path).
//!
//! Tapes are built once per design inside [`crate::lower::lower`] (hence
//! behind the same `OnceLock`-on-`Design` cache as the kernel). The
//! `RTLFIXER_SIM_TAPE` kill switch in [`crate::interp`] governs execution
//! only, mirroring `RTLFIXER_SIM_EVENT`.

use std::collections::{BTreeMap, HashMap};

use rtlfixer_verilog::ast::{AssignOp, BinaryOp, CaseKind, SelectMode, UnaryOp};

use crate::interp::{
    case_hit, clog2_val, eval_binary, eval_unary, index_bit, merge_arms, replicate_count,
    select_bounds, select_generic, MAX_LOOP,
};
use crate::lower::{
    KArm, KBase, KExpr, KExprKind, KFunc, KLval, KProcBody, KSig, KStmt, KVarRef, LocalId, SigId,
};
use crate::value::{Bit, LogicVec};

/// Virtual register index. Registers `[0, nlocals)` alias procedural
/// locals; higher indices are compiler temporaries.
pub(crate) type VReg = u32;

/// Aggregate lowering statistics (per process, summed per kernel).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TapeStats {
    /// Processes considered for tape compilation.
    pub procs: u64,
    /// Processes that compiled to a tape.
    pub taped: u64,
    /// Processes that additionally produced a two-state fast tape.
    pub fast: u64,
    /// Four-state ops emitted (before dead-op elimination).
    pub ops_emitted: u64,
    /// Constant-folding events during compilation.
    pub ops_folded: u64,
    /// Ops removed by dead-op elimination.
    pub ops_dead: u64,
    /// Statements that fell back to embedded tree execution.
    pub tree_stmts: u64,
    /// Signals dropped from sensitivity sets (write-only targets the
    /// event filter no longer re-runs on).
    pub dead_signals: u64,
    /// Statically-bounded `for` loops fully unrolled at compile time.
    pub loops_unrolled: u64,
    /// Processes whose fast tape uses a multi-limb (>64-bit) register class.
    pub fast_wide: u64,
    /// Widest fast register class in the kernel, in 64-bit limbs per
    /// register (0 = no fast tape anywhere). Absorbed via max, not sum.
    pub limb_class: u64,
    /// Processes that compiled to a tape but were rejected for a fast
    /// variant (wide cone, unsupported ops, or a mostly-fallback mapping).
    pub fast_rejected: u64,
}

impl TapeStats {
    /// Sums `other` into `self` (`limb_class` takes the max).
    pub fn absorb(&mut self, other: &TapeStats) {
        self.procs += other.procs;
        self.taped += other.taped;
        self.fast += other.fast;
        self.ops_emitted += other.ops_emitted;
        self.ops_folded += other.ops_folded;
        self.ops_dead += other.ops_dead;
        self.tree_stmts += other.tree_stmts;
        self.dead_signals += other.dead_signals;
        self.loops_unrolled += other.loops_unrolled;
        self.fast_wide += other.fast_wide;
        self.limb_class = self.limb_class.max(other.limb_class);
        self.fast_rejected += other.fast_rejected;
    }
}

/// A compiled process: flat four-state ops plus an optional two-state
/// fast variant.
#[derive(Debug)]
pub(crate) struct Tape {
    pub(crate) ops: Box<[Op]>,
    pub(crate) consts: Box<[LogicVec]>,
    /// Total virtual registers (locals + temporaries).
    pub(crate) nregs: u32,
    /// Leading registers that alias procedural locals.
    pub(crate) nlocals: u32,
    /// Loop counters used by the tape.
    pub(crate) nctrs: u32,
    pub(crate) fast: Option<FastTape>,
    pub(crate) stats: TapeStats,
}

/// Four-state tape ops. Each mirrors one step of the tree walker exactly
/// (most delegate to the shared helpers in `interp`).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// `regs[dst] = consts[c]`
    Const { dst: VReg, c: u32 },
    /// Whole-signal read (vectors; statically-known arrays fold to x).
    LoadSig { dst: VReg, sig: SigId },
    /// Memory word read with a constant-folded slot.
    LoadWord { dst: VReg, sig: SigId, slot: usize },
    Copy { dst: VReg, src: VReg },
    Unary { dst: VReg, op: UnaryOp, src: VReg },
    Binary { dst: VReg, op: BinaryOp, a: VReg, b: VReg },
    Resize { dst: VReg, src: VReg, width: u32 },
    /// Ternary x-merge of two arm values (`merge_arms`).
    Merge { dst: VReg, t: VReg, e: VReg },
    /// MSB-first concatenation (always ≥ 2 parts).
    Concat { dst: VReg, parts: Box<[VReg]> },
    /// Replication with a constant-folded count (≥ 1).
    ReplicateC { dst: VReg, src: VReg, count: u32 },
    /// Replication with a runtime count.
    ReplicateDyn { dst: VReg, count: VReg, val: VReg },
    /// `regs[src].slice(hi, lo)` (out-of-range bits read x).
    Slice { dst: VReg, src: VReg, hi: u32, lo: u32 },
    /// Direct slice of a vector signal's state (constant offsets).
    SliceSig { dst: VReg, sig: SigId, hi: u32, lo: u32 },
    /// Bit-index with runtime index, signal base.
    IndexSig { dst: VReg, sig: SigId, idx: VReg },
    /// Bit-index with runtime index, value base.
    IndexVal { dst: VReg, base: VReg, idx: VReg },
    /// Bit-index with constant index into a runtime-width value.
    IndexValC { dst: VReg, base: VReg, idx: i64 },
    /// Part-select with runtime bounds on a signal.
    SelectSig { dst: VReg, sig: SigId, left: VReg, right: VReg, mode: SelectMode },
    /// Indexed part-select with constant span (≥ 1) on a signal.
    SelectSigW { dst: VReg, sig: SigId, left: VReg, span: i64, mode: SelectMode },
    /// Part-select with runtime bounds on a value.
    SelectVal { dst: VReg, base: VReg, left: VReg, right: VReg, mode: SelectMode },
    /// Indexed part-select with constant span (≥ 1) on a value.
    SelectValW { dst: VReg, base: VReg, left: VReg, span: i64, mode: SelectMode },
    /// User-function call (args pre-evaluated; body tree-executed against
    /// a shadow state, exactly like `call_function`).
    Call { dst: VReg, func: u32, args: Box<[VReg]> },
    Clog2 { dst: VReg, src: VReg },
    /// Block-entry local zeroing.
    ZeroLocal { slot: VReg, width: u32 },
    /// Whole-local write (resized to the slot's width).
    StoreLocal { slot: VReg, src: VReg, width: u32 },
    /// Local bit write with runtime index.
    StoreLocalBits { slot: VReg, idx: VReg, src: VReg },
    /// Local bit-range write with constant bounds.
    StoreLocalBitsC { slot: VReg, hi: u32, lo: u32, src: VReg },
    /// Local part-select write with runtime bounds.
    StoreLocalSel { slot: VReg, left: VReg, right: VReg, mode: SelectMode, src: VReg },
    /// `set_state(sig, value.resize(width))` — for-var / bind-in writes.
    SetSigVec { sig: SigId, src: VReg, width: u32 },
    /// Whole-signal write (queued under non-blocking assignment).
    StoreWhole { sig: SigId, src: VReg, nb: bool },
    /// Signal bit write with runtime index (vector or memory word).
    StoreIndexSig { sig: SigId, idx: VReg, src: VReg, nb: bool },
    /// Signal bit-range write with constant offsets.
    StoreBitsC { sig: SigId, hi: u32, lo: u32, src: VReg, nb: bool },
    /// Memory word write with constant slot.
    StoreWordC { sig: SigId, slot: usize, src: VReg, nb: bool },
    /// Memory word bit-range write with constant offsets.
    StoreWordBitsC { sig: SigId, slot: usize, hi: u32, lo: u32, src: VReg, nb: bool },
    /// Signal part-select write with runtime bounds (and optional memory
    /// word index).
    StoreSelSig {
        sig: SigId,
        word: Option<VReg>,
        left: VReg,
        right: VReg,
        mode: SelectMode,
        src: VReg,
        nb: bool,
    },
    Jump { to: u32 },
    /// Three-way branch on truthiness (`on_x` taken when the condition
    /// contains x).
    BranchTruthy { cond: VReg, on_true: u32, on_false: u32, on_x: u32 },
    /// Case-label comparison; falls through on miss.
    BranchMatch { kind: CaseKind, scrut: VReg, label: VReg, on_hit: u32 },
    ZeroCtr { ctr: u32 },
    /// `ctr += 1; if ctr < limit jump to` — the post-body loop guard.
    IncCtrJumpLt { ctr: u32, limit: u32, to: u32 },
    /// `ctr = count.to_u64().unwrap_or(0).min(MAX_LOOP)`
    RepeatInit { ctr: u32, count: VReg },
    /// `if ctr == 0 jump on_zero else ctr -= 1`
    BranchCtrZeroDec { ctr: u32, on_zero: u32 },
    /// Escape hatch: run one statement through the tree walker (registers
    /// `[0, nlocals)` are the locals slab).
    Tree { stmt: Box<KStmt> },
}

// ---- two-state fast path ----------------------------------------------------

/// One signal in a fast tape's input/output cone.
#[derive(Debug, Clone)]
pub(crate) struct FCone {
    pub(crate) sig: SigId,
    /// Shadow register holding the signal's value during execution.
    pub(crate) reg: VReg,
    pub(crate) width: u32,
    /// Whether the epilogue must write the shadow back (if changed).
    pub(crate) written: bool,
}

/// The two-state fast variant: one [`FOp`] per four-state [`Op`] (same
/// indices, so jump targets are shared), over a flat limb-register file.
///
/// Registers are fixed-size limb groups: register `r` occupies limbs
/// `[r*limbs, (r+1)*limbs)` of the flat `u64` file. `limbs` is 1 for
/// all-≤64-bit processes (the PR-6 scalar layout, byte-identical
/// semantics) or 2/4 when the process's widest static width lands in
/// `(64, 128]` / `(128, 256]` and multi-limb mode is enabled.
#[derive(Debug)]
pub(crate) struct FastTape {
    pub(crate) ops: Box<[FOp]>,
    pub(crate) cone: Box<[FCone]>,
    pub(crate) nregs: u32,
    /// 64-bit limbs per register (1, 2 or 4).
    pub(crate) limbs: u32,
    /// Wide-constant pool: `limbs` u64s per entry, LSB limb first.
    pub(crate) wconsts: Box<[u64]>,
    /// Lazily-built threaded-dispatch handler table (`limbs == 1` only).
    pub(crate) thread: std::sync::OnceLock<crate::thread::Handlers>,
}

/// Two-state ops. Registers always hold values masked to their static
/// width. Any situation where the four-state op would produce x/z maps to
/// a clean fallback (`FOp::Fallback` or a runtime `return false`).
///
/// Ops carry static result widths (`w`) rather than precomputed `u64`
/// masks so the same op stream executes under any register class; the
/// executor derives limb masks from the width.
#[derive(Debug, Clone)]
pub(crate) enum FOp {
    Nop,
    /// Unconditional fallback to the four-state tape (reached only on
    /// paths the four-state op would turn into x, e.g. an x-condition
    /// merge arm — unreachable when the cone is x-free, kept defensively).
    Fallback,
    Const { dst: VReg, val: u64 },
    /// Multi-limb constant: entry `c` of [`FastTape::wconsts`] (emitted
    /// only under multi-limb register classes).
    ConstW { dst: VReg, c: u32 },
    /// Copy from a cone shadow register (signal read) or plain move.
    Copy { dst: VReg, src: VReg },
    Not { dst: VReg, src: VReg, w: u32 },
    Neg { dst: VReg, src: VReg, w: u32 },
    LogNot { dst: VReg, src: VReg },
    /// Reduction; `kind`: 0=and 1=or 2=xor, `neg` inverts.
    Reduce { dst: VReg, src: VReg, w: u32, kind: u8, neg: bool },
    Add { dst: VReg, a: VReg, b: VReg, w: u32 },
    Sub { dst: VReg, a: VReg, b: VReg, w: u32 },
    /// Product truncated to 128 bits before masking (the four-state
    /// reference multiplies through `u128`); operands are compile-time
    /// restricted to ≤ 128 bits under multi-limb classes.
    Mul { dst: VReg, a: VReg, b: VReg, w: u32 },
    /// Division; zero divisor falls back (x result in four-state), as do
    /// operands past 128 bits (the reference divides via `u128`).
    Div { dst: VReg, a: VReg, b: VReg },
    Mod { dst: VReg, a: VReg, b: VReg },
    Pow { dst: VReg, a: VReg, b: VReg, w: u32 },
    And { dst: VReg, a: VReg, b: VReg },
    Or { dst: VReg, a: VReg, b: VReg },
    Xor { dst: VReg, a: VReg, b: VReg },
    Xnor { dst: VReg, a: VReg, b: VReg, w: u32 },
    /// `a < b` (unsigned); `neg` gives `>=`.
    Lt { dst: VReg, a: VReg, b: VReg, neg: bool },
    Eq { dst: VReg, a: VReg, b: VReg, neg: bool },
    LogAnd { dst: VReg, a: VReg, b: VReg },
    LogOr { dst: VReg, a: VReg, b: VReg },
    /// Shift amounts at or past the operand width produce zero, matching
    /// `LogicVec::shl`/`shr`. Amount registers are ≤ 64 bits.
    Shl { dst: VReg, a: VReg, b: VReg, w: u32 },
    Shr { dst: VReg, a: VReg, b: VReg, w: u32 },
    Ashr { dst: VReg, a: VReg, b: VReg, w: u32 },
    Resize { dst: VReg, src: VReg, w: u32 },
    /// MSB-first concat of `(reg, width)` parts.
    Concat { dst: VReg, parts: Box<[(VReg, u32)]> },
    ReplicateC { dst: VReg, src: VReg, count: u32, w: u32 },
    /// `(src >> lo)` masked to span `w` (always in range).
    Slice { dst: VReg, src: VReg, lo: u32, w: u32 },
    /// Runtime bit index into a cone signal (out-of-range falls back).
    IndexSig { dst: VReg, shadow: VReg, sig: SigId, idx: VReg },
    /// Runtime bit index into a value of static width.
    IndexVal { dst: VReg, base: VReg, idx: VReg, basew: u32 },
    /// Indexed part-select with constant span on a cone signal.
    SelectSigW { dst: VReg, shadow: VReg, sig: SigId, left: VReg, span: u32, mode: SelectMode },
    /// Indexed part-select with constant span on a value of static width.
    SelectValW { dst: VReg, base: VReg, left: VReg, span: u32, mode: SelectMode, basew: u32 },
    Clog2 { dst: VReg, src: VReg },
    Zero { dst: VReg },
    /// Whole write into a cone shadow (`cone` = cone table index). Queued
    /// NBA values are rebuilt at the target width — `commit` resizes to it
    /// anyway, so the final state is identical to the tree's queue.
    StoreWhole { shadow: VReg, cone: u32, src: VReg, w: u32, nb: bool, sig: SigId },
    /// Constant bit-range write into a cone shadow.
    StoreBitsC { shadow: VReg, cone: u32, hi: u32, lo: u32, src: VReg, nb: bool, sig: SigId },
    /// Runtime bit write into a cone shadow (out-of-range drops, like the
    /// tree path).
    StoreIndexSig { shadow: VReg, cone: u32, idx: VReg, src: VReg, nb: bool, sig: SigId },
    StoreLocal { slot: VReg, src: VReg, w: u32 },
    StoreLocalBits { slot: VReg, idx: VReg, src: VReg, slotw: u32 },
    StoreLocalBitsC { slot: VReg, hi: u32, lo: u32, src: VReg },
    Jump { to: u32 },
    BranchTruthy { cond: VReg, on_true: u32, on_false: u32 },
    /// Masked case-label compare: hit iff `(scrut ^ cmp) & care == 0`
    /// (scrutinee ≤ 64 bits — wider constant labels fall back).
    BranchMatchC { scrut: VReg, cmp: u64, care: u64, on_hit: u32 },
    /// Runtime-label compare (x-free ⇒ plain equality for all case kinds).
    BranchMatchR { scrut: VReg, label: VReg, on_hit: u32 },
    ZeroCtr { ctr: u32 },
    IncCtrJumpLt { ctr: u32, limit: u32, to: u32 },
    RepeatInit { ctr: u32, count: VReg },
    BranchCtrZeroDec { ctr: u32, on_zero: u32 },
}

// ---- compiler ---------------------------------------------------------------

/// Compilation cap: a process emitting more ops than this (pathological
/// nesting) falls back to tree execution entirely.
const MAX_OPS: usize = 100_000;

/// Upper bound on statically-unrolled loop trips; loops running longer
/// keep the counter-guarded backedge form.
const MAX_UNROLL: usize = 64;

/// A loop variable pinned to a known constant while its body is compiled
/// (full unrolling). `val` is the value as stored (already resized to the
/// variable's width), so reads fold to exactly what the runtime would
/// load. A write to the variable from inside the body poisons the entry:
/// later reads stop folding (which is always sound — the emitted loads
/// see the same state) and the unroll attempt is abandoned.
struct Subst {
    var: KVarRef,
    val: LogicVec,
    poisoned: bool,
}

/// A compile-time value: either a known constant or a register.
#[derive(Debug, Clone)]
enum V {
    C(LogicVec),
    R(VReg),
}

struct Compiler<'k> {
    sigs: &'k [KSig],
    funcs: &'k [KFunc],
    ops: Vec<Op>,
    consts: Vec<LogicVec>,
    const_ids: HashMap<LogicVec, u32>,
    nlocals: u32,
    next_reg: u32,
    next_ctr: u32,
    width: Vec<Option<u32>>,
    stats: TapeStats,
    gave_up: bool,
    subst: Vec<Subst>,
}

impl<'k> Compiler<'k> {
    fn new(sigs: &'k [KSig], funcs: &'k [KFunc], nlocals: u32) -> Self {
        Compiler {
            sigs,
            funcs,
            ops: Vec::new(),
            consts: Vec::new(),
            const_ids: HashMap::new(),
            nlocals,
            next_reg: nlocals,
            next_ctr: 0,
            // Locals start each run as 1-bit zero vectors; ZeroLocal ops
            // update the tracked width at block entry, mirroring runtime.
            width: vec![Some(1); nlocals as usize],
            stats: TapeStats::default(),
            gave_up: false,
            subst: Vec::new(),
        }
    }

    fn subst_local(&self, slot: LocalId) -> Option<&LogicVec> {
        self.subst
            .iter()
            .rev()
            .find(|s| !s.poisoned && matches!(s.var, KVarRef::Local(l) if l == slot))
            .map(|s| &s.val)
    }

    fn subst_sig(&self, id: SigId) -> Option<&LogicVec> {
        self.subst
            .iter()
            .rev()
            .find(|s| !s.poisoned && matches!(s.var, KVarRef::Sig(v) if v == id))
            .map(|s| &s.val)
    }

    /// Marks every pinned entry for `var` stale (a write is being emitted).
    fn subst_poison(&mut self, var: &KVarRef) {
        for s in &mut self.subst {
            let hit = match (&s.var, var) {
                (KVarRef::Local(a), KVarRef::Local(b)) => a == b,
                (KVarRef::Sig(a), KVarRef::Sig(b)) => a == b,
                _ => false,
            };
            if hit {
                s.poisoned = true;
            }
        }
    }

    /// Marks every pinned entry stale (an opaque write — embedded tree
    /// statement or function call — may touch anything).
    fn subst_poison_all(&mut self) {
        for s in &mut self.subst {
            s.poisoned = true;
        }
    }

    /// The value `var` holds after writing `c` through it (whole-variable
    /// writes resize to the destination width). `None`: width unknown.
    fn stored_value(&self, var: &KVarRef, c: &LogicVec) -> Option<LogicVec> {
        match var {
            KVarRef::Local(slot) => Some(c.resize(self.width[*slot as usize]?)),
            KVarRef::Sig(id) => {
                let def = &self.sigs[*id as usize].def;
                if def.words.is_some() {
                    return None; // memory: SetSigVec overwrites the array
                }
                Some(c.resize(def.width))
            }
            KVarRef::None => None,
        }
    }

    fn fresh(&mut self, width: Option<u32>) -> VReg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.width.push(width);
        r
    }

    fn emit(&mut self, op: Op) -> u32 {
        let pc = self.ops.len() as u32;
        self.ops.push(op);
        if self.ops.len() > MAX_OPS {
            self.gave_up = true;
        }
        pc
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn folded(&mut self) {
        self.stats.ops_folded += 1;
    }

    fn alloc_ctr(&mut self) -> u32 {
        let c = self.next_ctr;
        self.next_ctr += 1;
        c
    }

    fn const_id(&mut self, c: LogicVec) -> u32 {
        if let Some(&id) = self.const_ids.get(&c) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.consts.push(c.clone());
        self.const_ids.insert(c, id);
        id
    }

    /// Materialises a value into a register.
    fn mat(&mut self, v: V) -> VReg {
        match v {
            V::R(r) => r,
            V::C(c) => {
                let w = c.width();
                let dst = self.fresh(Some(w));
                let id = self.const_id(c);
                self.emit(Op::Const { dst, c: id });
                dst
            }
        }
    }

    fn width_of(&self, v: &V) -> Option<u32> {
        match v {
            V::C(c) => Some(c.width()),
            V::R(r) => self.width[*r as usize],
        }
    }

    /// Writes `v` into an existing destination register (branch-arm join).
    fn move_into(&mut self, dst: VReg, v: V) {
        match v {
            V::C(c) => {
                let id = self.const_id(c);
                self.emit(Op::Const { dst, c: id });
            }
            V::R(src) => {
                self.emit(Op::Copy { dst, src });
            }
        }
    }

    /// Mirrors `.resize(target)`: folds constants, elides resizes that are
    /// statically no-ops, emits `Op::Resize` otherwise.
    fn resize_v(&mut self, v: V, target: u32) -> V {
        match v {
            V::C(c) => {
                if c.width() != target {
                    self.folded();
                }
                V::C(c.resize(target))
            }
            V::R(r) => {
                if self.width[r as usize] == Some(target) {
                    return V::R(r);
                }
                let dst = self.fresh(Some(target));
                self.emit(Op::Resize { dst, src: r, width: target });
                V::R(dst)
            }
        }
    }

    /// Binary result width per `eval_binary` (`None` = runtime-dependent).
    fn binary_width(&self, op: BinaryOp, aw: Option<u32>, bw: Option<u32>) -> Option<u32> {
        use BinaryOp::*;
        match op {
            Add | Sub | Mul | Div | Mod | Pow | BitAnd | BitOr | BitXor | BitXnor => {
                Some(aw?.max(bw?))
            }
            Shl | AShl | Shr | AShr => aw,
            _ => Some(1),
        }
    }

    /// Compiles `expr` self-determined, mirroring `interp::eval` arm for
    /// arm (constant operands fold through the same helper functions).
    fn compile_expr(&mut self, e: &KExpr) -> V {
        match &e.kind {
            KExprKind::Const(c) => V::C(c.clone()),
            KExprKind::Local(slot) => {
                if let Some(c) = self.subst_local(*slot) {
                    let c = c.clone();
                    self.folded();
                    return V::C(c);
                }
                V::R(*slot)
            }
            KExprKind::Sig(id) => {
                let def = &self.sigs[*id as usize].def;
                if def.words.is_some() {
                    // Whole-array reads are statically x (slot type is
                    // fixed at construction).
                    self.folded();
                    return V::C(LogicVec::xs(1));
                }
                if let Some(c) = self.subst_sig(*id) {
                    let c = c.clone();
                    self.folded();
                    return V::C(c);
                }
                let dst = self.fresh(Some(def.width));
                self.emit(Op::LoadSig { dst, sig: *id });
                V::R(dst)
            }
            KExprKind::Unary { op, operand } => {
                let v = self.compile_expr(operand);
                if let UnaryOp::Plus = op {
                    return v; // eval returns the operand unchanged
                }
                match v {
                    V::C(c) => {
                        self.folded();
                        V::C(eval_unary(*op, c))
                    }
                    V::R(src) => {
                        let w = match op {
                            UnaryOp::BitNot | UnaryOp::Neg => self.width[src as usize],
                            _ => Some(1),
                        };
                        let dst = self.fresh(w);
                        self.emit(Op::Unary { dst, op: *op, src });
                        V::R(dst)
                    }
                }
            }
            KExprKind::Binary { op, lhs, rhs } => {
                let a = self.compile_expr(lhs);
                let b = self.compile_expr(rhs);
                if let (V::C(ca), V::C(cb)) = (&a, &b) {
                    self.folded();
                    return V::C(eval_binary(*op, ca, cb));
                }
                let w = self.binary_width(*op, self.width_of(&a), self.width_of(&b));
                let (ra, rb) = (self.mat(a), self.mat(b));
                let dst = self.fresh(w);
                self.emit(Op::Binary { dst, op: *op, a: ra, b: rb });
                V::R(dst)
            }
            KExprKind::Ternary { cond, then_expr, else_expr } => {
                let c = self.compile_expr(cond);
                match c {
                    V::C(cv) => {
                        self.folded();
                        match cv.truthy() {
                            Some(true) => self.compile_expr(then_expr),
                            Some(false) => self.compile_expr(else_expr),
                            None => {
                                let t = self.compile_expr(then_expr);
                                let e = self.compile_expr(else_expr);
                                self.emit_merge(t, e)
                            }
                        }
                    }
                    V::R(cr) => {
                        let bt = self.emit(Op::Jump { to: 0 }); // patched below
                        let pc_t = self.here();
                        let t = self.compile_expr(then_expr);
                        let wt = self.width_of(&t);
                        let dst = self.fresh(None); // width fixed after arms
                        self.move_into(dst, t);
                        let jt = self.emit(Op::Jump { to: 0 });
                        let pc_e = self.here();
                        let ev = self.compile_expr(else_expr);
                        let we = self.width_of(&ev);
                        self.move_into(dst, ev);
                        let je = self.emit(Op::Jump { to: 0 });
                        let pc_x = self.here();
                        let t2 = self.compile_expr(then_expr);
                        let e2 = self.compile_expr(else_expr);
                        let m = self.emit_merge(t2, e2);
                        let wx = self.width_of(&m);
                        self.move_into(dst, m);
                        let end = self.here();
                        self.ops[bt as usize] = Op::BranchTruthy {
                            cond: cr,
                            on_true: pc_t,
                            on_false: pc_e,
                            on_x: pc_x,
                        };
                        self.patch_jump(jt, end);
                        self.patch_jump(je, end);
                        self.width[dst as usize] =
                            if wt.is_some() && wt == we && we == wx { wt } else { None };
                        V::R(dst)
                    }
                }
            }
            KExprKind::Concat(parts) => {
                if parts.is_empty() {
                    self.folded();
                    return V::C(LogicVec::zeros(1));
                }
                let vs: Vec<V> = parts.iter().map(|p| self.compile_expr(p)).collect();
                if parts.len() == 1 {
                    return vs.into_iter().next().unwrap();
                }
                if vs.iter().all(|v| matches!(v, V::C(_))) {
                    self.folded();
                    let mut acc: Option<LogicVec> = None;
                    for v in vs {
                        let V::C(c) = v else { unreachable!() };
                        acc = Some(match acc {
                            None => c,
                            Some(hi) => hi.concat(&c),
                        });
                    }
                    return V::C(acc.unwrap());
                }
                let mut total = Some(0u32);
                for v in &vs {
                    total = match (total, self.width_of(v)) {
                        (Some(t), Some(w)) => Some(t + w),
                        _ => None,
                    };
                }
                let regs: Vec<VReg> = vs.into_iter().map(|v| self.mat(v)).collect();
                let dst = self.fresh(total);
                self.emit(Op::Concat { dst, parts: regs.into_boxed_slice() });
                V::R(dst)
            }
            KExprKind::Replicate { count, value } => {
                let n = self.compile_expr(count);
                let v = self.compile_expr(value);
                match n {
                    V::C(nc) => {
                        let cnt = replicate_count(&nc);
                        match v {
                            V::C(vc) => {
                                self.folded();
                                V::C(vc.replicate(cnt))
                            }
                            V::R(src) => {
                                let w = self.width[src as usize].map(|w| w * cnt);
                                let dst = self.fresh(w);
                                self.emit(Op::ReplicateC { dst, src, count: cnt });
                                V::R(dst)
                            }
                        }
                    }
                    V::R(_) => {
                        let (rn, rv) = (self.mat(n), self.mat(v));
                        let dst = self.fresh(None);
                        self.emit(Op::ReplicateDyn { dst, count: rn, val: rv });
                        V::R(dst)
                    }
                }
            }
            KExprKind::Index { base, index } => self.compile_index(base, index),
            KExprKind::Select { base, left, right, mode } => {
                self.compile_select(base, left, right, *mode)
            }
            KExprKind::Call { func, args } => {
                let regs: Vec<VReg> =
                    args.iter().map(|a| { let v = self.compile_expr(a); self.mat(v) }).collect();
                // Function bodies run through their own frame but may
                // write signals; don't fold pinned variables across one.
                self.subst_poison_all();
                let ret_width = self.funcs[*func as usize].ret_width;
                let dst = self.fresh(Some(ret_width));
                self.emit(Op::Call { dst, func: *func, args: regs.into_boxed_slice() });
                V::R(dst)
            }
            KExprKind::Clog2(arg) => match arg {
                None => {
                    self.folded();
                    V::C(clog2_val(None))
                }
                Some(a) => {
                    let v = self.compile_expr(a);
                    match v {
                        V::C(c) => {
                            self.folded();
                            V::C(clog2_val(Some(&c)))
                        }
                        V::R(src) => {
                            let dst = self.fresh(Some(32));
                            self.emit(Op::Clog2 { dst, src });
                            V::R(dst)
                        }
                    }
                }
            },
            KExprKind::Pass(arg) => match arg {
                None => V::C(LogicVec::xs(1)),
                Some(a) => self.compile_expr(a),
            },
        }
    }

    /// Folds or emits a ternary x-merge.
    fn emit_merge(&mut self, t: V, e: V) -> V {
        if let (V::C(ct), V::C(ce)) = (&t, &e) {
            self.folded();
            return V::C(merge_arms(ct, ce));
        }
        let w = match (self.width_of(&t), self.width_of(&e)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let (rt, re) = (self.mat(t), self.mat(e));
        let dst = self.fresh(w);
        self.emit(Op::Merge { dst, t: rt, e: re });
        V::R(dst)
    }

    /// Mirrors `eval`'s Index arm (index first; x index short-circuits).
    fn compile_index(&mut self, base: &KBase, index: &KExpr) -> V {
        let i = self.compile_expr(index);
        match i {
            V::C(ic) => {
                let Some(idx) = ic.to_u64().map(|v| v as i64) else {
                    self.folded();
                    return V::C(LogicVec::xs(1));
                };
                self.folded();
                match base {
                    KBase::Local(slot) => {
                        // Local widths are statically known.
                        let w = self.width[*slot as usize].expect("local width");
                        if idx >= 0 && (idx as u32) < w {
                            let dst = self.fresh(Some(1));
                            self.emit(Op::Slice {
                                dst,
                                src: *slot,
                                hi: idx as u32,
                                lo: idx as u32,
                            });
                            V::R(dst)
                        } else {
                            V::C(LogicVec::xs(1))
                        }
                    }
                    KBase::Sig(id) => {
                        let def = &self.sigs[*id as usize].def;
                        if def.words.is_some() {
                            match def.word_offset(idx) {
                                Some(slot) => {
                                    let dst = self.fresh(Some(def.width));
                                    self.emit(Op::LoadWord { dst, sig: *id, slot });
                                    V::R(dst)
                                }
                                None => V::C(LogicVec::xs(def.width)),
                            }
                        } else {
                            match def.offset(idx) {
                                Some(off) => {
                                    let dst = self.fresh(Some(1));
                                    self.emit(Op::SliceSig { dst, sig: *id, hi: off, lo: off });
                                    V::R(dst)
                                }
                                None => V::C(LogicVec::xs(1)),
                            }
                        }
                    }
                    KBase::Expr(eb) => {
                        let b = self.compile_expr(eb);
                        match b {
                            V::C(c) => V::C(index_bit(&c, idx)),
                            V::R(br) => match self.width[br as usize] {
                                Some(w) => {
                                    if idx >= 0 && (idx as u32) < w {
                                        let dst = self.fresh(Some(1));
                                        self.emit(Op::Slice {
                                            dst,
                                            src: br,
                                            hi: idx as u32,
                                            lo: idx as u32,
                                        });
                                        V::R(dst)
                                    } else {
                                        V::C(LogicVec::xs(1))
                                    }
                                }
                                None => {
                                    let dst = self.fresh(Some(1));
                                    self.emit(Op::IndexValC { dst, base: br, idx });
                                    V::R(dst)
                                }
                            },
                        }
                    }
                }
            }
            V::R(ir) => match base {
                KBase::Local(slot) => {
                    let dst = self.fresh(Some(1));
                    self.emit(Op::IndexVal { dst, base: *slot, idx: ir });
                    V::R(dst)
                }
                KBase::Sig(id) => {
                    let def = &self.sigs[*id as usize].def;
                    let w = if def.words.is_some() { Some(def.width) } else { Some(1) };
                    let dst = self.fresh(w);
                    self.emit(Op::IndexSig { dst, sig: *id, idx: ir });
                    V::R(dst)
                }
                KBase::Expr(eb) => {
                    let b = self.compile_expr(eb);
                    let br = self.mat(b);
                    let dst = self.fresh(Some(1));
                    self.emit(Op::IndexVal { dst, base: br, idx: ir });
                    V::R(dst)
                }
            },
        }
    }

    /// Mirrors `eval_select` (bounds first; x bounds short-circuit).
    fn compile_select(&mut self, base: &KBase, left: &KExpr, right: &KExpr, mode: SelectMode) -> V {
        let l = self.compile_expr(left);
        let r = self.compile_expr(right);
        if let (V::C(lc), V::C(rc)) = (&l, &r) {
            let (lv, rv) = (lc.to_u64().map(|v| v as i64), rc.to_u64().map(|v| v as i64));
            let (Some(lv), Some(rv)) = (lv, rv) else {
                self.folded();
                return V::C(LogicVec::xs(1));
            };
            self.folded();
            let (hi_idx, lo_idx) = select_bounds(lv, rv, mode);
            if let KBase::Sig(id) = base {
                let def = &self.sigs[*id as usize].def;
                if def.words.is_none() {
                    return match (def.offset(hi_idx), def.offset(lo_idx)) {
                        (Some(a), Some(b)) => {
                            let dst = self.fresh(Some(a.abs_diff(b) + 1));
                            self.emit(Op::SliceSig {
                                dst,
                                sig: *id,
                                hi: a.max(b),
                                lo: a.min(b),
                            });
                            V::R(dst)
                        }
                        _ => V::C(LogicVec::xs((hi_idx.abs_diff(lo_idx) + 1) as u32)),
                    };
                }
                // Memory base: the generic path sees a 1-bit x.
                return V::C(select_generic(&LogicVec::xs(1), hi_idx, lo_idx));
            }
            let bv = match base {
                KBase::Local(slot) => V::R(*slot),
                KBase::Expr(eb) => self.compile_expr(eb),
                KBase::Sig(_) => unreachable!(),
            };
            let (hi, lo) = (hi_idx.max(lo_idx), hi_idx.min(lo_idx));
            if lo < 0 {
                return V::C(LogicVec::xs((hi - lo + 1) as u32));
            }
            return match bv {
                V::C(c) => V::C(select_generic(&c, hi_idx, lo_idx)),
                V::R(br) => {
                    let dst = self.fresh(Some((hi - lo + 1) as u32));
                    self.emit(Op::Slice { dst, src: br, hi: hi as u32, lo: lo as u32 });
                    V::R(dst)
                }
            };
        }
        // Indexed select with a constant width ≥ 1: result width is static.
        if mode != SelectMode::Range {
            if let V::C(rc) = &r {
                if let Some(span) = rc.to_u64().map(|v| v as i64).filter(|&s| s >= 1) {
                    let lr = self.mat(l);
                    return match base {
                        KBase::Sig(id) => {
                            let dst = self.fresh(Some(span as u32));
                            self.emit(Op::SelectSigW { dst, sig: *id, left: lr, span, mode });
                            V::R(dst)
                        }
                        KBase::Local(slot) => {
                            let dst = self.fresh(Some(span as u32));
                            self.emit(Op::SelectValW { dst, base: *slot, left: lr, span, mode });
                            V::R(dst)
                        }
                        KBase::Expr(eb) => {
                            let b = self.compile_expr(eb);
                            let br = self.mat(b);
                            let dst = self.fresh(Some(span as u32));
                            self.emit(Op::SelectValW { dst, base: br, left: lr, span, mode });
                            V::R(dst)
                        }
                    };
                }
            }
        }
        let (lr, rr) = (self.mat(l), self.mat(r));
        match base {
            KBase::Sig(id) => {
                let dst = self.fresh(None);
                self.emit(Op::SelectSig { dst, sig: *id, left: lr, right: rr, mode });
                V::R(dst)
            }
            KBase::Local(slot) => {
                let dst = self.fresh(None);
                self.emit(Op::SelectVal { dst, base: *slot, left: lr, right: rr, mode });
                V::R(dst)
            }
            KBase::Expr(eb) => {
                let b = self.compile_expr(eb);
                let br = self.mat(b);
                let dst = self.fresh(None);
                self.emit(Op::SelectVal { dst, base: br, left: lr, right: rr, mode });
                V::R(dst)
            }
        }
    }

    fn patch_jump(&mut self, pc: u32, to: u32) {
        match &mut self.ops[pc as usize] {
            Op::Jump { to: t } => *t = to,
            _ => unreachable!("patching a non-jump"),
        }
    }

    /// Pure compile-time evaluation of a constant expression, using the
    /// same helpers as the runtime (`None` = not a compile-time constant).
    fn const_fold(&self, e: &KExpr) -> Option<LogicVec> {
        match &e.kind {
            KExprKind::Const(c) => Some(c.clone()),
            KExprKind::Local(slot) => self.subst_local(*slot).cloned(),
            KExprKind::Sig(id) => {
                let def = &self.sigs[*id as usize].def;
                if def.words.is_some() {
                    return None;
                }
                self.subst_sig(*id).cloned()
            }
            KExprKind::Unary { op, operand } => {
                Some(eval_unary(*op, self.const_fold(operand)?))
            }
            KExprKind::Binary { op, lhs, rhs } => {
                Some(eval_binary(*op, &self.const_fold(lhs)?, &self.const_fold(rhs)?))
            }
            KExprKind::Ternary { cond, then_expr, else_expr } => {
                match self.const_fold(cond)?.truthy() {
                    Some(true) => self.const_fold(then_expr),
                    Some(false) => self.const_fold(else_expr),
                    None => Some(merge_arms(
                        &self.const_fold(then_expr)?,
                        &self.const_fold(else_expr)?,
                    )),
                }
            }
            KExprKind::Concat(parts) => {
                if parts.is_empty() {
                    return Some(LogicVec::zeros(1));
                }
                let mut acc: Option<LogicVec> = None;
                for p in parts.iter() {
                    let v = self.const_fold(p)?;
                    acc = Some(match acc {
                        None => v,
                        Some(hi) => hi.concat(&v),
                    });
                }
                acc
            }
            KExprKind::Replicate { count, value } => {
                let n = replicate_count(&self.const_fold(count)?);
                Some(self.const_fold(value)?.replicate(n))
            }
            KExprKind::Clog2(arg) => match arg {
                None => Some(clog2_val(None)),
                Some(a) => Some(clog2_val(Some(&self.const_fold(a)?))),
            },
            KExprKind::Pass(arg) => match arg {
                None => Some(LogicVec::xs(1)),
                Some(a) => self.const_fold(a),
            },
            _ => None,
        }
    }

    /// Folds or emits a binary op.
    fn binary_v(&mut self, op: BinaryOp, a: V, b: V) -> V {
        if let (V::C(ca), V::C(cb)) = (&a, &b) {
            self.folded();
            return V::C(eval_binary(op, ca, cb));
        }
        let w = self.binary_width(op, self.width_of(&a), self.width_of(&b));
        let (ra, rb) = (self.mat(a), self.mat(b));
        let dst = self.fresh(w);
        self.emit(Op::Binary { dst, op, a: ra, b: rb });
        V::R(dst)
    }

    /// Mirrors `interp::eval_sized` arm for arm: result width is always
    /// `want.max(e.nat)`.
    fn compile_sized(&mut self, e: &KExpr, want: u32) -> V {
        use BinaryOp::*;
        let target = want.max(e.nat);
        match &e.kind {
            KExprKind::Binary { op, lhs, rhs } => match op {
                Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                    let a = self.compile_sized(lhs, target);
                    let a = self.resize_v(a, target);
                    let b = self.compile_sized(rhs, target);
                    let b = self.resize_v(b, target);
                    let r = self.binary_v(*op, a, b);
                    self.resize_v(r, target)
                }
                Shl | AShl | Shr | AShr => {
                    let a = self.compile_sized(lhs, target);
                    let a = self.resize_v(a, target);
                    let b = self.compile_expr(rhs);
                    let r = self.binary_v(*op, a, b);
                    self.resize_v(r, target)
                }
                _ => {
                    let v = self.compile_expr(e);
                    self.resize_v(v, target)
                }
            },
            KExprKind::Unary { op, operand } => match op {
                UnaryOp::BitNot | UnaryOp::Neg | UnaryOp::Plus => {
                    let v = self.compile_sized(operand, target);
                    let v = self.resize_v(v, target);
                    if let UnaryOp::Plus = op {
                        return v;
                    }
                    match v {
                        V::C(c) => {
                            self.folded();
                            V::C(eval_unary(*op, c))
                        }
                        V::R(src) => {
                            let dst = self.fresh(Some(target));
                            self.emit(Op::Unary { dst, op: *op, src });
                            V::R(dst)
                        }
                    }
                }
                _ => {
                    let v = self.compile_expr(e);
                    self.resize_v(v, target)
                }
            },
            KExprKind::Ternary { cond, then_expr, else_expr } => {
                let c = self.compile_expr(cond);
                match c {
                    V::C(cv) => {
                        self.folded();
                        match cv.truthy() {
                            Some(true) => {
                                let v = self.compile_sized(then_expr, target);
                                self.resize_v(v, target)
                            }
                            Some(false) => {
                                let v = self.compile_sized(else_expr, target);
                                self.resize_v(v, target)
                            }
                            None => {
                                let t = self.compile_expr(then_expr);
                                let e = self.compile_expr(else_expr);
                                let m = self.emit_merge(t, e);
                                self.resize_v(m, target)
                            }
                        }
                    }
                    V::R(cr) => {
                        let bt = self.emit(Op::Jump { to: 0 });
                        let pc_t = self.here();
                        let dst = self.fresh(Some(target));
                        let t = self.compile_sized(then_expr, target);
                        let t = self.resize_v(t, target);
                        self.move_into(dst, t);
                        let jt = self.emit(Op::Jump { to: 0 });
                        let pc_e = self.here();
                        let ev = self.compile_sized(else_expr, target);
                        let ev = self.resize_v(ev, target);
                        self.move_into(dst, ev);
                        let je = self.emit(Op::Jump { to: 0 });
                        let pc_x = self.here();
                        let t2 = self.compile_expr(then_expr);
                        let e2 = self.compile_expr(else_expr);
                        let m = self.emit_merge(t2, e2);
                        let m = self.resize_v(m, target);
                        self.move_into(dst, m);
                        let end = self.here();
                        self.ops[bt as usize] = Op::BranchTruthy {
                            cond: cr,
                            on_true: pc_t,
                            on_false: pc_e,
                            on_x: pc_x,
                        };
                        self.patch_jump(jt, end);
                        self.patch_jump(je, end);
                        V::R(dst)
                    }
                }
            }
            _ => {
                let v = self.compile_expr(e);
                self.resize_v(v, target)
            }
        }
    }

    /// Static `lval_width` (`None` = runtime-dependent select width).
    fn static_lval_width(&self, lhs: &KLval) -> Option<u32> {
        match lhs {
            KLval::Whole { width, .. } | KLval::Index { width, .. } => Some(*width),
            KLval::Select { left, right, mode, .. } => {
                let r = self.const_fold(right)?.to_u64().unwrap_or(0) as i64;
                match mode {
                    SelectMode::Range => {
                        let l = self.const_fold(left)?.to_u64().unwrap_or(0) as i64;
                        Some(l.abs_diff(r) as u32 + 1)
                    }
                    _ => Some(r.max(1) as u32),
                }
            }
            KLval::Concat(parts) => {
                let mut total = 0u32;
                for p in parts.iter() {
                    total += self.static_lval_width(p)?;
                }
                Some(total)
            }
        }
    }

    /// Compiles `assign(lhs, value)` — the value is already context-sized.
    fn compile_assign(&mut self, lhs: &KLval, value: V, nb: bool) {
        // Any write through a pinned loop variable (even a partial bit
        // write) stales its pinned constant. Poisoning up front is
        // conservative: index reads inside this same statement fall back
        // to runtime loads, which see identical state.
        match lhs {
            KLval::Whole { target, .. }
            | KLval::Index { target, .. }
            | KLval::Select { target, .. } => self.subst_poison(target),
            KLval::Concat(_) => {} // recursion below poisons per part
        }
        match lhs {
            KLval::Concat(parts) => {
                let widths: Vec<u32> =
                    parts.iter().map(|p| self.static_lval_width(p).unwrap()).collect();
                let total: u32 = widths.iter().sum();
                let value = self.resize_v(value, total);
                let mut hi = total;
                for (part, w) in parts.iter().zip(widths) {
                    let lo = hi - w;
                    let chunk = match &value {
                        V::C(c) => {
                            self.folded();
                            V::C(c.slice(hi - 1, lo))
                        }
                        V::R(src) => {
                            let dst = self.fresh(Some(w));
                            self.emit(Op::Slice { dst, src: *src, hi: hi - 1, lo });
                            V::R(dst)
                        }
                    };
                    self.compile_assign(part, chunk, nb);
                    hi = lo;
                }
            }
            KLval::Whole { target, .. } => match target {
                KVarRef::Local(slot) => {
                    let width = self.width[*slot as usize].expect("local width");
                    let src = self.mat(value);
                    self.emit(Op::StoreLocal { slot: *slot, src, width });
                }
                KVarRef::Sig(id) => {
                    let src = self.mat(value);
                    self.emit(Op::StoreWhole { sig: *id, src, nb });
                }
                KVarRef::None => {}
            },
            KLval::Index { target, index, .. } => match target {
                KVarRef::None => {}
                KVarRef::Local(slot) => match self.const_fold(index) {
                    Some(c) => {
                        self.folded();
                        // An x index drops the write (to_u64 bails).
                        if let Some(idx) = c.to_u64().map(|v| v as u32) {
                            let src = self.mat(value);
                            self.emit(Op::StoreLocalBitsC { slot: *slot, hi: idx, lo: idx, src });
                        }
                    }
                    None => {
                        let i = self.compile_expr(index);
                        let idx = self.mat(i);
                        let src = self.mat(value);
                        self.emit(Op::StoreLocalBits { slot: *slot, idx, src });
                    }
                },
                KVarRef::Sig(id) => match self.const_fold(index) {
                    Some(c) => {
                        self.folded();
                        let Some(idx) = c.to_u64().map(|v| v as i64) else { return };
                        let def = &self.sigs[*id as usize].def;
                        if def.words.is_some() {
                            let Some(slot) = def.word_offset(idx) else { return };
                            let src = self.mat(value);
                            self.emit(Op::StoreWordC { sig: *id, slot, src, nb });
                        } else {
                            let Some(off) = def.offset(idx) else { return };
                            let src = self.mat(value);
                            self.emit(Op::StoreBitsC { sig: *id, hi: off, lo: off, src, nb });
                        }
                    }
                    None => {
                        let i = self.compile_expr(index);
                        let idx = self.mat(i);
                        let src = self.mat(value);
                        self.emit(Op::StoreIndexSig { sig: *id, idx, src, nb });
                    }
                },
            },
            KLval::Select { target, word, left, right, mode } => match target {
                KVarRef::None => {}
                KVarRef::Local(slot) => {
                    let bounds = (self.const_fold(left), self.const_fold(right));
                    if let (Some(lc), Some(rc)) = bounds {
                        self.folded();
                        let l = lc.to_u64().unwrap_or(0) as i64;
                        let r = rc.to_u64().unwrap_or(0) as i64;
                        let (hi, lo) = match mode {
                            SelectMode::Range => (l.max(r), l.min(r)),
                            SelectMode::IndexedUp => (l + r - 1, l),
                            SelectMode::IndexedDown => (l, l - r + 1),
                        };
                        if lo < 0 {
                            return;
                        }
                        let src = self.mat(value);
                        self.emit(Op::StoreLocalBitsC {
                            slot: *slot,
                            hi: hi as u32,
                            lo: lo as u32,
                            src,
                        });
                    } else {
                        let l = self.compile_expr(left);
                        let lr = self.mat(l);
                        let r = self.compile_expr(right);
                        let rr = self.mat(r);
                        let src = self.mat(value);
                        self.emit(Op::StoreLocalSel {
                            slot: *slot,
                            left: lr,
                            right: rr,
                            mode: *mode,
                            src,
                        });
                    }
                }
                KVarRef::Sig(id) => {
                    let folded = (
                        self.const_fold(left),
                        self.const_fold(right),
                        word.as_ref().map(|w| self.const_fold(w)),
                    );
                    if let (Some(lc), Some(rc), wc) = folded {
                        if !matches!(wc, Some(None)) {
                            self.folded();
                            let Some(l) = lc.to_u64().map(|v| v as i64) else { return };
                            let Some(r) = rc.to_u64().map(|v| v as i64) else { return };
                            let (hi_idx, lo_idx) = select_bounds(l, r, *mode);
                            let def = &self.sigs[*id as usize].def;
                            if let Some(Some(wv)) = wc {
                                let Some(widx) = wv.to_u64().map(|v| v as i64) else { return };
                                let Some(slot) = def.word_offset(widx) else { return };
                                let Some(hi) = def.offset(hi_idx) else { return };
                                let Some(lo) = def.offset(lo_idx) else { return };
                                let src = self.mat(value);
                                self.emit(Op::StoreWordBitsC {
                                    sig: *id,
                                    slot,
                                    hi: hi.max(lo),
                                    lo: hi.min(lo),
                                    src,
                                    nb,
                                });
                            } else {
                                let Some(hi) = def.offset(hi_idx) else { return };
                                let Some(lo) = def.offset(lo_idx) else { return };
                                let src = self.mat(value);
                                self.emit(Op::StoreBitsC {
                                    sig: *id,
                                    hi: hi.max(lo),
                                    lo: hi.min(lo),
                                    src,
                                    nb,
                                });
                            }
                            return;
                        }
                    }
                    let wreg = word.as_ref().map(|w| {
                        let v = self.compile_expr(w);
                        self.mat(v)
                    });
                    let l = self.compile_expr(left);
                    let lr = self.mat(l);
                    let r = self.compile_expr(right);
                    let rr = self.mat(r);
                    let src = self.mat(value);
                    self.emit(Op::StoreSelSig {
                        sig: *id,
                        word: wreg,
                        left: lr,
                        right: rr,
                        mode: *mode,
                        src,
                        nb,
                    });
                }
            },
        }
    }

    /// Compiles `write_ref` (for-loop variable updates).
    fn compile_write_ref(&mut self, var: &KVarRef, value: V) {
        self.subst_poison(var);
        match var {
            KVarRef::Local(slot) => {
                let width = self.width[*slot as usize].expect("local width");
                let src = self.mat(value);
                self.emit(Op::StoreLocal { slot: *slot, src, width });
            }
            KVarRef::Sig(id) => {
                let width = self.sigs[*id as usize].def.width;
                let src = self.mat(value);
                self.emit(Op::SetSigVec { sig: *id, src, width });
            }
            KVarRef::None => {}
        }
    }

    /// Per-statement escape hatch: embed the tree walker.
    fn tree_stmt(&mut self, stmt: &KStmt) {
        // The embedded statement may write anything the compiler can't see.
        self.subst_poison_all();
        self.stats.tree_stmts += 1;
        self.emit(Op::Tree { stmt: Box::new(stmt.clone()) });
    }

    fn compile_stmt(&mut self, stmt: &KStmt) {
        if self.gave_up {
            return;
        }
        match stmt {
            KStmt::Block { zero, stmts } => {
                for (slot, width) in zero.iter() {
                    self.emit(Op::ZeroLocal { slot: *slot, width: *width });
                    self.width[*slot as usize] = Some(*width);
                }
                for s in stmts.iter() {
                    self.compile_stmt(s);
                }
            }
            KStmt::Assign { lhs, op, rhs } => match self.static_lval_width(lhs) {
                Some(w) => {
                    let value = self.compile_sized(rhs, w);
                    let nb = matches!(op, AssignOp::NonBlocking);
                    self.compile_assign(lhs, value, nb);
                }
                None => self.tree_stmt(stmt),
            },
            KStmt::If { cond, then_branch, else_branch } => {
                let c = self.compile_expr(cond);
                match c {
                    V::C(cv) => {
                        self.folded();
                        if cv.truthy() == Some(true) {
                            self.compile_stmt(then_branch);
                        } else if let Some(els) = else_branch {
                            self.compile_stmt(els);
                        }
                    }
                    V::R(cr) => {
                        let bt = self.emit(Op::Jump { to: 0 });
                        let pc_t = self.here();
                        self.compile_stmt(then_branch);
                        let jt = self.emit(Op::Jump { to: 0 });
                        let pc_e = self.here();
                        if let Some(els) = else_branch {
                            self.compile_stmt(els);
                        }
                        let end = self.here();
                        self.ops[bt as usize] = Op::BranchTruthy {
                            cond: cr,
                            on_true: pc_t,
                            on_false: pc_e,
                            on_x: pc_e,
                        };
                        self.patch_jump(jt, end);
                    }
                }
            }
            KStmt::Case { kind, scrutinee, arms, default } => {
                self.compile_case(*kind, scrutinee, arms, default.as_deref());
            }
            KStmt::For { decl_slot, var, init, cond, step, body } => {
                if let Some(slot) = decl_slot {
                    self.emit(Op::ZeroLocal { slot: *slot, width: 32 });
                    self.width[*slot as usize] = Some(32);
                }
                let iv = self.compile_expr(init);
                if let V::C(c0) = &iv {
                    if self.try_unroll(*decl_slot, var, c0, cond, step, body) {
                        return;
                    }
                }
                self.compile_write_ref(var, iv);
                let ctr = self.alloc_ctr();
                self.emit(Op::ZeroCtr { ctr });
                let head = self.here();
                let c = self.compile_expr(cond);
                match c {
                    V::C(cv) => {
                        self.folded();
                        if cv.truthy() != Some(true) {
                            return; // loop never entered
                        }
                        // Constant-true condition: only the MAX_LOOP guard
                        // terminates, exactly like the tree walker.
                        self.compile_stmt(body);
                        let sv = self.compile_expr(step);
                        self.compile_write_ref(var, sv);
                        self.emit(Op::IncCtrJumpLt { ctr, limit: MAX_LOOP as u32, to: head });
                    }
                    V::R(cr) => {
                        let bt = self.emit(Op::Jump { to: 0 });
                        let pc_body = self.here();
                        self.compile_stmt(body);
                        let sv = self.compile_expr(step);
                        self.compile_write_ref(var, sv);
                        self.emit(Op::IncCtrJumpLt { ctr, limit: MAX_LOOP as u32, to: head });
                        let end = self.here();
                        self.ops[bt as usize] = Op::BranchTruthy {
                            cond: cr,
                            on_true: pc_body,
                            on_false: end,
                            on_x: end,
                        };
                    }
                }
            }
            KStmt::While { cond, body } => {
                let ctr = self.alloc_ctr();
                self.emit(Op::ZeroCtr { ctr });
                let head = self.here();
                let c = self.compile_expr(cond);
                match c {
                    V::C(cv) => {
                        self.folded();
                        if cv.truthy() != Some(true) {
                            return;
                        }
                        self.compile_stmt(body);
                        self.emit(Op::IncCtrJumpLt { ctr, limit: MAX_LOOP as u32, to: head });
                    }
                    V::R(cr) => {
                        let bt = self.emit(Op::Jump { to: 0 });
                        let pc_body = self.here();
                        self.compile_stmt(body);
                        self.emit(Op::IncCtrJumpLt { ctr, limit: MAX_LOOP as u32, to: head });
                        let end = self.here();
                        self.ops[bt as usize] = Op::BranchTruthy {
                            cond: cr,
                            on_true: pc_body,
                            on_false: end,
                            on_x: end,
                        };
                    }
                }
            }
            KStmt::Repeat { count, body } => {
                let ctr = self.alloc_ctr();
                let n = self.compile_expr(count);
                let nr = self.mat(n);
                self.emit(Op::RepeatInit { ctr, count: nr });
                let head = self.here();
                let bz = self.emit(Op::Jump { to: 0 });
                self.compile_stmt(body);
                self.emit(Op::Jump { to: head });
                let end = self.here();
                self.ops[bz as usize] = Op::BranchCtrZeroDec { ctr, on_zero: end };
            }
            KStmt::Nop => {}
        }
    }

    /// Attempts to fully unroll a statically-bounded `for` loop. The init
    /// value has already folded to `c0`; the condition and step must keep
    /// folding as iterations are compiled with the loop variable pinned to
    /// its per-trip constant (see [`Subst`]). The variable writes are
    /// emitted exactly as the backedge form would (the write log and
    /// change-then-revert dirtying are observable kernel behaviour), but
    /// every read of the variable folds — turning dynamic bit selects over
    /// the index into static ops and deleting the loop-control ops. Rolls
    /// every emitted op back and returns `false` when the loop shape is
    /// dynamic, the body re-writes the variable, or the trip count exceeds
    /// [`MAX_UNROLL`].
    fn try_unroll(
        &mut self,
        decl_slot: Option<LocalId>,
        var: &KVarRef,
        c0: &LogicVec,
        cond: &KExpr,
        step: &KExpr,
        body: &KStmt,
    ) -> bool {
        match var {
            KVarRef::None => return false,
            // Signals have a fixed width, so the stored value is statically
            // known. A local's runtime width can drift from the tracked
            // width through earlier bit-writes — only the loop's own
            // freshly-zeroed declaration slot is guaranteed in sync.
            KVarRef::Local(slot) if decl_slot != Some(*slot) => return false,
            KVarRef::Local(_) | KVarRef::Sig(_) => {}
        }
        let save_ops = self.ops.len();
        let save_reg = self.next_reg;
        let save_width = self.width.clone();
        let save_ctr = self.next_ctr;
        let save_stats = self.stats;
        let save_gave = self.gave_up;
        let depth = self.subst.len();

        let ok = self.unroll_trips(var, c0, cond, step, body);

        self.subst.truncate(depth);
        if !ok {
            self.ops.truncate(save_ops);
            self.next_reg = save_reg;
            self.width = save_width;
            self.next_ctr = save_ctr;
            self.stats = save_stats;
            self.gave_up = save_gave;
        }
        ok
    }

    fn unroll_trips(
        &mut self,
        var: &KVarRef,
        c0: &LogicVec,
        cond: &KExpr,
        step: &KExpr,
        body: &KStmt,
    ) -> bool {
        let Some(mut val) = self.stored_value(var, c0) else {
            return false;
        };
        for _ in 0..=MAX_UNROLL {
            // The variable write the backedge form would emit here.
            self.compile_write_ref(var, V::C(val.clone()));
            self.subst.push(Subst { var: var.clone(), val: val.clone(), poisoned: false });
            let cv = match self.compile_expr(cond) {
                V::C(cv) => cv,
                V::R(_) => return false,
            };
            if cv.truthy() != Some(true) {
                self.subst.pop();
                self.stats.loops_unrolled += 1;
                return true; // loop exits; the final write stays
            }
            self.compile_stmt(body);
            if self.gave_up {
                return false;
            }
            let sv = match self.compile_expr(step) {
                V::C(sv) => sv,
                V::R(_) => return false,
            };
            let entry = self.subst.pop().expect("pushed above");
            if entry.poisoned {
                return false; // body wrote the loop variable
            }
            match self.stored_value(var, &sv) {
                Some(next) => val = next,
                None => return false,
            }
        }
        false // trip count exceeds MAX_UNROLL
    }

    fn compile_case(
        &mut self,
        kind: CaseKind,
        scrutinee: &KExpr,
        arms: &[KArm],
        default: Option<&KStmt>,
    ) {
        let s = self.compile_expr(scrutinee);
        if let V::C(sc) = &s {
            // Fully-static scrutinee: try to resolve the hit at compile
            // time. Any runtime label before a decision blocks folding.
            let mut all_const = true;
            'fold: {
                for arm in arms {
                    for label in arm.labels.iter() {
                        match self.const_fold(label) {
                            Some(lc) => {
                                if case_hit(kind, sc, &lc) {
                                    self.folded();
                                    self.compile_stmt(&arm.body);
                                    return;
                                }
                            }
                            None => {
                                all_const = false;
                                break 'fold;
                            }
                        }
                    }
                }
            }
            if all_const {
                self.folded();
                if let Some(d) = default {
                    self.compile_stmt(d);
                }
                return;
            }
        }
        let sr = self.mat(s);
        // Emit all label tests (labels are pure, so eager evaluation is
        // equivalent to the tree's lazy first-hit scan), then the default
        // body, then each arm body; patch hit targets last.
        let mut hits: Vec<(u32, usize)> = Vec::new(); // (branch pc, arm index)
        for (ai, arm) in arms.iter().enumerate() {
            for label in arm.labels.iter() {
                let l = self.compile_expr(label);
                let lr = self.mat(l);
                let pc = self.emit(Op::BranchMatch { kind, scrut: sr, label: lr, on_hit: 0 });
                hits.push((pc, ai));
            }
        }
        let mut end_jumps: Vec<u32> = Vec::new();
        if let Some(d) = default {
            self.compile_stmt(d);
        }
        end_jumps.push(self.emit(Op::Jump { to: 0 }));
        let mut arm_pc: Vec<u32> = Vec::with_capacity(arms.len());
        for arm in arms {
            arm_pc.push(self.here());
            self.compile_stmt(&arm.body);
            end_jumps.push(self.emit(Op::Jump { to: 0 }));
        }
        let end = self.here();
        for (pc, ai) in hits {
            if let Op::BranchMatch { on_hit, .. } = &mut self.ops[pc as usize] {
                *on_hit = arm_pc[ai];
            }
        }
        for j in end_jumps {
            self.patch_jump(j, end);
        }
    }

    // ---- dead-op elimination -------------------------------------------

    /// Pure ops produce a value and have no other effect; their result
    /// register (always a compiler temp) is the only thing downstream.
    fn pure_dst(op: &Op) -> Option<VReg> {
        match op {
            Op::Const { dst, .. }
            | Op::LoadSig { dst, .. }
            | Op::LoadWord { dst, .. }
            | Op::Copy { dst, .. }
            | Op::Unary { dst, .. }
            | Op::Binary { dst, .. }
            | Op::Resize { dst, .. }
            | Op::Merge { dst, .. }
            | Op::Concat { dst, .. }
            | Op::ReplicateC { dst, .. }
            | Op::ReplicateDyn { dst, .. }
            | Op::Slice { dst, .. }
            | Op::SliceSig { dst, .. }
            | Op::IndexSig { dst, .. }
            | Op::IndexVal { dst, .. }
            | Op::IndexValC { dst, .. }
            | Op::SelectSig { dst, .. }
            | Op::SelectSigW { dst, .. }
            | Op::SelectVal { dst, .. }
            | Op::SelectValW { dst, .. }
            | Op::Call { dst, .. }
            | Op::Clog2 { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Visits every register an op reads (including local slots whose
    /// current contents feed partial writes).
    fn op_uses(op: &Op, nlocals: u32, f: &mut dyn FnMut(VReg)) {
        match op {
            Op::Const { .. }
            | Op::LoadSig { .. }
            | Op::LoadWord { .. }
            | Op::SliceSig { .. }
            | Op::ZeroLocal { .. }
            | Op::Jump { .. }
            | Op::ZeroCtr { .. }
            | Op::IncCtrJumpLt { .. }
            | Op::BranchCtrZeroDec { .. } => {}
            Op::Copy { src, .. }
            | Op::Unary { src, .. }
            | Op::Resize { src, .. }
            | Op::ReplicateC { src, .. }
            | Op::Slice { src, .. }
            | Op::Clog2 { src, .. } => f(*src),
            Op::Binary { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Op::Merge { t, e, .. } => {
                f(*t);
                f(*e);
            }
            Op::Concat { parts, .. } => parts.iter().for_each(|&r| f(r)),
            Op::ReplicateDyn { count, val, .. } => {
                f(*count);
                f(*val);
            }
            Op::IndexSig { idx, .. } => f(*idx),
            Op::IndexVal { base, idx, .. } => {
                f(*base);
                f(*idx);
            }
            Op::IndexValC { base, .. } => f(*base),
            Op::SelectSig { left, right, .. } => {
                f(*left);
                f(*right);
            }
            Op::SelectSigW { left, .. } => f(*left),
            Op::SelectVal { base, left, right, .. } => {
                f(*base);
                f(*left);
                f(*right);
            }
            Op::SelectValW { base, left, .. } => {
                f(*base);
                f(*left);
            }
            Op::Call { args, .. } => args.iter().for_each(|&r| f(r)),
            Op::StoreLocal { slot, src, .. } => {
                f(*slot);
                f(*src);
            }
            Op::StoreLocalBits { slot, idx, src } => {
                f(*slot);
                f(*idx);
                f(*src);
            }
            Op::StoreLocalBitsC { slot, src, .. } => {
                f(*slot);
                f(*src);
            }
            Op::StoreLocalSel { slot, left, right, src, .. } => {
                f(*slot);
                f(*left);
                f(*right);
                f(*src);
            }
            Op::SetSigVec { src, .. }
            | Op::StoreWhole { src, .. }
            | Op::StoreBitsC { src, .. }
            | Op::StoreWordC { src, .. }
            | Op::StoreWordBitsC { src, .. } => f(*src),
            Op::StoreIndexSig { idx, src, .. } => {
                f(*idx);
                f(*src);
            }
            Op::StoreSelSig { word, left, right, src, .. } => {
                if let Some(w) = word {
                    f(*w);
                }
                f(*left);
                f(*right);
                f(*src);
            }
            Op::BranchTruthy { cond, .. } => f(*cond),
            Op::BranchMatch { scrut, label, .. } => {
                f(*scrut);
                f(*label);
            }
            Op::RepeatInit { count, .. } => f(*count),
            Op::Tree { .. } => (0..nlocals).for_each(f),
        }
    }

    /// Removes pure ops whose results are never consumed, then remaps
    /// every jump target onto the compacted op indices.
    fn dse(&mut self) {
        let n = self.ops.len();
        let nlocals = self.nlocals;
        let mut keep = vec![false; n];
        let mut used = vec![false; self.next_reg as usize];
        loop {
            let mut changed = false;
            for (i, kept) in keep.iter_mut().enumerate() {
                if *kept {
                    continue;
                }
                let retain = match Self::pure_dst(&self.ops[i]) {
                    Some(dst) => used[dst as usize],
                    None => true,
                };
                if retain {
                    *kept = true;
                    changed = true;
                    Self::op_uses(&self.ops[i], nlocals, &mut |r| {
                        used[r as usize] = true;
                    });
                }
            }
            if !changed {
                break;
            }
        }
        let mut map = vec![0u32; n + 1];
        let mut c = 0u32;
        for i in 0..n {
            map[i] = c;
            if keep[i] {
                c += 1;
            }
        }
        map[n] = c;
        self.stats.ops_dead = (n as u64) - u64::from(c);
        if self.stats.ops_dead == 0 {
            return;
        }
        let old = std::mem::take(&mut self.ops);
        for (i, mut op) in old.into_iter().enumerate() {
            if !keep[i] {
                continue;
            }
            match &mut op {
                Op::Jump { to } | Op::IncCtrJumpLt { to, .. } => *to = map[*to as usize],
                Op::BranchTruthy { on_true, on_false, on_x, .. } => {
                    *on_true = map[*on_true as usize];
                    *on_false = map[*on_false as usize];
                    *on_x = map[*on_x as usize];
                }
                Op::BranchMatch { on_hit, .. } => *on_hit = map[*on_hit as usize],
                Op::BranchCtrZeroDec { on_zero, .. } => *on_zero = map[*on_zero as usize],
                _ => {}
            }
            self.ops.push(op);
        }
    }

    /// Signals the tape still touches through explicit signal ops
    /// (`Op::Tree` statements keep their reads implicit, but tree ops are
    /// never dead-eliminated so they cancel out of the before/after diff).
    fn live_sigs(&self) -> std::collections::BTreeSet<SigId> {
        let mut out = std::collections::BTreeSet::new();
        for op in self.ops.iter() {
            match op {
                Op::LoadSig { sig, .. }
                | Op::LoadWord { sig, .. }
                | Op::SliceSig { sig, .. }
                | Op::IndexSig { sig, .. }
                | Op::SelectSig { sig, .. }
                | Op::SelectSigW { sig, .. }
                | Op::SetSigVec { sig, .. }
                | Op::StoreWhole { sig, .. }
                | Op::StoreIndexSig { sig, .. }
                | Op::StoreBitsC { sig, .. }
                | Op::StoreWordC { sig, .. }
                | Op::StoreWordBitsC { sig, .. }
                | Op::StoreSelSig { sig, .. } => {
                    out.insert(*sig);
                }
                _ => {}
            }
        }
        out
    }

    fn finish(mut self) -> Option<Tape> {
        if self.gave_up {
            return None;
        }
        self.stats.procs = 1;
        self.stats.ops_emitted = self.ops.len() as u64;
        let sigs_before = self.live_sigs().len();
        self.dse();
        self.stats.dead_signals = (sigs_before - self.live_sigs().len()) as u64;
        self.stats.taped = 1;
        let fast = self.build_fast();
        match &fast {
            Some(f) => {
                self.stats.fast = 1;
                self.stats.limb_class = u64::from(f.limbs);
                if f.limbs > 1 {
                    self.stats.fast_wide = 1;
                }
            }
            None => self.stats.fast_rejected = 1,
        }
        Some(Tape {
            ops: self.ops.into_boxed_slice(),
            consts: self.consts.into_boxed_slice(),
            nregs: self.next_reg,
            nlocals: self.nlocals,
            nctrs: self.next_ctr,
            fast,
            stats: self.stats,
        })
    }
}

/// `(1 << w) - 1` without overflow at 64.
pub(crate) fn bitmask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Result of baking a case label against an x-free scrutinee.
enum LabelTest {
    /// Hit iff `(scrut ^ cmp) & care == 0`.
    Masked { cmp: u64, care: u64 },
    /// Can never hit (e.g. a `case` label containing x, or a required-one
    /// bit beyond the 64-bit scrutinee).
    Never,
}

/// Bakes `matches_wildcard`/`eq_case` against a constant label, given an
/// x-free scrutinee of static width `sw` (≤ 64, zero-padded above).
fn bake_label(kind: CaseKind, sw: u32, label: &LogicVec) -> LabelTest {
    if kind == CaseKind::Case && label.has_x() {
        // eq_case compares the unknown planes too; an x-free scrutinee can
        // never equal an x-bearing label.
        return LabelTest::Never;
    }
    let lw = label.width();
    let (mut cmp, mut care) = (0u64, 0u64);
    for i in 0..sw.max(lw) {
        let b = if i < lw { label.bit(i) } else { Bit::Zero };
        if i < 64 {
            match b {
                Bit::One => {
                    cmp |= 1 << i;
                    care |= 1 << i;
                }
                Bit::Zero => care |= 1 << i,
                Bit::X => {}
            }
        } else if b == Bit::One {
            // The ≤64-bit scrutinee reads 0 here: a required 1 never hits.
            return LabelTest::Never;
        }
    }
    LabelTest::Masked { cmp, care }
}

impl<'k> Compiler<'k> {
    /// Builds the two-state variant: one `FOp` per four-state op (shared
    /// indices, shared jump targets). Unsupported shapes become
    /// `FOp::Fallback`, which aborts the fast run before any state change.
    fn build_fast(&self) -> Option<FastTape> {
        if self.ops.is_empty() {
            return None;
        }
        let nl = self.nlocals as usize;
        let nregs = self.next_reg as usize;
        // Locals must use one consistent width for their baked masks.
        let mut local_w: Vec<Option<u32>> = vec![None; nl];
        let mut conflict = vec![false; nl];
        for op in self.ops.iter() {
            let (slot, w) = match op {
                Op::ZeroLocal { slot, width } => (*slot, *width),
                Op::StoreLocal { slot, width, .. } => (*slot, *width),
                _ => continue,
            };
            match &mut local_w[slot as usize] {
                e @ None => *e = Some(w),
                Some(prev) if *prev == w => {}
                _ => conflict[slot as usize] = true,
            }
        }
        // Register facts: single-def consts (for label baking) and which
        // regs are consumed anywhere other than as a case label.
        let mut defs = vec![0u32; nregs];
        for op in self.ops.iter() {
            match (Self::pure_dst(op), op) {
                (Some(d), _) => defs[d as usize] += 1,
                (
                    None,
                    Op::ZeroLocal { slot, .. }
                    | Op::StoreLocal { slot, .. }
                    | Op::StoreLocalBits { slot, .. }
                    | Op::StoreLocalBitsC { slot, .. }
                    | Op::StoreLocalSel { slot, .. },
                ) => defs[*slot as usize] += 1,
                _ => {}
            }
        }
        let mut const_reg: Vec<Option<&LogicVec>> = vec![None; nregs];
        for op in self.ops.iter() {
            if let Op::Const { dst, c } = op {
                if defs[*dst as usize] == 1 {
                    const_reg[*dst as usize] = Some(&self.consts[*c as usize]);
                }
            }
        }
        let mut nonlabel_use = vec![false; nregs];
        for op in self.ops.iter() {
            match op {
                Op::BranchMatch { scrut, .. } => nonlabel_use[*scrut as usize] = true,
                _ => Self::op_uses(op, self.nlocals, &mut |r| nonlabel_use[r as usize] = true),
            }
        }
        // Candidate register classes: always try the single-limb (PR-6
        // scalar) layout. When multi-limb mode is enabled and some static
        // width lands in (64, 256], also try the smallest class covering
        // every such width, and keep whichever maps with fewer fallbacks
        // (a wider class never wins on a tie — scalar ops are cheaper).
        let mut maxw = 0u32;
        {
            let mut consider = |w: u32| {
                if w <= 256 {
                    maxw = maxw.max(w);
                }
            };
            for (i, lw) in local_w.iter().enumerate() {
                if !conflict[i] {
                    consider(lw.unwrap_or(1));
                }
            }
            for w in self.width.iter().flatten() {
                consider(*w);
            }
            for op in self.ops.iter() {
                let sig = match op {
                    Op::LoadSig { sig, .. }
                    | Op::SliceSig { sig, .. }
                    | Op::IndexSig { sig, .. }
                    | Op::SelectSigW { sig, .. }
                    | Op::SetSigVec { sig, .. }
                    | Op::StoreWhole { sig, .. }
                    | Op::StoreBitsC { sig, .. }
                    | Op::StoreIndexSig { sig, .. } => *sig,
                    _ => continue,
                };
                let def = &self.sigs[sig as usize].def;
                if def.words.is_none() {
                    consider(def.width);
                }
            }
        }
        let wide_class = match maxw {
            0..=64 => 1u32,
            65..=128 => 2,
            _ => 4,
        };

        // Maps the whole op stream under one register class; `None` when
        // the result would be pure overhead (wide cone, immediate fault,
        // or a mostly-fallback stream).
        type FastClass = (Vec<FOp>, Vec<FCone>, Vec<u64>, usize);
        let try_class = |limbs: u32| -> Option<FastClass> {
            let limit = 64 * limbs;
            let fw = |r: VReg| -> Option<u32> {
                let i = r as usize;
                if i < nl {
                    if conflict[i] {
                        None
                    } else {
                        Some(local_w[i].unwrap_or(1)).filter(|w| *w <= limit)
                    }
                } else {
                    self.width[i].filter(|w| *w <= limit)
                }
            };
            // Cone: every vector signal the fast ops touch, within class.
            let sig_ok = |id: SigId| {
                let def = &self.sigs[id as usize].def;
                def.words.is_none() && def.width <= limit
            };
            let mut cone_set: BTreeMap<SigId, bool> = BTreeMap::new();
            for op in self.ops.iter() {
                match op {
                    Op::LoadSig { sig, .. }
                    | Op::SliceSig { sig, .. }
                    | Op::IndexSig { sig, .. }
                    | Op::SelectSigW { sig, .. }
                        if sig_ok(*sig) =>
                    {
                        cone_set.entry(*sig).or_insert(false);
                    }
                    Op::SetSigVec { sig, .. }
                    | Op::StoreWhole { sig, .. }
                    | Op::StoreBitsC { sig, .. }
                    | Op::StoreIndexSig { sig, .. }
                        if sig_ok(*sig) =>
                    {
                        *cone_set.entry(*sig).or_insert(true) = true;
                    }
                    _ => {}
                }
            }
            if cone_set.len() > 64 {
                return None;
            }
            let cone: Vec<FCone> = cone_set
                .iter()
                .enumerate()
                .map(|(i, (&sig, &written))| {
                    let w = self.sigs[sig as usize].def.width;
                    FCone { sig, reg: self.next_reg + i as u32, width: w, written }
                })
                .collect();
            let shadow: HashMap<SigId, (VReg, u32)> =
                cone.iter().enumerate().map(|(i, c)| (c.sig, (c.reg, i as u32))).collect();
            let mut wconsts = Vec::new();
            let fops: Vec<FOp> = self
                .ops
                .iter()
                .map(|op| {
                    self.map_fast(op, limbs, &fw, &const_reg, &nonlabel_use, &shadow, &mut wconsts)
                })
                .collect();
            // A fast tape that faults immediately (or mostly) is pure
            // overhead.
            if matches!(fops[0], FOp::Fallback) {
                return None;
            }
            let falls = fops.iter().filter(|f| matches!(f, FOp::Fallback)).count();
            if falls * 2 > fops.len() {
                return None;
            }
            Some((fops, cone, wconsts, falls))
        };

        let narrow = try_class(1);
        let want_wide = wide_class > 1
            && crate::interp::wide_enabled()
            && match &narrow {
                None => true,
                Some((.., falls)) => *falls > 0,
            };
        let chosen = if want_wide {
            match (try_class(wide_class), narrow) {
                (Some(w), Some(n)) => {
                    if w.3 < n.3 {
                        Some((w, wide_class))
                    } else {
                        Some((n, 1))
                    }
                }
                (Some(w), None) => Some((w, wide_class)),
                (None, n) => n.map(|n| (n, 1)),
            }
        } else {
            narrow.map(|n| (n, 1))
        };
        let ((fops, cone, wconsts, _), limbs) = chosen?;
        Some(FastTape {
            nregs: self.next_reg + cone.len() as u32,
            ops: fops.into_boxed_slice(),
            cone: cone.into_boxed_slice(),
            limbs,
            wconsts: wconsts.into_boxed_slice(),
            thread: std::sync::OnceLock::new(),
        })
    }

    /// Maps one four-state op onto its two-state counterpart under the
    /// given register class (`limbs` u64s per register). At `limbs == 1`
    /// the mapping is exactly the PR-6 scalar one.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn map_fast(
        &self,
        op: &Op,
        limbs: u32,
        fw: &dyn Fn(VReg) -> Option<u32>,
        const_reg: &[Option<&LogicVec>],
        nonlabel_use: &[bool],
        shadow: &HashMap<SigId, (VReg, u32)>,
        wconsts: &mut Vec<u64>,
    ) -> FOp {
        use FOp as F;
        let limit = 64 * limbs;
        match op {
            Op::Const { dst, c } => {
                let v = &self.consts[*c as usize];
                match v.to_u64() {
                    Some(raw) => F::Const { dst: *dst, val: raw },
                    None => {
                        let mut buf = [0u64; 4];
                        if limbs > 1 && v.to_limbs(&mut buf[..limbs as usize]) {
                            let entry = (wconsts.len() / limbs as usize) as u32;
                            wconsts.extend_from_slice(&buf[..limbs as usize]);
                            F::ConstW { dst: *dst, c: entry }
                        } else if nonlabel_use[*dst as usize] {
                            // x/z or over-wide constants can only serve as
                            // baked case labels; anything else falls back.
                            F::Fallback
                        } else {
                            F::Nop
                        }
                    }
                }
            }
            Op::LoadSig { dst, sig } => match shadow.get(sig) {
                Some(&(reg, _)) => F::Copy { dst: *dst, src: reg },
                None => F::Fallback,
            },
            Op::Copy { dst, src } => F::Copy { dst: *dst, src: *src },
            Op::Unary { dst, op, src } => {
                let (dst, src) = (*dst, *src);
                let red = |kind: u8, neg: bool| match fw(src) {
                    Some(w) => F::Reduce { dst, src, w, kind, neg },
                    None => F::Fallback,
                };
                match op {
                    UnaryOp::Plus => F::Copy { dst, src },
                    UnaryOp::Not => F::LogNot { dst, src },
                    UnaryOp::BitNot => match fw(src) {
                        Some(w) => F::Not { dst, src, w },
                        None => F::Fallback,
                    },
                    UnaryOp::Neg => match fw(src) {
                        Some(w) => F::Neg { dst, src, w },
                        None => F::Fallback,
                    },
                    UnaryOp::RedAnd => red(0, false),
                    UnaryOp::RedOr => red(1, false),
                    UnaryOp::RedXor => red(2, false),
                    UnaryOp::RedNand => red(0, true),
                    UnaryOp::RedNor => red(1, true),
                    UnaryOp::RedXnor => red(2, true),
                }
            }
            Op::Binary { dst, op, a, b } => self.map_fast_binary(*dst, *op, *a, *b, fw),
            Op::Resize { dst, src, width } => {
                if *width <= limit {
                    F::Resize { dst: *dst, src: *src, w: *width }
                } else {
                    F::Fallback
                }
            }
            Op::Merge { .. } => F::Fallback,
            Op::Concat { dst, parts } => {
                let mut ps = Vec::with_capacity(parts.len());
                let mut total = 0u32;
                for &r in parts.iter() {
                    let Some(w) = fw(r) else { return F::Fallback };
                    total += w;
                    ps.push((r, w));
                }
                if total <= limit {
                    F::Concat { dst: *dst, parts: ps.into_boxed_slice() }
                } else {
                    F::Fallback
                }
            }
            Op::ReplicateC { dst, src, count } => match fw(*src) {
                Some(w) if w.saturating_mul(*count) <= limit => {
                    F::ReplicateC { dst: *dst, src: *src, count: *count, w }
                }
                _ => F::Fallback,
            },
            Op::ReplicateDyn { .. } => F::Fallback,
            Op::Slice { dst, src, hi, lo } => match fw(*src) {
                // Out-of-range slice bits read x: not fast-representable.
                Some(w) if *hi < w => {
                    F::Slice { dst: *dst, src: *src, lo: *lo, w: hi - lo + 1 }
                }
                _ => F::Fallback,
            },
            Op::SliceSig { dst, sig, hi, lo } => match shadow.get(sig) {
                Some(&(reg, _)) if *hi < self.sigs[*sig as usize].def.width => {
                    F::Slice { dst: *dst, src: reg, lo: *lo, w: hi - lo + 1 }
                }
                _ => F::Fallback,
            },
            Op::IndexSig { dst, sig, idx } => match shadow.get(sig) {
                Some(&(reg, _)) => F::IndexSig { dst: *dst, shadow: reg, sig: *sig, idx: *idx },
                None => F::Fallback,
            },
            Op::IndexVal { dst, base, idx } => match fw(*base) {
                Some(w) => F::IndexVal { dst: *dst, base: *base, idx: *idx, basew: w },
                None => F::Fallback,
            },
            Op::IndexValC { .. } | Op::SelectSig { .. } | Op::SelectVal { .. } => F::Fallback,
            Op::SelectSigW { dst, sig, left, span, mode } => match shadow.get(sig) {
                Some(&(reg, _)) => F::SelectSigW {
                    dst: *dst,
                    shadow: reg,
                    sig: *sig,
                    left: *left,
                    span: *span as u32,
                    mode: *mode,
                },
                None => F::Fallback,
            },
            Op::SelectValW { dst, base, left, span, mode } => match fw(*base) {
                Some(w) => F::SelectValW {
                    dst: *dst,
                    base: *base,
                    left: *left,
                    span: *span as u32,
                    mode: *mode,
                    basew: w,
                },
                None => F::Fallback,
            },
            Op::Call { .. } | Op::Tree { .. } | Op::LoadWord { .. } => F::Fallback,
            Op::Clog2 { dst, src } => F::Clog2 { dst: *dst, src: *src },
            Op::ZeroLocal { slot, .. } => F::Zero { dst: *slot },
            Op::StoreLocal { slot, src, width } => {
                if *width <= limit {
                    F::StoreLocal { slot: *slot, src: *src, w: *width }
                } else {
                    F::Fallback
                }
            }
            Op::StoreLocalBits { slot, idx, src } => match fw(*slot) {
                Some(w) => F::StoreLocalBits { slot: *slot, idx: *idx, src: *src, slotw: w },
                None => F::Fallback,
            },
            Op::StoreLocalBitsC { slot, hi, lo, src } => match fw(*slot) {
                // Beyond-width writes are dropped by `write_local_bits`;
                // inverted ranges would panic there — let the slow path
                // reproduce that exactly.
                Some(w) if *hi >= w => F::Nop,
                Some(_) if hi >= lo => {
                    F::StoreLocalBitsC { slot: *slot, hi: *hi, lo: *lo, src: *src }
                }
                _ => F::Fallback,
            },
            Op::StoreLocalSel { .. }
            | Op::StoreWordC { .. }
            | Op::StoreWordBitsC { .. }
            | Op::StoreSelSig { .. } => F::Fallback,
            Op::SetSigVec { sig, src, width } => match shadow.get(sig) {
                Some(&(reg, ci)) => F::StoreWhole {
                    shadow: reg,
                    cone: ci,
                    src: *src,
                    w: *width,
                    nb: false,
                    sig: *sig,
                },
                None => F::Fallback,
            },
            Op::StoreWhole { sig, src, nb } => match shadow.get(sig) {
                Some(&(reg, ci)) => {
                    let w = self.sigs[*sig as usize].def.width;
                    F::StoreWhole { shadow: reg, cone: ci, src: *src, w, nb: *nb, sig: *sig }
                }
                None => F::Fallback,
            },
            Op::StoreBitsC { sig, hi, lo, src, nb } => match shadow.get(sig) {
                Some(&(reg, ci)) if *hi < self.sigs[*sig as usize].def.width => F::StoreBitsC {
                    shadow: reg,
                    cone: ci,
                    hi: *hi,
                    lo: *lo,
                    src: *src,
                    nb: *nb,
                    sig: *sig,
                },
                _ => F::Fallback,
            },
            Op::StoreIndexSig { sig, idx, src, nb } => match shadow.get(sig) {
                Some(&(reg, ci)) => F::StoreIndexSig {
                    shadow: reg,
                    cone: ci,
                    idx: *idx,
                    src: *src,
                    nb: *nb,
                    sig: *sig,
                },
                None => F::Fallback,
            },
            Op::Jump { to } => F::Jump { to: *to },
            Op::BranchTruthy { cond, on_true, on_false, .. } => {
                // An x condition is impossible over an x-free cone, so the
                // on_x arm is unreachable here.
                F::BranchTruthy { cond: *cond, on_true: *on_true, on_false: *on_false }
            }
            Op::BranchMatch { kind, scrut, label, on_hit } => {
                let Some(sw) = fw(*scrut) else { return F::Fallback };
                if sw > 64 {
                    // Wide scrutinee (multi-limb classes only): clean
                    // constant labels ride the register file via `ConstW`
                    // and compare as raw equality; x-bearing labels either
                    // can never hit (plain `case`) or need wildcard
                    // masking over >64 bits (not worth a baked form).
                    return match const_reg[*label as usize] {
                        Some(lv) if lv.has_x() => {
                            if *kind == CaseKind::Case {
                                F::Nop
                            } else {
                                F::Fallback
                            }
                        }
                        Some(lv) => {
                            let mut buf = [0u64; 4];
                            if lv.to_limbs(&mut buf[..limbs as usize]) {
                                F::BranchMatchR { scrut: *scrut, label: *label, on_hit: *on_hit }
                            } else {
                                // A set bit beyond the register class can
                                // never equal the zero-extended scrutinee.
                                F::Nop
                            }
                        }
                        None => F::BranchMatchR { scrut: *scrut, label: *label, on_hit: *on_hit },
                    };
                }
                match const_reg[*label as usize] {
                    Some(lv) => match bake_label(*kind, sw, lv) {
                        LabelTest::Never => F::Nop,
                        LabelTest::Masked { cmp, care } => {
                            F::BranchMatchC { scrut: *scrut, cmp, care, on_hit: *on_hit }
                        }
                    },
                    // Runtime labels in fast mode are x-free, where every
                    // case flavour degenerates to raw equality.
                    None => F::BranchMatchR { scrut: *scrut, label: *label, on_hit: *on_hit },
                }
            }
            Op::ZeroCtr { ctr } => F::ZeroCtr { ctr: *ctr },
            Op::IncCtrJumpLt { ctr, limit, to } => {
                F::IncCtrJumpLt { ctr: *ctr, limit: *limit, to: *to }
            }
            Op::RepeatInit { ctr, count } => F::RepeatInit { ctr: *ctr, count: *count },
            Op::BranchCtrZeroDec { ctr, on_zero } => {
                F::BranchCtrZeroDec { ctr: *ctr, on_zero: *on_zero }
            }
        }
    }

    fn map_fast_binary(
        &self,
        dst: VReg,
        op: BinaryOp,
        a: VReg,
        b: VReg,
        fw: &dyn Fn(VReg) -> Option<u32>,
    ) -> FOp {
        use BinaryOp::*;
        use FOp as F;
        let maxw = || -> Option<u32> {
            let (x, y) = (fw(a)?, fw(b)?);
            Some(x.max(y))
        };
        match op {
            Add => match maxw() {
                Some(w) => F::Add { dst, a, b, w },
                None => F::Fallback,
            },
            Sub => match maxw() {
                Some(w) => F::Sub { dst, a, b, w },
                None => F::Fallback,
            },
            Mul => match maxw() {
                Some(w) => F::Mul { dst, a, b, w },
                None => F::Fallback,
            },
            Div => F::Div { dst, a, b },
            Mod => F::Mod { dst, a, b },
            Pow => match maxw() {
                Some(w) => F::Pow { dst, a, b, w },
                None => F::Fallback,
            },
            BitAnd => F::And { dst, a, b },
            BitOr => F::Or { dst, a, b },
            BitXor => F::Xor { dst, a, b },
            BitXnor => match maxw() {
                Some(w) => F::Xnor { dst, a, b, w },
                None => F::Fallback,
            },
            LogAnd => F::LogAnd { dst, a, b },
            LogOr => F::LogOr { dst, a, b },
            Eq | CaseEq => F::Eq { dst, a, b, neg: false },
            Ne | CaseNe => F::Eq { dst, a, b, neg: true },
            Lt => F::Lt { dst, a, b, neg: false },
            Gt => F::Lt { dst, a: b, b: a, neg: false },
            Le => F::Lt { dst, a: b, b: a, neg: true },
            Ge => F::Lt { dst, a, b, neg: true },
            Shl | AShl => match fw(a) {
                Some(w) => F::Shl { dst, a, b, w },
                None => F::Fallback,
            },
            Shr => match fw(a) {
                Some(w) => F::Shr { dst, a, b, w },
                None => F::Fallback,
            },
            AShr => match fw(a) {
                Some(w) => F::Ashr { dst, a, b, w },
                None => F::Fallback,
            },
        }
    }
}

// ---- entry points -----------------------------------------------------------

fn finish_with_stats(c: Compiler<'_>) -> (Option<Tape>, TapeStats) {
    let mut fallback = c.stats;
    match c.finish() {
        Some(t) => {
            let s = t.stats;
            (Some(t), s)
        }
        None => {
            fallback.procs = 1;
            (None, fallback)
        }
    }
}

/// Compiles a combinational / initial process body into a tape (`None`
/// when the process is better left to the tree walker).
pub(crate) fn compile_proc(
    sigs: &[KSig],
    funcs: &[KFunc],
    nlocals: u32,
    body: &KProcBody,
) -> (Option<Tape>, TapeStats) {
    let mut c = Compiler::new(sigs, funcs, nlocals);
    match body {
        KProcBody::Assign { lhs, rhs } => match c.static_lval_width(lhs) {
            Some(w) => {
                let v = c.compile_sized(rhs, w);
                c.compile_assign(lhs, v, false);
            }
            None => c.tree_stmt(&KStmt::Assign {
                lhs: lhs.clone(),
                op: AssignOp::Blocking,
                rhs: rhs.clone(),
            }),
        },
        KProcBody::Block(stmt) => c.compile_stmt(stmt),
        KProcBody::BindIn { child, expr } => {
            let width = child.map_or(1, |id| sigs[id as usize].def.width);
            let v = c.compile_sized(expr, width);
            if let Some(id) = child {
                let src = c.mat(v);
                c.emit(Op::SetSigVec { sig: *id, src, width });
            }
        }
        KProcBody::BindOut { lhs, child } => {
            if let Some(id) = child {
                // Vector-valued children mirror the tree's `if let Vec`
                // guard; array children never assign (and the interpreter
                // re-checks the runtime state type before running a tape).
                if sigs[*id as usize].def.words.is_none() {
                    if c.static_lval_width(lhs).is_some() {
                        let dst = c.fresh(Some(sigs[*id as usize].def.width));
                        c.emit(Op::LoadSig { dst, sig: *id });
                        c.compile_assign(lhs, V::R(dst), false);
                    } else {
                        c.gave_up = true;
                    }
                }
            }
        }
    }
    finish_with_stats(c)
}

/// Compiles an edge-triggered process body into a tape.
pub(crate) fn compile_seq(
    sigs: &[KSig],
    funcs: &[KFunc],
    nlocals: u32,
    body: &KStmt,
) -> (Option<Tape>, TapeStats) {
    let mut c = Compiler::new(sigs, funcs, nlocals);
    c.compile_stmt(body);
    finish_with_stats(c)
}
