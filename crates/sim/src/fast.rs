//! Generic two-state fast-tape executor over `L`-limb registers.
//!
//! PR 6 introduced the scalar (`u64`) fast path; this module generalises
//! it over a compile-time register class: register `r` occupies limbs
//! `[r*L, (r+1)*L)` of the flat `fregs` file. `L = 1` is required to be
//! bit-identical to the original scalar loop (monomorphisation folds the
//! limb loops away); `L = 2` / `L = 4` keep 65–256-bit arithmetic on the
//! fast stream.
//!
//! The fallback contract is unchanged: any situation where the four-state
//! tape would produce x/z — an x in the input cone, a zero divisor, an
//! out-of-range select, or a *value* that the tree's `to_u64`/`to_u128`
//! narrowing would reject (upper limbs set where a scalar is needed) —
//! returns `false` strictly before any state mutation, and the caller
//! re-runs the four-state ops. Where the tree instead *drops* a write
//! (`to_u64`-guarded store indices), the fast path drops it too.

use rtlfixer_verilog::const_eval::clog2;

use crate::interp::{note_change, set_state, select_bounds, NbaWrite, StateValue, Target, WriteLog, MAX_LOOP};
use crate::lower::Kernel;
use crate::tape::{bitmask, FOp, FastTape, VReg};
use crate::value::LogicVec;
use crate::wide;

/// Reads register `r` by value.
#[inline(always)]
fn rd<const L: usize>(fregs: &[u64], r: VReg) -> [u64; L] {
    let mut out = [0u64; L];
    out.copy_from_slice(&fregs[r as usize * L..r as usize * L + L]);
    out
}

/// Writes register `r`.
#[inline(always)]
fn wr<const L: usize>(fregs: &mut [u64], r: VReg, v: [u64; L]) {
    fregs[r as usize * L..r as usize * L + L].copy_from_slice(&v);
}

/// Narrows a register to `u64` exactly like the tree's `to_u64`: `None`
/// when any upper limb is set.
#[inline(always)]
fn scal<const L: usize>(v: &[u64; L]) -> Option<u64> {
    if v[1..].iter().any(|&l| l != 0) {
        None
    } else {
        Some(v[0])
    }
}

/// Narrows a register to `u128` exactly like the tree's `to_u128`.
#[inline(always)]
fn scal128<const L: usize>(v: &[u64; L]) -> Option<u128> {
    if v.len() > 2 && v[2..].iter().any(|&l| l != 0) {
        return None;
    }
    let hi = if L > 1 { v[1] } else { 0 };
    Some(u128::from(v[0]) | u128::from(hi) << 64)
}

/// Spreads a `u128` across limbs (zero above), mirroring `from_u128`.
#[inline(always)]
fn from_u128<const L: usize>(x: u128) -> [u64; L] {
    let mut out = [0u64; L];
    out[0] = x as u64;
    if L > 1 {
        out[1] = (x >> 64) as u64;
    }
    out
}

/// Loads the input cone into shadow registers, recording originals in
/// `forig` (stride `L`). Returns `false` on any x/z or over-wide value.
#[inline]
pub(crate) fn load_cone<const L: usize>(
    state: &[StateValue],
    fast: &FastTape,
    fregs: &mut [u64],
    forig: &mut Vec<u64>,
) -> bool {
    for c in fast.cone.iter() {
        let base = c.reg as usize * L;
        let ok = match &state[c.sig as usize] {
            StateValue::Vec(v) => v.to_limbs(&mut fregs[base..base + L]),
            StateValue::Array(_) => false,
        };
        if !ok {
            return false;
        }
        forig.extend_from_slice(&fregs[base..base + L]);
    }
    true
}

/// Epilogue: commits changed cone shadows (and bare dirty marks for
/// change-then-revert writes), reproducing the tree walker's `set_state`
/// skip/dirty behaviour.
#[inline]
pub(crate) fn commit_cone<const L: usize>(
    state: &mut [StateValue],
    fast: &FastTape,
    fregs: &[u64],
    forig: &[u64],
    sticky: u64,
    log: &mut Option<WriteLog<'_>>,
) {
    for (i, c) in fast.cone.iter().enumerate() {
        if !c.written {
            continue;
        }
        let raw = rd::<L>(fregs, c.reg);
        if raw != forig[i * L..(i + 1) * L] {
            set_state(state, log, c.sig, StateValue::Vec(LogicVec::from_limbs(c.width, &raw)));
        } else if sticky & (1 << i) != 0 {
            note_change(state, log, c.sig);
        }
    }
}

/// Executes a two-state fast tape over `L`-limb registers. Returns
/// `false` — strictly before any real state mutation — when the input
/// cone holds x/z or an op would produce it; the caller then re-runs the
/// four-state tape. Signal writes are buffered in cone shadow registers
/// (non-blocking ones in `fnba` when an NBA queue is active) and
/// committed by the epilogue, reproducing the tree walker's `set_state`
/// skip/dirty behaviour including change-then-revert dirtying.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub(crate) fn run_fast_tape<const L: usize>(
    k: &Kernel,
    state: &mut [StateValue],
    fast: &FastTape,
    nctrs: u32,
    fregs: &mut Vec<u64>,
    fctrs: &mut Vec<u64>,
    forig: &mut Vec<u64>,
    fnba: &mut Vec<NbaWrite>,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
) -> bool {
    fregs.clear();
    fregs.resize(fast.nregs as usize * L, 0);
    fctrs.clear();
    fctrs.resize(nctrs as usize, 0);
    forig.clear();
    fnba.clear();
    if !load_cone::<L>(state, fast, fregs, forig) {
        return false;
    }
    // Non-blocking writes defer only when an NBA queue is active (edge
    // context); in combinational context the tree commits them immediately.
    let defer = nba.is_some();
    // Bit i set: cone signal i was written with a differing value at some
    // point (change-then-revert still dirties, like repeated `set_state`).
    let mut sticky: u64 = 0;
    let ops = &fast.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            FOp::Nop => {}
            FOp::Fallback => return false,
            FOp::Const { dst, val } => wr(fregs, *dst, wide::from_u64::<L>(*val)),
            FOp::ConstW { dst, c } => {
                let base = *c as usize * L;
                let mut v = [0u64; L];
                v.copy_from_slice(&fast.wconsts[base..base + L]);
                wr(fregs, *dst, v);
            }
            FOp::Copy { dst, src } => {
                let v = rd::<L>(fregs, *src);
                wr(fregs, *dst, v);
            }
            FOp::Not { dst, src, w } => {
                let v = wide::not(rd::<L>(fregs, *src), *w);
                wr(fregs, *dst, v);
            }
            FOp::Neg { dst, src, w } => {
                let v = wide::neg(rd::<L>(fregs, *src), *w);
                wr(fregs, *dst, v);
            }
            FOp::LogNot { dst, src } => {
                let z = wide::is_zero(rd::<L>(fregs, *src));
                wr(fregs, *dst, wide::from_u64::<L>(z as u64));
            }
            FOp::Reduce { dst, src, w, kind, neg } => {
                let r = rd::<L>(fregs, *src);
                let bit = match kind {
                    0 => wide::eq(r, wide::ones(*w)),
                    1 => !wide::is_zero(r),
                    _ => wide::parity(r),
                };
                wr(fregs, *dst, wide::from_u64::<L>((bit != *neg) as u64));
            }
            FOp::Add { dst, a, b, w } => {
                let v = wide::add(rd::<L>(fregs, *a), rd::<L>(fregs, *b), *w);
                wr(fregs, *dst, v);
            }
            FOp::Sub { dst, a, b, w } => {
                let v = wide::sub(rd::<L>(fregs, *a), rd::<L>(fregs, *b), *w);
                wr(fregs, *dst, v);
            }
            FOp::Mul { dst, a, b, w } => {
                // The reference multiplies through u128 (`eval_binary`), so
                // the wide product is the u128-truncated one; operands past
                // 128 bits would read x there and bail here.
                let (Some(x), Some(y)) =
                    (scal128(&rd::<L>(fregs, *a)), scal128(&rd::<L>(fregs, *b)))
                else {
                    return false;
                };
                wr(fregs, *dst, wide::mask(from_u128::<L>(x.wrapping_mul(y)), *w));
            }
            FOp::Div { dst, a, b } => {
                let (Some(x), Some(y)) =
                    (scal128(&rd::<L>(fregs, *a)), scal128(&rd::<L>(fregs, *b)))
                else {
                    return false;
                };
                if y == 0 {
                    return false;
                }
                wr(fregs, *dst, from_u128::<L>(x / y));
            }
            FOp::Mod { dst, a, b } => {
                let (Some(x), Some(y)) =
                    (scal128(&rd::<L>(fregs, *a)), scal128(&rd::<L>(fregs, *b)))
                else {
                    return false;
                };
                if y == 0 {
                    return false;
                }
                wr(fregs, *dst, from_u128::<L>(x % y));
            }
            FOp::Pow { dst, a, b, w } => {
                let (Some(x), Some(y)) =
                    (scal128(&rd::<L>(fregs, *a)), scal128(&rd::<L>(fregs, *b)))
                else {
                    return false;
                };
                let mut acc: u128 = 1;
                for _ in 0..y.min(128) {
                    acc = acc.wrapping_mul(x);
                }
                wr(fregs, *dst, wide::mask(from_u128::<L>(acc), *w));
            }
            FOp::And { dst, a, b } => {
                let v = wide::and(rd::<L>(fregs, *a), rd::<L>(fregs, *b));
                wr(fregs, *dst, v);
            }
            FOp::Or { dst, a, b } => {
                let v = wide::or(rd::<L>(fregs, *a), rd::<L>(fregs, *b));
                wr(fregs, *dst, v);
            }
            FOp::Xor { dst, a, b } => {
                let v = wide::xor(rd::<L>(fregs, *a), rd::<L>(fregs, *b));
                wr(fregs, *dst, v);
            }
            FOp::Xnor { dst, a, b, w } => {
                let v = wide::not(wide::xor(rd::<L>(fregs, *a), rd::<L>(fregs, *b)), *w);
                wr(fregs, *dst, v);
            }
            FOp::Lt { dst, a, b, neg } => {
                let lt = wide::lt(rd::<L>(fregs, *a), rd::<L>(fregs, *b));
                wr(fregs, *dst, wide::from_u64::<L>((lt != *neg) as u64));
            }
            FOp::Eq { dst, a, b, neg } => {
                let eq = wide::eq(rd::<L>(fregs, *a), rd::<L>(fregs, *b));
                wr(fregs, *dst, wide::from_u64::<L>((eq != *neg) as u64));
            }
            FOp::LogAnd { dst, a, b } => {
                let t = !wide::is_zero(rd::<L>(fregs, *a)) && !wide::is_zero(rd::<L>(fregs, *b));
                wr(fregs, *dst, wide::from_u64::<L>(t as u64));
            }
            FOp::LogOr { dst, a, b } => {
                let t = !wide::is_zero(rd::<L>(fregs, *a)) || !wide::is_zero(rd::<L>(fregs, *b));
                wr(fregs, *dst, wide::from_u64::<L>(t as u64));
            }
            FOp::Shl { dst, a, b, w } => {
                let Some(n) = scal(&rd::<L>(fregs, *b)) else { return false };
                let v = wide::shl(rd::<L>(fregs, *a), n, *w);
                wr(fregs, *dst, v);
            }
            FOp::Shr { dst, a, b, w } => {
                let Some(n) = scal(&rd::<L>(fregs, *b)) else { return false };
                let v = wide::shr(rd::<L>(fregs, *a), n, *w);
                wr(fregs, *dst, v);
            }
            FOp::Ashr { dst, a, b, w } => {
                let Some(n) = scal(&rd::<L>(fregs, *b)) else { return false };
                let v = wide::ashr(rd::<L>(fregs, *a), n, *w);
                wr(fregs, *dst, v);
            }
            FOp::Resize { dst, src, w } => {
                let v = wide::mask(rd::<L>(fregs, *src), *w);
                wr(fregs, *dst, v);
            }
            FOp::Concat { dst, parts } => {
                let mut acc = [0u64; L];
                for &(r, w) in parts.iter() {
                    acc = wide::or(wide::shl_raw(acc, w), rd::<L>(fregs, r));
                }
                wr(fregs, *dst, acc);
            }
            FOp::ReplicateC { dst, src, count, w } => {
                let v = rd::<L>(fregs, *src);
                let mut acc = [0u64; L];
                for _ in 0..*count {
                    acc = wide::or(wide::shl_raw(acc, *w), v);
                }
                wr(fregs, *dst, acc);
            }
            FOp::Slice { dst, src, lo, w } => {
                let v = wide::extract(rd::<L>(fregs, *src), *lo, *w);
                wr(fregs, *dst, v);
            }
            FOp::IndexSig { dst, shadow, sig, idx } => {
                let Some(i) = scal(&rd::<L>(fregs, *idx)) else { return false };
                let Some(off) = k.sigs[*sig as usize].def.offset(i as i64) else {
                    return false;
                };
                let b = wide::bit(rd::<L>(fregs, *shadow), off);
                wr(fregs, *dst, wide::from_u64::<L>(b));
            }
            FOp::IndexVal { dst, base, idx, basew } => {
                let Some(i) = scal(&rd::<L>(fregs, *idx)) else { return false };
                if i >= u64::from(*basew) {
                    return false;
                }
                let b = wide::bit(rd::<L>(fregs, *base), i as u32);
                wr(fregs, *dst, wide::from_u64::<L>(b));
            }
            FOp::SelectSigW { dst, shadow, sig, left, span, mode } => {
                let Some(l) = scal(&rd::<L>(fregs, *left)) else { return false };
                let (hi_idx, lo_idx) = select_bounds(l as i64, *span as i64, *mode);
                let def = &k.sigs[*sig as usize].def;
                let (Some(a), Some(b)) = (def.offset(hi_idx), def.offset(lo_idx)) else {
                    return false;
                };
                let v = wide::extract(rd::<L>(fregs, *shadow), a.min(b), *span);
                wr(fregs, *dst, v);
            }
            FOp::SelectValW { dst, base, left, span, mode, basew } => {
                let Some(l) = scal(&rd::<L>(fregs, *left)) else { return false };
                let (hi_idx, lo_idx) = select_bounds(l as i64, *span as i64, *mode);
                if lo_idx < 0 || hi_idx >= i64::from(*basew) {
                    return false;
                }
                let v = wide::extract(rd::<L>(fregs, *base), lo_idx as u32, *span);
                wr(fregs, *dst, v);
            }
            FOp::Clog2 { dst, src } => {
                // The tree's clog2_val reads `to_u64().unwrap_or(0)`.
                let v = scal(&rd::<L>(fregs, *src)).unwrap_or(0);
                wr(fregs, *dst, wide::from_u64::<L>(clog2(v as i64) as u64 & bitmask(32)));
            }
            FOp::Zero { dst } => wr(fregs, *dst, [0u64; L]),
            FOp::StoreWhole { shadow, cone, src, w, nb, sig } => {
                let raw = wide::mask(rd::<L>(fregs, *src), *w);
                if *nb && defer {
                    fnba.push(NbaWrite {
                        target: Target::Whole(*sig),
                        value: LogicVec::from_limbs(*w, &raw),
                    });
                } else if rd::<L>(fregs, *shadow) != raw {
                    sticky |= 1 << *cone;
                    wr(fregs, *shadow, raw);
                }
            }
            FOp::StoreBitsC { shadow, cone, hi, lo, src, nb, sig } => {
                let span = *hi - *lo + 1;
                let chunk = wide::mask(rd::<L>(fregs, *src), span);
                if *nb && defer {
                    fnba.push(NbaWrite {
                        target: Target::Bits(*sig, *hi, *lo),
                        value: LogicVec::from_limbs(span, &chunk),
                    });
                } else {
                    let cur = rd::<L>(fregs, *shadow);
                    let new = wide::insert(cur, *lo, span, chunk);
                    if new != cur {
                        sticky |= 1 << *cone;
                        wr(fregs, *shadow, new);
                    }
                }
            }
            FOp::StoreIndexSig { shadow, cone, idx, src, nb, sig } => {
                // Out-of-range (or over-wide) indices drop the write, like
                // the tree path's `to_u64`-guarded assign.
                if let Some(i) = scal(&rd::<L>(fregs, *idx)) {
                    if let Some(off) = k.sigs[*sig as usize].def.offset(i as i64) {
                        let b = rd::<L>(fregs, *src)[0] & 1;
                        if *nb && defer {
                            fnba.push(NbaWrite {
                                target: Target::Bits(*sig, off, off),
                                value: LogicVec::from_u64(1, b),
                            });
                        } else {
                            let cur = rd::<L>(fregs, *shadow);
                            let new = wide::insert(cur, off, 1, wide::from_u64::<L>(b));
                            if new != cur {
                                sticky |= 1 << *cone;
                                wr(fregs, *shadow, new);
                            }
                        }
                    }
                }
            }
            FOp::StoreLocal { slot, src, w } => {
                let v = wide::mask(rd::<L>(fregs, *src), *w);
                wr(fregs, *slot, v);
            }
            FOp::StoreLocalBits { slot, idx, src, slotw } => {
                // The truncating cast matches the tree's `v as u32`.
                if let Some(i) = scal(&rd::<L>(fregs, *idx)) {
                    let i = i as u32;
                    if i < *slotw {
                        let b = rd::<L>(fregs, *src)[0] & 1;
                        let cur = rd::<L>(fregs, *slot);
                        wr(fregs, *slot, wide::insert(cur, i, 1, wide::from_u64::<L>(b)));
                    }
                }
            }
            FOp::StoreLocalBitsC { slot, hi, lo, src } => {
                let span = *hi - *lo + 1;
                let chunk = wide::mask(rd::<L>(fregs, *src), span);
                let cur = rd::<L>(fregs, *slot);
                wr(fregs, *slot, wide::insert(cur, *lo, span, chunk));
            }
            FOp::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            FOp::BranchTruthy { cond, on_true, on_false } => {
                let t = !wide::is_zero(rd::<L>(fregs, *cond));
                pc = if t { *on_true } else { *on_false } as usize;
                continue;
            }
            FOp::BranchMatchC { scrut, cmp, care, on_hit } => {
                // Scrutinee is compile-time restricted to ≤ 64 bits.
                if (rd::<L>(fregs, *scrut)[0] ^ cmp) & care == 0 {
                    pc = *on_hit as usize;
                    continue;
                }
            }
            FOp::BranchMatchR { scrut, label, on_hit } => {
                if rd::<L>(fregs, *scrut) == rd::<L>(fregs, *label) {
                    pc = *on_hit as usize;
                    continue;
                }
            }
            FOp::ZeroCtr { ctr } => fctrs[*ctr as usize] = 0,
            FOp::IncCtrJumpLt { ctr, limit, to } => {
                fctrs[*ctr as usize] += 1;
                if fctrs[*ctr as usize] < u64::from(*limit) {
                    pc = *to as usize;
                    continue;
                }
            }
            FOp::RepeatInit { ctr, count } => {
                // The tree reads the count via `to_u64().unwrap_or(0)`.
                let v = scal(&rd::<L>(fregs, *count)).unwrap_or(0);
                fctrs[*ctr as usize] = v.min(MAX_LOOP as u64);
            }
            FOp::BranchCtrZeroDec { ctr, on_zero } => {
                if fctrs[*ctr as usize] == 0 {
                    pc = *on_zero as usize;
                    continue;
                }
                fctrs[*ctr as usize] -= 1;
            }
        }
        pc += 1;
    }
    commit_cone::<L>(state, fast, fregs, forig, sticky, log);
    if let Some(queue) = nba {
        queue.append(fnba);
    } else {
        fnba.clear();
    }
    true
}
