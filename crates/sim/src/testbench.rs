//! Golden-model testbench harness.
//!
//! Functional correctness (the paper's pass@k metric, Eq. 2) is measured by
//! simulating a candidate implementation against a [`ReferenceModel`] — a
//! Rust-level golden implementation of the problem — over a deterministic
//! stimulus sequence, and comparing outputs cycle by cycle.

use std::collections::BTreeMap;

use rtlfixer_verilog::Analysis;

use crate::interp::Simulator;
use crate::lanes::LaneStats;
use crate::value::LogicVec;

/// A golden reference implementation of a benchmark problem.
///
/// Implementations are plain Rust; `step` receives the cycle's input values
/// and returns the expected outputs. For sequential problems, `step` models
/// one clock cycle (inputs sampled at the posedge); for combinational ones
/// it is a pure function.
pub trait ReferenceModel {
    /// Resets internal state (called once before a test run).
    fn reset(&mut self);

    /// Computes expected outputs for this cycle's inputs.
    fn step(&mut self, inputs: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec>;
}

/// Blanket implementation so closures can serve as combinational models.
impl<F> ReferenceModel for F
where
    F: FnMut(&BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec>,
{
    fn reset(&mut self) {}

    fn step(&mut self, inputs: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec> {
        self(inputs)
    }
}

/// Whether the device under test is clocked, and by which signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clocking {
    /// Pure combinational: settle and compare.
    Combinational,
    /// Sequential: drive the named clock each cycle.
    Sequential {
        /// Clock port name (excluded from stimulus).
        clock: String,
    },
}

/// One output mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Cycle index at which the mismatch occurred.
    pub cycle: usize,
    /// Output port name.
    pub port: String,
    /// DUT value.
    pub got: LogicVec,
    /// Golden value.
    pub want: LogicVec,
}

/// Result of a testbench run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestResult {
    /// Whether every compared output matched on every cycle.
    pub passed: bool,
    /// Cycles executed.
    pub cycles: usize,
    /// Total mismatching (cycle, port) pairs.
    pub mismatch_count: usize,
    /// The first mismatch, for debugging and error messages.
    pub first_mismatch: Option<Mismatch>,
}

/// Errors from running a testbench.
#[derive(Debug, Clone)]
pub enum TestbenchError {
    /// The DUT failed to elaborate.
    Elab(crate::elab::ElabError),
    /// Simulation failed (combinational loop etc.).
    Sim(crate::interp::SimError),
}

impl std::fmt::Display for TestbenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestbenchError::Elab(e) => write!(f, "elaboration failed: {e}"),
            TestbenchError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for TestbenchError {}

impl From<crate::elab::ElabError> for TestbenchError {
    fn from(e: crate::elab::ElabError) -> Self {
        TestbenchError::Elab(e)
    }
}

impl From<crate::interp::SimError> for TestbenchError {
    fn from(e: crate::interp::SimError) -> Self {
        TestbenchError::Sim(e)
    }
}

/// Runs `model` against the DUT in `analysis` over `stimuli`.
///
/// Each stimulus entry maps input-port names to values for that cycle.
/// Output comparison uses case equality; an `x` produced by the DUT where
/// the golden model expects a defined value is a mismatch.
///
/// # Errors
///
/// Returns [`TestbenchError`] if the DUT fails to elaborate or simulate.
pub fn run_testbench(
    analysis: &Analysis,
    top: &str,
    model: &mut dyn ReferenceModel,
    stimuli: &[BTreeMap<String, LogicVec>],
    clocking: &Clocking,
) -> Result<TestResult, TestbenchError> {
    let _simulate_span = rtlfixer_obs::span(rtlfixer_obs::kind::SIMULATE);
    let mut sim = Simulator::new(analysis, top)?;
    sim.run_initial()?;
    model.reset();

    let output_ports: Vec<(String, u32)> = sim
        .design()
        .outputs
        .iter()
        .map(|p| (p.name.clone(), p.width))
        .collect();

    let mut mismatch_count = 0usize;
    let mut first_mismatch = None;
    for (cycle, inputs) in stimuli.iter().enumerate() {
        for (name, value) in inputs {
            // Unknown ports are skipped: the golden stimulus may mention
            // ports the (possibly wrong) DUT does not declare.
            let _ = sim.poke(name, value.clone());
        }
        match clocking {
            Clocking::Combinational => sim.settle()?,
            Clocking::Sequential { clock } => sim.clock_cycle(clock)?,
        }
        let expected = model.step(inputs);
        for (port, width) in &output_ports {
            let Some(want) = expected.get(port) else { continue };
            let got = sim.peek(port).unwrap_or_else(|| LogicVec::xs(*width));
            if got.eq_case(&want.resize(*width)).to_u64() != Some(1) {
                mismatch_count += 1;
                if first_mismatch.is_none() {
                    first_mismatch = Some(Mismatch {
                        cycle,
                        port: port.clone(),
                        got: got.clone(),
                        want: want.clone(),
                    });
                }
            }
        }
    }
    Ok(TestResult {
        passed: mismatch_count == 0,
        cycles: stimuli.len(),
        mismatch_count,
        first_mismatch,
    })
}

/// Runs one golden model per seed-lane against the same DUT, packing lanes
/// into the bit-parallel engine when the design is eligible.
///
/// `models[i]` is checked against `stimuli[i]`; the result at index `i` is
/// bit-identical to `run_testbench(analysis, top, models[i], &stimuli[i],
/// clocking)` run on its own — the lane engine peels any lane whose data
/// diverges from the pack back to an ordinary scalar simulator, and designs
/// (or lane groups) that are ineligible fall back to a plain scalar loop.
/// Lanes are chunked in groups of up to 64. Gated by `RTLFIXER_SIM_LANES`.
pub fn run_testbench_seeds(
    analysis: &Analysis,
    top: &str,
    models: &mut [Box<dyn ReferenceModel + '_>],
    stimuli: &[Vec<BTreeMap<String, LogicVec>>],
    clocking: &Clocking,
) -> Vec<Result<TestResult, TestbenchError>> {
    run_testbench_seeds_with_stats(analysis, top, models, stimuli, clocking).0
}

/// [`run_testbench_seeds`], additionally returning aggregated
/// [`LaneStats`] (packed occupancy, peels, bails) across every lane group
/// — the observability hook benchmarks and experiments report from.
pub fn run_testbench_seeds_with_stats(
    analysis: &Analysis,
    top: &str,
    models: &mut [Box<dyn ReferenceModel + '_>],
    stimuli: &[Vec<BTreeMap<String, LogicVec>>],
    clocking: &Clocking,
) -> (Vec<Result<TestResult, TestbenchError>>, LaneStats) {
    assert_eq!(models.len(), stimuli.len(), "one model per stimulus lane");
    let mut results = Vec::with_capacity(models.len());
    let mut stats = LaneStats::default();
    let mut start = 0usize;
    while start < models.len() {
        let end = (start + 64).min(models.len());
        let lanes = &stimuli[start..end];
        let models = &mut models[start..end];
        let (chunk, chunk_stats) = run_seed_chunk(analysis, top, models, lanes, clocking);
        results.extend(chunk);
        stats.absorb(&chunk_stats);
        start = end;
    }
    (results, stats)
}

/// One ≤64-lane chunk of [`run_testbench_seeds`]: packed when the design
/// and chunk qualify, otherwise a scalar loop.
fn run_seed_chunk(
    analysis: &Analysis,
    top: &str,
    models: &mut [Box<dyn ReferenceModel + '_>],
    stimuli: &[Vec<BTreeMap<String, LogicVec>>],
    clocking: &Clocking,
) -> (Vec<Result<TestResult, TestbenchError>>, LaneStats) {
    let k = models.len();
    let cycles = stimuli.first().map_or(0, Vec::len);
    let uniform = stimuli.iter().all(|s| s.len() == cycles);
    let runner = if uniform && cycles > 0 {
        crate::lanes::LaneRunner::try_new(analysis, top, k)
    } else {
        None
    };
    let Some(mut runner) = runner else {
        // Scalar fallback: per-lane solo runs (the packed path is defined
        // as bit-identical to exactly this). Every step still counts in
        // the stats so occupancy reflects work the packed engine skipped.
        let results = models
            .iter_mut()
            .zip(stimuli)
            .map(|(model, stim)| run_testbench(analysis, top, model.as_mut(), stim, clocking))
            .collect();
        let stats = LaneStats {
            lane_steps: stimuli.iter().map(|s| s.len() as u64).sum(),
            ..LaneStats::default()
        };
        return (results, stats);
    };
    let _simulate_span = rtlfixer_obs::span(rtlfixer_obs::kind::SIMULATE);
    for model in models.iter_mut() {
        model.reset();
    }
    let output_ports: Vec<(String, u32)> = runner
        .design()
        .outputs
        .iter()
        .map(|p| (p.name.clone(), p.width))
        .collect();
    let action = match clocking {
        Clocking::Combinational => crate::lanes::LaneAction::Settle,
        Clocking::Sequential { clock } => crate::lanes::LaneAction::Clock(clock),
    };
    // Per-lane accumulators; a lane that hits a SimError stops stepping
    // its model from that cycle on, like a solo run returning early.
    let mut mismatch_count = vec![0usize; k];
    let mut first_mismatch: Vec<Option<Mismatch>> = vec![None; k];
    let mut dead = vec![false; k];
    // Reused per-cycle scratch: one poke's per-lane values, and the
    // ragged-frame name union.
    let mut values: Vec<Option<&LogicVec>> = Vec::with_capacity(k);
    let mut names: Vec<&String> = Vec::new();
    let mut iters: Vec<std::collections::btree_map::Iter<'_, String, LogicVec>> =
        Vec::with_capacity(k);
    for cycle in 0..cycles {
        runner.begin_cycle();
        // Fast path: every lane's frame carries the same port set (the
        // common case — generated stimulus drives identical ports every
        // cycle), so the k sorted maps are walked in lockstep with no
        // union building and no per-name tree lookups. Raggedness is
        // detected on the fly: a key mismatch or early exhaustion falls
        // back to the union walk below.
        iters.clear();
        iters.extend(stimuli.iter().map(|s| s[cycle].iter()));
        let (first, rest) = iters.split_first_mut().expect("at least one lane");
        let lockstep = 'frame: loop {
            values.clear();
            let Some((name, v0)) = first.next() else {
                break 'frame rest.iter_mut().all(|it| it.next().is_none());
            };
            values.push(Some(v0));
            for it in rest.iter_mut() {
                match it.next() {
                    Some((n, v)) if n == name => values.push(Some(v)),
                    _ => break 'frame false,
                }
            }
            runner.poke(name, &values);
        };
        if !lockstep {
            // Ragged frames: poke the sorted union of names with per-lane
            // lookups. Any pokes the aborted lockstep walk already applied
            // are repeated here with identical values, which is a no-op.
            names.clear();
            names.extend(stimuli.iter().flat_map(|s| s[cycle].keys()));
            names.sort();
            names.dedup();
            for name in &names {
                values.clear();
                values.extend(stimuli.iter().map(|s| s[cycle].get(*name)));
                runner.poke(name, &values);
            }
        }
        runner.step(action);
        for (lane, model) in models.iter_mut().enumerate() {
            if dead[lane] {
                continue;
            }
            if runner.error(lane).is_some() {
                dead[lane] = true;
                continue;
            }
            let expected = model.step(&stimuli[lane][cycle]);
            for (port, width) in &output_ports {
                let Some(want) = expected.get(port) else { continue };
                let got = runner.peek(port, lane).unwrap_or_else(|| LogicVec::xs(*width));
                if got.eq_case(&want.resize(*width)).to_u64() != Some(1) {
                    mismatch_count[lane] += 1;
                    if first_mismatch[lane].is_none() {
                        first_mismatch[lane] = Some(Mismatch {
                            cycle,
                            port: port.clone(),
                            got: got.clone(),
                            want: want.clone(),
                        });
                    }
                }
            }
        }
    }
    let stats = runner.stats();
    rtlfixer_obs::counter_add("sim.lane_steps", stats.lane_steps);
    rtlfixer_obs::counter_add("sim.lane_packed_steps", stats.packed_lane_steps);
    rtlfixer_obs::counter_add("sim.lane_peels", stats.peels);
    rtlfixer_obs::counter_add("sim.lane_bails", stats.bails);
    let results = (0..k)
        .map(|lane| match runner.error(lane) {
            Some(e) => Err(TestbenchError::Sim(e.clone())),
            None => Ok(TestResult {
                passed: mismatch_count[lane] == 0,
                cycles,
                mismatch_count: mismatch_count[lane],
                first_mismatch: first_mismatch[lane].clone(),
            }),
        })
        .collect();
    (results, stats)
}

/// A tiny deterministic PRNG (xorshift64*) for stimulus generation, so the
/// simulator crate stays dependency-free.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Xorshift { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A random [`LogicVec`] of `width` bits (no x bits).
    pub fn next_vec(&mut self, width: u32) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        let mut i = 0;
        while i < width {
            let chunk = self.next_u64();
            for k in 0..64.min(width - i) {
                if (chunk >> k) & 1 == 1 {
                    v.set_bit(i + k, crate::value::Bit::One);
                }
            }
            i += 64;
        }
        v
    }
}

/// Generates `cycles` of random stimulus for the given `(name, width)` input
/// ports, deterministically from `seed`.
pub fn random_stimuli(
    ports: &[(String, u32)],
    cycles: usize,
    seed: u64,
) -> Vec<BTreeMap<String, LogicVec>> {
    let mut rng = Xorshift::new(seed);
    (0..cycles)
        .map(|_| {
            ports
                .iter()
                .map(|(name, width)| (name.clone(), rng.next_vec(*width)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;

    fn inputs(pairs: &[(&str, u32, u64)]) -> BTreeMap<String, LogicVec> {
        pairs
            .iter()
            .map(|(n, w, v)| (n.to_string(), LogicVec::from_u64(*w, *v)))
            .collect()
    }

    #[test]
    fn correct_inverter_passes() {
        let analysis =
            compile("module inv(input [3:0] a, output [3:0] y); assign y = ~a; endmodule");
        let mut model = |ins: &BTreeMap<String, LogicVec>| {
            let a = ins["a"].clone();
            BTreeMap::from([("y".to_owned(), a.not())])
        };
        let stimuli: Vec<_> = (0..16).map(|i| inputs(&[("a", 4, i)])).collect();
        let result =
            run_testbench(&analysis, "inv", &mut model, &stimuli, &Clocking::Combinational)
                .unwrap();
        assert!(result.passed);
        assert_eq!(result.cycles, 16);
        assert_eq!(result.mismatch_count, 0);
    }

    #[test]
    fn wrong_logic_fails_with_mismatch_details() {
        // DUT computes AND, golden wants OR.
        let analysis = compile(
            "module orr(input a, input b, output y); assign y = a & b; endmodule",
        );
        let mut model = |ins: &BTreeMap<String, LogicVec>| {
            let y = ins["a"].or(&ins["b"]);
            BTreeMap::from([("y".to_owned(), y)])
        };
        let stimuli =
            vec![inputs(&[("a", 1, 0), ("b", 1, 1)]), inputs(&[("a", 1, 1), ("b", 1, 1)])];
        let result =
            run_testbench(&analysis, "orr", &mut model, &stimuli, &Clocking::Combinational)
                .unwrap();
        assert!(!result.passed);
        assert_eq!(result.mismatch_count, 1);
        let mm = result.first_mismatch.unwrap();
        assert_eq!(mm.cycle, 0);
        assert_eq!(mm.port, "y");
        assert_eq!(mm.got.to_u64(), Some(0));
        assert_eq!(mm.want.to_u64(), Some(1));
    }

    #[test]
    fn sequential_counter_against_golden() {
        let analysis = compile(
            "module ctr(input clk, input reset, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (reset) q <= 0; else q <= q + 1;\n\
             end\nendmodule",
        );
        struct Golden {
            count: u64,
        }
        impl ReferenceModel for Golden {
            fn reset(&mut self) {
                self.count = 0;
            }
            fn step(
                &mut self,
                inputs: &BTreeMap<String, LogicVec>,
            ) -> BTreeMap<String, LogicVec> {
                if inputs["reset"].to_u64() == Some(1) {
                    self.count = 0;
                } else {
                    self.count = (self.count + 1) % 256;
                }
                BTreeMap::from([("q".to_owned(), LogicVec::from_u64(8, self.count))])
            }
        }
        let mut stimuli = vec![inputs(&[("reset", 1, 1)])];
        for _ in 0..10 {
            stimuli.push(inputs(&[("reset", 1, 0)]));
        }
        let mut golden = Golden { count: 0 };
        let result = run_testbench(
            &analysis,
            "ctr",
            &mut golden,
            &stimuli,
            &Clocking::Sequential { clock: "clk".into() },
        )
        .unwrap();
        assert!(result.passed, "{:?}", result.first_mismatch);
    }

    #[test]
    fn stimulus_is_deterministic() {
        let ports = vec![("a".to_owned(), 8), ("b".to_owned(), 16)];
        let s1 = random_stimuli(&ports, 20, 7);
        let s2 = random_stimuli(&ports, 20, 7);
        assert_eq!(s1, s2);
        let s3 = random_stimuli(&ports, 20, 8);
        assert_ne!(s1, s3);
    }

    #[test]
    fn xorshift_wide_vectors() {
        let mut rng = Xorshift::new(1);
        let v = rng.next_vec(100);
        assert_eq!(v.width(), 100);
        assert!(!v.has_x());
    }

    #[test]
    fn reset_state_matches_fresh_simulator() {
        // The elaborate-once fast path: one shared design, per-run state
        // reset must reproduce a fresh simulator's results exactly.
        let analysis = compile(
            "module ctr2(input clk, input reset, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (reset) q <= 0; else q <= q + 3;\n\
             end\nendmodule",
        );
        let design = crate::elab::elaborate_shared(&analysis, "ctr2").expect("elaborates");
        let drive = |sim: &mut crate::interp::Simulator| {
            sim.run_initial().expect("init");
            sim.poke("reset", LogicVec::from_u64(1, 1)).expect("port");
            sim.clock_cycle("clk").expect("cycle");
            sim.poke("reset", LogicVec::from_u64(1, 0)).expect("port");
            for _ in 0..5 {
                sim.clock_cycle("clk").expect("cycle");
            }
            sim.peek("q").expect("q").to_u64()
        };
        let mut reused = crate::interp::Simulator::from_design(design.clone());
        let first = drive(&mut reused);
        reused.reset_state();
        let second = drive(&mut reused);
        let mut fresh = crate::interp::Simulator::from_design(design);
        let from_fresh = drive(&mut fresh);
        assert_eq!(first, Some(15));
        assert_eq!(first, second, "reset_state must restore power-on state");
        assert_eq!(first, from_fresh);
    }

    #[test]
    fn broken_dut_reports_elab_error() {
        let analysis = compile("module m(output y); assign y = clk; endmodule");
        let mut model =
            |_: &BTreeMap<String, LogicVec>| BTreeMap::<String, LogicVec>::new();
        let result =
            run_testbench(&analysis, "m", &mut model, &[], &Clocking::Combinational);
        assert!(matches!(result, Err(TestbenchError::Elab(_))));
    }
}
