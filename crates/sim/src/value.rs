//! Arbitrary-width 4-state logic vectors.
//!
//! [`LogicVec`] stores a value of `width` bits in 64-bit limbs, with a
//! parallel *unknown* mask: a bit whose mask bit is set holds `x` (or `z`,
//! which this simulator folds into `x` except for case-equality wildcards,
//! which are tracked per-literal by the interpreter). Benchmark designs go
//! up to 256 bits (`conwaylife`), so widths are unbounded.

use std::fmt;

/// One 4-state bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
}

/// An arbitrary-width 4-state logic vector.
///
/// # Examples
///
/// ```
/// use rtlfixer_sim::value::LogicVec;
///
/// let a = LogicVec::from_u64(8, 0b1010_0110);
/// assert_eq!(a.bit(1), rtlfixer_sim::value::Bit::One);
/// assert_eq!(a.to_u64(), Some(0b1010_0110));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    /// Value limbs, LSB first. Bits ≥ `width` are always zero.
    val: Vec<u64>,
    /// Unknown mask limbs; set bit = x.
    unk: Vec<u64>,
}

fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl LogicVec {
    /// All-zero vector of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zeros(width: u32) -> Self {
        assert!(width > 0, "zero-width vector");
        LogicVec { width, val: vec![0; limbs_for(width)], unk: vec![0; limbs_for(width)] }
    }

    /// All-`x` vector of `width` bits.
    pub fn xs(width: u32) -> Self {
        let mut v = Self::zeros(width);
        for limb in &mut v.unk {
            *limb = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Vector holding the low `width` bits of `value`.
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut v = Self::zeros(width);
        v.val[0] = value;
        v.normalize();
        v
    }

    /// Vector holding the low `width` bits of `value` (u128 convenience).
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut v = Self::zeros(width);
        v.val[0] = value as u64;
        if v.val.len() > 1 {
            v.val[1] = (value >> 64) as u64;
        }
        v.normalize();
        v
    }

    /// Builds a vector from bits, LSB first.
    pub fn from_bits<I: IntoIterator<Item = Bit>>(bits: I) -> Self {
        let bits: Vec<Bit> = bits.into_iter().collect();
        assert!(!bits.is_empty(), "zero-width vector");
        let mut v = Self::zeros(bits.len() as u32);
        for (i, bit) in bits.iter().enumerate() {
            match bit {
                Bit::Zero => {}
                Bit::One => v.val[i / 64] |= 1 << (i % 64),
                Bit::X => v.unk[i / 64] |= 1 << (i % 64),
            }
        }
        v
    }

    /// Whether sign extension applies in [`LogicVec::resize_signed`].
    fn msb_bit(&self) -> Bit {
        self.bit(self.width - 1)
    }

    /// Parses digit text in `radix` (2, 8, 10 or 16), with `x`/`z`/`?`
    /// digits mapping whole digit positions to unknown. `width` clips or
    /// zero-extends.
    pub fn from_digits(width: u32, digits: &str, radix: u32) -> Self {
        if radix == 10 {
            // x/z in decimal are all-or-nothing.
            if digits.chars().any(|c| matches!(c, 'x' | 'z' | '?')) {
                return Self::xs(width);
            }
            let mut acc = Self::zeros(width.max(64));
            for c in digits.chars() {
                let d = c.to_digit(10).unwrap_or(0) as u64;
                acc = acc.mul_small(10).add_small(d);
            }
            return acc.resize(width);
        }
        let bits_per = match radix {
            2 => 1,
            8 => 3,
            16 => 4,
            _ => 1,
        };
        let mut bits: Vec<Bit> = Vec::new();
        for c in digits.chars().rev() {
            if matches!(c, 'x' | 'z' | '?') {
                for _ in 0..bits_per {
                    bits.push(Bit::X);
                }
            } else {
                let d = c.to_digit(radix).unwrap_or(0);
                for k in 0..bits_per {
                    bits.push(if (d >> k) & 1 == 1 { Bit::One } else { Bit::Zero });
                }
            }
        }
        if bits.is_empty() {
            bits.push(Bit::Zero);
        }
        let parsed = Self::from_bits(bits);
        parsed.resize(width)
    }

    fn mul_small(&self, m: u64) -> Self {
        let mut out = Self::zeros(self.width);
        let mut carry: u128 = 0;
        for i in 0..self.val.len() {
            let prod = self.val[i] as u128 * m as u128 + carry;
            out.val[i] = prod as u64;
            carry = prod >> 64;
        }
        out.unk = self.unk.clone();
        out.normalize();
        out
    }

    fn add_small(&self, a: u64) -> Self {
        let mut out = self.clone();
        let mut carry = a as u128;
        for limb in &mut out.val {
            let sum = *limb as u128 + carry;
            *limb = sum as u64;
            carry = sum >> 64;
            if carry == 0 {
                break;
            }
        }
        out.normalize();
        out
    }

    /// Bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether any bit is unknown.
    pub fn has_x(&self) -> bool {
        self.unk.iter().any(|&l| l != 0)
    }

    /// The value as `u64` if it fits and has no unknown bits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_x() {
            return None;
        }
        if self.val.iter().skip(1).any(|&l| l != 0) {
            return None;
        }
        Some(self.val[0])
    }

    /// The value as `u128` if it fits and has no unknown bits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.has_x() {
            return None;
        }
        if self.val.iter().skip(2).any(|&l| l != 0) {
            return None;
        }
        let lo = self.val[0] as u128;
        let hi = self.val.get(1).copied().unwrap_or(0) as u128;
        Some(lo | (hi << 64))
    }

    /// The bit at `idx` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    pub fn bit(&self, idx: u32) -> Bit {
        assert!(idx < self.width, "bit {idx} out of range for width {}", self.width);
        let (limb, off) = (idx as usize / 64, idx % 64);
        if (self.unk[limb] >> off) & 1 == 1 {
            Bit::X
        } else if (self.val[limb] >> off) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Sets the bit at `idx` in place.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    pub fn set_bit(&mut self, idx: u32, bit: Bit) {
        assert!(idx < self.width, "bit {idx} out of range for width {}", self.width);
        let (limb, off) = (idx as usize / 64, idx % 64);
        self.val[limb] &= !(1 << off);
        self.unk[limb] &= !(1 << off);
        match bit {
            Bit::Zero => {}
            Bit::One => self.val[limb] |= 1 << off,
            Bit::X => self.unk[limb] |= 1 << off,
        }
    }

    /// Returns a copy with the bit at `idx` set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    pub fn with_bit(&self, idx: u32, bit: Bit) -> Self {
        let mut out = self.clone();
        out.set_bit(idx, bit);
        out
    }

    /// Zero-extends or truncates to `new_width`.
    pub fn resize(&self, new_width: u32) -> Self {
        if new_width == self.width {
            return self.clone();
        }
        let mut out = Self::zeros(new_width);
        let limbs = out.val.len().min(self.val.len());
        out.val[..limbs].copy_from_slice(&self.val[..limbs]);
        out.unk[..limbs].copy_from_slice(&self.unk[..limbs]);
        out.normalize();
        out
    }

    /// Sign-extends (replicating the MSB) or truncates to `new_width`.
    pub fn resize_signed(&self, new_width: u32) -> Self {
        if new_width <= self.width {
            return self.resize(new_width);
        }
        let msb = self.msb_bit();
        let mut out = self.resize(new_width);
        for i in self.width..new_width {
            out.set_bit(i, msb);
        }
        out
    }

    /// Extracts bits `[hi:lo]` (inclusive) as a new vector.
    ///
    /// Out-of-range positions read as `x`, matching Verilog semantics for
    /// out-of-bounds part selects.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "inverted slice [{hi}:{lo}]");
        let width = hi - lo + 1;
        let mut out = Self::zeros(width);
        for i in 0..width {
            let src = lo + i;
            let bit = if src < self.width { self.bit(src) } else { Bit::X };
            out.set_bit(i, bit);
        }
        out
    }

    /// Concatenates `self` (more significant) with `low` (less significant).
    pub fn concat(&self, low: &LogicVec) -> Self {
        let width = self.width + low.width;
        let mut out = Self::zeros(width);
        for i in 0..low.width {
            out.set_bit(i, low.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(low.width + i, self.bit(i));
        }
        out
    }

    /// Repeats `self` `count` times (`{count{self}}`).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: u32) -> Self {
        assert!(count > 0, "zero replication");
        let mut out = self.clone();
        for _ in 1..count {
            out = out.concat(self);
        }
        out
    }

    fn normalize(&mut self) {
        let extra = (self.val.len() as u32) * 64 - self.width;
        if extra > 0 {
            let mask = u64::MAX >> extra;
            if let Some(last) = self.val.last_mut() {
                *last &= mask;
            }
            if let Some(last) = self.unk.last_mut() {
                *last &= mask;
            }
        }
    }

    fn bitwise(&self, other: &LogicVec, f: impl Fn(Bit, Bit) -> Bit) -> Self {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        LogicVec::from_bits((0..width).map(|i| f(a.bit(i), b.bit(i))))
    }

    /// Bitwise AND with 4-state semantics (`0 & x = 0`).
    pub fn and(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |a, b| match (a, b) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        })
    }

    /// Bitwise OR with 4-state semantics (`1 | x = 1`).
    pub fn or(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |a, b| match (a, b) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        })
    }

    /// Bitwise XOR (any x poisons the bit).
    pub fn xor(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |a, b| match (a, b) {
            (Bit::X, _) | (_, Bit::X) => Bit::X,
            (a, b) => {
                if a != b {
                    Bit::One
                } else {
                    Bit::Zero
                }
            }
        })
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        LogicVec::from_bits((0..self.width).map(|i| match self.bit(i) {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X => Bit::X,
        }))
    }

    /// Addition, modulo `2^width` of the wider operand. Any x → all x.
    pub fn add(&self, other: &LogicVec) -> Self {
        let width = self.width.max(other.width);
        if self.has_x() || other.has_x() {
            return Self::xs(width);
        }
        let a = self.resize(width);
        let b = other.resize(width);
        let mut out = Self::zeros(width);
        let mut carry = 0u128;
        for i in 0..a.val.len() {
            let sum = a.val[i] as u128 + b.val[i] as u128 + carry;
            out.val[i] = sum as u64;
            carry = sum >> 64;
        }
        out.normalize();
        out
    }

    /// Subtraction (two's complement), modulo `2^width`. Any x → all x.
    pub fn sub(&self, other: &LogicVec) -> Self {
        let width = self.width.max(other.width);
        if self.has_x() || other.has_x() {
            return Self::xs(width);
        }
        let b_not = other.resize(width).not();
        self.resize(width).add(&b_not).add(&LogicVec::from_u64(width, 1)).resize(width)
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Self {
        LogicVec::zeros(self.width).sub(self)
    }

    /// Unsigned comparison: `self < other` as a 1-bit vector; x-poisoned.
    pub fn lt(&self, other: &LogicVec) -> Self {
        if self.has_x() || other.has_x() {
            return Self::xs(1);
        }
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        for i in (0..a.val.len()).rev() {
            if a.val[i] != b.val[i] {
                return Self::from_u64(1, (a.val[i] < b.val[i]) as u64);
            }
        }
        Self::from_u64(1, 0)
    }

    /// Logical equality (`==`): x-poisoned.
    pub fn eq_logic(&self, other: &LogicVec) -> Self {
        if self.has_x() || other.has_x() {
            return Self::xs(1);
        }
        let width = self.width.max(other.width);
        Self::from_u64(1, (self.resize(width) == other.resize(width)) as u64)
    }

    /// Case equality (`===`): x compares as a literal value.
    pub fn eq_case(&self, other: &LogicVec) -> Self {
        let width = self.width.max(other.width);
        Self::from_u64(1, (self.resize(width) == other.resize(width)) as u64)
    }

    /// Reduction AND/OR/XOR. Returns a 1-bit vector.
    pub fn reduce(&self, op: ReduceOp) -> Self {
        let mut acc: Option<Bit> = None;
        for i in 0..self.width {
            let b = self.bit(i);
            acc = Some(match (acc, op) {
                (None, _) => b,
                (Some(a), ReduceOp::And) => match (a, b) {
                    (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
                    (Bit::One, Bit::One) => Bit::One,
                    _ => Bit::X,
                },
                (Some(a), ReduceOp::Or) => match (a, b) {
                    (Bit::One, _) | (_, Bit::One) => Bit::One,
                    (Bit::Zero, Bit::Zero) => Bit::Zero,
                    _ => Bit::X,
                },
                (Some(a), ReduceOp::Xor) => match (a, b) {
                    (Bit::X, _) | (_, Bit::X) => Bit::X,
                    (a, b) => {
                        if a != b {
                            Bit::One
                        } else {
                            Bit::Zero
                        }
                    }
                },
            });
        }
        LogicVec::from_bits([acc.unwrap_or(Bit::Zero)])
    }

    /// Logical shift left by `n`.
    pub fn shl(&self, n: u32) -> Self {
        let mut out = Self::zeros(self.width);
        for i in n..self.width {
            out.set_bit(i, self.bit(i - n));
        }
        out
    }

    /// Logical shift right by `n`.
    pub fn shr(&self, n: u32) -> Self {
        let mut out = Self::zeros(self.width);
        for i in 0..self.width.saturating_sub(n) {
            out.set_bit(i, self.bit(i + n));
        }
        out
    }

    /// Arithmetic shift right by `n`, replicating the MSB.
    pub fn ashr(&self, n: u32) -> Self {
        let msb = self.bit(self.width - 1);
        let mut out = self.shr(n);
        let start = self.width.saturating_sub(n);
        for i in start..self.width {
            out.set_bit(i, msb);
        }
        out
    }

    /// Whether the vector is "truthy" (any bit is 1). `None` if no bit is 1
    /// but some are x.
    pub fn truthy(&self) -> Option<bool> {
        let any_one = (0..self.width).any(|i| self.bit(i) == Bit::One);
        if any_one {
            return Some(true);
        }
        if self.has_x() {
            None
        } else {
            Some(false)
        }
    }

    /// Wildcard match for `casez`/`casex`: positions where `label` has an x
    /// (which is how `z`/`?` digits parse) are ignored; for `casex`, x bits
    /// in the scrutinee are ignored too.
    pub fn matches_wildcard(&self, label: &LogicVec, scrutinee_wild: bool) -> bool {
        let width = self.width.max(label.width);
        let a = self.resize(width);
        let b = label.resize(width);
        for i in 0..width {
            let (sb, lb) = (a.bit(i), b.bit(i));
            if lb == Bit::X {
                continue;
            }
            if scrutinee_wild && sb == Bit::X {
                continue;
            }
            if sb != lb {
                return false;
            }
        }
        true
    }
}

/// Reduction operator selector for [`LogicVec::reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `&v`
    And,
    /// `|v`
    Or,
    /// `^v`
    Xor,
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            match self.bit(i) {
                Bit::Zero => write!(f, "0")?,
                Bit::One => write!(f, "1")?,
                Bit::X => write!(f, "x")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        let v = LogicVec::from_u64(16, 0xBEEF);
        assert_eq!(v.to_u64(), Some(0xBEEF));
        assert_eq!(v.width(), 16);
        assert!(!v.has_x());
    }

    #[test]
    fn truncation_on_construction() {
        let v = LogicVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn wide_vectors() {
        let v = LogicVec::from_u128(100, 1u128 << 99);
        assert_eq!(v.bit(99), Bit::One);
        assert_eq!(v.bit(98), Bit::Zero);
        assert_eq!(v.to_u64(), None); // too wide
        assert_eq!(v.to_u128(), Some(1u128 << 99));
    }

    #[test]
    fn from_digits_bases() {
        assert_eq!(LogicVec::from_digits(8, "ff", 16).to_u64(), Some(255));
        assert_eq!(LogicVec::from_digits(8, "1010", 2).to_u64(), Some(10));
        assert_eq!(LogicVec::from_digits(8, "17", 8).to_u64(), Some(15));
        assert_eq!(LogicVec::from_digits(8, "200", 10).to_u64(), Some(200));
        assert_eq!(LogicVec::from_digits(32, "4000000000", 10).to_u64(), Some(4_000_000_000));
    }

    #[test]
    fn from_digits_with_x() {
        let v = LogicVec::from_digits(4, "1x0z", 2);
        assert_eq!(v.bit(3), Bit::One);
        assert_eq!(v.bit(2), Bit::X);
        assert_eq!(v.bit(1), Bit::Zero);
        assert_eq!(v.bit(0), Bit::X);
        assert!(v.has_x());
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn hex_x_covers_four_bits() {
        let v = LogicVec::from_digits(8, "fx", 16);
        assert_eq!(v.slice(7, 4).to_u64(), Some(0xF));
        assert!(v.slice(3, 0).has_x());
    }

    #[test]
    fn bitwise_truth_tables() {
        let x = LogicVec::xs(1);
        let one = LogicVec::from_u64(1, 1);
        let zero = LogicVec::from_u64(1, 0);
        assert_eq!(zero.and(&x), zero); // 0 & x = 0
        assert_eq!(one.or(&x), one); // 1 | x = 1
        assert!(one.and(&x).has_x()); // 1 & x = x
        assert!(zero.or(&x).has_x()); // 0 | x = x
        assert!(one.xor(&x).has_x());
        assert!(x.not().has_x());
    }

    #[test]
    fn add_sub_wraparound() {
        let a = LogicVec::from_u64(8, 250);
        let b = LogicVec::from_u64(8, 10);
        assert_eq!(a.add(&b).to_u64(), Some(4)); // wraps mod 256
        assert_eq!(b.sub(&a).to_u64(), Some(16)); // 10 - 250 mod 256
        assert_eq!(a.sub(&b).to_u64(), Some(240));
    }

    #[test]
    fn add_across_limbs() {
        let a = LogicVec::from_u128(100, u64::MAX as u128);
        let b = LogicVec::from_u64(100, 1);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn neg_is_twos_complement() {
        let a = LogicVec::from_u64(8, 1);
        assert_eq!(a.neg().to_u64(), Some(255));
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 9);
        assert_eq!(a.lt(&b).to_u64(), Some(1));
        assert_eq!(b.lt(&a).to_u64(), Some(0));
        assert_eq!(a.eq_logic(&a.clone()).to_u64(), Some(1));
        assert_eq!(a.eq_logic(&b).to_u64(), Some(0));
    }

    #[test]
    fn comparison_with_x_is_x() {
        let a = LogicVec::from_u64(4, 5);
        let x = LogicVec::xs(4);
        assert!(a.lt(&x).has_x());
        assert!(a.eq_logic(&x).has_x());
        // but case equality is exact
        assert_eq!(x.eq_case(&LogicVec::xs(4)).to_u64(), Some(1));
        assert_eq!(a.eq_case(&x).to_u64(), Some(0));
    }

    #[test]
    fn slices_and_concat() {
        let v = LogicVec::from_u64(8, 0b1100_0101);
        assert_eq!(v.slice(3, 0).to_u64(), Some(0b0101));
        assert_eq!(v.slice(7, 4).to_u64(), Some(0b1100));
        let joined = v.slice(7, 4).concat(&v.slice(3, 0));
        assert_eq!(joined, v);
    }

    #[test]
    fn out_of_range_slice_reads_x() {
        let v = LogicVec::from_u64(4, 0b1111);
        let s = v.slice(5, 3);
        assert_eq!(s.bit(0), Bit::One);
        assert_eq!(s.bit(1), Bit::X);
        assert_eq!(s.bit(2), Bit::X);
    }

    #[test]
    fn replicate_width_and_pattern() {
        let v = LogicVec::from_u64(2, 0b10);
        let r = v.replicate(3);
        assert_eq!(r.width(), 6);
        assert_eq!(r.to_u64(), Some(0b101010));
    }

    #[test]
    fn reductions() {
        let v = LogicVec::from_u64(4, 0b1111);
        assert_eq!(v.reduce(ReduceOp::And).to_u64(), Some(1));
        assert_eq!(v.reduce(ReduceOp::Xor).to_u64(), Some(0));
        let w = LogicVec::from_u64(4, 0b0111);
        assert_eq!(w.reduce(ReduceOp::And).to_u64(), Some(0));
        assert_eq!(w.reduce(ReduceOp::Or).to_u64(), Some(1));
        assert_eq!(w.reduce(ReduceOp::Xor).to_u64(), Some(1));
    }

    #[test]
    fn reduction_short_circuits_x() {
        // 0 & x is still 0; 1 | x is still 1.
        let v = LogicVec::from_bits([Bit::Zero, Bit::X]);
        assert_eq!(v.reduce(ReduceOp::And).to_u64(), Some(0));
        let w = LogicVec::from_bits([Bit::One, Bit::X]);
        assert_eq!(w.reduce(ReduceOp::Or).to_u64(), Some(1));
        assert!(w.reduce(ReduceOp::Xor).has_x());
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b0001_1000);
        assert_eq!(v.shl(2).to_u64(), Some(0b0110_0000));
        assert_eq!(v.shr(3).to_u64(), Some(0b0000_0011));
        let s = LogicVec::from_u64(4, 0b1000);
        assert_eq!(s.ashr(2).to_u64(), Some(0b1110));
        assert_eq!(s.shr(2).to_u64(), Some(0b0010));
        assert_eq!(v.shl(64).to_u64(), Some(0));
    }

    #[test]
    fn resize_signed_extends_msb() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.resize_signed(8).to_u64(), Some(0b1111_1010));
        assert_eq!(v.resize(8).to_u64(), Some(0b0000_1010));
        let p = LogicVec::from_u64(4, 0b0010);
        assert_eq!(p.resize_signed(8).to_u64(), Some(0b0000_0010));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::from_u64(4, 0).truthy(), Some(false));
        assert_eq!(LogicVec::from_u64(4, 2).truthy(), Some(true));
        assert_eq!(LogicVec::xs(4).truthy(), None);
        // A 1 anywhere wins even with x elsewhere.
        let v = LogicVec::from_bits([Bit::One, Bit::X]);
        assert_eq!(v.truthy(), Some(true));
    }

    #[test]
    fn wildcard_matching_casez() {
        // Label 4'b1?0? ignores positions with x (z/? parse as x).
        let label = LogicVec::from_digits(4, "1z0z", 2);
        assert!(LogicVec::from_u64(4, 0b1000).matches_wildcard(&label, false));
        assert!(LogicVec::from_u64(4, 0b1101).matches_wildcard(&label, false));
        assert!(!LogicVec::from_u64(4, 0b0000).matches_wildcard(&label, false));
        assert!(!LogicVec::from_u64(4, 0b1110).matches_wildcard(&label, false));
    }

    #[test]
    fn display_format() {
        let v = LogicVec::from_digits(4, "1x01", 2);
        assert_eq!(v.to_string(), "4'b1x01");
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = LogicVec::zeros(0);
    }

    #[test]
    fn limb_allocation_at_width_edges() {
        // Widths straddling the 64-bit limb boundaries: 1, 63, 64, 65, 256.
        for (width, limbs) in [(1u32, 1usize), (63, 1), (64, 1), (65, 2), (256, 4)] {
            assert_eq!(limbs_for(width), limbs, "width {width}");
        }
    }

    #[test]
    fn width_edge_round_trips() {
        for width in [1u32, 63, 64, 65, 256] {
            // Zeros: all bits readable, none set, no x.
            let zeros = LogicVec::zeros(width);
            assert_eq!(zeros.width(), width);
            assert!(!zeros.has_x(), "width {width}");
            assert_eq!(zeros.bit(width - 1), Bit::Zero, "width {width}");

            // The top bit sets and reads back; lower bits stay clear.
            let mut top = LogicVec::zeros(width);
            top.set_bit(width - 1, Bit::One);
            assert_eq!(top.bit(width - 1), Bit::One, "width {width}");
            if width > 1 {
                assert_eq!(top.bit(width - 2), Bit::Zero, "width {width}");
            }

            // NOT flips every bit including across limb boundaries.
            let inverted = top.not();
            assert_eq!(inverted.bit(width - 1), Bit::Zero, "width {width}");
            if width > 1 {
                assert_eq!(inverted.bit(0), Bit::One, "width {width}");
            }

            // All-x round trip.
            let xs = LogicVec::xs(width);
            assert!(xs.has_x(), "width {width}");
            assert_eq!(xs.bit(width - 1), Bit::X, "width {width}");
            assert_eq!(xs.to_u64(), None, "width {width}");
        }
        // to_u64 works exactly up to 64 bits of value.
        assert_eq!(LogicVec::from_u64(63, u64::MAX >> 1).to_u64(), Some(u64::MAX >> 1));
        assert_eq!(LogicVec::from_u64(64, u64::MAX).to_u64(), Some(u64::MAX));
        let mut wide = LogicVec::zeros(65);
        wide.set_bit(64, Bit::One);
        assert_eq!(wide.bit(64), Bit::One);
        assert_eq!(wide.bit(63), Bit::Zero);
    }
}
