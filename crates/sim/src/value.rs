//! Arbitrary-width 4-state logic vectors.
//!
//! [`LogicVec`] stores a value of `width` bits in 64-bit limbs, with a
//! parallel *unknown* mask: a bit whose mask bit is set holds `x` (or `z`,
//! which this simulator folds into `x` except for case-equality wildcards,
//! which are tracked per-literal by the interpreter). Benchmark designs go
//! up to 256 bits (`conwaylife`), so widths are unbounded — but the
//! overwhelming majority are 64 bits or narrower, so those live in a
//! single inline limb pair ([`Repr::Small`]) and never touch the heap.
//!
//! Two representation invariants hold everywhere (constructors normalise):
//!
//! * `width <= 64` ⇔ [`Repr::Small`], so the derived `PartialEq`/`Hash`
//!   never compare across representations;
//! * `val & unk == 0` and bits ≥ `width` are clear in both planes, so equal
//!   logical values are limb-identical.

use std::fmt;

/// One 4-state bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
}

/// Limb storage: inline for widths ≤ 64, boxed limbs beyond.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small { val: u64, unk: u64 },
    Wide { val: Box<[u64]>, unk: Box<[u64]> },
}

/// An arbitrary-width 4-state logic vector.
///
/// # Examples
///
/// ```
/// use rtlfixer_sim::value::LogicVec;
///
/// let a = LogicVec::from_u64(8, 0b1010_0110);
/// assert_eq!(a.bit(1), rtlfixer_sim::value::Bit::One);
/// assert_eq!(a.to_u64(), Some(0b1010_0110));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    repr: Repr,
}

fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Mask for the occupied bits of the top limb of a `width`-bit vector.
fn top_mask(width: u32) -> u64 {
    u64::MAX >> ((limbs_for(width) as u32) * 64 - width)
}

impl LogicVec {
    /// All-zero vector of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn zeros(width: u32) -> Self {
        assert!(width > 0, "zero-width vector");
        let repr = if width <= 64 {
            Repr::Small { val: 0, unk: 0 }
        } else {
            let n = limbs_for(width);
            Repr::Wide { val: vec![0; n].into(), unk: vec![0; n].into() }
        };
        LogicVec { width, repr }
    }

    /// All-`x` vector of `width` bits.
    pub fn xs(width: u32) -> Self {
        let mut v = Self::zeros(width);
        for limb in v.planes_mut().1 {
            *limb = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Vector holding the low `width` bits of `value`.
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut v = Self::zeros(width);
        v.planes_mut().0[0] = value;
        v.normalize();
        v
    }

    /// Vector holding the low `width` bits of `value` (u128 convenience).
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut v = Self::zeros(width);
        let val = v.planes_mut().0;
        val[0] = value as u64;
        if val.len() > 1 {
            val[1] = (value >> 64) as u64;
        }
        v.normalize();
        v
    }

    /// Builds a vector from bits, LSB first.
    pub fn from_bits<I: IntoIterator<Item = Bit>>(bits: I) -> Self {
        let bits: Vec<Bit> = bits.into_iter().collect();
        assert!(!bits.is_empty(), "zero-width vector");
        let mut v = Self::zeros(bits.len() as u32);
        let (val, unk) = v.planes_mut();
        for (i, bit) in bits.iter().enumerate() {
            match bit {
                Bit::Zero => {}
                Bit::One => val[i / 64] |= 1 << (i % 64),
                Bit::X => unk[i / 64] |= 1 << (i % 64),
            }
        }
        v
    }

    /// Value limbs, LSB first. Bits ≥ `width` are always zero.
    #[inline]
    fn val(&self) -> &[u64] {
        match &self.repr {
            Repr::Small { val, .. } => std::slice::from_ref(val),
            Repr::Wide { val, .. } => val,
        }
    }

    /// Unknown-mask limbs; set bit = x.
    #[inline]
    fn unk(&self) -> &[u64] {
        match &self.repr {
            Repr::Small { unk, .. } => std::slice::from_ref(unk),
            Repr::Wide { unk, .. } => unk,
        }
    }

    /// Both limb planes, mutably.
    #[inline]
    fn planes_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        match &mut self.repr {
            Repr::Small { val, unk } => {
                (std::slice::from_mut(val), std::slice::from_mut(unk))
            }
            Repr::Wide { val, unk } => (val, unk),
        }
    }

    /// Whether sign extension applies in [`LogicVec::resize_signed`].
    fn msb_bit(&self) -> Bit {
        self.bit(self.width - 1)
    }

    /// Parses digit text in `radix` (2, 8, 10 or 16), with `x`/`z`/`?`
    /// digits mapping whole digit positions to unknown. `width` clips or
    /// zero-extends.
    pub fn from_digits(width: u32, digits: &str, radix: u32) -> Self {
        if radix == 10 {
            // x/z in decimal are all-or-nothing.
            if digits.chars().any(|c| matches!(c, 'x' | 'z' | '?')) {
                return Self::xs(width);
            }
            let mut acc = Self::zeros(width.max(64));
            for c in digits.chars() {
                let d = c.to_digit(10).unwrap_or(0) as u64;
                acc = acc.mul_small(10).add_small(d);
            }
            return acc.resize(width);
        }
        let bits_per = match radix {
            2 => 1,
            8 => 3,
            16 => 4,
            _ => 1,
        };
        let mut bits: Vec<Bit> = Vec::new();
        for c in digits.chars().rev() {
            if matches!(c, 'x' | 'z' | '?') {
                for _ in 0..bits_per {
                    bits.push(Bit::X);
                }
            } else {
                let d = c.to_digit(radix).unwrap_or(0);
                for k in 0..bits_per {
                    bits.push(if (d >> k) & 1 == 1 { Bit::One } else { Bit::Zero });
                }
            }
        }
        if bits.is_empty() {
            bits.push(Bit::Zero);
        }
        let parsed = Self::from_bits(bits);
        parsed.resize(width)
    }

    fn mul_small(&self, m: u64) -> Self {
        let mut out = Self::zeros(self.width);
        let mut carry: u128 = 0;
        {
            let (oval, ounk) = out.planes_mut();
            for (limb, &v) in oval.iter_mut().zip(self.val()) {
                let prod = v as u128 * m as u128 + carry;
                *limb = prod as u64;
                carry = prod >> 64;
            }
            ounk.copy_from_slice(self.unk());
        }
        out.normalize();
        out
    }

    fn add_small(&self, a: u64) -> Self {
        let mut out = self.clone();
        let mut carry = a as u128;
        for limb in out.planes_mut().0 {
            let sum = *limb as u128 + carry;
            *limb = sum as u64;
            carry = sum >> 64;
            if carry == 0 {
                break;
            }
        }
        out.normalize();
        out
    }

    /// Bit width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether any bit is unknown.
    #[inline]
    pub fn has_x(&self) -> bool {
        match &self.repr {
            Repr::Small { unk, .. } => *unk != 0,
            Repr::Wide { unk, .. } => unk.iter().any(|&l| l != 0),
        }
    }

    /// The value as `u64` if it fits and has no unknown bits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_x() {
            return None;
        }
        let val = self.val();
        if val.iter().skip(1).any(|&l| l != 0) {
            return None;
        }
        Some(val[0])
    }

    /// The value as `u128` if it fits and has no unknown bits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.has_x() {
            return None;
        }
        let val = self.val();
        if val.iter().skip(2).any(|&l| l != 0) {
            return None;
        }
        let lo = val[0] as u128;
        let hi = val.get(1).copied().unwrap_or(0) as u128;
        Some(lo | (hi << 64))
    }

    /// Copies the value limbs (LSB first) into `out`, zero-filling any
    /// excess slots. Returns `false` — leaving `out` unspecified — if any
    /// bit is unknown or the value has set bits beyond `out`'s capacity.
    ///
    /// This is the bridge onto the multi-limb two-state fast path: a
    /// register class of `L` limbs calls `to_limbs` with an `L`-slot
    /// buffer, and a `false` return routes the activation to the
    /// four-state fallback.
    pub fn to_limbs(&self, out: &mut [u64]) -> bool {
        if self.has_x() {
            return false;
        }
        let val = self.val();
        if val.len() > out.len() && val[out.len()..].iter().any(|&l| l != 0) {
            return false;
        }
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = val.get(i).copied().unwrap_or(0);
        }
        true
    }

    /// Builds an x-free vector of `width` bits from value limbs (LSB
    /// first). Missing limbs read as zero; bits at or above `width` are
    /// masked off, so a fast-path register (always masked to its static
    /// width) round-trips exactly.
    pub fn from_limbs(width: u32, limbs: &[u64]) -> Self {
        let mut v = Self::zeros(width);
        {
            let val = v.planes_mut().0;
            for (i, slot) in val.iter_mut().enumerate() {
                *slot = limbs.get(i).copied().unwrap_or(0);
            }
        }
        v.normalize();
        v
    }

    /// The bit at `idx` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    #[inline]
    pub fn bit(&self, idx: u32) -> Bit {
        assert!(idx < self.width, "bit {idx} out of range for width {}", self.width);
        let (limb, off) = (idx as usize / 64, idx % 64);
        if (self.unk()[limb] >> off) & 1 == 1 {
            Bit::X
        } else if (self.val()[limb] >> off) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Sets the bit at `idx` in place.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    #[inline]
    pub fn set_bit(&mut self, idx: u32, bit: Bit) {
        assert!(idx < self.width, "bit {idx} out of range for width {}", self.width);
        let (limb, off) = (idx as usize / 64, idx % 64);
        let (val, unk) = self.planes_mut();
        val[limb] &= !(1 << off);
        unk[limb] &= !(1 << off);
        match bit {
            Bit::Zero => {}
            Bit::One => val[limb] |= 1 << off,
            Bit::X => unk[limb] |= 1 << off,
        }
    }

    /// Returns a copy with the bit at `idx` set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= width`.
    pub fn with_bit(&self, idx: u32, bit: Bit) -> Self {
        let mut out = self.clone();
        out.set_bit(idx, bit);
        out
    }

    /// Zero-extends or truncates to `new_width`.
    pub fn resize(&self, new_width: u32) -> Self {
        if new_width == self.width {
            return self.clone();
        }
        let mut out = Self::zeros(new_width);
        {
            let (oval, ounk) = out.planes_mut();
            let limbs = oval.len().min(self.val().len());
            oval[..limbs].copy_from_slice(&self.val()[..limbs]);
            ounk[..limbs].copy_from_slice(&self.unk()[..limbs]);
        }
        out.normalize();
        out
    }

    /// Sign-extends (replicating the MSB) or truncates to `new_width`.
    pub fn resize_signed(&self, new_width: u32) -> Self {
        if new_width <= self.width {
            return self.resize(new_width);
        }
        let msb = self.msb_bit();
        let mut out = self.resize(new_width);
        out.fill_from(self.width, msb);
        out
    }

    /// Sets every bit at position ≥ `start` to `bit`, in place.
    fn fill_from(&mut self, start: u32, bit: Bit) {
        if start >= self.width {
            return;
        }
        let width = self.width;
        let (val, unk) = self.planes_mut();
        for limb in (start as usize / 64)..val.len() {
            // Mask of the filled positions inside this limb.
            let lo = (limb as u32) * 64;
            let from = start.saturating_sub(lo).min(64);
            if from >= 64 {
                continue;
            }
            let mask = (u64::MAX << from) & mask_upto(width, lo);
            val[limb] &= !mask;
            unk[limb] &= !mask;
            match bit {
                Bit::Zero => {}
                Bit::One => val[limb] |= mask,
                Bit::X => unk[limb] |= mask,
            }
        }
    }

    /// Extracts bits `[hi:lo]` (inclusive) as a new vector.
    ///
    /// Out-of-range positions read as `x`, matching Verilog semantics for
    /// out-of-bounds part selects.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "inverted slice [{hi}:{lo}]");
        let width = hi - lo + 1;
        let mut out = Self::zeros(width);
        {
            let (oval, ounk) = out.planes_mut();
            shift_right_into(self.val(), lo, oval);
            shift_right_into(self.unk(), lo, ounk);
        }
        out.normalize();
        // Positions past the source width read as x.
        out.fill_from(self.width.saturating_sub(lo), Bit::X);
        out
    }

    /// Concatenates `self` (more significant) with `low` (less significant).
    pub fn concat(&self, low: &LogicVec) -> Self {
        let width = self.width + low.width;
        let mut out = Self::zeros(width);
        {
            let (oval, ounk) = out.planes_mut();
            oval[..low.val().len()].copy_from_slice(low.val());
            ounk[..low.unk().len()].copy_from_slice(low.unk());
            or_shifted_left(self.val(), low.width, oval);
            or_shifted_left(self.unk(), low.width, ounk);
        }
        out.normalize();
        out
    }

    /// Repeats `self` `count` times (`{count{self}}`).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn replicate(&self, count: u32) -> Self {
        assert!(count > 0, "zero replication");
        let mut out = self.clone();
        for _ in 1..count {
            out = out.concat(self);
        }
        out
    }

    fn normalize(&mut self) {
        let width = self.width;
        let mask = top_mask(width);
        let (val, unk) = self.planes_mut();
        if let Some(last) = val.last_mut() {
            *last &= mask;
        }
        if let Some(last) = unk.last_mut() {
            *last &= mask;
        }
    }

    /// Limb-parallel binary bitwise op: `f(av, au, bv, bu) -> (val, unk)`
    /// over zero-extended operands at the wider width.
    #[inline]
    fn bitwise(&self, other: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> Self {
        let width = self.width.max(other.width);
        let mut out = Self::zeros(width);
        {
            let (oval, ounk) = out.planes_mut();
            for i in 0..oval.len() {
                let av = self.val().get(i).copied().unwrap_or(0);
                let au = self.unk().get(i).copied().unwrap_or(0);
                let bv = other.val().get(i).copied().unwrap_or(0);
                let bu = other.unk().get(i).copied().unwrap_or(0);
                let (v, u) = f(av, au, bv, bu);
                oval[i] = v;
                ounk[i] = u;
            }
        }
        out.normalize();
        out
    }

    /// Bitwise AND with 4-state semantics (`0 & x = 0`).
    pub fn and(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |av, au, bv, bu| {
            // A bit is known-0 when neither value nor unknown is set.
            let known0 = (!av & !au) | (!bv & !bu);
            ((av & bv), (au | bu) & !known0)
        })
    }

    /// Bitwise OR with 4-state semantics (`1 | x = 1`).
    pub fn or(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |av, au, bv, bu| {
            let known1 = av | bv;
            (known1, (au | bu) & !known1)
        })
    }

    /// Bitwise XOR (any x poisons the bit).
    pub fn xor(&self, other: &LogicVec) -> Self {
        self.bitwise(other, |av, au, bv, bu| {
            let unk = au | bu;
            ((av ^ bv) & !unk, unk)
        })
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = Self::zeros(self.width);
        {
            let (oval, ounk) = out.planes_mut();
            for i in 0..oval.len() {
                oval[i] = !(self.val()[i] | self.unk()[i]);
                ounk[i] = self.unk()[i];
            }
        }
        out.normalize();
        out
    }

    /// Addition, modulo `2^width` of the wider operand. Any x → all x.
    pub fn add(&self, other: &LogicVec) -> Self {
        let width = self.width.max(other.width);
        if self.has_x() || other.has_x() {
            return Self::xs(width);
        }
        let mut out = Self::zeros(width);
        {
            let oval = out.planes_mut().0;
            let mut carry = 0u128;
            for (i, limb) in oval.iter_mut().enumerate() {
                let a = self.val().get(i).copied().unwrap_or(0);
                let b = other.val().get(i).copied().unwrap_or(0);
                let sum = a as u128 + b as u128 + carry;
                *limb = sum as u64;
                carry = sum >> 64;
            }
        }
        out.normalize();
        out
    }

    /// Subtraction (two's complement), modulo `2^width`. Any x → all x.
    pub fn sub(&self, other: &LogicVec) -> Self {
        let width = self.width.max(other.width);
        if self.has_x() || other.has_x() {
            return Self::xs(width);
        }
        let mut out = Self::zeros(width);
        {
            let oval = out.planes_mut().0;
            let mut borrow = 0u64;
            for (i, limb) in oval.iter_mut().enumerate() {
                let a = self.val().get(i).copied().unwrap_or(0);
                let b = other.val().get(i).copied().unwrap_or(0);
                let (d1, b1) = a.overflowing_sub(b);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *limb = d2;
                borrow = (b1 | b2) as u64;
            }
        }
        out.normalize();
        out
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> Self {
        LogicVec::zeros(self.width).sub(self)
    }

    /// Unsigned comparison: `self < other` as a 1-bit vector; x-poisoned.
    pub fn lt(&self, other: &LogicVec) -> Self {
        if self.has_x() || other.has_x() {
            return Self::xs(1);
        }
        let limbs = limbs_for(self.width.max(other.width));
        for i in (0..limbs).rev() {
            let a = self.val().get(i).copied().unwrap_or(0);
            let b = other.val().get(i).copied().unwrap_or(0);
            if a != b {
                return Self::from_u64(1, (a < b) as u64);
            }
        }
        Self::from_u64(1, 0)
    }

    /// Logical equality (`==`): x-poisoned.
    pub fn eq_logic(&self, other: &LogicVec) -> Self {
        if self.has_x() || other.has_x() {
            return Self::xs(1);
        }
        self.eq_case(other)
    }

    /// Case equality (`===`): x compares as a literal value.
    pub fn eq_case(&self, other: &LogicVec) -> Self {
        let limbs = limbs_for(self.width.max(other.width));
        let eq = (0..limbs).all(|i| {
            self.val().get(i).copied().unwrap_or(0) == other.val().get(i).copied().unwrap_or(0)
                && self.unk().get(i).copied().unwrap_or(0)
                    == other.unk().get(i).copied().unwrap_or(0)
        });
        Self::from_u64(1, eq as u64)
    }

    /// Reduction AND/OR/XOR. Returns a 1-bit vector.
    pub fn reduce(&self, op: ReduceOp) -> Self {
        let bit = match op {
            ReduceOp::And => {
                // Any known-0 bit within the width forces 0 (`0 & x = 0`).
                let any_zero = self
                    .val()
                    .iter()
                    .zip(self.unk())
                    .enumerate()
                    .any(|(i, (&v, &u))| (v | u) != mask_limb(self.width, i));
                if any_zero {
                    Bit::Zero
                } else if self.has_x() {
                    Bit::X
                } else {
                    Bit::One
                }
            }
            ReduceOp::Or => {
                // Any known-1 bit forces 1 (`1 | x = 1`).
                if self.val().iter().any(|&v| v != 0) {
                    Bit::One
                } else if self.has_x() {
                    Bit::X
                } else {
                    Bit::Zero
                }
            }
            ReduceOp::Xor => {
                if self.has_x() {
                    Bit::X
                } else {
                    let ones: u32 = self.val().iter().map(|v| v.count_ones()).sum();
                    if ones % 2 == 1 {
                        Bit::One
                    } else {
                        Bit::Zero
                    }
                }
            }
        };
        LogicVec::from_bits([bit])
    }

    /// Logical shift left by `n`.
    pub fn shl(&self, n: u32) -> Self {
        let mut out = Self::zeros(self.width);
        if n < self.width {
            let (oval, ounk) = out.planes_mut();
            or_shifted_left(self.val(), n, oval);
            or_shifted_left(self.unk(), n, ounk);
        }
        out.normalize();
        out
    }

    /// Logical shift right by `n`.
    pub fn shr(&self, n: u32) -> Self {
        let mut out = Self::zeros(self.width);
        if n < self.width {
            let (oval, ounk) = out.planes_mut();
            shift_right_into(self.val(), n, oval);
            shift_right_into(self.unk(), n, ounk);
        }
        out.normalize();
        out
    }

    /// Arithmetic shift right by `n`, replicating the MSB.
    pub fn ashr(&self, n: u32) -> Self {
        let msb = self.bit(self.width - 1);
        let mut out = self.shr(n);
        out.fill_from(self.width.saturating_sub(n), msb);
        out
    }

    /// Whether the vector is "truthy" (any bit is 1). `None` if no bit is 1
    /// but some are x.
    pub fn truthy(&self) -> Option<bool> {
        if self.val().iter().any(|&v| v != 0) {
            return Some(true);
        }
        if self.has_x() {
            None
        } else {
            Some(false)
        }
    }

    /// Wildcard match for `casez`/`casex`: positions where `label` has an x
    /// (which is how `z`/`?` digits parse) are ignored; for `casex`, x bits
    /// in the scrutinee are ignored too.
    pub fn matches_wildcard(&self, label: &LogicVec, scrutinee_wild: bool) -> bool {
        let limbs = limbs_for(self.width.max(label.width));
        (0..limbs).all(|i| {
            let av = self.val().get(i).copied().unwrap_or(0);
            let au = self.unk().get(i).copied().unwrap_or(0);
            let bv = label.val().get(i).copied().unwrap_or(0);
            let bu = label.unk().get(i).copied().unwrap_or(0);
            let mut mismatch = ((av ^ bv) | (au ^ bu)) & !bu;
            if scrutinee_wild {
                mismatch &= !au;
            }
            mismatch == 0
        })
    }
}

/// Mask of the in-width bits of limb `i` of a `width`-bit vector.
fn mask_limb(width: u32, i: usize) -> u64 {
    if i + 1 < limbs_for(width) {
        u64::MAX
    } else {
        top_mask(width)
    }
}

/// Mask of bits of the limb starting at absolute position `lo` that lie
/// below `width`.
fn mask_upto(width: u32, lo: u32) -> u64 {
    if width >= lo + 64 {
        u64::MAX
    } else if width <= lo {
        0
    } else {
        u64::MAX >> (64 - (width - lo))
    }
}

/// `out = src >> n` across limb boundaries (zero fill; `out` may be shorter
/// or longer than `src`).
fn shift_right_into(src: &[u64], n: u32, out: &mut [u64]) {
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    for (i, limb) in out.iter_mut().enumerate() {
        let lo = src.get(i + limb_shift).copied().unwrap_or(0);
        let hi = src.get(i + limb_shift + 1).copied().unwrap_or(0);
        *limb = if bit_shift == 0 { lo } else { (lo >> bit_shift) | (hi << (64 - bit_shift)) };
    }
}

/// `out |= src << n` across limb boundaries; bits shifted past `out` drop.
fn or_shifted_left(src: &[u64], n: u32, out: &mut [u64]) {
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    for (i, &limb) in src.iter().enumerate() {
        if limb == 0 {
            continue;
        }
        if let Some(dst) = out.get_mut(i + limb_shift) {
            *dst |= limb << bit_shift;
        }
        if bit_shift != 0 {
            if let Some(dst) = out.get_mut(i + limb_shift + 1) {
                *dst |= limb >> (64 - bit_shift);
            }
        }
    }
}

/// Reduction operator selector for [`LogicVec::reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `&v`
    And,
    /// `|v`
    Or,
    /// `^v`
    Xor,
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            match self.bit(i) {
                Bit::Zero => write!(f, "0")?,
                Bit::One => write!(f, "1")?,
                Bit::X => write!(f, "x")?,
            }
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        let v = LogicVec::from_u64(16, 0xBEEF);
        assert_eq!(v.to_u64(), Some(0xBEEF));
        assert_eq!(v.width(), 16);
        assert!(!v.has_x());
    }

    #[test]
    fn truncation_on_construction() {
        let v = LogicVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn wide_vectors() {
        let v = LogicVec::from_u128(100, 1u128 << 99);
        assert_eq!(v.bit(99), Bit::One);
        assert_eq!(v.bit(98), Bit::Zero);
        assert_eq!(v.to_u64(), None); // too wide
        assert_eq!(v.to_u128(), Some(1u128 << 99));
    }

    #[test]
    fn from_digits_bases() {
        assert_eq!(LogicVec::from_digits(8, "ff", 16).to_u64(), Some(255));
        assert_eq!(LogicVec::from_digits(8, "1010", 2).to_u64(), Some(10));
        assert_eq!(LogicVec::from_digits(8, "17", 8).to_u64(), Some(15));
        assert_eq!(LogicVec::from_digits(8, "200", 10).to_u64(), Some(200));
        assert_eq!(LogicVec::from_digits(32, "4000000000", 10).to_u64(), Some(4_000_000_000));
    }

    #[test]
    fn from_digits_with_x() {
        let v = LogicVec::from_digits(4, "1x0z", 2);
        assert_eq!(v.bit(3), Bit::One);
        assert_eq!(v.bit(2), Bit::X);
        assert_eq!(v.bit(1), Bit::Zero);
        assert_eq!(v.bit(0), Bit::X);
        assert!(v.has_x());
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn hex_x_covers_four_bits() {
        let v = LogicVec::from_digits(8, "fx", 16);
        assert_eq!(v.slice(7, 4).to_u64(), Some(0xF));
        assert!(v.slice(3, 0).has_x());
    }

    #[test]
    fn bitwise_truth_tables() {
        let x = LogicVec::xs(1);
        let one = LogicVec::from_u64(1, 1);
        let zero = LogicVec::from_u64(1, 0);
        assert_eq!(zero.and(&x), zero); // 0 & x = 0
        assert_eq!(one.or(&x), one); // 1 | x = 1
        assert!(one.and(&x).has_x()); // 1 & x = x
        assert!(zero.or(&x).has_x()); // 0 | x = x
        assert!(one.xor(&x).has_x());
        assert!(x.not().has_x());
    }

    #[test]
    fn add_sub_wraparound() {
        let a = LogicVec::from_u64(8, 250);
        let b = LogicVec::from_u64(8, 10);
        assert_eq!(a.add(&b).to_u64(), Some(4)); // wraps mod 256
        assert_eq!(b.sub(&a).to_u64(), Some(16)); // 10 - 250 mod 256
        assert_eq!(a.sub(&b).to_u64(), Some(240));
    }

    #[test]
    fn add_across_limbs() {
        let a = LogicVec::from_u128(100, u64::MAX as u128);
        let b = LogicVec::from_u64(100, 1);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn neg_is_twos_complement() {
        let a = LogicVec::from_u64(8, 1);
        assert_eq!(a.neg().to_u64(), Some(255));
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 9);
        assert_eq!(a.lt(&b).to_u64(), Some(1));
        assert_eq!(b.lt(&a).to_u64(), Some(0));
        assert_eq!(a.eq_logic(&a.clone()).to_u64(), Some(1));
        assert_eq!(a.eq_logic(&b).to_u64(), Some(0));
    }

    #[test]
    fn comparison_with_x_is_x() {
        let a = LogicVec::from_u64(4, 5);
        let x = LogicVec::xs(4);
        assert!(a.lt(&x).has_x());
        assert!(a.eq_logic(&x).has_x());
        // but case equality is exact
        assert_eq!(x.eq_case(&LogicVec::xs(4)).to_u64(), Some(1));
        assert_eq!(a.eq_case(&x).to_u64(), Some(0));
    }

    #[test]
    fn slices_and_concat() {
        let v = LogicVec::from_u64(8, 0b1100_0101);
        assert_eq!(v.slice(3, 0).to_u64(), Some(0b0101));
        assert_eq!(v.slice(7, 4).to_u64(), Some(0b1100));
        let joined = v.slice(7, 4).concat(&v.slice(3, 0));
        assert_eq!(joined, v);
    }

    #[test]
    fn out_of_range_slice_reads_x() {
        let v = LogicVec::from_u64(4, 0b1111);
        let s = v.slice(5, 3);
        assert_eq!(s.bit(0), Bit::One);
        assert_eq!(s.bit(1), Bit::X);
        assert_eq!(s.bit(2), Bit::X);
    }

    #[test]
    fn replicate_width_and_pattern() {
        let v = LogicVec::from_u64(2, 0b10);
        let r = v.replicate(3);
        assert_eq!(r.width(), 6);
        assert_eq!(r.to_u64(), Some(0b101010));
    }

    #[test]
    fn reductions() {
        let v = LogicVec::from_u64(4, 0b1111);
        assert_eq!(v.reduce(ReduceOp::And).to_u64(), Some(1));
        assert_eq!(v.reduce(ReduceOp::Xor).to_u64(), Some(0));
        let w = LogicVec::from_u64(4, 0b0111);
        assert_eq!(w.reduce(ReduceOp::And).to_u64(), Some(0));
        assert_eq!(w.reduce(ReduceOp::Or).to_u64(), Some(1));
        assert_eq!(w.reduce(ReduceOp::Xor).to_u64(), Some(1));
    }

    #[test]
    fn reduction_short_circuits_x() {
        // 0 & x is still 0; 1 | x is still 1.
        let v = LogicVec::from_bits([Bit::Zero, Bit::X]);
        assert_eq!(v.reduce(ReduceOp::And).to_u64(), Some(0));
        let w = LogicVec::from_bits([Bit::One, Bit::X]);
        assert_eq!(w.reduce(ReduceOp::Or).to_u64(), Some(1));
        assert!(w.reduce(ReduceOp::Xor).has_x());
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b0001_1000);
        assert_eq!(v.shl(2).to_u64(), Some(0b0110_0000));
        assert_eq!(v.shr(3).to_u64(), Some(0b0000_0011));
        let s = LogicVec::from_u64(4, 0b1000);
        assert_eq!(s.ashr(2).to_u64(), Some(0b1110));
        assert_eq!(s.shr(2).to_u64(), Some(0b0010));
        assert_eq!(v.shl(64).to_u64(), Some(0));
    }

    #[test]
    fn resize_signed_extends_msb() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.resize_signed(8).to_u64(), Some(0b1111_1010));
        assert_eq!(v.resize(8).to_u64(), Some(0b0000_1010));
        let p = LogicVec::from_u64(4, 0b0010);
        assert_eq!(p.resize_signed(8).to_u64(), Some(0b0000_0010));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::from_u64(4, 0).truthy(), Some(false));
        assert_eq!(LogicVec::from_u64(4, 2).truthy(), Some(true));
        assert_eq!(LogicVec::xs(4).truthy(), None);
        // A 1 anywhere wins even with x elsewhere.
        let v = LogicVec::from_bits([Bit::One, Bit::X]);
        assert_eq!(v.truthy(), Some(true));
    }

    #[test]
    fn wildcard_matching_casez() {
        // Label 4'b1?0? ignores positions with x (z/? parse as x).
        let label = LogicVec::from_digits(4, "1z0z", 2);
        assert!(LogicVec::from_u64(4, 0b1000).matches_wildcard(&label, false));
        assert!(LogicVec::from_u64(4, 0b1101).matches_wildcard(&label, false));
        assert!(!LogicVec::from_u64(4, 0b0000).matches_wildcard(&label, false));
        assert!(!LogicVec::from_u64(4, 0b1110).matches_wildcard(&label, false));
    }

    #[test]
    fn display_format() {
        let v = LogicVec::from_digits(4, "1x01", 2);
        assert_eq!(v.to_string(), "4'b1x01");
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = LogicVec::zeros(0);
    }

    #[test]
    fn limb_allocation_at_width_edges() {
        // Widths straddling the 64-bit limb boundaries: 1, 63, 64, 65, 256.
        for (width, limbs) in [(1u32, 1usize), (63, 1), (64, 1), (65, 2), (256, 4)] {
            assert_eq!(limbs_for(width), limbs, "width {width}");
        }
    }

    #[test]
    fn limb_round_trips_at_boundaries() {
        for width in [65u32, 128, 129, 256] {
            // A pattern touching the top and bottom limb of each class.
            let mut v = LogicVec::zeros(width);
            v.set_bit(0, Bit::One);
            v.set_bit(width - 1, Bit::One);
            if width > 64 {
                v.set_bit(64, Bit::One);
            }
            let mut limbs = [0u64; 4];
            assert!(v.to_limbs(&mut limbs), "width {width}");
            assert_eq!(LogicVec::from_limbs(width, &limbs), v, "width {width}");
        }
        // Small widths land in Repr::Small and round-trip through one slot.
        let small = LogicVec::from_u64(17, 0x1_ABCD);
        let mut one = [0u64; 1];
        assert!(small.to_limbs(&mut one));
        assert_eq!(one[0], 0x1_ABCD);
        assert_eq!(LogicVec::from_limbs(17, &one), small);
    }

    #[test]
    fn to_limbs_rejects_x_and_overflow() {
        let mut buf = [0u64; 2];
        assert!(!LogicVec::xs(65).to_limbs(&mut buf));
        // 129-bit value with bit 128 set does not fit two limbs...
        let mut tall = LogicVec::zeros(129);
        tall.set_bit(128, Bit::One);
        assert!(!tall.to_limbs(&mut buf));
        // ...but the same vector with only low bits set does.
        let mut low = LogicVec::zeros(129);
        low.set_bit(3, Bit::One);
        assert!(low.to_limbs(&mut buf));
        assert_eq!(buf, [8, 0]);
    }

    #[test]
    fn from_limbs_masks_excess_bits() {
        // Bits at or above `width` in the limb data are dropped, and the
        // result stays representation-normal (width <= 64 => Small).
        let v = LogicVec::from_limbs(65, &[u64::MAX, u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(v.bit(64), Bit::One);
        assert_eq!(v.to_u128(), Some((1u128 << 65) - 1));
        let s = LogicVec::from_limbs(8, &[0xFFFF]);
        assert_eq!(s.to_u64(), Some(0xFF));
        assert_eq!(s, LogicVec::from_u64(8, 0xFF));
    }

    #[test]
    fn width_edge_round_trips() {
        for width in [1u32, 63, 64, 65, 256] {
            // Zeros: all bits readable, none set, no x.
            let zeros = LogicVec::zeros(width);
            assert_eq!(zeros.width(), width);
            assert!(!zeros.has_x(), "width {width}");
            assert_eq!(zeros.bit(width - 1), Bit::Zero, "width {width}");

            // The top bit sets and reads back; lower bits stay clear.
            let mut top = LogicVec::zeros(width);
            top.set_bit(width - 1, Bit::One);
            assert_eq!(top.bit(width - 1), Bit::One, "width {width}");
            if width > 1 {
                assert_eq!(top.bit(width - 2), Bit::Zero, "width {width}");
            }

            // NOT flips every bit including across limb boundaries.
            let inverted = top.not();
            assert_eq!(inverted.bit(width - 1), Bit::Zero, "width {width}");
            if width > 1 {
                assert_eq!(inverted.bit(0), Bit::One, "width {width}");
            }

            // All-x round trip.
            let xs = LogicVec::xs(width);
            assert!(xs.has_x(), "width {width}");
            assert_eq!(xs.bit(width - 1), Bit::X, "width {width}");
            assert_eq!(xs.to_u64(), None, "width {width}");
        }
        // to_u64 works exactly up to 64 bits of value.
        assert_eq!(LogicVec::from_u64(63, u64::MAX >> 1).to_u64(), Some(u64::MAX >> 1));
        assert_eq!(LogicVec::from_u64(64, u64::MAX).to_u64(), Some(u64::MAX));
        let mut wide = LogicVec::zeros(65);
        wide.set_bit(64, Bit::One);
        assert_eq!(wide.bit(64), Bit::One);
        assert_eq!(wide.bit(63), Bit::Zero);
    }
}
