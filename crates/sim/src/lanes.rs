//! Bit-parallel multi-seed lane execution.
//!
//! When a problem is checked under many stimulus seeds, the testbenches
//! differ only in their input values — the design, the tape, and the cycle
//! schedule are identical. This module packs up to 64 such seeds into
//! *lanes* of a widened register file and runs each fast tape **once** per
//! process per cycle, with every data op applied lane-wise over a dense
//! `u64` row per virtual register (a shape the auto-vectoriser turns into
//! SIMD). Control flow stays shared: when a branch predicate disagrees
//! between lanes, the minority lanes are *peeled* — permanently moved to
//! ordinary scalar [`Simulator`]s — and the cycle replays, packed for the
//! survivors and scalar for the peeled (snapshot/replay keeps this exact:
//! a packed pass never mutates lane state before its commit epilogue, and
//! a cycle that aborts mid-way is restored from its start-of-cycle
//! snapshot).
//!
//! Eligibility is strict so the packed executor never needs a four-state
//! escape: every combinational and sequential process must carry a scalar
//! (`limbs == 1`) fast tape with zero `Fallback` ops, and every signal
//! must be a plain vector of at most 64 bits. Anything the scalar fast
//! path would bail on (division by zero, out-of-range select, an `x`
//! poked into a lane) peels exactly the lanes it affects. The result is
//! bit-identical to running each seed through its own simulator — pinned
//! by the lane proptests and the multi-seed invariance tests — and gated
//! by the `RTLFIXER_SIM_LANES` kill switch.

use std::sync::Arc;

use rtlfixer_verilog::ast::Edge;
use rtlfixer_verilog::const_eval::clog2;

use crate::elab::Design;
use crate::interp::{BitSet, SimError, Simulator, StateValue, Target, MAX_LOOP};
use crate::interp::{event_driven, lanes_enabled, select_bounds, tape_enabled};
use crate::lower::{Kernel, SigId};
use crate::tape::{bitmask, FOp, FastTape, Tape, VReg};
use crate::value::LogicVec;

/// Maximum iterations of the packed settle loop (mirrors the scalar
/// `MAX_SETTLE`; exceeding it peels every lane, so per-lane `Unstable`
/// errors come from the scalar replay and match a solo run exactly).
const MAX_SETTLE: usize = 64;

/// Per-step action, mirroring the testbench clocking disciplines.
#[derive(Clone, Copy)]
pub enum LaneAction<'a> {
    /// Combinational: settle to fixpoint.
    Settle,
    /// Sequential: full clock cycle on the named signal.
    Clock(&'a str),
}

/// Runtime occupancy/peel statistics for a multi-seed lane run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Lane-steps completed inside the packed executor.
    pub packed_lane_steps: u64,
    /// Total lane-steps driven (packed + scalar, including scalar-fallback
    /// lane groups the packed engine never accepted).
    pub lane_steps: u64,
    /// Lanes peeled back to scalar execution.
    pub peels: u64,
    /// Whole-group aborts (instability or packed population < 2).
    pub bails: u64,
}

impl LaneStats {
    /// Fraction of lane-steps that ran inside the packed executor
    /// (0.0 when nothing ran).
    pub fn occupancy(&self) -> f64 {
        if self.lane_steps > 0 {
            self.packed_lane_steps as f64 / self.lane_steps as f64
        } else {
            0.0
        }
    }

    /// Accumulates another run's statistics into this one.
    pub fn absorb(&mut self, other: &LaneStats) {
        self.packed_lane_steps += other.packed_lane_steps;
        self.lane_steps += other.lane_steps;
        self.peels += other.peels;
        self.bails += other.bails;
    }
}

/// A group of up to 64 seed-lanes executing one design in lockstep.
pub struct LaneRunner {
    design: Arc<Design>,
    kernel: Arc<Kernel>,
    /// Total lanes in the group.
    k: usize,
    /// Lane ids still packed, in dense executor order.
    active: Vec<u32>,
    /// Lane-major signal state: `packed[sig * k + lane]`.
    packed: Vec<u64>,
    /// Start-of-cycle copy of `packed` for peel replay.
    snapshot: Vec<u64>,
    /// Peeled lanes' scalar simulators (indexed by lane id).
    scalars: Vec<Option<Box<Simulator>>>,
    /// Lanes that died with a simulation error (indexed by lane id).
    errors: Vec<Option<SimError>>,
    /// Shared dirty tracking across all packed lanes (conservative: a
    /// signal dirty in any lane re-runs the process for every lane).
    prev_dirty: BitSet,
    curr_dirty: BitSet,
    /// Whether any packed commit changed a value this sweep.
    changed: bool,
    /// This cycle's pokes, for peel replay: `poke_sigs[i]` carries its k
    /// per-lane two-state values at `poke_raws[i * k ..][..k]`. `None` =
    /// the lane's frame omitted the port (or carried x, in which case the
    /// lane peeled at poke time and never replays). Flat so the per-cycle
    /// log reuses one allocation instead of boxing each poke.
    poke_sigs: Vec<SigId>,
    poke_raws: Vec<Option<u64>>,
    // Executor scratch (lane-major: `lregs[reg * na + dense_lane]`).
    lregs: Vec<u64>,
    lctrs: Vec<u64>,
    lorig: Vec<u64>,
    sticky: Vec<u64>,
    /// Buffered non-blocking writes: `(lane id, write)`.
    lnba: Vec<(u32, LaneNba)>,
    /// Per-process write-before-read flags (comb then seq, kernel order):
    /// `true` lets `run_proc_packed` skip re-zeroing the register file.
    comb_zero_safe: Vec<bool>,
    seq_zero_safe: Vec<bool>,
    /// Per-process steady-state tapes with loop-invariant ops hoisted
    /// (global proc index: comb then seq). Only populated for single-
    /// process zero-safe designs, where the shared register file is
    /// private to the process and invariant results persist across runs.
    hoist: Vec<Option<Vec<FOp>>>,
    /// Lane count the process was last primed at (`0` = unprimed): the
    /// steady tape is only valid after one full-tape run at the same `na`.
    primed_na: Vec<usize>,
    stats: LaneStats,
}

/// Packed-pass abort: the dense-index bitmask of lanes to peel.
type PeelMask = u64;

/// A buffered non-blocking write in the two-state lane domain — the packed
/// analogue of the interpreter's `NbaWrite`, with the value kept as an
/// already-masked `u64`
/// so the per-cycle commit never materializes a `LogicVec`.
struct LaneNba {
    target: Target,
    raw: u64,
}

impl LaneRunner {
    /// Builds a `k`-lane group over `analysis`/`top`, or `None` when the
    /// design is ineligible (any signal wider than 64 bits or memory-like,
    /// any process without a complete scalar fast tape, `x` in the
    /// post-initial state, or lane execution disabled). Callers fall back
    /// to one scalar run per seed — the results are identical either way.
    pub fn try_new(
        analysis: &rtlfixer_verilog::Analysis,
        top: &str,
        k: usize,
    ) -> Option<LaneRunner> {
        if !(2..=64).contains(&k) || !lanes_enabled() || !tape_enabled() {
            return None;
        }
        let design = crate::elab::elaborate_shared(analysis, top).ok()?;
        let mut probe = Simulator::from_design(Arc::clone(&design));
        let kernel = Arc::clone(probe.kernel_ref());
        if kernel
            .sigs
            .iter()
            .any(|sig| sig.def.words.is_some() || sig.def.width > 64)
        {
            return None;
        }
        let fast_ok = |tape: &Option<Tape>| {
            tape.as_ref().and_then(|t| t.fast.as_ref()).is_some_and(|f| {
                f.limbs == 1 && !f.ops.iter().any(|op| matches!(op, FOp::Fallback))
            })
        };
        if !kernel.comb.iter().all(|p| fast_ok(&p.tape))
            || !kernel.seq.iter().all(|p| fast_ok(&p.tape))
        {
            return None;
        }
        // Initial blocks see identical power-on state in every lane: run
        // them once and broadcast. Instability or residual x here sends
        // the whole group down the scalar path (which reproduces it).
        probe.run_initial().ok()?;
        let nsigs = kernel.sigs.len();
        let mut packed = vec![0u64; nsigs * k];
        for (s, row) in probe.state_rows().iter().enumerate() {
            let StateValue::Vec(v) = row else { return None };
            let raw = v.to_u64()?;
            packed[s * k..(s + 1) * k].fill(raw);
        }
        let comb_zero_safe: Vec<bool> = kernel
            .comb
            .iter()
            .map(|p| tape_zero_safe(p.tape.as_ref().and_then(|t| t.fast.as_ref()).expect("fast")))
            .collect();
        let seq_zero_safe: Vec<bool> = kernel
            .seq
            .iter()
            .map(|p| tape_zero_safe(p.tape.as_ref().and_then(|t| t.fast.as_ref()).expect("fast")))
            .collect();
        // Invariant hoisting requires the register file to be private to
        // the process (no clobbering between runs), which holds exactly
        // for single-process designs whose lone tape is zero-safe.
        let nprocs = kernel.comb.len() + kernel.seq.len();
        let single_zero_safe =
            nprocs == 1 && comb_zero_safe.iter().chain(&seq_zero_safe).all(|&b| b);
        let hoist: Vec<Option<Vec<FOp>>> = if single_zero_safe {
            kernel
                .comb
                .iter()
                .map(|p| &p.tape)
                .chain(kernel.seq.iter().map(|p| &p.tape))
                .map(|t| hoist_split(t.as_ref().and_then(|t| t.fast.as_ref()).expect("fast")))
                .collect()
        } else {
            vec![None; nprocs]
        };
        Some(LaneRunner {
            design,
            kernel,
            k,
            active: (0..k as u32).collect(),
            snapshot: packed.clone(),
            packed,
            scalars: (0..k).map(|_| None).collect(),
            errors: vec![None; k],
            prev_dirty: BitSet::all(nsigs),
            curr_dirty: BitSet::new(nsigs),
            changed: false,
            poke_sigs: Vec::new(),
            poke_raws: Vec::new(),
            lregs: Vec::new(),
            lctrs: Vec::new(),
            lorig: Vec::new(),
            sticky: Vec::new(),
            lnba: Vec::new(),
            comb_zero_safe,
            seq_zero_safe,
            hoist,
            primed_na: vec![0; nprocs],
            stats: LaneStats::default(),
        })
    }

    /// The shared elaborated design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Occupancy/peel statistics accumulated so far.
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// The fatal error a lane died with, if any.
    pub fn error(&self, lane: usize) -> Option<&SimError> {
        self.errors[lane].as_ref()
    }

    /// Marks the start of a testbench cycle: snapshots packed state (for
    /// peel replay) and clears the poke log.
    pub fn begin_cycle(&mut self) {
        self.snapshot.copy_from_slice(&self.packed);
        self.poke_sigs.clear();
        self.poke_raws.clear();
    }

    /// Pokes per-lane values on `name` (entries may be `None` to leave a
    /// lane's input unchanged, mirroring a stimulus frame that omits the
    /// port). Unknown names are ignored, like [`Simulator::poke`].
    pub fn poke(&mut self, name: &str, values: &[Option<&LogicVec>]) {
        debug_assert_eq!(values.len(), self.k);
        let Some(&sig) = self.kernel.by_name.get(name) else { return };
        let width = self.kernel.sigs[sig as usize].def.width;
        // Two-state packing without the allocating resize: the log keeps
        // raw `u64`s, which is all peel replay ever needs (a lane with an
        // x input peels right here and never replays).
        let base = self.poke_raws.len();
        self.poke_raws.extend(values.iter().map(|v| v.and_then(|v| pack_input(v, width))));
        self.poke_sigs.push(sig);
        let raws = &self.poke_raws[base..];
        let mut peel: Vec<u32> = Vec::new();
        for j in 0..self.active.len() {
            let lane = self.active[j];
            match (values[lane as usize], raws[lane as usize]) {
                (None, _) => {}
                (Some(_), Some(raw)) => {
                    let slot = sig as usize * self.k + lane as usize;
                    if self.packed[slot] != raw {
                        self.packed[slot] = raw;
                        self.prev_dirty.set(sig);
                    }
                }
                // An un-packable value (x bits) peels its lane right here
                // — current packed state is consistent mid-poke.
                (Some(_), None) => peel.push(lane),
            }
        }
        for lane in peel {
            self.stats.peels += 1;
            let sim = self.materialize(lane, None);
            self.scalars[lane as usize] = Some(Box::new(sim));
            self.active.retain(|&l| l != lane);
        }
        // Scalar lanes (including any just peeled) take the poke directly,
        // four-state values included.
        for (lane, value) in values.iter().enumerate() {
            if let (Some(sim), Some(value), None) =
                (&mut self.scalars[lane], value, &self.errors[lane])
            {
                sim.poke_id(sig, value.resize(width));
            }
        }
    }

    /// Reads a lane's current value of `name`.
    pub fn peek(&self, name: &str, lane: usize) -> Option<LogicVec> {
        let &sig = self.kernel.by_name.get(name)?;
        if let Some(sim) = &self.scalars[lane] {
            return sim.peek(name);
        }
        let width = self.kernel.sigs[sig as usize].def.width;
        Some(LogicVec::from_u64(width, self.packed[sig as usize * self.k + lane]))
    }

    /// Runs this cycle's action on every live lane: packed lanes in one
    /// lane-parallel pass (peeling and replaying as needed), scalar lanes
    /// through their own simulators.
    pub fn step(&mut self, action: LaneAction<'_>) {
        // Scalar lanes first (order between independent lanes is
        // unobservable); a simulation error permanently kills the lane.
        for lane in 0..self.k {
            if self.errors[lane].is_some() || self.scalars[lane].is_none() {
                continue;
            }
            self.stats.lane_steps += 1;
            let sim = self.scalars[lane].as_mut().expect("scalar lane");
            let outcome = match action {
                LaneAction::Settle => sim.settle(),
                LaneAction::Clock(clk) => sim.clock_cycle(clk),
            };
            if let Err(e) = outcome {
                self.errors[lane] = Some(e);
            }
        }
        // Packed attempt loop: each failed attempt peels at least one lane
        // (restoring the snapshot first), so this terminates.
        while self.active.len() >= 2 {
            let attempt = match action {
                LaneAction::Settle => self.settle_packed(),
                LaneAction::Clock(clk) => self.clock_packed(clk),
            };
            match attempt {
                Ok(()) => {
                    let na = self.active.len() as u64;
                    self.stats.packed_lane_steps += na;
                    self.stats.lane_steps += na;
                    if matches!(action, LaneAction::Clock(_)) {
                        rtlfixer_obs::counter_add("sim.cycles", na);
                    }
                    return;
                }
                Err(mask) => self.peel_and_replay(mask, action),
            }
        }
        // Group too small to pack: unpack the stragglers and run scalar.
        if !self.active.is_empty() {
            self.stats.bails += 1;
            let rest: Vec<u32> = self.active.drain(..).collect();
            for lane in rest {
                self.replay_lane_scalar(lane, action);
            }
        }
    }

    /// Handles a failed packed attempt: restores the start-of-cycle
    /// snapshot, peels the masked (dense-index) lanes to scalar replay,
    /// and re-applies this cycle's pokes to the surviving packed lanes.
    fn peel_and_replay(&mut self, mask: PeelMask, action: LaneAction<'_>) {
        self.packed.copy_from_slice(&self.snapshot);
        let peeled: Vec<u32> = (0..self.active.len())
            .filter(|j| mask >> j & 1 == 1)
            .map(|j| self.active[j])
            .collect();
        debug_assert!(!peeled.is_empty(), "packed abort must peel at least one lane");
        self.active.retain(|lane| !peeled.contains(lane));
        self.stats.peels += peeled.len() as u64;
        for lane in peeled {
            self.replay_lane_scalar(lane, action);
        }
        // Survivors: re-apply the cycle's pokes on top of the snapshot.
        for (i, sig) in self.poke_sigs.iter().copied().enumerate() {
            let raws = &self.poke_raws[i * self.k..][..self.k];
            for &lane in &self.active {
                if let Some(raw) = raws[lane as usize] {
                    let slot = sig as usize * self.k + lane as usize;
                    if self.packed[slot] != raw {
                        self.packed[slot] = raw;
                        self.prev_dirty.set(sig);
                    }
                }
            }
        }
    }

    /// Peels `lane` out of the packed group: materialises a scalar
    /// simulator from the lane's snapshot state, replays this cycle's
    /// pokes, and runs the action (so the lane lands exactly where a
    /// continuous scalar run of this cycle would).
    fn replay_lane_scalar(&mut self, lane: u32, action: LaneAction<'_>) {
        let mut sim = self.materialize(lane, Some(&self.snapshot));
        for (i, sig) in self.poke_sigs.iter().copied().enumerate() {
            if let Some(raw) = self.poke_raws[i * self.k + lane as usize] {
                let width = self.kernel.sigs[sig as usize].def.width;
                sim.poke_id(sig, LogicVec::from_u64(width, raw));
            }
        }
        self.stats.lane_steps += 1;
        let outcome = match action {
            LaneAction::Settle => sim.settle(),
            LaneAction::Clock(clk) => sim.clock_cycle(clk),
        };
        if let Err(e) = outcome {
            self.errors[lane as usize] = Some(e);
        }
        self.scalars[lane as usize] = Some(Box::new(sim));
    }

    /// Builds a scalar simulator holding `lane`'s signal state, read from
    /// `from` (or current packed state when `None`). Everything is marked
    /// dirty, so the next settle reaches the same fixpoint a continuous
    /// scalar run would already be at.
    fn materialize(&self, lane: u32, from: Option<&[u64]>) -> Simulator {
        let source = from.unwrap_or(&self.packed);
        let state: Vec<StateValue> = self
            .kernel
            .sigs
            .iter()
            .enumerate()
            .map(|(s, sig)| {
                StateValue::Vec(LogicVec::from_u64(
                    sig.def.width,
                    source[s * self.k + lane as usize],
                ))
            })
            .collect();
        let mut sim = Simulator::from_design(Arc::clone(&self.design));
        sim.install_state(state);
        sim
    }

    /// Packed settle-to-fixpoint (mirrors [`Simulator::settle`], with a
    /// commit-observed change flag instead of the touched journal — at
    /// worst one extra idempotent sweep, and instability always defers to
    /// scalar replay).
    fn settle_packed(&mut self) -> Result<(), PeelMask> {
        let kernel = Arc::clone(&self.kernel);
        let event = event_driven();
        for sweep in 0..MAX_SETTLE {
            self.changed = false;
            for (pi, proc) in kernel.comb.iter().enumerate() {
                let run = !event
                    || proc
                        .sens
                        .iter()
                        .any(|&s| self.prev_dirty.get(s) || self.curr_dirty.get(s));
                if run {
                    let tape = proc.tape.as_ref().expect("eligibility: tape");
                    let zs = self.comb_zero_safe[pi];
                    self.run_proc_packed(&kernel, tape, pi, false, true, zs)?;
                }
            }
            if !self.changed {
                self.prev_dirty.clear_all();
                self.curr_dirty.clear_all();
                rtlfixer_obs::counter_add("sim.settle_sweeps", sweep as u64 + 1);
                return Ok(());
            }
            std::mem::swap(&mut self.prev_dirty, &mut self.curr_dirty);
            self.curr_dirty.clear_all();
        }
        // Unstable in at least one lane: peel everyone; scalar replay
        // reproduces each lane's own (possibly clean) outcome.
        Err(self.all_mask())
    }

    /// Packed clock cycle (mirrors [`Simulator::clock_cycle`]).
    fn clock_packed(&mut self, clk: &str) -> Result<(), PeelMask> {
        self.settle_packed()?;
        self.edge_packed(clk, Edge::Pos)?;
        self.edge_packed(clk, Edge::Neg)
    }

    /// Packed edge event (mirrors [`Simulator::edge`]).
    fn edge_packed(&mut self, signal: &str, edge: Edge) -> Result<(), PeelMask> {
        let kernel = Arc::clone(&self.kernel);
        let level = match edge {
            Edge::Pos => 1u64,
            Edge::Neg => 0u64,
        };
        if let Some(&sig) = kernel.by_name.get(signal) {
            for &lane in &self.active {
                let slot = sig as usize * self.k + lane as usize;
                if self.packed[slot] != level {
                    self.packed[slot] = level;
                    self.prev_dirty.set(sig);
                }
            }
        }
        self.lnba.clear();
        for (pi, proc) in kernel.seq.iter().enumerate() {
            if proc.edges.iter().any(|(e, s)| *e == edge && s == signal) {
                let tape = proc.tape.as_ref().expect("eligibility: tape");
                let zs = self.seq_zero_safe[pi];
                self.run_proc_packed(&kernel, tape, kernel.comb.len() + pi, true, false, zs)?;
            }
        }
        let writes = std::mem::take(&mut self.lnba);
        for (lane, write) in &writes {
            self.commit_packed(*lane, write)?;
        }
        self.lnba = writes;
        self.settle_packed()
    }

    /// Commits one lane's buffered non-blocking write (mirrors the scalar
    /// `commit` for the vector targets fast tapes emit; two-state stores
    /// can never carry x, so nothing here peels except the defensive
    /// memory-word arm).
    fn commit_packed(&mut self, lane: u32, write: &LaneNba) -> Result<(), PeelMask> {
        let (sig, new) = match write.target {
            Target::Whole(sig) => {
                let width = self.kernel.sigs[sig as usize].def.width;
                (sig, write.raw & bitmask(width))
            }
            Target::Bits(sig, hi, lo) => {
                let width = self.kernel.sigs[sig as usize].def.width;
                if hi >= width {
                    return Ok(());
                }
                let span = hi - lo + 1;
                let cur = self.packed[sig as usize * self.k + lane as usize];
                (sig, (cur & !(bitmask(span) << lo)) | ((write.raw & bitmask(span)) << lo))
            }
            // Fast tapes never target memory words.
            Target::Word(..) | Target::WordBits(..) => return Err(self.dense_mask(lane)),
        };
        let slot = sig as usize * self.k + lane as usize;
        if self.packed[slot] != new {
            self.packed[slot] = new;
            self.prev_dirty.set(sig);
        }
        Ok(())
    }

    fn all_mask(&self) -> PeelMask {
        debug_assert!(self.active.len() <= 64);
        if self.active.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.active.len()) - 1
        }
    }

    /// Dense-index mask for a single lane id.
    fn dense_mask(&self, lane: u32) -> PeelMask {
        let j = self.active.iter().position(|&l| l == lane).expect("lane is packed");
        1u64 << j
    }

    /// Runs one process's fast tape across all packed lanes. `defer`
    /// buffers non-blocking stores into `lnba`; `sweep` selects which
    /// dirty set commits mark; `zero_safe` (from the per-process
    /// write-before-read scan) skips re-zeroing the register file. On
    /// `Err` no lane state has been mutated.
    fn run_proc_packed(
        &mut self,
        k: &Kernel,
        tape: &Tape,
        gi: usize,
        defer: bool,
        sweep: bool,
        zero_safe: bool,
    ) -> Result<(), PeelMask> {
        let fast = tape.fast.as_ref().expect("eligibility: fast tape");
        let na = self.active.len();
        // Steady tape (invariant ops hoisted) once a full-tape run has
        // primed the register file at this lane count.
        let steady = match self.hoist[gi].as_ref() {
            Some(s) if self.primed_na[gi] == na => Some(s.as_slice()),
            _ => None,
        };
        let need = fast.nregs as usize * na;
        if zero_safe {
            // Every read provably follows a write, so stale register
            // contents (any previous process, any previous lane count)
            // are unobservable.
            if self.lregs.len() < need {
                self.lregs.resize(need, 0);
            }
        } else {
            self.lregs.clear();
            self.lregs.resize(need, 0);
        }
        self.lctrs.clear();
        self.lctrs.resize(tape.nctrs as usize * na, 0);
        self.lorig.clear();
        self.sticky.clear();
        self.sticky.resize(na, 0);
        // Cone prologue: packed state is two-state by construction, so
        // loads cannot fail.
        if na == self.k {
            // Unpeeled: lanes are contiguous, rows copy whole.
            for c in fast.cone.iter() {
                let base = c.reg as usize * na;
                let row = c.sig as usize * self.k;
                self.lregs[base..base + na].copy_from_slice(&self.packed[row..row + na]);
                self.lorig.extend_from_slice(&self.packed[row..row + na]);
            }
        } else {
            for c in fast.cone.iter() {
                let base = c.reg as usize * na;
                for (j, &lane) in self.active.iter().enumerate() {
                    let raw = self.packed[c.sig as usize * self.k + lane as usize];
                    self.lregs[base + j] = raw;
                    self.lorig.push(raw);
                }
            }
        }
        // Dispatch on the lane count so the hot monomorphizations run with
        // const-folded trip counts (unrolled, bounds-check-free, SIMD);
        // `0` is the any-width runtime fallback for peeled group sizes.
        let ops = steady.unwrap_or(&fast.ops);
        macro_rules! lane_ops {
            ($n:expr) => {
                run_lane_ops::<$n>(
                    k,
                    ops,
                    na,
                    &self.active,
                    &mut self.lregs,
                    &mut self.lctrs,
                    &mut self.sticky,
                    &mut self.lnba,
                    defer,
                )
            };
        }
        match na {
            4 => lane_ops!(4),
            8 => lane_ops!(8),
            16 => lane_ops!(16),
            32 => lane_ops!(32),
            64 => lane_ops!(64),
            _ => lane_ops!(0),
        }?;
        // A completed full-tape run wrote every invariant register: the
        // steady tape is valid until the lane count changes.
        if steady.is_none() && self.hoist[gi].is_some() {
            self.primed_na[gi] = na;
        }
        // Commit epilogue (mirrors the scalar fast epilogue per lane).
        let dirty = if sweep { &mut self.curr_dirty } else { &mut self.prev_dirty };
        if na == self.k {
            // Unpeeled fast path: whole-row compare and copy. Copying the
            // unchanged lanes of a changed row rewrites identical values,
            // and folding sticky to "any lane" marks the same dirty set
            // the per-lane form would.
            for (i, c) in fast.cone.iter().enumerate() {
                if !c.written {
                    continue;
                }
                let base = c.reg as usize * na;
                let row = c.sig as usize * self.k;
                let news = &self.lregs[base..base + na];
                if news != &self.lorig[i * na..(i + 1) * na] {
                    self.packed[row..row + na].copy_from_slice(news);
                    dirty.set(c.sig);
                    self.changed = true;
                } else if self.sticky[..na].iter().any(|&m| m & (1 << i) != 0) {
                    // Change-then-revert: dirty without affecting the
                    // fixpoint (the committed value is unchanged).
                    dirty.set(c.sig);
                }
            }
        } else {
            for (i, c) in fast.cone.iter().enumerate() {
                let base = c.reg as usize * na;
                for (j, &lane) in self.active.iter().enumerate() {
                    let new = self.lregs[base + j];
                    let slot = c.sig as usize * self.k + lane as usize;
                    if c.written && new != self.lorig[i * na + j] {
                        self.packed[slot] = new;
                        dirty.set(c.sig);
                        self.changed = true;
                    } else if c.written && self.sticky[j] & (1 << i) != 0 {
                        // Change-then-revert: dirty without affecting the
                        // fixpoint (the committed value is unchanged).
                        dirty.set(c.sig);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Whether a fast tape provably writes every virtual register before
/// reading it (cone registers count as written by the load prologue).
/// Conservative: any control flow fails the scan. A `true` result lets the
/// lane executor reuse its register file across runs without re-zeroing —
/// stale values are unobservable when every read follows a write.
fn tape_zero_safe(fast: &FastTape) -> bool {
    let mut written = vec![false; fast.nregs as usize];
    for c in fast.cone.iter() {
        written[c.reg as usize] = true;
    }
    for op in fast.ops.iter() {
        macro_rules! rw {
            ([$($r:expr),*] -> [$($w:expr),*]) => {{
                $(if !written[$r as usize] { return false; })*
                $(written[$w as usize] = true;)*
            }};
        }
        match op {
            FOp::Nop => {}
            FOp::Const { dst, .. } | FOp::Zero { dst } => rw!([] -> [*dst]),
            FOp::Copy { dst, src }
            | FOp::Not { dst, src, .. }
            | FOp::Neg { dst, src, .. }
            | FOp::LogNot { dst, src }
            | FOp::Reduce { dst, src, .. }
            | FOp::Resize { dst, src, .. }
            | FOp::ReplicateC { dst, src, .. }
            | FOp::Slice { dst, src, .. }
            | FOp::Clog2 { dst, src } => rw!([*src] -> [*dst]),
            FOp::Add { dst, a, b, .. }
            | FOp::Sub { dst, a, b, .. }
            | FOp::Mul { dst, a, b, .. }
            | FOp::Div { dst, a, b }
            | FOp::Mod { dst, a, b }
            | FOp::Pow { dst, a, b, .. }
            | FOp::And { dst, a, b }
            | FOp::Or { dst, a, b }
            | FOp::Xor { dst, a, b }
            | FOp::Xnor { dst, a, b, .. }
            | FOp::Lt { dst, a, b, .. }
            | FOp::Eq { dst, a, b, .. }
            | FOp::LogAnd { dst, a, b }
            | FOp::LogOr { dst, a, b }
            | FOp::Shl { dst, a, b, .. }
            | FOp::Shr { dst, a, b, .. }
            | FOp::Ashr { dst, a, b, .. } => rw!([*a, *b] -> [*dst]),
            FOp::Concat { dst, parts } => {
                if !parts.iter().all(|&(r, _)| written[r as usize]) {
                    return false;
                }
                rw!([] -> [*dst]);
            }
            FOp::IndexSig { dst, shadow, idx, .. } => rw!([*shadow, *idx] -> [*dst]),
            FOp::IndexVal { dst, base, idx, .. } => rw!([*base, *idx] -> [*dst]),
            FOp::SelectSigW { dst, shadow, left, .. } => rw!([*shadow, *left] -> [*dst]),
            FOp::SelectValW { dst, base, left, .. } => rw!([*base, *left] -> [*dst]),
            FOp::StoreWhole { shadow, src, .. } | FOp::StoreBitsC { shadow, src, .. } => {
                rw!([*src, *shadow] -> [*shadow]);
            }
            FOp::StoreIndexSig { shadow, idx, src, .. } => rw!([*idx, *src, *shadow] -> [*shadow]),
            FOp::StoreLocal { slot, src, .. } => rw!([*src] -> [*slot]),
            FOp::StoreLocalBits { slot, idx, src, .. } => rw!([*slot, *idx, *src] -> [*slot]),
            FOp::StoreLocalBitsC { slot, src, .. } => rw!([*slot, *src] -> [*slot]),
            // Control flow (or an op an eligible tape can't contain):
            // conservative fail.
            _ => return false,
        }
    }
    true
}

/// Splits loop-invariant ops out of a zero-safe fast tape: returns the
/// steady-state op list (invariant ops removed) when at least one op can be
/// hoisted, else `None`.
///
/// An op is invariant when it is pure and infallible, every source register
/// is itself invariant, and its destination is written exactly once in the
/// whole tape (cone loads count as writes, so anything derived from signal
/// state stays variant). Such an op recomputes the identical value on every
/// run; under zero-safe register reuse its result persists in the register
/// file, so after one full priming run at a given lane count the steady
/// tape can skip it. Fallible ops (divide, range-checked indexing) are
/// never hoisted — their per-run peel checks must keep firing.
fn hoist_split(fast: &FastTape) -> Option<Vec<FOp>> {
    let mut writes = vec![0u32; fast.nregs as usize];
    for c in fast.cone.iter() {
        writes[c.reg as usize] += 1;
    }
    for op in fast.ops.iter() {
        macro_rules! w {
            ($($r:expr),*) => {{ $(writes[$r as usize] += 1;)* }};
        }
        match op {
            FOp::Nop => {}
            FOp::Const { dst, .. } | FOp::Zero { dst } => w!(*dst),
            FOp::Copy { dst, .. }
            | FOp::Not { dst, .. }
            | FOp::Neg { dst, .. }
            | FOp::LogNot { dst, .. }
            | FOp::Reduce { dst, .. }
            | FOp::Resize { dst, .. }
            | FOp::ReplicateC { dst, .. }
            | FOp::Slice { dst, .. }
            | FOp::Clog2 { dst, .. }
            | FOp::Add { dst, .. }
            | FOp::Sub { dst, .. }
            | FOp::Mul { dst, .. }
            | FOp::Div { dst, .. }
            | FOp::Mod { dst, .. }
            | FOp::Pow { dst, .. }
            | FOp::And { dst, .. }
            | FOp::Or { dst, .. }
            | FOp::Xor { dst, .. }
            | FOp::Xnor { dst, .. }
            | FOp::Lt { dst, .. }
            | FOp::Eq { dst, .. }
            | FOp::LogAnd { dst, .. }
            | FOp::LogOr { dst, .. }
            | FOp::Shl { dst, .. }
            | FOp::Shr { dst, .. }
            | FOp::Ashr { dst, .. }
            | FOp::Concat { dst, .. }
            | FOp::IndexSig { dst, .. }
            | FOp::IndexVal { dst, .. }
            | FOp::SelectSigW { dst, .. }
            | FOp::SelectValW { dst, .. } => w!(*dst),
            FOp::StoreWhole { shadow, .. }
            | FOp::StoreBitsC { shadow, .. }
            | FOp::StoreIndexSig { shadow, .. } => w!(*shadow),
            FOp::StoreLocal { slot, .. }
            | FOp::StoreLocalBits { slot, .. }
            | FOp::StoreLocalBitsC { slot, .. } => w!(*slot),
            // Control flow or an op an eligible zero-safe tape can't hold.
            _ => return None,
        }
    }
    let mut inv = vec![false; fast.nregs as usize];
    let mut steady: Vec<FOp> = Vec::with_capacity(fast.ops.len());
    let mut hoisted = 0usize;
    for op in fast.ops.iter() {
        // `try_hoist!(dst; reads...)`: hoists when the dst is single-write
        // and every read invariant; otherwise marks the dst variant.
        macro_rules! try_hoist {
            ($dst:expr $(; $($r:expr),*)?) => {{
                let ok = writes[$dst as usize] == 1 $($(&& inv[$r as usize])*)?;
                inv[$dst as usize] = ok;
                ok
            }};
        }
        let hoist = match op {
            FOp::Const { dst, .. } | FOp::Zero { dst } => try_hoist!(*dst),
            FOp::Copy { dst, src }
            | FOp::Not { dst, src, .. }
            | FOp::Neg { dst, src, .. }
            | FOp::LogNot { dst, src }
            | FOp::Reduce { dst, src, .. }
            | FOp::Resize { dst, src, .. }
            | FOp::ReplicateC { dst, src, .. }
            | FOp::Slice { dst, src, .. }
            | FOp::Clog2 { dst, src } => try_hoist!(*dst; *src),
            FOp::Add { dst, a, b, .. }
            | FOp::Sub { dst, a, b, .. }
            | FOp::Mul { dst, a, b, .. }
            | FOp::Pow { dst, a, b, .. }
            | FOp::And { dst, a, b }
            | FOp::Or { dst, a, b }
            | FOp::Xor { dst, a, b }
            | FOp::Xnor { dst, a, b, .. }
            | FOp::Lt { dst, a, b, .. }
            | FOp::Eq { dst, a, b, .. }
            | FOp::LogAnd { dst, a, b }
            | FOp::LogOr { dst, a, b }
            | FOp::Shl { dst, a, b, .. }
            | FOp::Shr { dst, a, b, .. }
            | FOp::Ashr { dst, a, b, .. } => try_hoist!(*dst; *a, *b),
            FOp::Concat { dst, parts } => {
                let ok = writes[*dst as usize] == 1
                    && parts.iter().all(|&(r, _)| inv[r as usize]);
                inv[*dst as usize] = ok;
                ok
            }
            // Fallible (peel-checked) or store/control ops stay put; any
            // register they write is variant.
            FOp::Div { dst, .. }
            | FOp::Mod { dst, .. }
            | FOp::IndexSig { dst, .. }
            | FOp::IndexVal { dst, .. }
            | FOp::SelectSigW { dst, .. }
            | FOp::SelectValW { dst, .. } => {
                inv[*dst as usize] = false;
                false
            }
            FOp::StoreWhole { shadow, .. }
            | FOp::StoreBitsC { shadow, .. }
            | FOp::StoreIndexSig { shadow, .. } => {
                inv[*shadow as usize] = false;
                false
            }
            FOp::StoreLocal { slot, .. }
            | FOp::StoreLocalBits { slot, .. }
            | FOp::StoreLocalBitsC { slot, .. } => {
                inv[*slot as usize] = false;
                false
            }
            _ => false,
        };
        if hoist {
            hoisted += 1;
        } else {
            steady.push(op.clone());
        }
    }
    (hoisted > 0).then_some(steady)
}

/// Packs an input value for a `width`-bit signal into a two-state `u64`
/// without allocating in the common case, matching `resize(width).to_u64()`
/// exactly (`None` = the value carries x into the kept bits).
fn pack_input(v: &LogicVec, width: u32) -> Option<u64> {
    match v.to_u64() {
        Some(raw) if v.width() > width => Some(raw & bitmask(width)),
        Some(raw) => Some(raw),
        // x somewhere: the truncating resize may still drop it.
        None => v.resize(width).to_u64(),
    }
}

/// Splits two distinct na-aligned register blocks out of the flat file as
/// simultaneous mutable slices (blocks either coincide or are disjoint, so
/// distinct starts cannot overlap).
#[inline(always)]
fn two_blocks(lregs: &mut [u64], na: usize, x: usize, y: usize) -> (&mut [u64], &mut [u64]) {
    debug_assert_ne!(x, y);
    if x < y {
        let (lo, hi) = lregs.split_at_mut(y);
        (&mut lo[x..x + na], &mut hi[..na])
    } else {
        let (lo, hi) = lregs.split_at_mut(x);
        (&mut hi[..na], &mut lo[y..y + na])
    }
}

/// Splits three pairwise-distinct na-aligned blocks, returned in `(d, a,
/// b)` argument order.
#[inline(always)]
fn three_blocks(
    lregs: &mut [u64],
    na: usize,
    d: usize,
    a: usize,
    b: usize,
) -> (&mut [u64], &mut [u64], &mut [u64]) {
    let mut order = [d, a, b];
    order.sort_unstable();
    let [p0, p1, p2] = order;
    let (r0, rest) = lregs[p0..].split_at_mut(p1 - p0);
    let (r1, r2) = rest.split_at_mut(p2 - p1);
    let (mut sd, mut sa, mut sb) = (None, None, None);
    for (pos, sl) in [(p0, &mut r0[..na]), (p1, &mut r1[..na]), (p2, &mut r2[..na])] {
        if pos == d {
            sd = Some(sl);
        } else if pos == a {
            sa = Some(sl);
        } else {
            sb = Some(sl);
        }
    }
    (sd.expect("dst block"), sa.expect("a block"), sb.expect("b block"))
}

/// Lane-wise binary op. With a const lane count (`NA != 0`) the sources
/// are staged through exact-size stack arrays: the copies are unrolled
/// `memcpy`s, the compute loop is branch-free with no bounds checks and no
/// aliasing hazard, and it auto-vectorizes — which is where the
/// bit-parallel win over N scalar runs comes from. The runtime-width
/// fallback (`NA == 0`, peeled group sizes) splits the na-aligned register
/// blocks into disjoint borrows instead.
#[inline(always)]
fn bin<const NA: usize>(
    lregs: &mut [u64],
    na: usize,
    dst: VReg,
    a: VReg,
    b: VReg,
    f: impl Fn(u64, u64) -> u64,
) {
    let (d0, ai, bi) = (dst as usize * na, a as usize * na, b as usize * na);
    if NA != 0 {
        if d0 != ai && d0 != bi && ai != bi {
            // Distinct blocks (the common case): compute straight through
            // fixed-size disjoint views — no staging traffic, no bounds
            // checks, vectorizes.
            let (d, a, b) = three_blocks(lregs, na, d0, ai, bi);
            let d: &mut [u64; NA] = d.try_into().expect("block size");
            let a: &[u64; NA] = (&*a).try_into().expect("block size");
            let b: &[u64; NA] = (&*b).try_into().expect("block size");
            for i in 0..NA {
                d[i] = f(a[i], b[i]);
            }
        } else {
            // Aliased: stage the sources through exact-size stack copies.
            let mut xs = [0u64; NA];
            let mut ys = [0u64; NA];
            xs.copy_from_slice(&lregs[ai..ai + NA]);
            ys.copy_from_slice(&lregs[bi..bi + NA]);
            let out = &mut lregs[d0..d0 + NA];
            for i in 0..NA {
                out[i] = f(xs[i], ys[i]);
            }
        }
    } else if d0 == ai || d0 == bi || ai == bi {
        // In-place: elementwise forward, so read-before-write per lane.
        for j in 0..na {
            lregs[d0 + j] = f(lregs[ai + j], lregs[bi + j]);
        }
    } else {
        let (d, a, b) = three_blocks(lregs, na, d0, ai, bi);
        for (dv, (&av, &bv)) in d.iter_mut().zip(a.iter().zip(b.iter())) {
            *dv = f(av, bv);
        }
    }
}

/// Lane-wise unary op (same staging scheme as [`bin`]).
#[inline(always)]
fn un<const NA: usize>(lregs: &mut [u64], na: usize, dst: VReg, src: VReg, f: impl Fn(u64) -> u64) {
    let (d0, s) = (dst as usize * na, src as usize * na);
    if NA != 0 {
        if d0 != s {
            let (d, x) = two_blocks(lregs, na, d0, s);
            let d: &mut [u64; NA] = d.try_into().expect("block size");
            let x: &[u64; NA] = (&*x).try_into().expect("block size");
            for i in 0..NA {
                d[i] = f(x[i]);
            }
        } else {
            let d: &mut [u64; NA] = (&mut lregs[d0..d0 + NA]).try_into().expect("block size");
            for v in d.iter_mut() {
                *v = f(*v);
            }
        }
    } else if d0 == s {
        for v in &mut lregs[d0..d0 + na] {
            *v = f(*v);
        }
    } else {
        let (d, x) = two_blocks(lregs, na, d0, s);
        for (dv, &xv) in d.iter_mut().zip(x.iter()) {
            *dv = f(xv);
        }
    }
}

/// Per-lane predicate mask over the dense lanes.
#[inline(always)]
fn pred_mask<const NA: usize>(lregs: &[u64], na: usize, r: VReg, f: impl Fn(u64) -> bool) -> u64 {
    let base = r as usize * na;
    let n = if NA == 0 { na } else { NA };
    lregs[base..base + n]
        .iter()
        .enumerate()
        .fold(0u64, |m, (j, &v)| m | (u64::from(f(v)) << j))
}

/// Resolves a divergent branch mask to the minority side to peel (ties
/// peel the taken side, deterministically).
fn minority(mask: u64, na: usize) -> PeelMask {
    let ones = mask.count_ones() as usize;
    let full = if na == 64 { u64::MAX } else { (1u64 << na) - 1 };
    if ones * 2 <= na {
        mask
    } else {
        !mask & full
    }
}

/// The packed op loop: every data op runs lane-wise; control flow must be
/// lane-uniform or the pass aborts with the minority lanes to peel. Any
/// per-lane condition the scalar fast path would bail on (zero divisor,
/// out-of-range select) aborts with exactly the offending lanes.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_lane_ops<const NA: usize>(
    k: &Kernel,
    ops: &[FOp],
    na: usize,
    active: &[u32],
    lregs: &mut [u64],
    lctrs: &mut [u64],
    sticky: &mut [u64],
    lnba: &mut Vec<(u32, LaneNba)>,
    defer: bool,
) -> Result<(), PeelMask> {
    // With a non-zero monomorphization the compiler sees every lane loop's
    // trip count as a constant (the helpers are `#[inline]`, so the
    // constant propagates through them too).
    let na = if NA == 0 { na } else { NA };
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            FOp::Nop => {}
            // Neither appears in an eligible (scalar, fallback-free) tape.
            FOp::Fallback | FOp::ConstW { .. } => {
                return Err(if na == 64 { u64::MAX } else { (1 << na) - 1 })
            }
            FOp::Const { dst, val } => {
                lregs[*dst as usize * na..(*dst as usize + 1) * na].fill(*val);
            }
            FOp::Copy { dst, src } => un::<NA>(lregs, na, *dst, *src, |v| v),
            FOp::Not { dst, src, w } => {
                let m = bitmask(*w);
                un::<NA>(lregs, na, *dst, *src, |v| !v & m);
            }
            FOp::Neg { dst, src, w } => {
                let m = bitmask(*w);
                un::<NA>(lregs, na, *dst, *src, |v| v.wrapping_neg() & m);
            }
            FOp::LogNot { dst, src } => un::<NA>(lregs, na, *dst, *src, |v| u64::from(v == 0)),
            FOp::Reduce { dst, src, w, kind, neg } => {
                let m = bitmask(*w);
                let (kind, neg) = (*kind, *neg);
                un::<NA>(lregs, na, *dst, *src, |v| {
                    let bit = match kind {
                        0 => v == m,
                        1 => v != 0,
                        _ => v.count_ones() % 2 == 1,
                    };
                    u64::from(bit != neg)
                });
            }
            FOp::Add { dst, a, b, w } => {
                let m = bitmask(*w);
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x.wrapping_add(y) & m);
            }
            FOp::Sub { dst, a, b, w } => {
                let m = bitmask(*w);
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x.wrapping_sub(y) & m);
            }
            FOp::Mul { dst, a, b, w } => {
                let m = bitmask(*w);
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x.wrapping_mul(y) & m);
            }
            FOp::Div { dst, a, b } => {
                let zeros = pred_mask::<NA>(lregs, na, *b, |v| v == 0);
                if zeros != 0 {
                    return Err(zeros);
                }
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x / y);
            }
            FOp::Mod { dst, a, b } => {
                let zeros = pred_mask::<NA>(lregs, na, *b, |v| v == 0);
                if zeros != 0 {
                    return Err(zeros);
                }
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x % y);
            }
            FOp::Pow { dst, a, b, w } => {
                let m = bitmask(*w);
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| {
                    let mut acc: u64 = 1;
                    for _ in 0..y.min(128) {
                        acc = acc.wrapping_mul(x);
                    }
                    acc & m
                });
            }
            FOp::And { dst, a, b } => bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x & y),
            FOp::Or { dst, a, b } => bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x | y),
            FOp::Xor { dst, a, b } => bin::<NA>(lregs, na, *dst, *a, *b, |x, y| x ^ y),
            FOp::Xnor { dst, a, b, w } => {
                let m = bitmask(*w);
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| !(x ^ y) & m);
            }
            FOp::Lt { dst, a, b, neg } => {
                let neg = *neg;
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| u64::from((x < y) != neg));
            }
            FOp::Eq { dst, a, b, neg } => {
                let neg = *neg;
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| u64::from((x == y) != neg));
            }
            FOp::LogAnd { dst, a, b } => {
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| u64::from(x != 0 && y != 0));
            }
            FOp::LogOr { dst, a, b } => {
                bin::<NA>(lregs, na, *dst, *a, *b, |x, y| u64::from(x != 0 || y != 0));
            }
            FOp::Shl { dst, a, b, w } => {
                let w = *w;
                bin::<NA>(lregs, na, *dst, *a, *b, |x, n| {
                    if n >= u64::from(w) {
                        0
                    } else {
                        (x << n) & bitmask(w)
                    }
                });
            }
            FOp::Shr { dst, a, b, w } => {
                let w = *w;
                bin::<NA>(lregs, na, *dst, *a, *b, |x, n| if n >= u64::from(w) { 0 } else { x >> n });
            }
            FOp::Ashr { dst, a, b, w } => {
                let w = *w;
                bin::<NA>(lregs, na, *dst, *a, *b, |x, n| {
                    let m = bitmask(w);
                    let msb = (x >> (w - 1)) & 1;
                    if n >= u64::from(w) {
                        if msb == 1 {
                            m
                        } else {
                            0
                        }
                    } else {
                        let r = x >> n;
                        if msb == 1 {
                            r | (m & !bitmask(w - n as u32))
                        } else {
                            r
                        }
                    }
                });
            }
            FOp::Resize { dst, src, w } => {
                let m = bitmask(*w);
                un::<NA>(lregs, na, *dst, *src, |v| v & m);
            }
            FOp::Concat { dst, parts } => {
                let d = *dst as usize * na;
                if parts.iter().all(|&(r, _)| r as usize * na != d) {
                    // Destination is not a source: accumulate part-by-part
                    // straight into the dst block (vectorizes per part).
                    lregs[d..d + na].fill(0);
                    for &(r, w) in parts.iter() {
                        let (dsl, psl) = two_blocks(lregs, na, d, r as usize * na);
                        for (dv, &pv) in dsl.iter_mut().zip(psl.iter()) {
                            *dv = if w == 64 { pv } else { (*dv << w) | pv };
                        }
                    }
                } else {
                    for j in 0..na {
                        let mut acc = 0u64;
                        for &(r, w) in parts.iter() {
                            let v = lregs[r as usize * na + j];
                            acc = if w == 64 { v } else { (acc << w) | v };
                        }
                        lregs[d + j] = acc;
                    }
                }
            }
            FOp::ReplicateC { dst, src, count, w } => {
                let (count, w) = (*count, *w);
                un::<NA>(lregs, na, *dst, *src, |v| {
                    let mut acc = 0u64;
                    for _ in 0..count {
                        acc = if w == 64 { v } else { (acc << w) | v };
                    }
                    acc
                });
            }
            FOp::Slice { dst, src, lo, w } => {
                let (lo, m) = (*lo, bitmask(*w));
                un::<NA>(lregs, na, *dst, *src, |v| (v >> lo) & m);
            }
            FOp::IndexSig { dst, shadow, sig, idx } => {
                let def = &k.sigs[*sig as usize].def;
                let mut bad = 0u64;
                let (d, sh, ix) = (*dst as usize * na, *shadow as usize * na, *idx as usize * na);
                for j in 0..na {
                    match def.offset(lregs[ix + j] as i64) {
                        Some(off) => lregs[d + j] = (lregs[sh + j] >> off) & 1,
                        None => bad |= 1 << j,
                    }
                }
                if bad != 0 {
                    return Err(bad);
                }
            }
            FOp::IndexVal { dst, base, idx, basew } => {
                let bad = pred_mask::<NA>(lregs, na, *idx, |i| i >= u64::from(*basew));
                if bad != 0 {
                    return Err(bad);
                }
                bin::<NA>(lregs, na, *dst, *base, *idx, |v, i| (v >> i) & 1);
            }
            FOp::SelectSigW { dst, shadow, sig, left, span, mode } => {
                let def = &k.sigs[*sig as usize].def;
                let (span, mode) = (*span, *mode);
                let mut bad = 0u64;
                let (d, sh, lf) = (*dst as usize * na, *shadow as usize * na, *left as usize * na);
                for j in 0..na {
                    let (hi_idx, lo_idx) =
                        select_bounds(lregs[lf + j] as i64, i64::from(span), mode);
                    match (def.offset(hi_idx), def.offset(lo_idx)) {
                        (Some(a), Some(b)) => {
                            lregs[d + j] = (lregs[sh + j] >> a.min(b)) & bitmask(span);
                        }
                        _ => bad |= 1 << j,
                    }
                }
                if bad != 0 {
                    return Err(bad);
                }
            }
            FOp::SelectValW { dst, base, left, span, mode, basew } => {
                let (span, mode, basew) = (*span, *mode, *basew);
                let mut bad = 0u64;
                let (d, bs, lf) = (*dst as usize * na, *base as usize * na, *left as usize * na);
                for j in 0..na {
                    let (hi_idx, lo_idx) =
                        select_bounds(lregs[lf + j] as i64, i64::from(span), mode);
                    if lo_idx < 0 || hi_idx >= i64::from(basew) {
                        bad |= 1 << j;
                    } else {
                        lregs[d + j] = (lregs[bs + j] >> lo_idx as u32) & bitmask(span);
                    }
                }
                if bad != 0 {
                    return Err(bad);
                }
            }
            FOp::Clog2 { dst, src } => {
                un::<NA>(lregs, na, *dst, *src, |v| clog2(v as i64) as u64 & bitmask(32));
            }
            FOp::Zero { dst } => {
                lregs[*dst as usize * na..(*dst as usize + 1) * na].fill(0);
            }
            FOp::StoreWhole { shadow, cone, src, w, nb, sig } => {
                let m = bitmask(*w);
                let (sh, s) = (*shadow as usize * na, *src as usize * na);
                if *nb && defer {
                    for j in 0..na {
                        let raw = lregs[s + j] & m;
                        lnba.push((active[j], LaneNba { target: Target::Whole(*sig), raw }));
                    }
                } else if sh == s {
                    for (j, v) in lregs[sh..sh + na].iter_mut().enumerate() {
                        let raw = *v & m;
                        sticky[j] |= u64::from(*v != raw) << *cone;
                        *v = raw;
                    }
                } else {
                    // Branchless shadow update: an unconditional same-value
                    // store and a zero sticky-bit OR are no-ops, so this
                    // matches the compare-then-write form exactly.
                    let (shs, ss) = two_blocks(lregs, na, sh, s);
                    for (j, (shv, &sv)) in shs.iter_mut().zip(ss.iter()).enumerate() {
                        let raw = sv & m;
                        sticky[j] |= u64::from(*shv != raw) << *cone;
                        *shv = raw;
                    }
                }
            }
            FOp::StoreBitsC { shadow, cone, hi, lo, src, nb, sig } => {
                let span = *hi - *lo + 1;
                let (sh, s) = (*shadow as usize * na, *src as usize * na);
                for j in 0..na {
                    let chunk = lregs[s + j] & bitmask(span);
                    if *nb && defer {
                        lnba.push((active[j], LaneNba { target: Target::Bits(*sig, *hi, *lo), raw: chunk }));
                    } else {
                        let cur = lregs[sh + j];
                        let new = (cur & !(bitmask(span) << lo)) | (chunk << lo);
                        if new != cur {
                            sticky[j] |= 1 << *cone;
                            lregs[sh + j] = new;
                        }
                    }
                }
            }
            FOp::StoreIndexSig { shadow, cone, idx, src, nb, sig } => {
                let def = &k.sigs[*sig as usize].def;
                let (sh, s, ix) = (*shadow as usize * na, *src as usize * na, *idx as usize * na);
                for j in 0..na {
                    // Out-of-range indices drop the write, like the tree.
                    let Some(off) = def.offset(lregs[ix + j] as i64) else { continue };
                    let b = lregs[s + j] & 1;
                    if *nb && defer {
                        lnba.push((active[j], LaneNba { target: Target::Bits(*sig, off, off), raw: b }));
                    } else {
                        let cur = lregs[sh + j];
                        let new = (cur & !(1u64 << off)) | (b << off);
                        if new != cur {
                            sticky[j] |= 1 << *cone;
                            lregs[sh + j] = new;
                        }
                    }
                }
            }
            FOp::StoreLocal { slot, src, w } => {
                let m = bitmask(*w);
                un::<NA>(lregs, na, *slot, *src, |v| v & m);
            }
            FOp::StoreLocalBits { slot, idx, src, slotw } => {
                let (sl, ix, s) = (*slot as usize * na, *idx as usize * na, *src as usize * na);
                for j in 0..na {
                    // The truncating cast matches the tree's `v as u32`.
                    let i = lregs[ix + j] as u32;
                    if i < *slotw {
                        let b = lregs[s + j] & 1;
                        lregs[sl + j] = (lregs[sl + j] & !(1u64 << i)) | (b << i);
                    }
                }
            }
            FOp::StoreLocalBitsC { slot, hi, lo, src } => {
                let span = *hi - *lo + 1;
                let (lo, m) = (*lo, bitmask(span));
                let (sl, s) = (*slot as usize * na, *src as usize * na);
                for j in 0..na {
                    let chunk = lregs[s + j] & m;
                    lregs[sl + j] = (lregs[sl + j] & !(m << lo)) | (chunk << lo);
                }
            }
            FOp::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            FOp::BranchTruthy { cond, on_true, on_false } => {
                let mask = pred_mask::<NA>(lregs, na, *cond, |v| v != 0);
                pc = if mask == 0 {
                    *on_false as usize
                } else if mask.count_ones() as usize == na {
                    *on_true as usize
                } else {
                    return Err(minority(mask, na));
                };
                continue;
            }
            FOp::BranchMatchC { scrut, cmp, care, on_hit } => {
                let (cmp, care) = (*cmp, *care);
                let mask = pred_mask::<NA>(lregs, na, *scrut, |v| (v ^ cmp) & care == 0);
                if mask.count_ones() as usize == na {
                    pc = *on_hit as usize;
                    continue;
                }
                if mask != 0 {
                    return Err(minority(mask, na));
                }
            }
            FOp::BranchMatchR { scrut, label, on_hit } => {
                let (sc, lb) = (*scrut as usize * na, *label as usize * na);
                let mut mask = 0u64;
                for j in 0..na {
                    mask |= u64::from(lregs[sc + j] == lregs[lb + j]) << j;
                }
                if mask.count_ones() as usize == na {
                    pc = *on_hit as usize;
                    continue;
                }
                if mask != 0 {
                    return Err(minority(mask, na));
                }
            }
            FOp::ZeroCtr { ctr } => {
                lctrs[*ctr as usize * na..(*ctr as usize + 1) * na].fill(0);
            }
            FOp::IncCtrJumpLt { ctr, limit, to } => {
                let base = *ctr as usize * na;
                let mut mask = 0u64;
                for j in 0..na {
                    lctrs[base + j] += 1;
                    mask |= u64::from(lctrs[base + j] < u64::from(*limit)) << j;
                }
                if mask.count_ones() as usize == na {
                    pc = *to as usize;
                    continue;
                }
                if mask != 0 {
                    return Err(minority(mask, na));
                }
            }
            FOp::RepeatInit { ctr, count } => {
                let (base, c) = (*ctr as usize * na, *count as usize * na);
                for j in 0..na {
                    lctrs[base + j] = lregs[c + j].min(MAX_LOOP as u64);
                }
            }
            FOp::BranchCtrZeroDec { ctr, on_zero } => {
                let base = *ctr as usize * na;
                let mut mask = 0u64;
                for j in 0..na {
                    mask |= u64::from(lctrs[base + j] == 0) << j;
                }
                if mask.count_ones() as usize == na {
                    pc = *on_zero as usize;
                    continue;
                }
                if mask != 0 {
                    return Err(minority(mask, na));
                }
                for j in 0..na {
                    lctrs[base + j] -= 1;
                }
            }
        }
        pc += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    use super::*;
    use crate::interp::force_sim_lanes;
    use crate::testbench::{
        random_stimuli, run_testbench, run_testbench_seeds, Clocking, ReferenceModel,
    };
    use rtlfixer_verilog::compile;

    /// Serialises tests that flip the lane force-override (or assert that
    /// packing actually happened) against each other.
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `run_testbench_seeds` and asserts every lane's result is
    /// identical to a solo `run_testbench` of that lane.
    fn assert_matches_solo(
        src: &str,
        top: &str,
        make_model: &dyn Fn() -> Box<dyn ReferenceModel>,
        stimuli: &[Vec<BTreeMap<String, LogicVec>>],
        clocking: &Clocking,
    ) {
        let analysis = compile(src);
        let mut models: Vec<Box<dyn ReferenceModel>> =
            (0..stimuli.len()).map(|_| make_model()).collect();
        let packed = run_testbench_seeds(&analysis, top, &mut models, stimuli, clocking);
        assert_eq!(packed.len(), stimuli.len());
        for (lane, stim) in stimuli.iter().enumerate() {
            let mut solo = make_model();
            let want = run_testbench(&analysis, top, solo.as_mut(), stim, clocking);
            match (&packed[lane], &want) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "lane {lane} diverged from solo run"),
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "lane {lane} error diverged");
                }
                (a, b) => panic!("lane {lane}: packed {a:?} vs solo {b:?}"),
            }
        }
    }

    const ACC_SRC: &str = "module acc(input clk, input [7:0] d, output reg [15:0] q);\n\
         always @(posedge clk) q <= (q + d) ^ (q >> 2);\nendmodule";

    struct AccModel {
        q: u64,
    }

    impl ReferenceModel for AccModel {
        fn reset(&mut self) {
            self.q = 0;
        }
        fn step(&mut self, inputs: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec> {
            let d = inputs["d"].to_u64().unwrap_or(0);
            self.q = ((self.q + d) ^ (self.q >> 2)) & 0xffff;
            BTreeMap::from([("q".to_owned(), LogicVec::from_u64(16, self.q))])
        }
    }

    fn acc_stimuli(seeds: &[u64], cycles: usize) -> Vec<Vec<BTreeMap<String, LogicVec>>> {
        let ports = vec![("d".to_owned(), 8)];
        seeds.iter().map(|&s| random_stimuli(&ports, cycles, s)).collect()
    }

    #[test]
    #[ignore = "diagnostic: prints tape shape for the lane probe design"]
    fn debug_tape_shape() {
        let src = "module crc16f(input clk, input [7:0] d,\n\
                   output reg [15:0] crc);\n\
                   integer i;\n\
                   reg [15:0] c;\n\
                   always @(posedge clk) begin\n\
                     c = crc;\n\
                     for (i = 0; i < 8; i = i + 1)\n\
                       c = {c[14:0], 1'b0} ^ ({16{c[15] ^ d[7 - i]}} & 16'h1021);\n\
                     crc <= c ^ {8'h00, d};\n\
                   end\nendmodule";
        let analysis = compile(src);
        let runner = LaneRunner::try_new(&analysis, "crc16f", 16).expect("packs");
        println!("nsigs={}", runner.kernel.sigs.len());
        for (i, p) in runner.kernel.seq.iter().enumerate() {
            let fast = p.tape.as_ref().unwrap().fast.as_ref().unwrap();
            println!(
                "seq[{i}]: ops={} nregs={} cone={} nctrs={}",
                fast.ops.len(),
                fast.nregs,
                fast.cone.len(),
                p.tape.as_ref().unwrap().nctrs,
            );
            let mut hist: BTreeMap<String, usize> = BTreeMap::new();
            for op in fast.ops.iter() {
                let name = format!("{op:?}");
                let key = name.split([' ', '(', '{']).next().unwrap().to_owned();
                *hist.entry(key).or_default() += 1;
            }
            println!("{hist:?}");
        }
    }

    #[test]
    fn sixteen_seeds_match_solo_runs_branch_free() {
        let seeds: Vec<u64> = (1..=16).collect();
        assert_matches_solo(
            ACC_SRC,
            "acc",
            &|| Box::new(AccModel { q: 0 }),
            &acc_stimuli(&seeds, 40),
            &Clocking::Sequential { clock: "clk".into() },
        );
    }

    #[test]
    fn divergent_reset_branch_matches_solo_runs() {
        // `if (rst)` diverges across lanes, forcing minority peels.
        let src = "module rctr(input clk, input rst, input [7:0] d, output reg [15:0] q);\n\
             always @(posedge clk) begin\n\
               if (rst) q <= 0; else q <= q + d;\n\
             end\nendmodule";
        struct M {
            q: u64,
        }
        impl ReferenceModel for M {
            fn reset(&mut self) {
                self.q = 0;
            }
            fn step(&mut self, i: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec> {
                if i["rst"].to_u64() == Some(1) {
                    self.q = 0;
                } else {
                    self.q = (self.q + i["rst"].to_u64().map_or(0, |_| i["d"].to_u64().unwrap_or(0))) & 0xffff;
                }
                BTreeMap::from([("q".to_owned(), LogicVec::from_u64(16, self.q))])
            }
        }
        let ports = vec![("rst".to_owned(), 1), ("d".to_owned(), 8)];
        let stimuli: Vec<_> = (1..=8u64).map(|s| random_stimuli(&ports, 30, s)).collect();
        assert_matches_solo(
            src,
            "rctr",
            &|| Box::new(M { q: 0 }),
            &stimuli,
            &Clocking::Sequential { clock: "clk".into() },
        );
    }

    #[test]
    fn division_by_zero_lanes_peel_and_match_solo() {
        let src = "module dv(input [7:0] a, input [7:0] b, output [7:0] q);\n\
             assign q = a / b;\nendmodule";
        let make = || -> Box<dyn ReferenceModel> {
            Box::new(|i: &BTreeMap<String, LogicVec>| {
                let (a, b) = (i["a"].to_u64().unwrap(), i["b"].to_u64().unwrap());
                let q = a.checked_div(b).map_or_else(|| LogicVec::xs(8), |q| LogicVec::from_u64(8, q));
                BTreeMap::from([("q".to_owned(), q)])
            })
        };
        // Lane 2 divides by zero on cycle 1; lane 5 on every cycle.
        let frame = |a: u64, b: u64| {
            BTreeMap::from([
                ("a".to_owned(), LogicVec::from_u64(8, a)),
                ("b".to_owned(), LogicVec::from_u64(8, b)),
            ])
        };
        let stimuli: Vec<Vec<_>> = (0..8u64)
            .map(|lane| {
                (0..6u64)
                    .map(|c| {
                        let b = if lane == 5 || (lane == 2 && c == 1) { 0 } else { lane + c + 1 };
                        frame(lane * 31 + c * 7 + 3, b)
                    })
                    .collect()
            })
            .collect();
        assert_matches_solo(src, "dv", &make, &stimuli, &Clocking::Combinational);
    }

    #[test]
    fn x_poke_peels_lane_and_matches_solo() {
        let src = "module xr(input [7:0] a, output [7:0] y);\n\
             assign y = a ^ 8'h5a;\nendmodule";
        let make = || -> Box<dyn ReferenceModel> {
            Box::new(|i: &BTreeMap<String, LogicVec>| {
                let y = i["a"].xor(&LogicVec::from_u64(8, 0x5a));
                BTreeMap::from([("y".to_owned(), y)])
            })
        };
        let mut stimuli: Vec<Vec<BTreeMap<String, LogicVec>>> = (0..4u64)
            .map(|lane| {
                (0..5u64)
                    .map(|c| {
                        BTreeMap::from([(
                            "a".to_owned(),
                            LogicVec::from_u64(8, lane * 13 + c),
                        )])
                    })
                    .collect()
            })
            .collect();
        // Lane 1 cycle 2 drives x bits, which the packed engine cannot hold.
        stimuli[1][2].insert("a".to_owned(), LogicVec::xs(8));
        assert_matches_solo(src, "xr", &make, &stimuli, &Clocking::Combinational);
    }

    #[test]
    fn memory_designs_fall_back_to_scalar() {
        // An unpacked array makes the design ineligible for packing; the
        // seed API must still work (scalar loop) and match solo runs.
        let src = "module mem(input clk, input [1:0] wa, input [7:0] wd, output reg [7:0] q);\n\
             reg [7:0] m [0:3];\n\
             always @(posedge clk) begin m[wa] <= wd; q <= m[0]; end\nendmodule";
        struct M {
            m: [u64; 4],
            q: Option<u64>,
            seen: [bool; 4],
        }
        impl ReferenceModel for M {
            fn reset(&mut self) {
                *self = M { m: [0; 4], q: None, seen: [false; 4] };
            }
            fn step(&mut self, i: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec> {
                let q = if self.seen[0] { Some(self.m[0]) } else { None };
                let wa = i["wa"].to_u64().unwrap() as usize;
                self.m[wa] = i["wd"].to_u64().unwrap();
                self.seen[wa] = true;
                self.q = q;
                let out = self.q.map_or_else(|| LogicVec::xs(8), |v| LogicVec::from_u64(8, v));
                BTreeMap::from([("q".to_owned(), out)])
            }
        }
        let ports = vec![("wa".to_owned(), 2), ("wd".to_owned(), 8)];
        let stimuli: Vec<_> = (1..=4u64).map(|s| random_stimuli(&ports, 12, s)).collect();
        assert_matches_solo(
            src,
            "mem",
            &|| Box::new(M { m: [0; 4], q: None, seen: [false; 4] }),
            &stimuli,
            &Clocking::Sequential { clock: "clk".into() },
        );
    }

    #[test]
    fn lane_kill_switch_forces_scalar_and_stays_identical() {
        let _guard = FORCE_LOCK.lock().unwrap();
        let analysis = compile(ACC_SRC);
        let seeds: Vec<u64> = (1..=6).collect();
        let stimuli = acc_stimuli(&seeds, 25);
        let clocking = Clocking::Sequential { clock: "clk".into() };
        let run = |stimuli: &[Vec<BTreeMap<String, LogicVec>>]| {
            let mut models: Vec<Box<dyn ReferenceModel>> =
                seeds.iter().map(|_| Box::new(AccModel { q: 0 }) as Box<dyn ReferenceModel>).collect();
            run_testbench_seeds(&analysis, "acc", &mut models, stimuli, &clocking)
                .into_iter()
                .map(|r| r.expect("runs"))
                .collect::<Vec<_>>()
        };
        force_sim_lanes(Some(false));
        assert!(LaneRunner::try_new(&analysis, "acc", 6).is_none(), "kill switch must gate try_new");
        let scalar = run(&stimuli);
        force_sim_lanes(Some(true));
        let packed = run(&stimuli);
        force_sim_lanes(None);
        assert_eq!(scalar, packed);
        assert!(packed.iter().all(|r| r.passed));
    }

    #[test]
    fn runner_reports_peels_on_divergence() {
        let _guard = FORCE_LOCK.lock().unwrap();
        let src = "module sel(input clk, input s, input [7:0] d, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (s) q <= q + d; else q <= q - d;\n\
             end\nendmodule";
        let analysis = compile(src);
        let mut runner = LaneRunner::try_new(&analysis, "sel", 4).expect("eligible design");
        // Two lanes take each side of the branch: the minority rule peels
        // (at least) two lanes over the run.
        for cycle in 0..3u64 {
            runner.begin_cycle();
            let s: Vec<LogicVec> =
                (0..4).map(|lane| LogicVec::from_u64(1, u64::from(lane % 2 == 0))).collect();
            let d: Vec<LogicVec> =
                (0..4).map(|lane| LogicVec::from_u64(8, lane + 2 * cycle + 1)).collect();
            runner.poke("s", &s.iter().map(Some).collect::<Vec<_>>());
            runner.poke("d", &d.iter().map(Some).collect::<Vec<_>>());
            runner.step(LaneAction::Clock("clk"));
        }
        let stats = runner.stats();
        assert!(stats.peels >= 2, "divergent branch must peel: {stats:?}");
        assert!(stats.lane_steps >= 12, "every lane-step accounted: {stats:?}");
        // And the peeled lanes' values still match fresh solo simulators.
        for lane in 0..4u64 {
            let mut sim = Simulator::new(&analysis, "sel").unwrap();
            sim.run_initial().unwrap();
            for cycle in 0..3u64 {
                sim.poke("s", LogicVec::from_u64(1, u64::from(lane % 2 == 0))).unwrap();
                sim.poke("d", LogicVec::from_u64(8, lane + 2 * cycle + 1)).unwrap();
                sim.clock_cycle("clk").unwrap();
            }
            assert_eq!(
                runner.peek("q", lane as usize),
                sim.peek("q"),
                "lane {lane} state diverged"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random seeds through the divergent-branch design: packed and
        /// solo transcripts must agree lane for lane.
        #[test]
        fn random_seed_packs_match_solo(base in proptest::prelude::any::<u64>(), k in 2usize..10) {
            let src = "module pr(input clk, input rst, input [7:0] d, output reg [15:0] q);\n\
                 always @(posedge clk) begin\n\
                   if (rst) q <= 16'h11; else q <= (q << 1) + d;\n\
                 end\nendmodule";
            struct M { q: u64 }
            impl ReferenceModel for M {
                fn reset(&mut self) { self.q = 0; }
                fn step(&mut self, i: &BTreeMap<String, LogicVec>) -> BTreeMap<String, LogicVec> {
                    self.q = if i["rst"].to_u64() == Some(1) {
                        0x11
                    } else {
                        ((self.q << 1) + i["d"].to_u64().unwrap_or(0)) & 0xffff
                    };
                    BTreeMap::from([("q".to_owned(), LogicVec::from_u64(16, self.q))])
                }
            }
            let ports = vec![("rst".to_owned(), 1), ("d".to_owned(), 8)];
            let stimuli: Vec<_> = (0..k as u64)
                .map(|lane| random_stimuli(&ports, 20, base ^ (lane * 0x9e37_79b9)))
                .collect();
            assert_matches_solo(
                src,
                "pr",
                &|| Box::new(M { q: 0 }),
                &stimuli,
                &Clocking::Sequential { clock: "clk".into() },
            );
        }
    }

    use proptest::prelude::{proptest, ProptestConfig};
}
