//! Threaded-dispatch execution of scalar (`limbs == 1`) fast tapes.
//!
//! Instead of re-matching the `FOp` discriminant on every step, the tape
//! is compiled once (lazily, cached on [`FastTape::thread`]) into a
//! parallel table of pre-bound handler functions — one `fn` pointer per
//! op. The inner loop is then
//!
//! ```text
//! pc = table[pc](ctx, &ops[pc], pc)
//! ```
//!
//! an indirect call through a per-op pointer, which lets the branch
//! predictor key each dispatch site off the op's own table slot
//! (classic token-threading) rather than funnelling every op through one
//! shared match jump. Handler bodies are copies of the scalar match arms
//! in [`crate::fast`] — semantics are pinned by the four-way invariance
//! matrix and the threaded-vs-interpreted A/B tests.
//!
//! A handler returning [`BAIL`] aborts the run exactly like the
//! interpreted loop's `return false`: strictly before any state mutation
//! (writes are buffered in cone shadows / `fnba`), so the caller re-runs
//! the four-state tape. The `RTLFIXER_SIM_THREADED` kill switch restores
//! the interpreted loop.

use rtlfixer_verilog::const_eval::clog2;

use crate::fast::{commit_cone, load_cone};
use crate::interp::{NbaWrite, StateValue, Target, WriteLog, select_bounds, MAX_LOOP};
use crate::lower::Kernel;
use crate::tape::{bitmask, FOp, FastTape};
use crate::value::LogicVec;

/// Sentinel "next pc" aborting the run (the real pc space is bounded by
/// `MAX_OPS` ≪ `u32::MAX`).
pub(crate) const BAIL: u32 = u32::MAX;

/// Execution context threaded through every handler.
pub(crate) struct FCtx<'a> {
    pub(crate) k: &'a Kernel,
    pub(crate) fregs: &'a mut [u64],
    pub(crate) fctrs: &'a mut [u64],
    pub(crate) fnba: &'a mut Vec<NbaWrite>,
    pub(crate) defer: bool,
    pub(crate) sticky: u64,
}

/// One pre-bound op handler: executes its op and returns the next pc.
pub(crate) type FHandler = fn(&mut FCtx<'_>, &FOp, u32) -> u32;

/// The compiled handler table (same indices as `FastTape::ops`).
pub(crate) type Handlers = Box<[FHandler]>;

/// Runs a scalar fast tape through its threaded handler table, building
/// the table on first use. Contract identical to
/// [`crate::fast::run_fast_tape`]`::<1>`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_threaded(
    k: &Kernel,
    state: &mut [StateValue],
    fast: &FastTape,
    nctrs: u32,
    fregs: &mut Vec<u64>,
    fctrs: &mut Vec<u64>,
    forig: &mut Vec<u64>,
    fnba: &mut Vec<NbaWrite>,
    nba: &mut Option<&mut Vec<NbaWrite>>,
    log: &mut Option<WriteLog<'_>>,
) -> bool {
    debug_assert_eq!(fast.limbs, 1);
    fregs.clear();
    fregs.resize(fast.nregs as usize, 0);
    fctrs.clear();
    fctrs.resize(nctrs as usize, 0);
    forig.clear();
    fnba.clear();
    if !load_cone::<1>(state, fast, fregs, forig) {
        return false;
    }
    let table = fast.thread.get_or_init(|| build(&fast.ops));
    let ops = &fast.ops;
    let n = ops.len() as u32;
    let mut ctx = FCtx { k, fregs, fctrs, fnba, defer: nba.is_some(), sticky: 0 };
    let mut pc = 0u32;
    while pc < n {
        let i = pc as usize;
        pc = table[i](&mut ctx, &ops[i], pc);
    }
    if pc == BAIL {
        return false;
    }
    let sticky = ctx.sticky;
    commit_cone::<1>(state, fast, fregs, forig, sticky, log);
    if let Some(queue) = nba {
        queue.append(fnba);
    } else {
        fnba.clear();
    }
    true
}

/// Compiles an op stream into its handler table.
pub(crate) fn build(ops: &[FOp]) -> Handlers {
    ops.iter().map(handler_for).collect()
}

fn handler_for(op: &FOp) -> FHandler {
    match op {
        FOp::Nop => |_, _, pc| pc + 1,
        // ConstW never appears under limbs == 1; bail defensively.
        FOp::Fallback | FOp::ConstW { .. } => |_, _, _| BAIL,
        FOp::Const { .. } => h_const,
        FOp::Copy { .. } => h_copy,
        FOp::Not { .. } => h_not,
        FOp::Neg { .. } => h_neg,
        FOp::LogNot { .. } => h_lognot,
        FOp::Reduce { .. } => h_reduce,
        FOp::Add { .. } => h_add,
        FOp::Sub { .. } => h_sub,
        FOp::Mul { .. } => h_mul,
        FOp::Div { .. } => h_div,
        FOp::Mod { .. } => h_mod,
        FOp::Pow { .. } => h_pow,
        FOp::And { .. } => h_and,
        FOp::Or { .. } => h_or,
        FOp::Xor { .. } => h_xor,
        FOp::Xnor { .. } => h_xnor,
        FOp::Lt { .. } => h_lt,
        FOp::Eq { .. } => h_eq,
        FOp::LogAnd { .. } => h_logand,
        FOp::LogOr { .. } => h_logor,
        FOp::Shl { .. } => h_shl,
        FOp::Shr { .. } => h_shr,
        FOp::Ashr { .. } => h_ashr,
        FOp::Resize { .. } => h_resize,
        FOp::Concat { .. } => h_concat,
        FOp::ReplicateC { .. } => h_replicate,
        FOp::Slice { .. } => h_slice,
        FOp::IndexSig { .. } => h_index_sig,
        FOp::IndexVal { .. } => h_index_val,
        FOp::SelectSigW { .. } => h_select_sig,
        FOp::SelectValW { .. } => h_select_val,
        FOp::Clog2 { .. } => h_clog2,
        FOp::Zero { .. } => h_zero,
        FOp::StoreWhole { .. } => h_store_whole,
        FOp::StoreBitsC { .. } => h_store_bits,
        FOp::StoreIndexSig { .. } => h_store_index,
        FOp::StoreLocal { .. } => h_store_local,
        FOp::StoreLocalBits { .. } => h_store_local_bits,
        FOp::StoreLocalBitsC { .. } => h_store_local_bits_c,
        FOp::Jump { .. } => h_jump,
        FOp::BranchTruthy { .. } => h_branch_truthy,
        FOp::BranchMatchC { .. } => h_branch_match_c,
        FOp::BranchMatchR { .. } => h_branch_match_r,
        FOp::ZeroCtr { .. } => h_zero_ctr,
        FOp::IncCtrJumpLt { .. } => h_inc_ctr,
        FOp::RepeatInit { .. } => h_repeat_init,
        FOp::BranchCtrZeroDec { .. } => h_ctr_zero_dec,
    }
}

// Each handler destructures its own variant; a mismatch (impossible by
// construction of the table) bails rather than panicking.

fn h_const(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Const { dst, val } = op else { return BAIL };
    c.fregs[*dst as usize] = *val;
    pc + 1
}

fn h_copy(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Copy { dst, src } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*src as usize];
    pc + 1
}

fn h_not(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Not { dst, src, w } = op else { return BAIL };
    c.fregs[*dst as usize] = !c.fregs[*src as usize] & bitmask(*w);
    pc + 1
}

fn h_neg(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Neg { dst, src, w } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*src as usize].wrapping_neg() & bitmask(*w);
    pc + 1
}

fn h_lognot(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::LogNot { dst, src } = op else { return BAIL };
    c.fregs[*dst as usize] = u64::from(c.fregs[*src as usize] == 0);
    pc + 1
}

fn h_reduce(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Reduce { dst, src, w, kind, neg } = op else { return BAIL };
    let r = c.fregs[*src as usize];
    let bit = match kind {
        0 => r == bitmask(*w),
        1 => r != 0,
        _ => r.count_ones() % 2 == 1,
    };
    c.fregs[*dst as usize] = u64::from(bit != *neg);
    pc + 1
}

fn h_add(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Add { dst, a, b, w } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize].wrapping_add(c.fregs[*b as usize]) & bitmask(*w);
    pc + 1
}

fn h_sub(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Sub { dst, a, b, w } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize].wrapping_sub(c.fregs[*b as usize]) & bitmask(*w);
    pc + 1
}

fn h_mul(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Mul { dst, a, b, w } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize].wrapping_mul(c.fregs[*b as usize]) & bitmask(*w);
    pc + 1
}

fn h_div(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Div { dst, a, b } = op else { return BAIL };
    let d = c.fregs[*b as usize];
    if d == 0 {
        return BAIL;
    }
    c.fregs[*dst as usize] = c.fregs[*a as usize] / d;
    pc + 1
}

fn h_mod(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Mod { dst, a, b } = op else { return BAIL };
    let d = c.fregs[*b as usize];
    if d == 0 {
        return BAIL;
    }
    c.fregs[*dst as usize] = c.fregs[*a as usize] % d;
    pc + 1
}

fn h_pow(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Pow { dst, a, b, w } = op else { return BAIL };
    let base = c.fregs[*a as usize];
    let mut acc: u64 = 1;
    for _ in 0..c.fregs[*b as usize].min(128) {
        acc = acc.wrapping_mul(base);
    }
    c.fregs[*dst as usize] = acc & bitmask(*w);
    pc + 1
}

fn h_and(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::And { dst, a, b } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize] & c.fregs[*b as usize];
    pc + 1
}

fn h_or(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Or { dst, a, b } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize] | c.fregs[*b as usize];
    pc + 1
}

fn h_xor(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Xor { dst, a, b } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*a as usize] ^ c.fregs[*b as usize];
    pc + 1
}

fn h_xnor(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Xnor { dst, a, b, w } = op else { return BAIL };
    c.fregs[*dst as usize] = !(c.fregs[*a as usize] ^ c.fregs[*b as usize]) & bitmask(*w);
    pc + 1
}

fn h_lt(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Lt { dst, a, b, neg } = op else { return BAIL };
    c.fregs[*dst as usize] = u64::from((c.fregs[*a as usize] < c.fregs[*b as usize]) != *neg);
    pc + 1
}

fn h_eq(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Eq { dst, a, b, neg } = op else { return BAIL };
    c.fregs[*dst as usize] = u64::from((c.fregs[*a as usize] == c.fregs[*b as usize]) != *neg);
    pc + 1
}

fn h_logand(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::LogAnd { dst, a, b } = op else { return BAIL };
    c.fregs[*dst as usize] = u64::from(c.fregs[*a as usize] != 0 && c.fregs[*b as usize] != 0);
    pc + 1
}

fn h_logor(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::LogOr { dst, a, b } = op else { return BAIL };
    c.fregs[*dst as usize] = u64::from(c.fregs[*a as usize] != 0 || c.fregs[*b as usize] != 0);
    pc + 1
}

fn h_shl(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Shl { dst, a, b, w } = op else { return BAIL };
    let n = c.fregs[*b as usize];
    c.fregs[*dst as usize] =
        if n >= u64::from(*w) { 0 } else { (c.fregs[*a as usize] << n) & bitmask(*w) };
    pc + 1
}

fn h_shr(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Shr { dst, a, b, w } = op else { return BAIL };
    let n = c.fregs[*b as usize];
    c.fregs[*dst as usize] = if n >= u64::from(*w) { 0 } else { c.fregs[*a as usize] >> n };
    pc + 1
}

fn h_ashr(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Ashr { dst, a, b, w } = op else { return BAIL };
    let n = c.fregs[*b as usize];
    let v = c.fregs[*a as usize];
    let mask = bitmask(*w);
    let msb = (v >> (*w - 1)) & 1;
    c.fregs[*dst as usize] = if n >= u64::from(*w) {
        if msb == 1 {
            mask
        } else {
            0
        }
    } else {
        let r = v >> n;
        if msb == 1 {
            r | (mask & !bitmask(*w - n as u32))
        } else {
            r
        }
    };
    pc + 1
}

fn h_resize(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Resize { dst, src, w } = op else { return BAIL };
    c.fregs[*dst as usize] = c.fregs[*src as usize] & bitmask(*w);
    pc + 1
}

fn h_concat(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Concat { dst, parts } = op else { return BAIL };
    let mut acc: u64 = 0;
    for &(r, w) in parts.iter() {
        // A 64-bit part can only be the sole part (total ≤ 64).
        acc = if w == 64 { c.fregs[r as usize] } else { (acc << w) | c.fregs[r as usize] };
    }
    c.fregs[*dst as usize] = acc;
    pc + 1
}

fn h_replicate(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::ReplicateC { dst, src, count, w } = op else { return BAIL };
    let v = c.fregs[*src as usize];
    let mut acc: u64 = 0;
    for _ in 0..*count {
        acc = if *w == 64 { v } else { (acc << *w) | v };
    }
    c.fregs[*dst as usize] = acc;
    pc + 1
}

fn h_slice(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Slice { dst, src, lo, w } = op else { return BAIL };
    c.fregs[*dst as usize] = (c.fregs[*src as usize] >> lo) & bitmask(*w);
    pc + 1
}

fn h_index_sig(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::IndexSig { dst, shadow, sig, idx } = op else { return BAIL };
    let i = c.fregs[*idx as usize] as i64;
    let Some(off) = c.k.sigs[*sig as usize].def.offset(i) else { return BAIL };
    c.fregs[*dst as usize] = (c.fregs[*shadow as usize] >> off) & 1;
    pc + 1
}

fn h_index_val(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::IndexVal { dst, base, idx, basew } = op else { return BAIL };
    let i = c.fregs[*idx as usize];
    if i >= u64::from(*basew) {
        return BAIL;
    }
    c.fregs[*dst as usize] = (c.fregs[*base as usize] >> i) & 1;
    pc + 1
}

fn h_select_sig(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::SelectSigW { dst, shadow, sig, left, span, mode } = op else { return BAIL };
    let l = c.fregs[*left as usize] as i64;
    let (hi_idx, lo_idx) = select_bounds(l, *span as i64, *mode);
    let def = &c.k.sigs[*sig as usize].def;
    let (Some(a), Some(b)) = (def.offset(hi_idx), def.offset(lo_idx)) else {
        return BAIL;
    };
    c.fregs[*dst as usize] = (c.fregs[*shadow as usize] >> a.min(b)) & bitmask(*span);
    pc + 1
}

fn h_select_val(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::SelectValW { dst, base, left, span, mode, basew } = op else { return BAIL };
    let l = c.fregs[*left as usize] as i64;
    let (hi_idx, lo_idx) = select_bounds(l, *span as i64, *mode);
    if lo_idx < 0 || hi_idx >= i64::from(*basew) {
        return BAIL;
    }
    c.fregs[*dst as usize] = (c.fregs[*base as usize] >> lo_idx as u32) & bitmask(*span);
    pc + 1
}

fn h_clog2(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Clog2 { dst, src } = op else { return BAIL };
    c.fregs[*dst as usize] = clog2(c.fregs[*src as usize] as i64) as u64 & bitmask(32);
    pc + 1
}

fn h_zero(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::Zero { dst } = op else { return BAIL };
    c.fregs[*dst as usize] = 0;
    pc + 1
}

fn h_store_whole(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreWhole { shadow, cone, src, w, nb, sig } = op else { return BAIL };
    let raw = c.fregs[*src as usize] & bitmask(*w);
    if *nb && c.defer {
        c.fnba
            .push(NbaWrite { target: Target::Whole(*sig), value: LogicVec::from_u64(*w, raw) });
    } else if c.fregs[*shadow as usize] != raw {
        c.sticky |= 1 << *cone;
        c.fregs[*shadow as usize] = raw;
    }
    pc + 1
}

fn h_store_bits(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreBitsC { shadow, cone, hi, lo, src, nb, sig } = op else { return BAIL };
    let span = *hi - *lo + 1;
    let chunk = c.fregs[*src as usize] & bitmask(span);
    if *nb && c.defer {
        c.fnba.push(NbaWrite {
            target: Target::Bits(*sig, *hi, *lo),
            value: LogicVec::from_u64(span, chunk),
        });
    } else {
        let cur = c.fregs[*shadow as usize];
        let new = (cur & !(bitmask(span) << lo)) | (chunk << lo);
        if new != cur {
            c.sticky |= 1 << *cone;
            c.fregs[*shadow as usize] = new;
        }
    }
    pc + 1
}

fn h_store_index(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreIndexSig { shadow, cone, idx, src, nb, sig } = op else { return BAIL };
    let i = c.fregs[*idx as usize] as i64;
    // Out-of-range indices drop the write, like the tree path.
    if let Some(off) = c.k.sigs[*sig as usize].def.offset(i) {
        let b = c.fregs[*src as usize] & 1;
        if *nb && c.defer {
            c.fnba.push(NbaWrite {
                target: Target::Bits(*sig, off, off),
                value: LogicVec::from_u64(1, b),
            });
        } else {
            let cur = c.fregs[*shadow as usize];
            let new = (cur & !(1u64 << off)) | (b << off);
            if new != cur {
                c.sticky |= 1 << *cone;
                c.fregs[*shadow as usize] = new;
            }
        }
    }
    pc + 1
}

fn h_store_local(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreLocal { slot, src, w } = op else { return BAIL };
    c.fregs[*slot as usize] = c.fregs[*src as usize] & bitmask(*w);
    pc + 1
}

fn h_store_local_bits(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreLocalBits { slot, idx, src, slotw } = op else { return BAIL };
    // The truncating cast matches the tree's `v as u32`.
    let i = c.fregs[*idx as usize] as u32;
    if i < *slotw {
        let b = c.fregs[*src as usize] & 1;
        c.fregs[*slot as usize] = (c.fregs[*slot as usize] & !(1u64 << i)) | (b << i);
    }
    pc + 1
}

fn h_store_local_bits_c(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::StoreLocalBitsC { slot, hi, lo, src } = op else { return BAIL };
    let span = *hi - *lo + 1;
    let chunk = c.fregs[*src as usize] & bitmask(span);
    c.fregs[*slot as usize] = (c.fregs[*slot as usize] & !(bitmask(span) << lo)) | (chunk << lo);
    pc + 1
}

fn h_jump(_: &mut FCtx<'_>, op: &FOp, _: u32) -> u32 {
    let FOp::Jump { to } = op else { return BAIL };
    *to
}

fn h_branch_truthy(c: &mut FCtx<'_>, op: &FOp, _: u32) -> u32 {
    let FOp::BranchTruthy { cond, on_true, on_false } = op else { return BAIL };
    if c.fregs[*cond as usize] != 0 {
        *on_true
    } else {
        *on_false
    }
}

fn h_branch_match_c(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::BranchMatchC { scrut, cmp, care, on_hit } = op else { return BAIL };
    if (c.fregs[*scrut as usize] ^ cmp) & care == 0 {
        *on_hit
    } else {
        pc + 1
    }
}

fn h_branch_match_r(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::BranchMatchR { scrut, label, on_hit } = op else { return BAIL };
    if c.fregs[*scrut as usize] == c.fregs[*label as usize] {
        *on_hit
    } else {
        pc + 1
    }
}

fn h_zero_ctr(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::ZeroCtr { ctr } = op else { return BAIL };
    c.fctrs[*ctr as usize] = 0;
    pc + 1
}

fn h_inc_ctr(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::IncCtrJumpLt { ctr, limit, to } = op else { return BAIL };
    c.fctrs[*ctr as usize] += 1;
    if c.fctrs[*ctr as usize] < u64::from(*limit) {
        *to
    } else {
        pc + 1
    }
}

fn h_repeat_init(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::RepeatInit { ctr, count } = op else { return BAIL };
    c.fctrs[*ctr as usize] = c.fregs[*count as usize].min(MAX_LOOP as u64);
    pc + 1
}

fn h_ctr_zero_dec(c: &mut FCtx<'_>, op: &FOp, pc: u32) -> u32 {
    let FOp::BranchCtrZeroDec { ctr, on_zero } = op else { return BAIL };
    if c.fctrs[*ctr as usize] == 0 {
        *on_zero
    } else {
        c.fctrs[*ctr as usize] -= 1;
        pc + 1
    }
}
