//! Fixed-limb two-state arithmetic for the multi-limb fast path.
//!
//! The two-state tape executor ([`crate::fast`]) runs over register files
//! of `L` 64-bit limbs per register, with `L` chosen per process at tape
//! compile time (1, 2 or 4 — covering static widths up to 64, 128 and 256
//! bits). Every helper here operates on `[u64; L]` values **by value**, is
//! `#[inline(always)]`, and masks its result to the supplied bit width, so
//! the register invariant of the single-limb fast path — registers always
//! hold values masked to their static width — carries over unchanged.
//!
//! For `L = 1` each helper must reduce to exactly the `u64` expression the
//! PR-6 fast path used; the unit tests below pin that, and the property
//! tests check every helper against the four-state [`LogicVec`] reference
//! at widths straddling the limb boundaries (63..=65, 127..=129, 255/256).

use crate::tape::bitmask;

/// All-ones mask of the low `w` bits, spread across `L` limbs.
#[inline(always)]
pub(crate) fn ones<const L: usize>(w: u32) -> [u64; L] {
    let mut out = [0u64; L];
    for (i, limb) in out.iter_mut().enumerate() {
        let lo = i as u32 * 64;
        *limb = if w >= lo + 64 {
            u64::MAX
        } else if w <= lo {
            0
        } else {
            bitmask(w - lo)
        };
    }
    out
}

/// `v` masked to `w` bits.
#[inline(always)]
pub(crate) fn mask<const L: usize>(mut v: [u64; L], w: u32) -> [u64; L] {
    let m = ones::<L>(w);
    for i in 0..L {
        v[i] &= m[i];
    }
    v
}

/// Zero-extends a `u64` into `L` limbs.
#[inline(always)]
pub(crate) fn from_u64<const L: usize>(x: u64) -> [u64; L] {
    let mut out = [0u64; L];
    out[0] = x;
    out
}

#[inline(always)]
pub(crate) fn is_zero<const L: usize>(v: [u64; L]) -> bool {
    let mut acc = 0u64;
    for limb in v {
        acc |= limb;
    }
    acc == 0
}

#[inline(always)]
pub(crate) fn eq<const L: usize>(a: [u64; L], b: [u64; L]) -> bool {
    let mut acc = 0u64;
    for i in 0..L {
        acc |= a[i] ^ b[i];
    }
    acc == 0
}

/// Unsigned `a < b` over the full register.
#[inline(always)]
pub(crate) fn lt<const L: usize>(a: [u64; L], b: [u64; L]) -> bool {
    let mut i = L;
    while i > 0 {
        i -= 1;
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

#[inline(always)]
pub(crate) fn and<const L: usize>(mut a: [u64; L], b: [u64; L]) -> [u64; L] {
    for i in 0..L {
        a[i] &= b[i];
    }
    a
}

#[inline(always)]
pub(crate) fn or<const L: usize>(mut a: [u64; L], b: [u64; L]) -> [u64; L] {
    for i in 0..L {
        a[i] |= b[i];
    }
    a
}

#[inline(always)]
pub(crate) fn xor<const L: usize>(mut a: [u64; L], b: [u64; L]) -> [u64; L] {
    for i in 0..L {
        a[i] ^= b[i];
    }
    a
}

#[inline(always)]
pub(crate) fn not<const L: usize>(mut v: [u64; L], w: u32) -> [u64; L] {
    for limb in &mut v {
        *limb = !*limb;
    }
    mask(v, w)
}

/// `(a + b) mod 2^w`.
#[inline(always)]
pub(crate) fn add<const L: usize>(a: [u64; L], b: [u64; L], w: u32) -> [u64; L] {
    let mut out = [0u64; L];
    let mut carry = false;
    for i in 0..L {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 | c2;
    }
    mask(out, w)
}

/// `(a - b) mod 2^w`.
#[inline(always)]
pub(crate) fn sub<const L: usize>(a: [u64; L], b: [u64; L], w: u32) -> [u64; L] {
    let mut out = [0u64; L];
    let mut borrow = false;
    for i in 0..L {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 | b2;
    }
    mask(out, w)
}

/// Two's-complement negation mod `2^w`.
#[inline(always)]
pub(crate) fn neg<const L: usize>(v: [u64; L], w: u32) -> [u64; L] {
    sub([0u64; L], v, w)
}

/// Register-wide left shift by a constant limb/bit amount; no width mask
/// (used by concat/replicate accumulation where the caller tracks width).
#[inline(always)]
pub(crate) fn shl_raw<const L: usize>(v: [u64; L], n: u32) -> [u64; L] {
    let (ls, bs) = ((n / 64) as usize, n % 64);
    let mut out = [0u64; L];
    for i in 0..L {
        if i < ls {
            continue;
        }
        let mut limb = v[i - ls] << bs;
        if bs != 0 && i - ls >= 1 {
            limb |= v[i - ls - 1] >> (64 - bs);
        }
        out[i] = limb;
    }
    out
}

/// Register-wide logical right shift by a constant amount; no width mask.
#[inline(always)]
pub(crate) fn shr_raw<const L: usize>(v: [u64; L], n: u32) -> [u64; L] {
    let (ls, bs) = ((n / 64) as usize, n % 64);
    let mut out = [0u64; L];
    for i in 0..L {
        if i + ls >= L {
            break;
        }
        let mut limb = v[i + ls] >> bs;
        if bs != 0 && i + ls + 1 < L {
            limb |= v[i + ls + 1] << (64 - bs);
        }
        out[i] = limb;
    }
    out
}

/// `(v << n) mod 2^w`; amounts at or past `w` produce zero, matching
/// [`crate::value::LogicVec::shl`].
#[inline(always)]
pub(crate) fn shl<const L: usize>(v: [u64; L], n: u64, w: u32) -> [u64; L] {
    if n >= w as u64 {
        return [0u64; L];
    }
    mask(shl_raw(v, n as u32), w)
}

/// `v >> n` (logical); amounts at or past `w` produce zero.
#[inline(always)]
pub(crate) fn shr<const L: usize>(v: [u64; L], n: u64, w: u32) -> [u64; L] {
    if n >= w as u64 {
        return [0u64; L];
    }
    shr_raw(v, n as u32)
}

/// Bit `i` of `v` (caller guarantees `i < 64 * L`).
#[inline(always)]
pub(crate) fn bit<const L: usize>(v: [u64; L], i: u32) -> u64 {
    (v[(i / 64) as usize] >> (i % 64)) & 1
}

/// Arithmetic shift right by `n` over a `w`-bit value, replicating the
/// MSB, matching [`crate::value::LogicVec::ashr`].
#[inline(always)]
pub(crate) fn ashr<const L: usize>(v: [u64; L], n: u64, w: u32) -> [u64; L] {
    let msb = bit(v, w - 1);
    if n >= w as u64 {
        return if msb == 1 { ones(w) } else { [0u64; L] };
    }
    let r = shr_raw(v, n as u32);
    if msb == 1 {
        let fill = and(ones(w), not::<L>(ones(w - n as u32), w));
        or(r, fill)
    } else {
        r
    }
}

/// `(v >> lo) & ones(span)` — constant-bounds field extract.
#[inline(always)]
pub(crate) fn extract<const L: usize>(v: [u64; L], lo: u32, span: u32) -> [u64; L] {
    mask(shr_raw(v, lo), span)
}

/// Replaces bits `[lo, lo + span)` of `cur` with `chunk` (already masked
/// to `span` bits).
#[inline(always)]
pub(crate) fn insert<const L: usize>(
    cur: [u64; L],
    lo: u32,
    span: u32,
    chunk: [u64; L],
) -> [u64; L] {
    let hole = shl_raw(ones::<L>(span), lo);
    or(and(cur, not_raw(hole)), shl_raw(chunk, lo))
}

/// Register-wide complement with no width mask (internal helper).
#[inline(always)]
fn not_raw<const L: usize>(mut v: [u64; L]) -> [u64; L] {
    for limb in &mut v {
        *limb = !*limb;
    }
    v
}

/// XOR-reduction parity over every limb.
#[inline(always)]
pub(crate) fn parity<const L: usize>(v: [u64; L]) -> bool {
    let mut acc = 0u64;
    for limb in v {
        acc ^= limb;
    }
    acc.count_ones() % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::LogicVec;
    use proptest::prelude::*;

    /// Widths straddling every limb boundary the 2- and 4-limb classes
    /// introduce.
    const EDGE_WIDTHS: [u32; 9] = [1, 63, 64, 65, 100, 127, 128, 129, 256];

    fn to_vec<const L: usize>(v: [u64; L], w: u32) -> LogicVec {
        LogicVec::from_limbs(w, &v)
    }

    fn from_vec<const L: usize>(v: &LogicVec) -> [u64; L] {
        let mut out = [0u64; L];
        assert!(v.to_limbs(&mut out));
        out
    }

    /// Uniform (edge-biased, via [`u64`]'s `Arbitrary`) limb arrays.
    struct ArbLimbs<const L: usize>;

    impl<const L: usize> Strategy for ArbLimbs<L> {
        type Value = [u64; L];
        fn sample(&self, rng: &mut proptest::rng::TestRng) -> [u64; L] {
            std::array::from_fn(|_| proptest::Arbitrary::arbitrary(rng))
        }
    }

    fn arb_limbs<const L: usize>() -> ArbLimbs<L> {
        ArbLimbs
    }

    /// For every edge width that fits `L` limbs, checks `f(a, b, w)`
    /// against `reference(LogicVec, LogicVec)`.
    fn check_binary<const L: usize>(
        a: [u64; L],
        b: [u64; L],
        f: impl Fn([u64; L], [u64; L], u32) -> [u64; L],
        reference: impl Fn(&LogicVec, &LogicVec) -> LogicVec,
    ) {
        for &w in EDGE_WIDTHS.iter().filter(|&&w| w <= 64 * L as u32) {
            let (am, bm) = (mask(a, w), mask(b, w));
            let got = to_vec(f(am, bm, w), w);
            let want = reference(&to_vec(am, w), &to_vec(bm, w)).resize(w);
            assert_eq!(got, want, "width {w}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_matches_logicvec(a in arb_limbs::<4>(), b in arb_limbs::<4>()) {
            check_binary(a, b, add, |x, y| x.add(y));
        }

        #[test]
        fn sub_matches_logicvec(a in arb_limbs::<4>(), b in arb_limbs::<4>()) {
            check_binary(a, b, sub, |x, y| x.sub(y));
        }

        #[test]
        fn shifts_match_logicvec(a in arb_limbs::<4>(), n in 0u64..300) {
            for &w in EDGE_WIDTHS.iter() {
                let am = mask(a, w);
                let v = to_vec(am, w);
                let nc = n.min(u32::MAX as u64) as u32;
                prop_assert_eq!(to_vec(shl(am, n, w), w), v.shl(nc), "shl w={} n={}", w, n);
                prop_assert_eq!(to_vec(shr(am, n, w), w), v.shr(nc), "shr w={} n={}", w, n);
                prop_assert_eq!(to_vec(ashr(am, n, w), w), v.ashr(nc), "ashr w={} n={}", w, n);
            }
        }

        #[test]
        fn compare_and_reduce_match_logicvec(a in arb_limbs::<4>(), b in arb_limbs::<4>()) {
            for &w in EDGE_WIDTHS.iter() {
                let (am, bm) = (mask(a, w), mask(b, w));
                let (av, bv) = (to_vec(am, w), to_vec(bm, w));
                prop_assert_eq!(lt(am, bm), av.lt(&bv).to_u64() == Some(1));
                prop_assert_eq!(eq(am, bm), av.eq_logic(&bv).to_u64() == Some(1));
                prop_assert_eq!(
                    parity(am),
                    av.reduce(crate::value::ReduceOp::Xor).to_u64() == Some(1)
                );
                prop_assert_eq!(is_zero(am), av.to_u64() == Some(0) || av.to_u128() == Some(0));
            }
        }

        #[test]
        fn neg_not_match_logicvec(a in arb_limbs::<4>()) {
            for &w in EDGE_WIDTHS.iter() {
                let am = mask(a, w);
                let av = to_vec(am, w);
                prop_assert_eq!(to_vec(neg(am, w), w), av.neg());
                prop_assert_eq!(to_vec(not(am, w), w), av.not());
            }
        }

        #[test]
        fn extract_insert_round_trip(a in arb_limbs::<4>(), c in arb_limbs::<4>(),
                                     lo in 0u32..250, span in 1u32..256) {
            let w = 256u32;
            let span = span.min(w - lo);
            let (am, cm) = (mask(a, w), mask(c, span));
            // extract matches LogicVec::slice.
            let got = to_vec(extract(am, lo, span), span);
            prop_assert_eq!(got, to_vec(am, w).slice(lo + span - 1, lo));
            // insert then extract reads the chunk back.
            let ins = insert(am, lo, span, cm);
            prop_assert_eq!(extract(ins, lo, span), cm);
            // bits outside the hole are untouched.
            if lo > 0 {
                prop_assert_eq!(extract(ins, 0, lo), extract(am, 0, lo));
            }
            if lo + span < w {
                prop_assert_eq!(
                    extract(ins, lo + span, w - lo - span),
                    extract(am, lo + span, w - lo - span)
                );
            }
        }

        #[test]
        fn round_trip_limbs(a in arb_limbs::<4>()) {
            for &w in EDGE_WIDTHS.iter() {
                let am = mask(a, w);
                prop_assert_eq!(from_vec::<4>(&to_vec(am, w)), am);
            }
        }
    }

    #[test]
    fn single_limb_reduces_to_scalar_forms() {
        // L = 1 must reproduce the PR-6 u64 fast-path expressions exactly.
        let (a, b) = (0xDEAD_BEEF_u64, 0x1234_5678_u64);
        for w in [1u32, 7, 32, 63, 64] {
            let m = bitmask(w);
            let (am, bm) = (a & m, b & m);
            assert_eq!(add([am], [bm], w), [am.wrapping_add(bm) & m]);
            assert_eq!(sub([am], [bm], w), [am.wrapping_sub(bm) & m]);
            assert_eq!(not([am], w), [!am & m]);
            assert_eq!(neg([am], w), [am.wrapping_neg() & m]);
            assert_eq!(lt([am], [bm]), am < bm);
            assert_eq!(eq([am], [bm]), am == bm);
            for n in [0u64, 1, w as u64 - 1, w as u64, 200] {
                let want_shl = if n >= w as u64 { 0 } else { (am << n) & m };
                let want_shr = if n >= w as u64 { 0 } else { am >> n };
                assert_eq!(shl([am], n, w), [want_shl]);
                assert_eq!(shr([am], n, w), [want_shr]);
                let msb = (am >> (w - 1)) & 1;
                let want_ashr = if n >= w as u64 {
                    if msb == 1 {
                        m
                    } else {
                        0
                    }
                } else {
                    let r = am >> n;
                    if msb == 1 {
                        r | (m & !bitmask(w - n as u32))
                    } else {
                        r
                    }
                };
                assert_eq!(ashr([am], n, w), [want_ashr]);
            }
        }
    }

    #[test]
    fn ones_spreads_across_limbs() {
        assert_eq!(ones::<4>(0), [0, 0, 0, 0]);
        assert_eq!(ones::<4>(64), [u64::MAX, 0, 0, 0]);
        assert_eq!(ones::<4>(65), [u64::MAX, 1, 0, 0]);
        assert_eq!(ones::<4>(129), [u64::MAX, u64::MAX, 1, 0]);
        assert_eq!(ones::<4>(256), [u64::MAX; 4]);
    }
}
