//! VCD (Value Change Dump) waveform export.
//!
//! Records signal values across simulation cycles and renders an IEEE
//! 1364-compliant VCD document that standard waveform viewers (GTKWave,
//! Surfer) open directly. Useful for debugging golden-model mismatches and
//! for the §5 waveform-style feedback.
//!
//! # Examples
//!
//! ```
//! use rtlfixer_sim::{Simulator, value::LogicVec, vcd::VcdRecorder};
//! use rtlfixer_verilog::compile;
//!
//! let analysis = compile("module inv(input a, output y); assign y = ~a; endmodule");
//! let mut sim = Simulator::new(&analysis, "inv")?;
//! let mut recorder = VcdRecorder::new("inv", &["a", "y"]);
//! for value in [0u64, 1, 1, 0] {
//!     sim.poke("a", LogicVec::from_u64(1, value))?;
//!     sim.settle()?;
//!     recorder.sample(&sim);
//! }
//! let vcd = recorder.render();
//! assert!(vcd.contains("$var wire 1"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;

use crate::interp::Simulator;
use crate::value::{Bit, LogicVec};

/// Records per-cycle values of a set of signals and renders VCD text.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    module: String,
    signals: Vec<String>,
    /// One frame per [`sample`](VcdRecorder::sample) call.
    frames: Vec<BTreeMap<String, LogicVec>>,
}

impl VcdRecorder {
    /// Creates a recorder for the named signals (flattened names as the
    /// simulator exposes them).
    pub fn new(module: &str, signals: &[&str]) -> Self {
        VcdRecorder {
            module: module.to_owned(),
            signals: signals.iter().map(|s| (*s).to_owned()).collect(),
            frames: Vec::new(),
        }
    }

    /// Creates a recorder covering every top-level port of the design.
    pub fn for_ports(module: &str, sim: &Simulator) -> Self {
        let signals: Vec<String> = sim
            .design()
            .inputs
            .iter()
            .chain(&sim.design().outputs)
            .map(|p| p.name.clone())
            .collect();
        VcdRecorder {
            module: module.to_owned(),
            signals,
            frames: Vec::new(),
        }
    }

    /// Number of sampled frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames have been sampled.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Samples the current value of every tracked signal.
    pub fn sample(&mut self, sim: &Simulator) {
        let frame: BTreeMap<String, LogicVec> = self
            .signals
            .iter()
            .map(|name| {
                let value = sim.peek(name).unwrap_or_else(|| LogicVec::xs(1));
                (name.clone(), value)
            })
            .collect();
        self.frames.push(frame);
    }

    /// Short printable VCD identifier for signal index `i`.
    fn id_code(i: usize) -> String {
        // Printable ASCII 33..=126, base-94.
        let mut i = i;
        let mut out = String::new();
        loop {
            out.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        out
    }

    fn render_value(value: &LogicVec) -> String {
        if value.width() == 1 {
            match value.bit(0) {
                Bit::Zero => "0".to_owned(),
                Bit::One => "1".to_owned(),
                Bit::X => "x".to_owned(),
            }
        } else {
            let mut text = String::from("b");
            for i in (0..value.width()).rev() {
                text.push(match value.bit(i) {
                    Bit::Zero => '0',
                    Bit::One => '1',
                    Bit::X => 'x',
                });
            }
            text
        }
    }

    /// Renders the recorded frames as a VCD document. Each frame advances
    /// simulation time by one timestep; only changed values are dumped
    /// (after the initial `$dumpvars` snapshot), per the VCD format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$date\n  rtlfixer-sim\n$end\n");
        out.push_str("$version\n  rtlfixer-sim VCD export\n$end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str(&format!("$scope module {} $end\n", self.module));
        let widths: Vec<u32> = self
            .signals
            .iter()
            .map(|name| {
                self.frames
                    .first()
                    .and_then(|f| f.get(name))
                    .map_or(1, LogicVec::width)
            })
            .collect();
        for (i, (name, width)) in self.signals.iter().zip(&widths).enumerate() {
            let id = Self::id_code(i);
            if *width == 1 {
                out.push_str(&format!("$var wire 1 {id} {name} $end\n"));
            } else {
                out.push_str(&format!(
                    "$var wire {width} {id} {name} [{}:0] $end\n",
                    width - 1
                ));
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut last: Vec<Option<LogicVec>> = vec![None; self.signals.len()];
        for (time, frame) in self.frames.iter().enumerate() {
            let mut changes = String::new();
            for (i, name) in self.signals.iter().enumerate() {
                let Some(value) = frame.get(name) else { continue };
                if last[i].as_ref() == Some(value) {
                    continue;
                }
                let id = Self::id_code(i);
                let rendered = Self::render_value(value);
                if value.width() == 1 {
                    changes.push_str(&format!("{rendered}{id}\n"));
                } else {
                    changes.push_str(&format!("{rendered} {id}\n"));
                }
                last[i] = Some(value.clone());
            }
            if time == 0 {
                out.push_str("$dumpvars\n");
                out.push_str(&changes);
                out.push_str("$end\n#0\n");
            } else if !changes.is_empty() {
                out.push_str(&format!("#{time}\n"));
                out.push_str(&changes);
            }
        }
        out.push_str(&format!("#{}\n", self.frames.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlfixer_verilog::compile;

    fn counter_sim() -> Simulator {
        let analysis = compile(
            "module ctr(input clk, input reset, output reg [3:0] q);\n\
             always @(posedge clk) begin\nif (reset) q <= 0; else q <= q + 1;\nend\nendmodule",
        );
        Simulator::new(&analysis, "ctr").expect("elaborates")
    }

    #[test]
    fn records_counter_waveform() {
        let mut sim = counter_sim();
        let mut recorder = VcdRecorder::new("ctr", &["reset", "q"]);
        sim.poke("reset", LogicVec::from_u64(1, 1)).unwrap();
        sim.clock_cycle("clk").unwrap();
        recorder.sample(&sim);
        sim.poke("reset", LogicVec::from_u64(1, 0)).unwrap();
        for _ in 0..4 {
            sim.clock_cycle("clk").unwrap();
            recorder.sample(&sim);
        }
        assert_eq!(recorder.len(), 5);
        let vcd = recorder.render();
        assert!(vcd.contains("$scope module ctr $end"));
        assert!(vcd.contains("$var wire 1 ! reset $end"));
        assert!(vcd.contains("$var wire 4 \" q [3:0] $end"));
        assert!(vcd.contains("$dumpvars"));
        // q counts 0,1,2,3,4: the b-format change dumps appear.
        assert!(vcd.contains("b0001 \""), "{vcd}");
        assert!(vcd.contains("b0100 \""), "{vcd}");
    }

    #[test]
    fn unchanged_values_are_not_redumped() {
        let mut sim = counter_sim();
        let mut recorder = VcdRecorder::new("ctr", &["reset"]);
        sim.poke("reset", LogicVec::from_u64(1, 1)).unwrap();
        for _ in 0..5 {
            sim.clock_cycle("clk").unwrap();
            recorder.sample(&sim);
        }
        let vcd = recorder.render();
        // `1!` appears once (in $dumpvars) and never again.
        assert_eq!(vcd.matches("1!").count(), 1, "{vcd}");
    }

    #[test]
    fn for_ports_covers_the_interface() {
        let sim = counter_sim();
        let recorder = VcdRecorder::for_ports("ctr", &sim);
        assert!(recorder.is_empty());
        let vcd = recorder.render();
        for name in ["clk", "reset", "q"] {
            assert!(vcd.contains(&format!(" {name}")), "{vcd}");
        }
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = VcdRecorder::id_code(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn x_values_render_as_x() {
        let analysis =
            compile("module m(input a, output y); assign y = a / 1'b0; endmodule");
        // Division by zero yields x.
        let mut sim = Simulator::new(&analysis, "m").expect("elaborates");
        sim.poke("a", LogicVec::from_u64(1, 1)).unwrap();
        sim.settle().unwrap();
        let mut recorder = VcdRecorder::new("m", &["y"]);
        recorder.sample(&sim);
        assert!(recorder.render().contains("x!"));
    }
}
