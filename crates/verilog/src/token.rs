//! Token definitions for the Verilog lexer.

use std::fmt;

use crate::span::Span;

/// Verilog keywords recognised by the frontend (Verilog-2005 plus the few
/// SystemVerilog extras that appear in LLM-generated code: `logic`,
/// `always_comb`, `always_ff`, `int`, `bit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Logic,
    Integer,
    Int,
    Bit,
    Genvar,
    Parameter,
    Localparam,
    Assign,
    Always,
    AlwaysComb,
    AlwaysFf,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Repeat,
    Posedge,
    Negedge,
    Or,
    And,
    Not,
    Function,
    Endfunction,
    Task,
    Endtask,
    Generate,
    Endgenerate,
    Signed,
    Unsigned,
    Wait,
    Forever,
    Disable,
    Deassign,
    Force,
    Release,
}

impl Keyword {
    /// Maps an identifier-shaped string to a keyword, if it is one.
    pub fn lookup(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "logic" => Logic,
            "integer" => Integer,
            "int" => Int,
            "bit" => Bit,
            "genvar" => Genvar,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "always_comb" => AlwaysComb,
            "always_ff" => AlwaysFf,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "while" => While,
            "repeat" => Repeat,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "and" => And,
            "not" => Not,
            "function" => Function,
            "endfunction" => Endfunction,
            "task" => Task,
            "endtask" => Endtask,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "wait" => Wait,
            "forever" => Forever,
            "disable" => Disable,
            "deassign" => Deassign,
            "force" => Force,
            "release" => Release,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Logic => "logic",
            Integer => "integer",
            Int => "int",
            Bit => "bit",
            Genvar => "genvar",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            AlwaysComb => "always_comb",
            AlwaysFf => "always_ff",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            While => "while",
            Repeat => "repeat",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            And => "and",
            Not => "not",
            Function => "function",
            Endfunction => "endfunction",
            Task => "task",
            Endtask => "endtask",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Signed => "signed",
            Unsigned => "unsigned",
            Wait => "wait",
            Forever => "forever",
            Disable => "disable",
            Deassign => "deassign",
            Force => "force",
            Release => "release",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Radix of a based number literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    /// `'b`
    Binary,
    /// `'o`
    Octal,
    /// `'d` or an unbased literal
    Decimal,
    /// `'h`
    Hex,
}

impl Base {
    /// Numeric radix.
    pub fn radix(self) -> u32 {
        match self {
            Base::Binary => 2,
            Base::Octal => 8,
            Base::Decimal => 10,
            Base::Hex => 16,
        }
    }
}

/// A lexed token kind. Payload-bearing variants own their text so the parser
/// does not need to keep slicing the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (simple or escaped; escaped identifiers are stored without
    /// the leading backslash).
    Ident(String),
    /// System task/function identifier, stored without the `$`.
    SystemIdent(String),
    /// A reserved word.
    Kw(Keyword),
    /// Number literal: optional size, optional base, digit text (may contain
    /// `x`/`z`/`?`/`_`), signedness flag from `'sd` style bases.
    Number {
        /// Bit width prefix, e.g. the `8` in `8'hFF`.
        size: Option<u32>,
        /// Radix; `None` for plain decimal literals like `42`.
        base: Option<Base>,
        /// Digit text with underscores removed.
        digits: String,
        /// Whether the base carried an `s` (signed) marker.
        signed: bool,
    },
    /// String literal, stored without quotes and with escapes resolved.
    Str(String),
    /// Compiler directive such as `` `timescale 1ns/1ps ``: the directive
    /// name (without the backtick) and the remainder of its line.
    Directive {
        /// Directive name without the backtick.
        name: String,
        /// Remainder of the directive line, trimmed.
        rest: String,
    },

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `@`
    At,
    /// `#`
    Hash,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~&`
    TildeAmp,
    /// `~|`
    TildePipe,
    /// `~^` or `^~`
    TildeCaret,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `===`
    EqEqEq,
    /// `!==`
    NotEqEq,
    /// `<`
    Lt,
    /// `<=` — context decides comparison vs non-blocking assignment.
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `+:`
    PlusColon,
    /// `-:`
    MinusColon,
    /// `->`
    Arrow,

    // C-style tokens lexed explicitly so we can produce the paper's
    // "confident in incorrect syntax" diagnostics (§5).
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,

    /// End of input.
    Eof,
    /// A character the lexer could not interpret.
    Unknown(char),
}

impl TokenKind {
    /// Human-readable rendering used in "syntax error near '…'" messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => name.clone(),
            TokenKind::SystemIdent(name) => format!("${name}"),
            TokenKind::Kw(kw) => kw.as_str().to_owned(),
            TokenKind::Number { digits, .. } => digits.clone(),
            TokenKind::Str(text) => format!("\"{text}\""),
            TokenKind::Directive { name, .. } => format!("`{name}"),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::LBrace => "{".into(),
            TokenKind::RBrace => "}".into(),
            TokenKind::Semi => ";".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::Colon => ":".into(),
            TokenKind::At => "@".into(),
            TokenKind::Hash => "#".into(),
            TokenKind::Question => "?".into(),
            TokenKind::Assign => "=".into(),
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::StarStar => "**".into(),
            TokenKind::Slash => "/".into(),
            TokenKind::Percent => "%".into(),
            TokenKind::Bang => "!".into(),
            TokenKind::Tilde => "~".into(),
            TokenKind::Amp => "&".into(),
            TokenKind::Pipe => "|".into(),
            TokenKind::Caret => "^".into(),
            TokenKind::TildeAmp => "~&".into(),
            TokenKind::TildePipe => "~|".into(),
            TokenKind::TildeCaret => "~^".into(),
            TokenKind::EqEq => "==".into(),
            TokenKind::NotEq => "!=".into(),
            TokenKind::EqEqEq => "===".into(),
            TokenKind::NotEqEq => "!==".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::LtEq => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::GtEq => ">=".into(),
            TokenKind::Shl => "<<".into(),
            TokenKind::Shr => ">>".into(),
            TokenKind::AShl => "<<<".into(),
            TokenKind::AShr => ">>>".into(),
            TokenKind::AmpAmp => "&&".into(),
            TokenKind::PipePipe => "||".into(),
            TokenKind::PlusColon => "+:".into(),
            TokenKind::MinusColon => "-:".into(),
            TokenKind::Arrow => "->".into(),
            TokenKind::PlusPlus => "++".into(),
            TokenKind::MinusMinus => "--".into(),
            TokenKind::PlusEq => "+=".into(),
            TokenKind::MinusEq => "-=".into(),
            TokenKind::StarEq => "*=".into(),
            TokenKind::SlashEq => "/=".into(),
            TokenKind::Eof => "end of file".into(),
            TokenKind::Unknown(c) => c.to_string(),
        }
    }

    /// Whether this token is one of the explicitly-lexed C-style operators.
    pub fn is_c_style(&self) -> bool {
        matches!(
            self,
            TokenKind::PlusPlus
                | TokenKind::MinusMinus
                | TokenKind::PlusEq
                | TokenKind::MinusEq
                | TokenKind::StarEq
                | TokenKind::SlashEq
        )
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for word in ["module", "endmodule", "always_ff", "casez", "genvar"] {
            let kw = Keyword::lookup(word).expect("keyword");
            assert_eq!(kw.as_str(), word);
        }
        assert_eq!(Keyword::lookup("foo"), None);
    }

    #[test]
    fn c_style_detection() {
        assert!(TokenKind::PlusPlus.is_c_style());
        assert!(TokenKind::PlusEq.is_c_style());
        assert!(!TokenKind::Plus.is_c_style());
        assert!(!TokenKind::LtEq.is_c_style());
    }

    #[test]
    fn describe_is_source_like() {
        assert_eq!(TokenKind::LtEq.describe(), "<=");
        assert_eq!(TokenKind::Kw(Keyword::Begin).describe(), "begin");
        assert_eq!(TokenKind::Ident("clk".into()).describe(), "clk");
        assert_eq!(TokenKind::Eof.describe(), "end of file");
    }

    #[test]
    fn base_radix() {
        assert_eq!(Base::Binary.radix(), 2);
        assert_eq!(Base::Hex.radix(), 16);
    }
}
