//! Best-effort constant folding over [`Expr`] trees.
//!
//! Used during elaboration to resolve vector ranges, parameter values,
//! generate-loop bounds and — crucially for the paper's Figure 6 failure
//! case — *index expressions* such as `(i-1)*16 + (j-1)`, so the frontend
//! can report out-of-range indices that only appear after arithmetic.

use std::collections::HashMap;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::token::Base;

/// Why an expression could not be evaluated to a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstEvalError {
    /// References a name with no known constant value (signal, port, …).
    NonConst(String),
    /// Contains `x`/`z` digits.
    UnknownBits,
    /// Division or modulo by zero.
    DivideByZero,
    /// A construct constant folding does not support (strings, calls, …).
    Unsupported,
    /// Arithmetic overflowed the `i64` evaluation domain.
    Overflow,
}

impl std::fmt::Display for ConstEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstEvalError::NonConst(name) => write!(f, "'{name}' is not a constant"),
            ConstEvalError::UnknownBits => write!(f, "literal contains x/z bits"),
            ConstEvalError::DivideByZero => write!(f, "division by zero in constant expression"),
            ConstEvalError::Unsupported => write!(f, "unsupported constant expression"),
            ConstEvalError::Overflow => write!(f, "constant expression overflow"),
        }
    }
}

impl std::error::Error for ConstEvalError {}

/// Parses a literal's digit text in the given base. Fails on x/z digits.
pub fn literal_value(digits: &str, base: Option<Base>) -> Result<i64, ConstEvalError> {
    let radix = base.map_or(10, Base::radix);
    if digits.is_empty() {
        return Err(ConstEvalError::Unsupported);
    }
    if digits.chars().any(|c| matches!(c, 'x' | 'z' | '?')) {
        return Err(ConstEvalError::UnknownBits);
    }
    i64::from_str_radix(digits, radix).map_err(|_| ConstEvalError::Overflow)
}

/// Evaluates `expr` against `env` (parameter / genvar values).
///
/// # Errors
///
/// Returns a [`ConstEvalError`] if the expression references a non-constant
/// name, contains unknown bits, divides by zero, overflows, or uses an
/// unsupported construct.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use rtlfixer_verilog::parser::parse;
/// use rtlfixer_verilog::ast::Item;
/// use rtlfixer_verilog::const_eval::eval;
///
/// let file = parse("module m; localparam X = 3 * 4 + 1; endmodule").file;
/// let Item::Param(p) = &file.modules[0].items[0] else { unreachable!() };
/// assert_eq!(eval(&p.value, &HashMap::new()), Ok(13));
/// ```
pub fn eval(expr: &Expr, env: &HashMap<String, i64>) -> Result<i64, ConstEvalError> {
    match expr {
        Expr::Ident { name, .. } => {
            env.get(name).copied().ok_or_else(|| ConstEvalError::NonConst(name.clone()))
        }
        Expr::Literal { digits, base, .. } => literal_value(digits, *base),
        Expr::Str { .. } | Expr::Call { .. } | Expr::Index { .. } | Expr::Select { .. } => {
            Err(ConstEvalError::Unsupported)
        }
        Expr::SysCall { name, args, .. } => match (name.as_str(), args.as_slice()) {
            ("clog2", [arg]) => {
                let v = eval(arg, env)?;
                Ok(clog2(v))
            }
            _ => Err(ConstEvalError::Unsupported),
        },
        Expr::Unary { op, operand, .. } => {
            let v = eval(operand, env)?;
            Ok(match op {
                UnaryOp::Plus => v,
                UnaryOp::Neg => v.checked_neg().ok_or(ConstEvalError::Overflow)?,
                UnaryOp::Not => i64::from(v == 0),
                UnaryOp::BitNot => !v,
                UnaryOp::RedAnd => i64::from(v == -1),
                UnaryOp::RedOr => i64::from(v != 0),
                UnaryOp::RedXor => i64::from((v.count_ones() % 2) == 1),
                UnaryOp::RedNand => i64::from(v != -1),
                UnaryOp::RedNor => i64::from(v == 0),
                UnaryOp::RedXnor => i64::from((v.count_ones() % 2) == 0),
            })
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval(lhs, env)?;
            let b = eval(rhs, env)?;
            binary(*op, a, b)
        }
        Expr::Ternary { cond, then_expr, else_expr, .. } => {
            if eval(cond, env)? != 0 {
                eval(then_expr, env)
            } else {
                eval(else_expr, env)
            }
        }
        Expr::Concat { .. } | Expr::Replicate { .. } => Err(ConstEvalError::Unsupported),
    }
}

fn binary(op: BinaryOp, a: i64, b: i64) -> Result<i64, ConstEvalError> {
    use BinaryOp::*;
    Ok(match op {
        Add => a.checked_add(b).ok_or(ConstEvalError::Overflow)?,
        Sub => a.checked_sub(b).ok_or(ConstEvalError::Overflow)?,
        Mul => a.checked_mul(b).ok_or(ConstEvalError::Overflow)?,
        Div => {
            if b == 0 {
                return Err(ConstEvalError::DivideByZero);
            }
            a / b
        }
        Mod => {
            if b == 0 {
                return Err(ConstEvalError::DivideByZero);
            }
            a % b
        }
        Pow => {
            let exp = u32::try_from(b).map_err(|_| ConstEvalError::Overflow)?;
            a.checked_pow(exp).ok_or(ConstEvalError::Overflow)?
        }
        BitAnd => a & b,
        BitOr => a | b,
        BitXor => a ^ b,
        BitXnor => !(a ^ b),
        LogAnd => i64::from(a != 0 && b != 0),
        LogOr => i64::from(a != 0 || b != 0),
        Eq | CaseEq => i64::from(a == b),
        Ne | CaseNe => i64::from(a != b),
        Lt => i64::from(a < b),
        Le => i64::from(a <= b),
        Gt => i64::from(a > b),
        Ge => i64::from(a >= b),
        Shl | AShl => {
            let sh = u32::try_from(b).map_err(|_| ConstEvalError::Overflow)?;
            if sh >= 64 {
                0
            } else {
                a.wrapping_shl(sh)
            }
        }
        Shr => {
            let sh = u32::try_from(b).map_err(|_| ConstEvalError::Overflow)?;
            if sh >= 64 {
                0
            } else {
                ((a as u64) >> sh) as i64
            }
        }
        AShr => {
            let sh = u32::try_from(b).map_err(|_| ConstEvalError::Overflow)?.min(63);
            a >> sh
        }
    })
}

/// Ceiling log2 as defined by `$clog2` (0 and 1 map to 0).
pub fn clog2(v: i64) -> i64 {
    if v <= 1 {
        return 0;
    }
    64 - ((v - 1) as u64).leading_zeros() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn lit(v: i64) -> Expr {
        Expr::Literal {
            size: None,
            base: None,
            digits: v.to_string(),
            signed: false,
            span: Span::point(0),
        }
    }

    fn bin(op: BinaryOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(a), rhs: Box::new(b), span: Span::point(0) }
    }

    #[test]
    fn evaluates_arithmetic() {
        let env = HashMap::new();
        assert_eq!(eval(&bin(BinaryOp::Add, lit(2), lit(3)), &env), Ok(5));
        assert_eq!(eval(&bin(BinaryOp::Mul, lit(4), lit(6)), &env), Ok(24));
        assert_eq!(eval(&bin(BinaryOp::Sub, lit(1), lit(9)), &env), Ok(-8));
    }

    #[test]
    fn figure6_style_index_folds_negative() {
        // (i-1)*16 + (j-1) with i=j=0 → -17 (the paper's exact failure).
        let mut env = HashMap::new();
        env.insert("i".to_owned(), 0);
        env.insert("j".to_owned(), 0);
        let i = Expr::Ident { name: "i".into(), span: Span::point(0) };
        let j = Expr::Ident { name: "j".into(), span: Span::point(0) };
        let expr = bin(
            BinaryOp::Add,
            bin(BinaryOp::Mul, bin(BinaryOp::Sub, i, lit(1)), lit(16)),
            bin(BinaryOp::Sub, j, lit(1)),
        );
        assert_eq!(eval(&expr, &env), Ok(-17));
    }

    #[test]
    fn unknown_name_is_nonconst() {
        assert_eq!(
            eval(&Expr::Ident { name: "clk".into(), span: Span::point(0) }, &HashMap::new()),
            Err(ConstEvalError::NonConst("clk".into()))
        );
    }

    #[test]
    fn xz_digits_fail() {
        let expr = Expr::Literal {
            size: Some(4),
            base: Some(Base::Binary),
            digits: "1x0z".into(),
            signed: false,
            span: Span::point(0),
        };
        assert_eq!(eval(&expr, &HashMap::new()), Err(ConstEvalError::UnknownBits));
    }

    #[test]
    fn divide_by_zero_fails() {
        assert_eq!(
            eval(&bin(BinaryOp::Div, lit(4), lit(0)), &HashMap::new()),
            Err(ConstEvalError::DivideByZero)
        );
        assert_eq!(
            eval(&bin(BinaryOp::Mod, lit(4), lit(0)), &HashMap::new()),
            Err(ConstEvalError::DivideByZero)
        );
    }

    #[test]
    fn hex_literal() {
        assert_eq!(literal_value("ff", Some(Base::Hex)), Ok(255));
        assert_eq!(literal_value("1010", Some(Base::Binary)), Ok(10));
        assert_eq!(literal_value("17", Some(Base::Octal)), Ok(15));
    }

    #[test]
    fn clog2_reference_values() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(8), 3);
        assert_eq!(clog2(9), 4);
        assert_eq!(clog2(1024), 10);
    }

    #[test]
    fn shifts_and_comparisons() {
        let env = HashMap::new();
        assert_eq!(eval(&bin(BinaryOp::Shl, lit(1), lit(4)), &env), Ok(16));
        assert_eq!(eval(&bin(BinaryOp::Shr, lit(-1), lit(60)), &env), Ok(15));
        assert_eq!(eval(&bin(BinaryOp::AShr, lit(-16), lit(2)), &env), Ok(-4));
        assert_eq!(eval(&bin(BinaryOp::Le, lit(3), lit(3)), &env), Ok(1));
        assert_eq!(eval(&bin(BinaryOp::Shl, lit(1), lit(99)), &env), Ok(0));
    }

    #[test]
    fn ternary_selects_branch() {
        let env = HashMap::new();
        let t = Expr::Ternary {
            cond: Box::new(lit(1)),
            then_expr: Box::new(lit(10)),
            else_expr: Box::new(lit(20)),
            span: Span::point(0),
        };
        assert_eq!(eval(&t, &env), Ok(10));
    }

    #[test]
    fn overflow_detected() {
        let env = HashMap::new();
        assert_eq!(
            eval(&bin(BinaryOp::Mul, lit(i64::MAX), lit(2)), &env),
            Err(ConstEvalError::Overflow)
        );
        assert_eq!(
            eval(&bin(BinaryOp::Pow, lit(2), lit(200)), &env),
            Err(ConstEvalError::Overflow)
        );
    }
}
