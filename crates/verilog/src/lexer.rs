//! Hand-written lexer for the Verilog subset.
//!
//! The lexer is total: it never fails. Unlexable characters become
//! [`TokenKind::Unknown`] tokens the parser turns into syntax diagnostics.
//! C-style operators (`++`, `+=`, …) are lexed as distinct tokens so the
//! semantic layer can produce category-tagged diagnostics for them.

use crate::span::Span;
use crate::token::{Base, Keyword, Token, TokenKind};

/// Lexes an entire source string into tokens, terminated by a single
/// [`TokenKind::Eof`] token.
///
/// # Examples
///
/// ```
/// use rtlfixer_verilog::lexer::lex;
/// use rtlfixer_verilog::token::TokenKind;
///
/// let tokens = lex("assign out = in;");
/// assert!(matches!(tokens[0].kind, TokenKind::Kw(_)));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// ```
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { src: text.as_bytes(), text, pos: 0, tokens: Vec::new() }
    }

    fn run(mut self) -> Vec<Token> {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                break;
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
                b'0'..=b'9' => self.lex_number(),
                b'\'' => self.lex_based_literal_no_size(),
                b'"' => self.lex_string(),
                b'$' => self.lex_system_ident(),
                b'`' => self.lex_directive(),
                b'\\' => self.lex_escaped_ident(),
                _ => self.lex_operator(),
            }
        }
        self.tokens
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.pos += 2;
                    while self.pos < self.src.len() {
                        if self.peek() == Some(b'*') && self.peek_at(1) == Some(b'/') {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if pred(c) {
                self.pos += 1;
            } else {
                break;
            }
        }
        &self.text[start..self.pos]
    }

    fn lex_word(&mut self) {
        let start = self.pos;
        let word = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$');
        let kind = match Keyword::lookup(word) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(word.to_owned()),
        };
        self.push(kind, start);
    }

    fn lex_escaped_ident(&mut self) {
        let start = self.pos;
        self.pos += 1; // backslash
        let word = self.take_while(|c| !c.is_ascii_whitespace());
        self.push(TokenKind::Ident(word.to_owned()), start);
    }

    fn lex_system_ident(&mut self) {
        let start = self.pos;
        self.pos += 1; // '$'
        let word = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        self.push(TokenKind::SystemIdent(word.to_owned()), start);
    }

    fn lex_string(&mut self) {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                b'"' => break,
                b'\\' => match self.bump() {
                    Some(b'n') => text.push('\n'),
                    Some(b't') => text.push('\t'),
                    Some(other) => text.push(other as char),
                    None => break,
                },
                _ => text.push(c as char),
            }
        }
        self.push(TokenKind::Str(text), start);
    }

    fn lex_directive(&mut self) {
        let start = self.pos;
        self.pos += 1; // backtick
        let name = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_').to_owned();
        let rest_start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let rest = self.text[rest_start..self.pos].trim().to_owned();
        self.push(TokenKind::Directive { name, rest }, start);
    }

    /// A based literal without a size prefix, e.g. `'b0101` or `'d8`.
    fn lex_based_literal_no_size(&mut self) {
        let start = self.pos;
        self.pos += 1; // apostrophe
        self.lex_base_and_digits(start, None);
    }

    fn lex_number(&mut self) {
        let start = self.pos;
        let int_part = self.take_while(|c| c.is_ascii_digit() || c == b'_');
        // A size prefix only counts if an apostrophe follows (possibly after
        // whitespace, which real tools accept: `8 'hFF`).
        let mut lookahead = self.pos;
        while self.src.get(lookahead).is_some_and(|c| *c == b' ' || *c == b'\t') {
            lookahead += 1;
        }
        if self.src.get(lookahead) == Some(&b'\'')
            && self
                .src
                .get(lookahead + 1)
                .is_some_and(|c| matches!(c.to_ascii_lowercase(), b'b' | b'o' | b'd' | b'h' | b's'))
        {
            let size: Option<u32> = int_part.replace('_', "").parse().ok();
            self.pos = lookahead + 1; // past apostrophe
            self.lex_base_and_digits(start, size);
            return;
        }
        let digits = int_part.replace('_', "");
        self.push(TokenKind::Number { size: None, base: None, digits, signed: false }, start);
    }

    fn lex_base_and_digits(&mut self, start: usize, size: Option<u32>) {
        let mut signed = false;
        if self.peek().is_some_and(|c| c.eq_ignore_ascii_case(&b's')) {
            signed = true;
            self.pos += 1;
        }
        let base = match self.peek().map(|c| c.to_ascii_lowercase()) {
            Some(b'b') => Base::Binary,
            Some(b'o') => Base::Octal,
            Some(b'd') => Base::Decimal,
            Some(b'h') => Base::Hex,
            _ => {
                // `'x` / `'0` style unbased literal: treat the rest as binary.
                let digits = self
                    .take_while(|c| {
                        c.is_ascii_hexdigit() || matches!(c, b'x' | b'X' | b'z' | b'Z' | b'?')
                    })
                    .to_lowercase();
                self.push(
                    TokenKind::Number { size, base: Some(Base::Binary), digits, signed },
                    start,
                );
                return;
            }
        };
        self.pos += 1;
        self.skip_trivia_inline();
        let digits = self
            .take_while(|c| {
                c.is_ascii_hexdigit() || matches!(c, b'x' | b'X' | b'z' | b'Z' | b'?' | b'_')
            })
            .replace('_', "")
            .to_lowercase();
        self.push(TokenKind::Number { size, base: Some(base), digits, signed }, start);
    }

    fn skip_trivia_inline(&mut self) {
        while self.peek().is_some_and(|c| c == b' ' || c == b'\t') {
            self.pos += 1;
        }
    }

    fn lex_operator(&mut self) {
        use TokenKind::*;
        let start = self.pos;
        let c = self.bump().expect("caller checked");
        let two = self.peek();
        let three = self.peek_at(1);
        let kind = match (c, two, three) {
            (b'<', Some(b'<'), Some(b'<')) => {
                self.pos += 2;
                AShl
            }
            (b'>', Some(b'>'), Some(b'>')) => {
                self.pos += 2;
                AShr
            }
            (b'=', Some(b'='), Some(b'=')) => {
                self.pos += 2;
                EqEqEq
            }
            (b'!', Some(b'='), Some(b'=')) => {
                self.pos += 2;
                NotEqEq
            }
            (b'<', Some(b'<'), _) => {
                self.pos += 1;
                Shl
            }
            (b'>', Some(b'>'), _) => {
                self.pos += 1;
                Shr
            }
            (b'=', Some(b'='), _) => {
                self.pos += 1;
                EqEq
            }
            (b'!', Some(b'='), _) => {
                self.pos += 1;
                NotEq
            }
            (b'<', Some(b'='), _) => {
                self.pos += 1;
                LtEq
            }
            (b'>', Some(b'='), _) => {
                self.pos += 1;
                GtEq
            }
            (b'&', Some(b'&'), _) => {
                self.pos += 1;
                AmpAmp
            }
            (b'|', Some(b'|'), _) => {
                self.pos += 1;
                PipePipe
            }
            (b'~', Some(b'&'), _) => {
                self.pos += 1;
                TildeAmp
            }
            (b'~', Some(b'|'), _) => {
                self.pos += 1;
                TildePipe
            }
            (b'~', Some(b'^'), _) => {
                self.pos += 1;
                TildeCaret
            }
            (b'^', Some(b'~'), _) => {
                self.pos += 1;
                TildeCaret
            }
            (b'*', Some(b'*'), _) => {
                self.pos += 1;
                StarStar
            }
            (b'+', Some(b':'), _) => {
                self.pos += 1;
                PlusColon
            }
            (b'-', Some(b':'), _) => {
                self.pos += 1;
                MinusColon
            }
            (b'-', Some(b'>'), _) => {
                self.pos += 1;
                Arrow
            }
            (b'+', Some(b'+'), _) => {
                self.pos += 1;
                PlusPlus
            }
            (b'-', Some(b'-'), _) => {
                self.pos += 1;
                MinusMinus
            }
            (b'+', Some(b'='), _) => {
                self.pos += 1;
                PlusEq
            }
            (b'-', Some(b'='), _) => {
                self.pos += 1;
                MinusEq
            }
            (b'*', Some(b'='), _) => {
                self.pos += 1;
                StarEq
            }
            (b'/', Some(b'='), _) => {
                self.pos += 1;
                SlashEq
            }
            (b'(', _, _) => LParen,
            (b')', _, _) => RParen,
            (b'[', _, _) => LBracket,
            (b']', _, _) => RBracket,
            (b'{', _, _) => LBrace,
            (b'}', _, _) => RBrace,
            (b';', _, _) => Semi,
            (b',', _, _) => Comma,
            (b'.', _, _) => Dot,
            (b':', _, _) => Colon,
            (b'@', _, _) => At,
            (b'#', _, _) => Hash,
            (b'?', _, _) => Question,
            (b'=', _, _) => Assign,
            (b'+', _, _) => Plus,
            (b'-', _, _) => Minus,
            (b'*', _, _) => Star,
            (b'/', _, _) => Slash,
            (b'%', _, _) => Percent,
            (b'!', _, _) => Bang,
            (b'~', _, _) => Tilde,
            (b'&', _, _) => Amp,
            (b'|', _, _) => Pipe,
            (b'^', _, _) => Caret,
            (b'<', _, _) => Lt,
            (b'>', _, _) => Gt,
            (other, _, _) => Unknown(other as char),
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let kinds = kinds("module top_module (input [7:0] in);");
        assert_eq!(kinds[0], TokenKind::Kw(Keyword::Module));
        assert_eq!(kinds[1], TokenKind::Ident("top_module".into()));
        assert_eq!(kinds[2], TokenKind::LParen);
        assert_eq!(kinds[3], TokenKind::Kw(Keyword::Input));
        assert_eq!(kinds[4], TokenKind::LBracket);
    }

    #[test]
    fn lexes_sized_hex_literal() {
        let kinds = kinds("8'hFF");
        assert_eq!(
            kinds[0],
            TokenKind::Number {
                size: Some(8),
                base: Some(Base::Hex),
                digits: "ff".into(),
                signed: false,
            }
        );
    }

    #[test]
    fn lexes_sized_literal_with_space() {
        let kinds = kinds("4 'b1010");
        assert_eq!(
            kinds[0],
            TokenKind::Number {
                size: Some(4),
                base: Some(Base::Binary),
                digits: "1010".into(),
                signed: false,
            }
        );
    }

    #[test]
    fn lexes_unsized_based_literal() {
        let kinds = kinds("'d42");
        assert_eq!(
            kinds[0],
            TokenKind::Number {
                size: None,
                base: Some(Base::Decimal),
                digits: "42".into(),
                signed: false,
            }
        );
    }

    #[test]
    fn lexes_signed_literal() {
        let kinds = kinds("8'sd5");
        assert!(matches!(&kinds[0], TokenKind::Number { signed: true, .. }));
    }

    #[test]
    fn lexes_xz_digits() {
        let kinds = kinds("4'b10xz");
        assert_eq!(
            kinds[0],
            TokenKind::Number {
                size: Some(4),
                base: Some(Base::Binary),
                digits: "10xz".into(),
                signed: false,
            }
        );
    }

    #[test]
    fn underscores_are_stripped() {
        let kinds = kinds("16'b1010_1010_1111_0000 1_000");
        match &kinds[0] {
            TokenKind::Number { digits, .. } => assert_eq!(digits, "1010101011110000"),
            other => panic!("unexpected {other:?}"),
        }
        match &kinds[1] {
            TokenKind::Number { digits, .. } => assert_eq!(digits, "1000"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_trivia() {
        let kinds = kinds("assign // line comment\n/* block\ncomment */ out");
        assert_eq!(kinds[0], TokenKind::Kw(Keyword::Assign));
        assert_eq!(kinds[1], TokenKind::Ident("out".into()));
        assert_eq!(kinds[2], TokenKind::Eof);
    }

    #[test]
    fn unterminated_block_comment_hits_eof() {
        let kinds = kinds("a /* never closed");
        assert_eq!(kinds[0], TokenKind::Ident("a".into()));
        assert_eq!(kinds[1], TokenKind::Eof);
    }

    #[test]
    fn nonblocking_vs_le() {
        // Lexed identically; the parser disambiguates by context.
        let kinds = kinds("out <= in");
        assert_eq!(kinds[1], TokenKind::LtEq);
    }

    #[test]
    fn three_char_operators() {
        assert_eq!(kinds("<<<")[0], TokenKind::AShl);
        assert_eq!(kinds(">>>")[0], TokenKind::AShr);
        assert_eq!(kinds("===")[0], TokenKind::EqEqEq);
        assert_eq!(kinds("!==")[0], TokenKind::NotEqEq);
    }

    #[test]
    fn c_style_operators_are_distinct_tokens() {
        assert_eq!(kinds("i++")[1], TokenKind::PlusPlus);
        assert_eq!(kinds("i += 1")[1], TokenKind::PlusEq);
        assert_eq!(kinds("i--")[1], TokenKind::MinusMinus);
    }

    #[test]
    fn minus_colon_and_plus_colon() {
        assert_eq!(kinds("a[7 -: 4]")[3], TokenKind::MinusColon);
        assert_eq!(kinds("a[0 +: 4]")[3], TokenKind::PlusColon);
    }

    #[test]
    fn directive_captures_rest_of_line() {
        let kinds = kinds("`timescale 1ns / 1ps\nmodule m;");
        assert_eq!(
            kinds[0],
            TokenKind::Directive { name: "timescale".into(), rest: "1ns / 1ps".into() }
        );
        assert_eq!(kinds[1], TokenKind::Kw(Keyword::Module));
    }

    #[test]
    fn system_ident() {
        assert_eq!(kinds("$display")[0], TokenKind::SystemIdent("display".into()));
    }

    #[test]
    fn string_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], TokenKind::Str("a\nb".into()));
    }

    #[test]
    fn escaped_identifier() {
        assert_eq!(kinds(r"\my+sig rest")[0], TokenKind::Ident("my+sig".into()));
    }

    #[test]
    fn unknown_character_is_reported_not_dropped() {
        let kinds = kinds("a € b");
        assert!(kinds.iter().any(|k| matches!(k, TokenKind::Unknown(_))));
    }

    #[test]
    fn spans_cover_tokens_exactly() {
        let src = "assign out = in;";
        for tok in lex(src) {
            if tok.kind == TokenKind::Eof {
                continue;
            }
            let text = tok.span.slice(src);
            assert!(!text.is_empty(), "token {:?} has empty span", tok.kind);
        }
    }

    #[test]
    fn plain_decimal() {
        assert_eq!(
            kinds("42")[0],
            TokenKind::Number { size: None, base: None, digits: "42".into(), signed: false }
        );
    }
}
