//! Symbol-table construction for one module.

use std::collections::HashMap;

use crate::ast::{Declarator, Direction, Item, Module, NetKind, Port, RangeDecl};
use crate::const_eval::{self, ConstEvalError};
use crate::diag::{DiagData, Diagnostic, ErrorCategory};
use crate::span::Span;

/// Resolved information about one declared signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// wire / reg / logic / integer.
    pub kind: NetKind,
    /// Port direction, if the signal is a port.
    pub direction: Option<Direction>,
    /// Declared signed.
    pub signed: bool,
    /// Resolved packed range bounds; `None` for scalars or unresolvable
    /// (parameter-dependent, unresolved) ranges.
    pub msb: Option<i64>,
    /// See [`SignalInfo::msb`].
    pub lsb: Option<i64>,
    /// Unpacked (memory) dimension, resolved.
    pub unpacked: Option<(i64, i64)>,
    /// Declaration site.
    pub span: Span,
}

impl SignalInfo {
    /// Bit width of the packed dimension, if resolved. Scalars are 1 bit,
    /// `integer` is 32 bits.
    pub fn width(&self) -> Option<u32> {
        if self.kind == NetKind::Integer && self.msb.is_none() {
            return Some(32);
        }
        match (self.msb, self.lsb) {
            (Some(msb), Some(lsb)) => Some(msb.abs_diff(lsb) as u32 + 1),
            (None, None) => Some(1),
            _ => None,
        }
    }

    /// Whether `index` falls inside the declared packed range.
    /// Returns `None` when the range is unresolved (no check possible).
    pub fn index_in_range(&self, index: i64) -> Option<bool> {
        match (self.msb, self.lsb) {
            (Some(msb), Some(lsb)) => {
                let (lo, hi) = if msb >= lsb { (lsb, msb) } else { (msb, lsb) };
                Some(index >= lo && index <= hi)
            }
            (None, None) => {
                // Scalar: only index 0 is legal (and even that is unusual).
                if self.kind == NetKind::Integer {
                    Some((0..32).contains(&index))
                } else {
                    Some(index == 0)
                }
            }
            _ => None,
        }
    }
}

/// Signature of a user-defined function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSig {
    /// Return width, if resolved.
    pub width: Option<u32>,
    /// Argument names in order.
    pub args: Vec<String>,
}

/// All names visible at module scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSymbols {
    /// Module name.
    pub name: String,
    /// Signals (ports + nets + variables).
    pub signals: HashMap<String, SignalInfo>,
    /// Resolved parameter values.
    pub params: HashMap<String, i64>,
    /// User functions.
    pub functions: HashMap<String, FunctionSig>,
    /// Declared genvars.
    pub genvars: Vec<String>,
}

impl ModuleSymbols {
    /// Looks up a signal.
    pub fn signal(&self, name: &str) -> Option<&SignalInfo> {
        self.signals.get(name)
    }

    /// Whether `name` resolves to anything at module scope.
    pub fn resolves(&self, name: &str) -> bool {
        self.signals.contains_key(name)
            || self.params.contains_key(name)
            || self.functions.contains_key(name)
            || self.genvars.iter().any(|g| g == name)
    }
}

fn resolve_range(
    range: &Option<RangeDecl>,
    params: &HashMap<String, i64>,
) -> (Option<i64>, Option<i64>) {
    match range {
        None => (None, None),
        Some(r) => {
            let msb = const_eval::eval(&r.msb, params).ok();
            let lsb = const_eval::eval(&r.lsb, params).ok();
            match (msb, lsb) {
                (Some(m), Some(l)) => (Some(m), Some(l)),
                // Partially-resolved ranges are treated as unresolved so no
                // spurious bound errors are emitted.
                _ => (None, None),
            }
        }
    }
}

/// Builds the symbol table for `module`, reporting redeclarations.
pub fn build(module: &Module, diags: &mut Vec<Diagnostic>) -> ModuleSymbols {
    let mut params: HashMap<String, i64> = HashMap::new();
    // Parameters first (header, then body order) so ranges can use them.
    for param in &module.header_params {
        if let Ok(value) = const_eval::eval(&param.value, &params) {
            params.insert(param.name.clone(), value);
        }
    }
    for item in &module.items {
        if let Item::Param(param) = item {
            match const_eval::eval(&param.value, &params) {
                Ok(value) => {
                    params.insert(param.name.clone(), value);
                }
                Err(ConstEvalError::NonConst(_)) => {
                    // Could reference signals (illegal but rare); leave it
                    // unresolved rather than cascade errors.
                }
                Err(_) => {}
            }
        }
    }

    let mut table = ModuleSymbols {
        name: module.name.clone(),
        signals: HashMap::new(),
        params,
        functions: HashMap::new(),
        genvars: Vec::new(),
    };

    // Ports seed the signal table.
    for port in &module.ports {
        insert_port(&mut table, port, diags);
    }

    collect_items(&module.items, &mut table, diags);
    table
}

fn insert_port(table: &mut ModuleSymbols, port: &Port, diags: &mut Vec<Diagnostic>) {
    let (msb, lsb) = resolve_range(&port.range, &table.params);
    let info = SignalInfo {
        kind: port.kind.unwrap_or(NetKind::Wire),
        direction: Some(port.direction),
        signed: port.signed,
        msb,
        lsb,
        unpacked: None,
        span: port.span,
    };
    if table.signals.insert(port.name.clone(), info).is_some() {
        diags.push(Diagnostic::error(
            ErrorCategory::Redeclaration,
            port.span,
            DiagData::Redeclared { name: port.name.clone() },
        ));
    }
}

fn collect_items(items: &[Item], table: &mut ModuleSymbols, diags: &mut Vec<Diagnostic>) {
    for item in items {
        match item {
            Item::Net { kind, signed, range, decls, .. } => {
                for decl in decls {
                    insert_net(table, *kind, *signed, range, decl, diags);
                }
            }
            Item::PortDecl(_) => {
                // Already merged into `module.ports` by the parser; the port
                // insertion above covers it.
            }
            Item::Genvar { names, .. } => {
                for (name, span) in names {
                    if table.resolves(name) {
                        diags.push(Diagnostic::error(
                            ErrorCategory::Redeclaration,
                            *span,
                            DiagData::Redeclared { name: name.clone() },
                        ));
                    } else {
                        table.genvars.push(name.clone());
                    }
                }
            }
            Item::Function { name, range, args, .. } => {
                let (msb, lsb) = resolve_range(range, &table.params);
                let width = match (msb, lsb) {
                    (Some(m), Some(l)) => Some(m.abs_diff(l) as u32 + 1),
                    _ => Some(1),
                };
                let sig = FunctionSig {
                    width,
                    args: args.iter().map(|a| a.name.clone()).collect(),
                };
                if table.functions.insert(name.clone(), sig).is_some() {
                    diags.push(Diagnostic::error(
                        ErrorCategory::Redeclaration,
                        item.span(),
                        DiagData::Redeclared { name: name.clone() },
                    ));
                }
            }
            Item::Generate { items, .. } => collect_items(items, table, diags),
            Item::GenFor { items, .. } => collect_items(items, table, diags),
            _ => {}
        }
    }
}

fn insert_net(
    table: &mut ModuleSymbols,
    kind: NetKind,
    signed: bool,
    range: &Option<RangeDecl>,
    decl: &Declarator,
    diags: &mut Vec<Diagnostic>,
) {
    let (msb, lsb) = resolve_range(range, &table.params);
    let unpacked = decl.unpacked.as_ref().and_then(|r| {
        let m = const_eval::eval(&r.msb, &table.params).ok()?;
        let l = const_eval::eval(&r.lsb, &table.params).ok()?;
        Some((m, l))
    });
    match table.signals.get_mut(&decl.name) {
        Some(existing) => {
            // `output q; reg q;` — the body declaration *completes* a port
            // that had no explicit kind. Anything else is a redeclaration.
            let completes_port = existing.direction.is_some();
            if completes_port {
                existing.kind = kind;
                if existing.msb.is_none() && msb.is_some() {
                    existing.msb = msb;
                    existing.lsb = lsb;
                }
                existing.signed |= signed;
            } else {
                diags.push(Diagnostic::error(
                    ErrorCategory::Redeclaration,
                    decl.span,
                    DiagData::Redeclared { name: decl.name.clone() },
                ));
            }
        }
        None => {
            table.signals.insert(
                decl.name.clone(),
                SignalInfo { kind, direction: None, signed, msb, lsb, unpacked, span: decl.span },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> (ModuleSymbols, Vec<Diagnostic>) {
        let result = parse(src);
        assert!(result.diagnostics.iter().all(|d| !d.is_error()), "{:?}", result.diagnostics);
        let mut diags = Vec::new();
        let table = build(&result.file.modules[0], &mut diags);
        (table, diags)
    }

    #[test]
    fn ports_and_nets_resolve() {
        let (t, diags) = table(
            "module m(input [7:0] a, output reg [7:0] q);\nwire [3:0] tmp;\nassign tmp = a[3:0];\nendmodule",
        );
        assert!(diags.is_empty());
        assert_eq!(t.signal("a").unwrap().width(), Some(8));
        assert_eq!(t.signal("a").unwrap().direction, Some(Direction::Input));
        assert_eq!(t.signal("q").unwrap().kind, NetKind::Reg);
        assert_eq!(t.signal("tmp").unwrap().width(), Some(4));
        assert!(!t.resolves("clk"));
    }

    #[test]
    fn parameter_dependent_range_resolves() {
        let (t, _) = table(
            "module m #(parameter W = 16)(input [W-1:0] a, output [W-1:0] y);\nassign y = a;\nendmodule",
        );
        assert_eq!(t.signal("a").unwrap().width(), Some(16));
        assert_eq!(t.params.get("W"), Some(&16));
    }

    #[test]
    fn localparam_chains() {
        let (t, _) = table(
            "module m(input a, output y);\nlocalparam A = 4;\nlocalparam B = A * 2;\nassign y = a;\nendmodule",
        );
        assert_eq!(t.params.get("B"), Some(&8));
    }

    #[test]
    fn body_decl_completes_port() {
        let (t, diags) = table(
            "module m(a, q);\ninput a;\noutput q;\nreg q;\nalways @(a) q <= a;\nendmodule",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(t.signal("q").unwrap().kind, NetKind::Reg);
        assert_eq!(t.signal("q").unwrap().direction, Some(Direction::Output));
    }

    #[test]
    fn duplicate_net_is_redeclaration() {
        let (_, diags) =
            table("module m(input a, output y);\nwire t;\nwire t;\nassign y = a;\nendmodule");
        assert!(diags.iter().any(|d| d.category == ErrorCategory::Redeclaration));
    }

    #[test]
    fn index_in_range_matrix() {
        let info = SignalInfo {
            kind: NetKind::Wire,
            direction: None,
            signed: false,
            msb: Some(7),
            lsb: Some(0),
            unpacked: None,
            span: Span::point(0),
        };
        assert_eq!(info.index_in_range(0), Some(true));
        assert_eq!(info.index_in_range(7), Some(true));
        assert_eq!(info.index_in_range(8), Some(false));
        assert_eq!(info.index_in_range(-1), Some(false));
    }

    #[test]
    fn scalar_index_only_zero() {
        let info = SignalInfo {
            kind: NetKind::Wire,
            direction: None,
            signed: false,
            msb: None,
            lsb: None,
            unpacked: None,
            span: Span::point(0),
        };
        assert_eq!(info.index_in_range(0), Some(true));
        assert_eq!(info.index_in_range(1), Some(false));
        assert_eq!(info.width(), Some(1));
    }

    #[test]
    fn genvar_registration() {
        let (t, _) = table(
            "module m(input [3:0] a, output [3:0] y);\ngenvar i;\ngenerate\nfor (i = 0; i < 4; i = i + 1) begin : g\nassign y[i] = a[i];\nend\nendgenerate\nendmodule",
        );
        assert_eq!(t.genvars, vec!["i".to_owned()]);
    }

    #[test]
    fn function_signature_recorded() {
        let (t, _) = table(
            "module m(input [7:0] a, output [3:0] y);\n\
             function [3:0] f;\ninput [7:0] v;\nbegin f = v[3:0]; end\nendfunction\n\
             assign y = f(a);\nendmodule",
        );
        let sig = t.functions.get("f").expect("function");
        assert_eq!(sig.width, Some(4));
        assert_eq!(sig.args, vec!["v".to_owned()]);
    }

    use crate::span::Span;
}
