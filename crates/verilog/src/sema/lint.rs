//! Synthesis lints (warning-level): latch inference, missing case defaults
//! and unused signals.
//!
//! These are the kinds of advisory messages a Quartus-class flow adds to its
//! logs. They never block elaboration; the iverilog personality omits them
//! entirely, which is part of its lower feedback informativeness.

use std::collections::HashSet;

use crate::ast::*;
use crate::diag::{DiagData, Diagnostic, ErrorCategory};

/// Runs all lints for `module`, appending warning diagnostics.
pub fn run(module: &Module, diags: &mut Vec<Diagnostic>) {
    lint_unused_signals(module, diags);
    for item in &module.items {
        lint_item(item, diags);
    }
}

fn lint_item(item: &Item, diags: &mut Vec<Diagnostic>) {
    match item {
        Item::Always { kind, sensitivity, body, .. } => {
            let combinational = matches!(kind, AlwaysKind::Comb)
                || matches!(sensitivity, Sensitivity::Star | Sensitivity::Signals(_));
            if combinational {
                lint_comb_body(body, diags);
            }
        }
        Item::Generate { items, .. } | Item::GenFor { items, .. } => {
            for item in items {
                lint_item(item, diags);
            }
        }
        _ => {}
    }
}

/// Walks a combinational always body flagging incomplete-assignment shapes.
fn lint_comb_body(stmt: &Stmt, diags: &mut Vec<Diagnostic>) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            // Signals assigned unconditionally at block level are safe even
            // if they also appear in branches below.
            let mut covered: HashSet<String> = HashSet::new();
            for inner in stmts {
                if let Stmt::Assign { lhs, .. } = inner {
                    if let Some(root) = lhs.lvalue_root() {
                        covered.insert(root.to_owned());
                    }
                }
            }
            for inner in stmts {
                lint_branch(inner, &covered, diags);
            }
        }
        other => lint_branch(other, &HashSet::new(), diags),
    }
}

fn lint_branch(stmt: &Stmt, covered: &HashSet<String>, diags: &mut Vec<Diagnostic>) {
    match stmt {
        Stmt::If { then_branch, else_branch: None, span, .. } => {
            // if-without-else assigning an uncovered variable → latch.
            for name in assigned_names(then_branch) {
                if !covered.contains(&name) {
                    diags.push(Diagnostic::warning(
                        ErrorCategory::InferredLatch,
                        *span,
                        DiagData::Latch { name },
                    ));
                }
            }
        }
        Stmt::If { then_branch, else_branch: Some(els), .. } => {
            lint_branch(then_branch, covered, diags);
            lint_branch(els, covered, diags);
        }
        Stmt::Case { default: None, arms, span, .. } => {
            diags.push(Diagnostic::warning(
                ErrorCategory::CaseMissingDefault,
                *span,
                DiagData::NoDefault,
            ));
            for arm in arms {
                lint_branch(&arm.body, covered, diags);
            }
        }
        Stmt::Case { default: Some(default), arms, .. } => {
            for arm in arms {
                lint_branch(&arm.body, covered, diags);
            }
            lint_branch(default, covered, diags);
        }
        Stmt::Block { stmts, .. } => {
            for inner in stmts {
                lint_branch(inner, covered, diags);
            }
        }
        _ => {}
    }
}

/// Root names assigned anywhere inside `stmt`.
fn assigned_names(stmt: &Stmt) -> Vec<String> {
    let mut names = Vec::new();
    collect_assigned(stmt, &mut names);
    names.sort();
    names.dedup();
    names
}

fn collect_assigned(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Assign { lhs, .. } => {
            if let Some(root) = lhs.lvalue_root() {
                out.push(root.to_owned());
            }
        }
        Stmt::Block { stmts, .. } => {
            for inner in stmts {
                collect_assigned(inner, out);
            }
        }
        Stmt::If { then_branch, else_branch, .. } => {
            collect_assigned(then_branch, out);
            if let Some(els) = else_branch {
                collect_assigned(els, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_assigned(&arm.body, out);
            }
            if let Some(default) = default {
                collect_assigned(default, out);
            }
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
            collect_assigned(body, out);
        }
        _ => {}
    }
}

/// Flags internal signals that are never read.
fn lint_unused_signals(module: &Module, diags: &mut Vec<Diagnostic>) {
    // Collect every identifier *read* anywhere in the module.
    let mut read: HashSet<String> = HashSet::new();
    for item in &module.items {
        collect_reads_item(item, &mut read);
    }
    for item in &module.items {
        let Item::Net { decls, .. } = item else { continue };
        for decl in decls {
            // Ports are externally observable; only internal nets count.
            if module.port(&decl.name).is_some() {
                continue;
            }
            if !read.contains(&decl.name) {
                diags.push(Diagnostic::warning(
                    ErrorCategory::UnusedSignal,
                    decl.span,
                    DiagData::Unused { name: decl.name.clone() },
                ));
            }
        }
    }
}

fn collect_reads_item(item: &Item, read: &mut HashSet<String>) {
    match item {
        Item::ContinuousAssign { assigns, .. } => {
            for (lhs, rhs) in assigns {
                collect_reads_expr(rhs, read);
                // Index/select expressions on the LHS read their indices.
                collect_lhs_index_reads(lhs, read);
            }
        }
        Item::Always { body, sensitivity, .. } => {
            if let Sensitivity::Edges(edges) = sensitivity {
                for edge in edges {
                    collect_reads_expr(&edge.signal, read);
                }
            }
            collect_reads_stmt(body, read);
        }
        Item::Initial { body, .. } => collect_reads_stmt(body, read),
        Item::Instance { conns, params, .. } => {
            for conn in conns.iter().chain(params) {
                if let Some(expr) = &conn.expr {
                    collect_reads_expr(expr, read);
                }
            }
        }
        Item::Net { decls, .. } => {
            for decl in decls {
                if let Some(init) = &decl.init {
                    collect_reads_expr(init, read);
                }
            }
        }
        Item::Generate { items, .. } | Item::GenFor { items, .. } => {
            for item in items {
                collect_reads_item(item, read);
            }
        }
        Item::Function { body, .. } => collect_reads_stmt(body, read),
        _ => {}
    }
}

fn collect_reads_stmt(stmt: &Stmt, read: &mut HashSet<String>) {
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            collect_reads_expr(rhs, read);
            collect_lhs_index_reads(lhs, read);
        }
        Stmt::Block { stmts, .. } => {
            for inner in stmts {
                collect_reads_stmt(inner, read);
            }
        }
        Stmt::If { cond, then_branch, else_branch, .. } => {
            collect_reads_expr(cond, read);
            collect_reads_stmt(then_branch, read);
            if let Some(els) = else_branch {
                collect_reads_stmt(els, read);
            }
        }
        Stmt::Case { scrutinee, arms, default, .. } => {
            collect_reads_expr(scrutinee, read);
            for arm in arms {
                for label in &arm.labels {
                    collect_reads_expr(label, read);
                }
                collect_reads_stmt(&arm.body, read);
            }
            if let Some(default) = default {
                collect_reads_stmt(default, read);
            }
        }
        Stmt::For { init, cond, step, body, .. } => {
            collect_reads_expr(init, read);
            collect_reads_expr(cond, read);
            collect_reads_expr(step, read);
            collect_reads_stmt(body, read);
        }
        Stmt::While { cond, body, .. } => {
            collect_reads_expr(cond, read);
            collect_reads_stmt(body, read);
        }
        Stmt::Repeat { count, body, .. } => {
            collect_reads_expr(count, read);
            collect_reads_stmt(body, read);
        }
        Stmt::SysCall { args, .. } => {
            for arg in args {
                collect_reads_expr(arg, read);
            }
        }
        Stmt::Null(_) => {}
    }
}

fn collect_lhs_index_reads(lhs: &Expr, read: &mut HashSet<String>) {
    match lhs {
        Expr::Index { index, .. } => collect_reads_expr(index, read),
        Expr::Select { left, right, .. } => {
            collect_reads_expr(left, read);
            collect_reads_expr(right, read);
        }
        Expr::Concat { parts, .. } => {
            for part in parts {
                collect_lhs_index_reads(part, read);
            }
        }
        _ => {}
    }
}

fn collect_reads_expr(expr: &Expr, read: &mut HashSet<String>) {
    match expr {
        Expr::Ident { name, .. } => {
            read.insert(name.clone());
        }
        Expr::Literal { .. } | Expr::Str { .. } => {}
        Expr::Unary { operand, .. } => collect_reads_expr(operand, read),
        Expr::Binary { lhs, rhs, .. } => {
            collect_reads_expr(lhs, read);
            collect_reads_expr(rhs, read);
        }
        Expr::Ternary { cond, then_expr, else_expr, .. } => {
            collect_reads_expr(cond, read);
            collect_reads_expr(then_expr, read);
            collect_reads_expr(else_expr, read);
        }
        Expr::Concat { parts, .. } => {
            for part in parts {
                collect_reads_expr(part, read);
            }
        }
        Expr::Replicate { count, value, .. } => {
            collect_reads_expr(count, read);
            collect_reads_expr(value, read);
        }
        Expr::Index { base, index, .. } => {
            collect_reads_expr(base, read);
            collect_reads_expr(index, read);
        }
        Expr::Select { base, left, right, .. } => {
            collect_reads_expr(base, read);
            collect_reads_expr(left, read);
            collect_reads_expr(right, read);
        }
        Expr::Call { args, .. } | Expr::SysCall { args, .. } => {
            for arg in args {
                collect_reads_expr(arg, read);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn warnings(src: &str) -> Vec<ErrorCategory> {
        let result = parse(src);
        assert!(result.diagnostics.iter().all(|d| !d.is_error()), "{:?}", result.diagnostics);
        let mut diags = Vec::new();
        run(&result.file.modules[0], &mut diags);
        diags.iter().map(|d| d.category).collect()
    }

    #[test]
    fn latch_from_if_without_else() {
        let cats = warnings(
            "module m(input en, input d, output reg q);\n\
             always @* begin\nif (en) q = d;\nend\nendmodule",
        );
        assert!(cats.contains(&ErrorCategory::InferredLatch), "{cats:?}");
    }

    #[test]
    fn no_latch_with_complete_if() {
        let cats = warnings(
            "module m(input en, input d, output reg q);\n\
             always @* begin\nif (en) q = d; else q = 0;\nend\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::InferredLatch), "{cats:?}");
    }

    #[test]
    fn no_latch_with_default_assignment() {
        let cats = warnings(
            "module m(input en, input d, output reg q);\n\
             always @* begin\nq = 0;\nif (en) q = d;\nend\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::InferredLatch), "{cats:?}");
    }

    #[test]
    fn case_without_default_flagged() {
        let cats = warnings(
            "module m(input [1:0] s, output reg y);\n\
             always @* begin\ncase (s)\n2'd0: y = 0;\n2'd1: y = 1;\n\
             2'd2: y = 0;\n2'd3: y = 1;\nendcase\nend\nendmodule",
        );
        assert!(cats.contains(&ErrorCategory::CaseMissingDefault), "{cats:?}");
    }

    #[test]
    fn case_with_default_clean() {
        let cats = warnings(
            "module m(input [1:0] s, output reg y);\n\
             always @* begin\ncase (s)\n2'd0: y = 0;\ndefault: y = 1;\nendcase\nend\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::CaseMissingDefault), "{cats:?}");
    }

    #[test]
    fn unused_signal_flagged() {
        let cats = warnings(
            "module m(input a, output y);\nwire unused_net;\nassign y = a;\nendmodule",
        );
        assert!(cats.contains(&ErrorCategory::UnusedSignal), "{cats:?}");
    }

    #[test]
    fn used_signal_clean() {
        let cats = warnings(
            "module m(input a, output y);\nwire t;\nassign t = a;\nassign y = t;\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::UnusedSignal), "{cats:?}");
    }

    #[test]
    fn sequential_always_is_exempt_from_latch_lint() {
        let cats = warnings(
            "module m(input clk, input en, input d, output reg q);\n\
             always @(posedge clk) if (en) q <= d;\nendmodule",
        );
        assert!(!cats.contains(&ErrorCategory::InferredLatch), "{cats:?}");
    }

    #[test]
    fn lints_are_warnings_not_errors() {
        let result = parse(
            "module m(input en, input d, output reg q);\n\
             always @* begin\nif (en) q = d;\nend\nendmodule",
        );
        let mut diags = Vec::new();
        run(&result.file.modules[0], &mut diags);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| !d.is_error()));
    }
}
