//! Elaboration-time semantic analysis.
//!
//! [`analyze_file`] builds per-module symbol tables ([`symbols`]) and then
//! runs the semantic checks ([`checks`]) that produce the category-tagged
//! diagnostics the rest of the system is built around: undeclared
//! identifiers, out-of-range indices (including arithmetic ones discovered by
//! unrolling constant loops — the paper's Figure 6 case), illegal l-values,
//! port-connection mismatches and redeclarations.

pub mod checks;
pub mod lint;
pub mod symbols;

use crate::ast::SourceFile;
use crate::diag::Diagnostic;

pub use symbols::{FunctionSig, ModuleSymbols, SignalInfo};

/// Runs full semantic analysis over a parsed file.
///
/// Returns the symbol tables (one per module, in file order) and all
/// semantic diagnostics. Parser diagnostics are *not* included; callers
/// combine them (see [`crate::compile`]).
pub fn analyze_file(file: &SourceFile) -> (Vec<ModuleSymbols>, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut tables = Vec::new();
    for module in &file.modules {
        let table = symbols::build(module, &mut diags);
        tables.push(table);
    }
    for (module, table) in file.modules.iter().zip(&tables) {
        checks::run(module, table, file, &mut diags);
        lint::run(module, &mut diags);
    }
    // Loop unrolling can rediscover the same fault on every iteration;
    // keep one diagnostic per (span, category).
    diags.sort_by_key(|d| (d.span, d.category as u8, d.severity));
    diags.dedup_by_key(|d| (d.span, d.category as u8));
    (tables, diags)
}
