//! Semantic checks: undeclared names, l-value legality, index bounds
//! (including constant-loop unrolling), instantiation port matching and
//! width-mismatch warnings.

use std::collections::HashMap;

use crate::ast::*;
use crate::const_eval::{self, ConstEvalError};
use crate::diag::{DiagData, Diagnostic, ErrorCategory};
use crate::sema::symbols::{ModuleSymbols, SignalInfo};
use crate::span::Span;

/// Hard cap on unrolled loop iterations per loop, to bound analysis time on
/// adversarial inputs while still covering benchmark-scale loops (Conway's
/// life uses 16×16).
const MAX_UNROLL: i64 = 300;

/// Assignment context for l-value checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssignCtx {
    Continuous,
    Procedural,
}

/// Runs all checks for `module`.
pub fn run(
    module: &Module,
    table: &ModuleSymbols,
    file: &SourceFile,
    diags: &mut Vec<Diagnostic>,
) {
    let mut checker = Checker {
        table,
        file,
        diags,
        locals: Vec::new(),
        const_env: table.params.clone(),
        in_function: None,
    };
    checker.check_items(&module.items);
}

struct Checker<'a> {
    table: &'a ModuleSymbols,
    file: &'a SourceFile,
    diags: &'a mut Vec<Diagnostic>,
    /// Lexical scopes for block-local declarations and loop variables.
    locals: Vec<HashMap<String, SignalInfo>>,
    /// Constant bindings (parameters + currently-unrolled loop variables).
    const_env: HashMap<String, i64>,
    /// Name of the function whose body is being checked, if any; the
    /// function name acts as its return variable.
    in_function: Option<String>,
}

impl<'a> Checker<'a> {
    fn resolve(&self, name: &str) -> Option<SignalInfo> {
        for scope in self.locals.iter().rev() {
            if let Some(info) = scope.get(name) {
                return Some(info.clone());
            }
        }
        if let Some(info) = self.table.signals.get(name) {
            return Some(info.clone());
        }
        None
    }

    fn resolves_any(&self, name: &str) -> bool {
        self.resolve(name).is_some()
            || self.table.params.contains_key(name)
            || self.table.functions.contains_key(name)
            || self.table.genvars.iter().any(|g| g == name)
            || self.const_env.contains_key(name)
            || self.in_function.as_deref() == Some(name)
    }

    fn undeclared(&mut self, name: &str, span: Span) {
        self.diags.push(Diagnostic::error(
            ErrorCategory::UndeclaredIdentifier,
            span,
            DiagData::Undeclared { name: name.to_owned() },
        ));
    }

    // ---- items -------------------------------------------------------

    fn check_items(&mut self, items: &[Item]) {
        for item in items {
            self.check_item(item);
        }
    }

    fn check_item(&mut self, item: &Item) {
        match item {
            Item::Net { decls, .. } => {
                for decl in decls {
                    if let Some(init) = &decl.init {
                        self.check_expr(init);
                    }
                }
            }
            Item::PortDecl(_) | Item::Param(_) | Item::Genvar { .. } => {}
            Item::ContinuousAssign { assigns, .. } => {
                for (lhs, rhs) in assigns {
                    self.check_lvalue(lhs, AssignCtx::Continuous);
                    self.check_expr(rhs);
                    self.check_width(lhs, rhs);
                }
            }
            Item::Always { kind, sensitivity, body, span } => {
                match sensitivity {
                    Sensitivity::Star => {}
                    Sensitivity::Edges(edges) => {
                        for edge in edges {
                            self.check_expr(&edge.signal);
                        }
                    }
                    Sensitivity::Signals(signals) => {
                        for (name, span) in signals {
                            if !self.resolves_any(name) {
                                self.undeclared(name, *span);
                            }
                        }
                    }
                    Sensitivity::None => {
                        if *kind == AlwaysKind::Always {
                            self.diags.push(Diagnostic::error(
                                ErrorCategory::SyntaxError,
                                *span,
                                DiagData::Syntax {
                                    found: "always".into(),
                                    expected: "'@' and a sensitivity list".into(),
                                },
                            ));
                        }
                    }
                }
                self.check_stmt(body);
            }
            Item::Initial { body, .. } => self.check_stmt(body),
            Item::Instance { module, name, conns, params, span } => {
                self.check_instance(module, name, conns, params, *span);
            }
            Item::Generate { items, .. } => self.check_items(items),
            Item::GenFor { var, init, cond, step, items, span, .. } => {
                let declared = self.table.genvars.iter().any(|g| g == var)
                    || self.resolves_any(var);
                if !declared {
                    self.undeclared(var, *span);
                }
                self.check_const_loop(var, init, cond, step, |checker| {
                    checker.check_items(items);
                });
            }
            Item::Function { name, args, body, .. } => {
                let mut scope = HashMap::new();
                for arg in args {
                    let (msb, lsb) = range_bounds(&arg.range, &self.const_env);
                    scope.insert(
                        arg.name.clone(),
                        SignalInfo {
                            kind: NetKind::Reg,
                            direction: None,
                            signed: arg.signed,
                            msb,
                            lsb,
                            unpacked: None,
                            span: arg.span,
                        },
                    );
                }
                self.locals.push(scope);
                let previous = self.in_function.replace(name.clone());
                self.check_stmt(body);
                self.in_function = previous;
                self.locals.pop();
            }
        }
    }

    fn check_instance(
        &mut self,
        module: &str,
        instance: &str,
        conns: &[Connection],
        params: &[Connection],
        span: Span,
    ) {
        for conn in conns.iter().chain(params) {
            if let Some(expr) = &conn.expr {
                self.check_expr(expr);
            }
        }
        let Some(target) = self.file.module(module) else {
            self.diags.push(Diagnostic::error(
                ErrorCategory::UnknownModule,
                span,
                DiagData::ModuleNotFound { name: module.to_owned() },
            ));
            return;
        };
        let named: Vec<_> = conns.iter().filter(|c| c.port.is_some()).collect();
        if named.is_empty() && !conns.is_empty() {
            if conns.len() != target.ports.len() {
                self.diags.push(Diagnostic::error(
                    ErrorCategory::PortConnectionMismatch,
                    span,
                    DiagData::PortMismatch {
                        instance: instance.to_owned(),
                        module: module.to_owned(),
                        port: None,
                        expected: target.ports.len(),
                        found: conns.len(),
                    },
                ));
            }
        } else {
            for conn in &named {
                let port = conn.port.as_deref().expect("filtered");
                if target.port(port).is_none() {
                    self.diags.push(Diagnostic::error(
                        ErrorCategory::PortConnectionMismatch,
                        conn.span,
                        DiagData::PortMismatch {
                            instance: instance.to_owned(),
                            module: module.to_owned(),
                            port: Some(port.to_owned()),
                            expected: target.ports.len(),
                            found: conns.len(),
                        },
                    ));
                }
            }
        }
    }

    // ---- statements ----------------------------------------------------

    fn check_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block { decls, stmts, .. } => {
                let mut scope = HashMap::new();
                for item in decls {
                    if let Item::Net { kind, signed, range, decls, .. } = item {
                        for decl in decls {
                            let (msb, lsb) = range_bounds(range, &self.const_env);
                            scope.insert(
                                decl.name.clone(),
                                SignalInfo {
                                    kind: *kind,
                                    direction: None,
                                    signed: *signed,
                                    msb,
                                    lsb,
                                    unpacked: None,
                                    span: decl.span,
                                },
                            );
                        }
                    }
                }
                self.locals.push(scope);
                for stmt in stmts {
                    self.check_stmt(stmt);
                }
                self.locals.pop();
            }
            Stmt::Assign { lhs, rhs, .. } => {
                self.check_lvalue(lhs, AssignCtx::Procedural);
                self.check_expr(rhs);
                self.check_width(lhs, rhs);
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.check_expr(cond);
                self.check_stmt(then_branch);
                if let Some(els) = else_branch {
                    self.check_stmt(els);
                }
            }
            Stmt::Case { scrutinee, arms, default, .. } => {
                self.check_expr(scrutinee);
                for arm in arms {
                    for label in &arm.labels {
                        self.check_expr(label);
                    }
                    self.check_stmt(&arm.body);
                }
                if let Some(default) = default {
                    self.check_stmt(default);
                }
            }
            Stmt::For { var, decl, init, cond, step, body, span } => {
                let mut scope = HashMap::new();
                if decl.is_some() {
                    scope.insert(
                        var.clone(),
                        SignalInfo {
                            kind: NetKind::Integer,
                            direction: None,
                            signed: true,
                            msb: None,
                            lsb: None,
                            unpacked: None,
                            span: *span,
                        },
                    );
                } else if !self.resolves_any(var) {
                    self.undeclared(var, *span);
                    // Bind it anyway so the body doesn't cascade.
                    scope.insert(
                        var.clone(),
                        SignalInfo {
                            kind: NetKind::Integer,
                            direction: None,
                            signed: true,
                            msb: None,
                            lsb: None,
                            unpacked: None,
                            span: *span,
                        },
                    );
                }
                self.locals.push(scope);
                self.check_const_loop(var, init, cond, step, |checker| {
                    checker.check_stmt(body);
                });
                self.locals.pop();
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond);
                self.check_stmt(body);
            }
            Stmt::Repeat { count, body, .. } => {
                self.check_expr(count);
                self.check_stmt(body);
            }
            Stmt::SysCall { args, .. } => {
                for arg in args {
                    // Format strings are not identifier references.
                    if !matches!(arg, Expr::Str { .. }) {
                        self.check_expr(arg);
                    }
                }
            }
            Stmt::Null(_) => {}
        }
    }

    /// Checks a loop body. If the bounds are compile-time constant, the loop
    /// is unrolled (capped) with the loop variable bound in `const_env` so
    /// that arithmetic index expressions are checked with real values — this
    /// is what catches the paper's Figure 6 `q[(i-1)*16 + (j-1)]` fault.
    fn check_const_loop(
        &mut self,
        var: &str,
        init: &Expr,
        cond: &Expr,
        step: &Expr,
        mut body: impl FnMut(&mut Self),
    ) {
        self.check_expr_no_bounds(init);
        let Ok(mut value) = const_eval::eval(init, &self.const_env) else {
            // Non-constant loop: single symbolic pass.
            self.check_expr(cond);
            self.check_expr_no_bounds(step);
            body(self);
            return;
        };
        let saved = self.const_env.get(var).copied();
        let mut iterations = 0i64;
        loop {
            self.const_env.insert(var.to_owned(), value);
            match const_eval::eval(cond, &self.const_env) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    // Condition depends on signals: fall back to one pass.
                    self.check_expr(cond);
                    body(self);
                    break;
                }
            }
            body(self);
            iterations += 1;
            if iterations >= MAX_UNROLL {
                break;
            }
            match const_eval::eval(step, &self.const_env) {
                Ok(next) => {
                    if next == value {
                        break; // zero-progress step; avoid spinning
                    }
                    value = next;
                }
                Err(_) => break,
            }
        }
        match saved {
            Some(v) => {
                self.const_env.insert(var.to_owned(), v);
            }
            None => {
                self.const_env.remove(var);
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn check_expr(&mut self, expr: &Expr) {
        self.check_expr_inner(expr, true);
    }

    /// Like [`check_expr`] but without index bound checking (used for loop
    /// init/step expressions where the variable has no binding yet).
    fn check_expr_no_bounds(&mut self, expr: &Expr) {
        self.check_expr_inner(expr, false);
    }

    fn check_expr_inner(&mut self, expr: &Expr, bounds: bool) {
        match expr {
            Expr::Ident { name, span } => {
                if !self.resolves_any(name) {
                    self.undeclared(name, *span);
                }
            }
            Expr::Literal { .. } | Expr::Str { .. } => {}
            Expr::Unary { operand, .. } => self.check_expr_inner(operand, bounds),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr_inner(lhs, bounds);
                self.check_expr_inner(rhs, bounds);
            }
            Expr::Ternary { cond, then_expr, else_expr, .. } => {
                self.check_expr_inner(cond, bounds);
                self.check_expr_inner(then_expr, bounds);
                self.check_expr_inner(else_expr, bounds);
            }
            Expr::Concat { parts, .. } => {
                for part in parts {
                    self.check_expr_inner(part, bounds);
                }
            }
            Expr::Replicate { count, value, .. } => {
                self.check_expr_inner(count, bounds);
                self.check_expr_inner(value, bounds);
            }
            Expr::Index { base, index, span } => {
                self.check_expr_inner(base, bounds);
                self.check_expr_inner(index, bounds);
                if bounds {
                    self.check_index_bounds(base, index, *span);
                }
            }
            Expr::Select { base, left, right, mode, span } => {
                self.check_expr_inner(base, bounds);
                self.check_expr_inner(left, bounds);
                self.check_expr_inner(right, bounds);
                if bounds {
                    self.check_select_bounds(base, left, right, *mode, *span);
                }
            }
            Expr::Call { name, args, span } => {
                if !self.table.functions.contains_key(name) {
                    self.undeclared(name, *span);
                }
                for arg in args {
                    self.check_expr_inner(arg, bounds);
                }
            }
            Expr::SysCall { args, .. } => {
                for arg in args {
                    if !matches!(arg, Expr::Str { .. }) {
                        self.check_expr_inner(arg, bounds);
                    }
                }
            }
        }
    }

    fn signal_of(&self, base: &Expr) -> Option<(String, SignalInfo)> {
        let name = base.as_ident()?;
        let info = self.resolve(name)?;
        Some((name.to_owned(), info))
    }

    /// Whether an index expression is "arithmetic" (more than a literal or a
    /// lone identifier) — used to split [`ErrorCategory::IndexArithmetic`]
    /// from plain [`ErrorCategory::IndexOutOfRange`].
    fn is_arithmetic(expr: &Expr) -> bool {
        !matches!(expr, Expr::Literal { .. })
    }

    fn check_index_bounds(&mut self, base: &Expr, index: &Expr, span: Span) {
        let Some((name, info)) = self.signal_of(base) else {
            // `mem[i][j]`: the inner Index handles the word select; bit
            // selects on expression results are not bounds-checked.
            return;
        };
        let Ok(value) = const_eval::eval(index, &self.const_env) else {
            return;
        };
        // Memories: the first index selects a word from the unpacked range.
        if let Some((m, l)) = info.unpacked {
            let (lo, hi) = if m <= l { (m, l) } else { (l, m) };
            if value < lo || value > hi {
                self.push_index_oob(&name, value, m, l, Self::is_arithmetic(index), span);
            }
            return;
        }
        if let Some(false) = info.index_in_range(value) {
            let (msb, lsb) = (info.msb.unwrap_or(0), info.lsb.unwrap_or(0));
            self.push_index_oob(&name, value, msb, lsb, Self::is_arithmetic(index), span);
        }
    }

    fn check_select_bounds(
        &mut self,
        base: &Expr,
        left: &Expr,
        right: &Expr,
        mode: SelectMode,
        span: Span,
    ) {
        let Some((name, info)) = self.signal_of(base) else { return };
        let left_v = const_eval::eval(left, &self.const_env).ok();
        let right_v = const_eval::eval(right, &self.const_env).ok();
        let arithmetic = Self::is_arithmetic(left) || Self::is_arithmetic(right);
        let check = |value: i64, arith: bool, checker: &mut Self| {
            if checker.resolve(&name).and_then(|info| info.index_in_range(value)) == Some(false) {
                let (msb, lsb) = (info.msb.unwrap_or(0), info.lsb.unwrap_or(0));
                checker.push_index_oob(&name, value, msb, lsb, arith, span);
            }
        };
        match mode {
            SelectMode::Range => {
                if let Some(v) = left_v {
                    check(v, arithmetic, self);
                }
                if let Some(v) = right_v {
                    check(v, arithmetic, self);
                }
            }
            // The far bound of an indexed select is itself the result of
            // arithmetic (`base ± width ∓ 1`), so an overrun there lands in
            // the harder IndexArithmetic category even for literal operands.
            SelectMode::IndexedUp => {
                if let (Some(base_idx), Some(width)) = (left_v, right_v) {
                    check(base_idx, arithmetic, self);
                    if width > 0 {
                        check(base_idx + width - 1, true, self);
                    }
                }
            }
            SelectMode::IndexedDown => {
                if let (Some(base_idx), Some(width)) = (left_v, right_v) {
                    check(base_idx, arithmetic, self);
                    if width > 0 {
                        check(base_idx - width + 1, true, self);
                    }
                }
            }
        }
    }

    fn push_index_oob(
        &mut self,
        name: &str,
        index: i64,
        msb: i64,
        lsb: i64,
        arithmetic: bool,
        span: Span,
    ) {
        let category = if arithmetic {
            ErrorCategory::IndexArithmetic
        } else {
            ErrorCategory::IndexOutOfRange
        };
        self.diags.push(Diagnostic::error(
            category,
            span,
            DiagData::IndexOob {
                target: name.to_owned(),
                index,
                msb,
                lsb,
                from_arithmetic: arithmetic,
            },
        ));
    }

    // ---- l-values ---------------------------------------------------------

    fn check_lvalue(&mut self, lhs: &Expr, ctx: AssignCtx) {
        match lhs {
            Expr::Concat { parts, .. } => {
                for part in parts {
                    self.check_lvalue(part, ctx);
                }
                return;
            }
            Expr::Index { base, index, span } => {
                self.check_expr(index);
                self.check_index_bounds(base, index, *span);
            }
            Expr::Select { base, left, right, mode, span } => {
                self.check_expr(left);
                self.check_expr(right);
                self.check_select_bounds(base, left, right, *mode, *span);
            }
            _ => {}
        }
        let Some(root) = lhs.lvalue_root() else {
            self.diags.push(Diagnostic::error(
                ErrorCategory::SyntaxError,
                lhs.span(),
                DiagData::Syntax { found: "expression".into(), expected: "an l-value".into() },
            ));
            return;
        };
        if self.in_function.as_deref() == Some(root) {
            return; // function return variable
        }
        let Some(info) = self.resolve(root) else {
            self.undeclared(root, lhs.span());
            return;
        };
        if info.direction == Some(Direction::Input) {
            self.diags.push(Diagnostic::error(
                ErrorCategory::AssignToInput,
                lhs.span(),
                DiagData::InputAssigned { name: root.to_owned() },
            ));
            return;
        }
        match ctx {
            AssignCtx::Procedural if !info.kind.procedural_assignable() => {
                self.diags.push(Diagnostic::error(
                    ErrorCategory::IllegalProceduralLvalue,
                    lhs.span(),
                    DiagData::BadProceduralLvalue { name: root.to_owned() },
                ));
            }
            AssignCtx::Continuous if !info.kind.continuous_assignable() => {
                self.diags.push(Diagnostic::error(
                    ErrorCategory::IllegalContinuousLvalue,
                    lhs.span(),
                    DiagData::BadContinuousLvalue { name: root.to_owned() },
                ));
            }
            _ => {}
        }
    }

    // ---- widths ------------------------------------------------------------

    fn check_width(&mut self, lhs: &Expr, rhs: &Expr) {
        let (Some(lw), Some(rw)) = (self.expr_width(lhs), self.expr_width(rhs)) else {
            return;
        };
        if rw > lw {
            self.diags.push(Diagnostic::warning(
                ErrorCategory::WidthMismatch,
                rhs.span(),
                DiagData::Width { lhs_width: lw, rhs_width: rw },
            ));
        }
    }

    /// Best-effort static width. `None` means "adapts to context" (plain
    /// decimal literals) or "unknown".
    fn expr_width(&self, expr: &Expr) -> Option<u32> {
        match expr {
            Expr::Ident { name, .. } => self.resolve(name).and_then(|info| info.width()),
            Expr::Literal { size, .. } => *size,
            Expr::Str { value, .. } => Some(8 * value.len() as u32),
            Expr::Unary { op, operand, .. } => match op {
                UnaryOp::Not
                | UnaryOp::RedAnd
                | UnaryOp::RedOr
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => Some(1),
                _ => self.expr_width(operand),
            },
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::CaseEq
                | BinaryOp::CaseNe
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogAnd
                | BinaryOp::LogOr => Some(1),
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => {
                    self.expr_width(lhs)
                }
                _ => match (self.expr_width(lhs), self.expr_width(rhs)) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                },
            },
            Expr::Ternary { then_expr, else_expr, .. } => {
                match (self.expr_width(then_expr), self.expr_width(else_expr)) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                }
            }
            Expr::Concat { parts, .. } => {
                let mut total = 0u32;
                for part in parts {
                    total += self.expr_width(part)?;
                }
                Some(total)
            }
            Expr::Replicate { count, value, .. } => {
                let n = const_eval::eval(count, &self.const_env).ok()?;
                let inner = self.expr_width(value)?;
                u32::try_from(n).ok().map(|n| n * inner)
            }
            Expr::Index { .. } => Some(1),
            Expr::Select { left, right, mode, .. } => match mode {
                SelectMode::Range => {
                    let l = const_eval::eval(left, &self.const_env).ok()?;
                    let r = const_eval::eval(right, &self.const_env).ok()?;
                    Some(l.abs_diff(r) as u32 + 1)
                }
                _ => {
                    let w = const_eval::eval(right, &self.const_env).ok()?;
                    u32::try_from(w).ok()
                }
            },
            Expr::Call { name, .. } => self.table.functions.get(name).and_then(|f| f.width),
            Expr::SysCall { .. } => None,
        }
    }
}

fn range_bounds(
    range: &Option<RangeDecl>,
    env: &HashMap<String, i64>,
) -> (Option<i64>, Option<i64>) {
    match range {
        None => (None, None),
        Some(r) => {
            let msb = const_eval::eval(&r.msb, env).ok();
            let lsb = const_eval::eval(&r.lsb, env).ok();
            match (msb, lsb) {
                (Some(m), Some(l)) => (Some(m), Some(l)),
                _ => (None, None),
            }
        }
    }
}

// Keep the unused import warning away when ConstEvalError isn't referenced
// directly in release profiles.
#[allow(unused)]
fn _assert_error_type(e: ConstEvalError) -> ConstEvalError {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze_file;

    fn sema_errors(src: &str) -> Vec<Diagnostic> {
        let result = parse(src);
        assert!(
            result.diagnostics.iter().all(|d| !d.is_error()),
            "parse errors in test input: {:?}",
            result.diagnostics
        );
        let (_, diags) = analyze_file(&result.file);
        diags.into_iter().filter(|d| d.is_error()).collect()
    }

    fn clean(src: &str) {
        let errs = sema_errors(src);
        assert!(errs.is_empty(), "unexpected: {errs:?}");
    }

    fn has(src: &str, category: ErrorCategory) {
        let errs = sema_errors(src);
        assert!(
            errs.iter().any(|d| d.category == category),
            "expected {category:?}, got {errs:?}"
        );
    }

    #[test]
    fn clean_module_passes() {
        clean("module m(input [7:0] in, output [7:0] out);\nassign out = in;\nendmodule");
    }

    #[test]
    fn undeclared_clk_in_sensitivity() {
        // The paper's Figure 5 `vector100r` case.
        has(
            "module top_module(input [99:0] in, output reg [99:0] out);\n\
             always @(posedge clk) begin\n\
               out <= in;\n\
             end\nendmodule",
            ErrorCategory::UndeclaredIdentifier,
        );
    }

    #[test]
    fn index_out_of_range_literal() {
        // The paper's Figure 2a case: out[8] on a [7:0] vector.
        has(
            "module top_module(input [7:0] in, output [7:0] out);\n\
             assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;\nendmodule",
            ErrorCategory::IndexOutOfRange,
        );
    }

    #[test]
    fn figure6_arithmetic_index_in_loop() {
        has(
            "module top_module(input [255:0] q, output [255:0] next);\n\
             genvar i, j;\n\
             generate\n\
             for (i = 0; i < 16; i = i + 1) begin : row\n\
               for (j = 0; j < 16; j = j + 1) begin : col\n\
                 assign next[(i-1)*16 + (j-1)] = q[i*16 + j];\n\
               end\n\
             end\n\
             endgenerate\nendmodule",
            ErrorCategory::IndexArithmetic,
        );
    }

    #[test]
    fn procedural_loop_arithmetic_index() {
        has(
            "module m(input [15:0] q, output reg [15:0] y);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 16; i = i + 1) y[i] = q[i + 1];\n\
             end\nendmodule",
            ErrorCategory::IndexArithmetic,
        );
    }

    #[test]
    fn in_range_loop_is_clean() {
        clean(
            "module m(input [15:0] q, output reg [15:0] y);\n\
             integer i;\n\
             always @* begin\n\
               for (i = 0; i < 16; i = i + 1) y[i] = q[15 - i];\n\
             end\nendmodule",
        );
    }

    #[test]
    fn wire_assigned_in_always_is_illegal() {
        has(
            "module m(input a, output y);\n\
             always @(a) y = a;\nendmodule",
            ErrorCategory::IllegalProceduralLvalue,
        );
    }

    #[test]
    fn reg_in_continuous_assign_is_illegal() {
        has(
            "module m(input a, output reg y);\nassign y = a;\nendmodule",
            ErrorCategory::IllegalContinuousLvalue,
        );
    }

    #[test]
    fn logic_is_fine_both_ways() {
        clean("module m(input a, output logic y);\nassign y = a;\nendmodule");
        clean("module m(input a, output logic y);\nalways @* y = a;\nendmodule");
    }

    #[test]
    fn assign_to_input_is_flagged() {
        has(
            "module m(input a, input b, output y);\nassign a = b;\nassign y = a;\nendmodule",
            ErrorCategory::AssignToInput,
        );
    }

    #[test]
    fn unknown_module_instantiation() {
        has(
            "module top(input a, output y);\nmissing u1(.x(a), .y(y));\nendmodule",
            ErrorCategory::UnknownModule,
        );
    }

    #[test]
    fn bad_port_name_in_instance() {
        has(
            "module child(input a, output y); assign y = a; endmodule\n\
             module top(input x, output z);\nchild c(.a(x), .out(z));\nendmodule",
            ErrorCategory::PortConnectionMismatch,
        );
    }

    #[test]
    fn positional_arity_mismatch() {
        has(
            "module child(input a, input b, output y); assign y = a & b; endmodule\n\
             module top(input x, output z);\nchild c(x, z);\nendmodule",
            ErrorCategory::PortConnectionMismatch,
        );
    }

    #[test]
    fn good_instance_is_clean() {
        clean(
            "module child(input a, output y); assign y = ~a; endmodule\n\
             module top(input x, output z);\nchild c(.a(x), .y(z));\nendmodule",
        );
    }

    #[test]
    fn undeclared_rhs_identifier() {
        has(
            "module m(input a, output y);\nassign y = a & enable;\nendmodule",
            ErrorCategory::UndeclaredIdentifier,
        );
    }

    #[test]
    fn memory_word_select() {
        clean(
            "module m(input [3:0] addr, output [7:0] data);\n\
             reg [7:0] mem [0:15];\n\
             assign data = mem[addr];\nendmodule",
        );
        has(
            "module m(output [7:0] data);\n\
             reg [7:0] mem [0:15];\n\
             assign data = mem[16];\nendmodule",
            ErrorCategory::IndexOutOfRange,
        );
    }

    #[test]
    fn part_select_out_of_bounds() {
        has(
            "module m(input [7:0] a, output [3:0] y);\nassign y = a[11:8];\nendmodule",
            ErrorCategory::IndexOutOfRange,
        );
    }

    #[test]
    fn indexed_part_select_bounds() {
        clean("module m(input [31:0] a, output [7:0] y);\nassign y = a[8 +: 8];\nendmodule");
        has(
            "module m(input [31:0] a, output [7:0] y);\nassign y = a[28 +: 8];\nendmodule",
            ErrorCategory::IndexArithmetic,
        );
    }

    #[test]
    fn width_mismatch_is_warning_not_error() {
        let result = parse(
            "module m(input [15:0] a, output [7:0] y);\nassign y = a;\nendmodule",
        );
        let (_, diags) = analyze_file(&result.file);
        assert!(diags.iter().any(|d| d.category == ErrorCategory::WidthMismatch));
        assert!(diags.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn function_return_assignment_is_legal() {
        clean(
            "module m(input [7:0] a, output [3:0] y);\n\
             function [3:0] ones;\ninput [7:0] v;\ninteger i;\nbegin\n\
               ones = 0;\n\
               for (i = 0; i < 8; i = i + 1) ones = ones + v[i];\n\
             end\nendfunction\n\
             assign y = ones(a);\nendmodule",
        );
    }

    #[test]
    fn undeclared_function_call() {
        has(
            "module m(input [7:0] a, output [3:0] y);\nassign y = ones(a);\nendmodule",
            ErrorCategory::UndeclaredIdentifier,
        );
    }

    #[test]
    fn plain_always_without_sensitivity_is_error() {
        has(
            "module m(input a, output reg y);\nalways begin y = a; end\nendmodule",
            ErrorCategory::SyntaxError,
        );
    }

    #[test]
    fn genvar_loop_without_genvar_decl() {
        has(
            "module m(input [3:0] a, output [3:0] y);\n\
             generate\nfor (k = 0; k < 4; k = k + 1) begin : g\n\
             assign y[k] = a[k];\nend\nendgenerate\nendmodule",
            ErrorCategory::UndeclaredIdentifier,
        );
    }

    #[test]
    fn block_local_integer_resolves() {
        clean(
            "module m(input [7:0] a, output reg [3:0] n);\n\
             always @* begin\n\
               integer i;\n\
               n = 0;\n\
               for (i = 0; i < 8; i = i + 1) n = n + a[i];\n\
             end\nendmodule",
        );
    }

    #[test]
    fn concat_lvalue_checks_each_part() {
        has(
            "module m(input [1:0] a, output x, output reg z);\n\
             assign {x, z} = a;\nendmodule",
            ErrorCategory::IllegalContinuousLvalue,
        );
    }
}
