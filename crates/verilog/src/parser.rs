//! Recursive-descent parser for the Verilog subset.
//!
//! The parser is error-tolerant: syntax problems are recorded as
//! [`Diagnostic`]s (categories `SyntaxError`, `UnbalancedBlock`,
//! `CStyleConstruct`, `KeywordAsIdentifier`, `MisplacedDirective`) and the
//! parser re-synchronises at `;` / `end` / `endmodule` boundaries so that a
//! single erroneous sample can surface *several* findings — mirroring how
//! iverilog and Quartus keep going after the first error.

use crate::ast::*;
use crate::diag::{DiagData, Diagnostic, ErrorCategory};
use crate::span::Span;
use crate::token::{Keyword as Kw, Token, TokenKind as Tk};

/// Maximum syntax diagnostics before the parser gives up (avoids error
/// cascades producing noise).
const MAX_SYNTAX_ERRORS: usize = 25;

/// Result of parsing: the (possibly partial) tree plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseResult {
    /// Parsed file; partial if errors occurred.
    pub file: SourceFile,
    /// Parser-level diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

/// Parses Verilog source text.
///
/// # Examples
///
/// ```
/// use rtlfixer_verilog::parser::parse;
///
/// let result = parse("module m(input a, output y); assign y = ~a; endmodule");
/// assert!(result.diagnostics.is_empty());
/// assert_eq!(result.file.modules[0].name, "m");
/// ```
pub fn parse(source: &str) -> ParseResult {
    let tokens = crate::lexer::lex(source);
    Parser::new(tokens).run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
    directives: Vec<DirectiveUse>,
    in_module: bool,
    /// Second-and-later names of multi-name body port declarations
    /// (`output reg a, b;`), drained by the module loop.
    extra_port_decls: Vec<Port>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            diags: Vec::new(),
            directives: Vec::new(),
            in_module: false,
            extra_port_decls: Vec::new(),
        }
    }

    // ---- token plumbing ---------------------------------------------------

    fn peek(&mut self) -> &Tk {
        self.skip_directives();
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&mut self) -> Span {
        self.skip_directives();
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn nth(&mut self, n: usize) -> Tk {
        self.skip_directives();
        let mut idx = self.pos;
        let mut remaining = n;
        while idx < self.tokens.len() {
            if matches!(self.tokens[idx].kind, Tk::Directive { .. }) {
                idx += 1;
                continue;
            }
            if remaining == 0 {
                return self.tokens[idx].kind.clone();
            }
            remaining -= 1;
            idx += 1;
        }
        Tk::Eof
    }

    fn skip_directives(&mut self) {
        while let Some(tok) = self.tokens.get(self.pos) {
            if let Tk::Directive { name, rest } = &tok.kind {
                self.directives.push(DirectiveUse {
                    name: name.clone(),
                    rest: rest.clone(),
                    span: tok.span,
                    inside_module: self.in_module,
                });
                if self.in_module && name == "timescale" {
                    self.diags.push(Diagnostic::error(
                        ErrorCategory::MisplacedDirective,
                        tok.span,
                        DiagData::Directive { directive: name.clone() },
                    ));
                }
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn bump(&mut self) -> Token {
        self.skip_directives();
        let idx = self.pos.min(self.tokens.len() - 1);
        let tok = self.tokens[idx].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&mut self, kind: &Tk) -> bool {
        self.peek() == kind
    }

    fn at_kw(&mut self, kw: Kw) -> bool {
        matches!(self.peek(), Tk::Kw(k) if *k == kw)
    }

    fn eat(&mut self, kind: &Tk) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error_limit_reached(&self) -> bool {
        self.diags.iter().filter(|d| d.is_error()).count() >= MAX_SYNTAX_ERRORS
    }

    fn syntax_error(&mut self, expected: &str) {
        let span = self.peek_span();
        let found = self.peek().describe();
        // C-style tokens get their own category so the retrieval database and
        // competence model can treat them separately (§5 of the paper).
        let c_style = self.peek().is_c_style();
        let diag = if c_style {
            Diagnostic::error(
                ErrorCategory::CStyleConstruct,
                span,
                DiagData::CStyle { construct: found },
            )
        } else {
            Diagnostic::error(
                ErrorCategory::SyntaxError,
                span,
                DiagData::Syntax { found, expected: expected.to_owned() },
            )
        };
        self.diags.push(diag);
    }

    fn expect(&mut self, kind: &Tk, expected: &str) -> bool {
        if self.eat(kind) {
            true
        } else {
            self.syntax_error(expected);
            false
        }
    }

    fn expect_semi(&mut self) {
        if !self.eat(&Tk::Semi) {
            self.syntax_error("';'");
            // Missing semicolons are common in LLM output; resync gently by
            // not consuming anything (the caller's loop will recover).
        }
    }

    fn expect_ident(&mut self, what: &str) -> Option<(String, Span)> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tk::Ident(name) => {
                self.bump();
                Some((name, span))
            }
            Tk::Kw(kw) => {
                self.diags.push(Diagnostic::error(
                    ErrorCategory::KeywordAsIdentifier,
                    span,
                    DiagData::KeywordAsId { keyword: kw.as_str().to_owned() },
                ));
                self.bump();
                Some((kw.as_str().to_owned(), span))
            }
            _ => {
                self.syntax_error(what);
                None
            }
        }
    }

    /// Skips tokens until one of `stops` (or EOF); does not consume the stop.
    fn recover_to(&mut self, stops: &[Tk]) {
        loop {
            let tok = self.peek().clone();
            if tok == Tk::Eof || stops.contains(&tok) {
                break;
            }
            if let Tk::Kw(kw) = tok {
                if matches!(kw, Kw::Endmodule | Kw::Module) {
                    break;
                }
            }
            self.bump();
        }
    }

    // ---- top level --------------------------------------------------------

    fn run(mut self) -> ParseResult {
        let mut modules = Vec::new();
        loop {
            self.skip_directives();
            if self.at(&Tk::Eof) || self.error_limit_reached() {
                break;
            }
            if self.eat_kw(Kw::Module) {
                if let Some(module) = self.parse_module() {
                    modules.push(module);
                }
            } else {
                self.syntax_error("'module'");
                self.bump();
                self.recover_to(&[]);
            }
        }
        ParseResult {
            file: SourceFile { directives: self.directives, modules },
            diagnostics: self.diags,
        }
    }

    fn parse_module(&mut self) -> Option<Module> {
        let start = self.peek_span();
        self.in_module = true;
        let (name, _) = self.expect_ident("module name")?;

        let mut header_params = Vec::new();
        if self.eat(&Tk::Hash) {
            self.expect(&Tk::LParen, "'('");
            loop {
                self.eat_kw(Kw::Parameter);
                if let Some(param) = self.parse_param_decl(false) {
                    header_params.push(param);
                }
                if !self.eat(&Tk::Comma) {
                    break;
                }
            }
            self.expect(&Tk::RParen, "')'");
        }

        let mut ports = Vec::new();
        if self.eat(&Tk::LParen) {
            if !self.at(&Tk::RParen) {
                self.parse_port_list(&mut ports);
            }
            if !self.eat(&Tk::RParen) {
                self.syntax_error("')'");
                self.recover_to(&[Tk::Semi]);
                self.eat(&Tk::RParen);
            }
        }
        self.expect_semi();
        let header_end = self.tokens[(self.pos.saturating_sub(1)).min(self.tokens.len() - 1)].span;

        let mut items = Vec::new();
        let mut saw_endmodule = false;
        loop {
            if self.at(&Tk::Eof) || self.error_limit_reached() {
                break;
            }
            if self.eat_kw(Kw::Endmodule) {
                saw_endmodule = true;
                break;
            }
            if self.at_kw(Kw::Module) {
                break; // missing endmodule before a new module
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                self.merge_port_decl(&mut ports, &item);
                items.push(item);
            }
            for extra in self.take_extra_ports() {
                let item = Item::PortDecl(extra);
                self.merge_port_decl(&mut ports, &item);
                items.push(item);
            }
            if self.pos == before {
                // No progress: consume one token to guarantee termination.
                self.syntax_error("module item");
                self.bump();
            }
        }
        if !saw_endmodule {
            let span = self.peek_span();
            self.diags.push(Diagnostic::error(
                ErrorCategory::UnbalancedBlock,
                span,
                DiagData::Unbalanced { construct: "endmodule".into() },
            ));
        }
        self.in_module = false;
        let end = self.tokens[(self.pos.saturating_sub(1)).min(self.tokens.len() - 1)].span;
        Some(Module {
            name,
            ports,
            items,
            header_params,
            span: start.join(end),
            header_span: start.join(header_end),
        })
    }

    /// Merge a body-level port/net declaration into the port list so that
    /// non-ANSI headers (`module m(a, q); input a; output reg q; …`) end up
    /// with fully-typed ports.
    fn merge_port_decl(&mut self, ports: &mut [Port], item: &Item) {
        match item {
            Item::PortDecl(decl) => {
                if let Some(port) = ports.iter_mut().find(|p| p.name == decl.name) {
                    port.direction = decl.direction;
                    if decl.kind.is_some() {
                        port.kind = decl.kind;
                    }
                    if decl.range.is_some() {
                        port.range = decl.range.clone();
                    }
                    port.signed |= decl.signed;
                }
            }
            Item::Net { kind, range, decls, .. } => {
                for declarator in decls {
                    if let Some(port) = ports.iter_mut().find(|p| p.name == declarator.name) {
                        if port.kind.is_none() {
                            port.kind = Some(*kind);
                            if port.range.is_none() {
                                port.range = range.clone();
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn parse_port_list(&mut self, ports: &mut Vec<Port>) {
        let mut current_dir: Option<Direction> = None;
        let mut current_kind: Option<NetKind> = None;
        let mut current_signed = false;
        let mut current_range: Option<RangeDecl> = None;
        loop {
            let span = self.peek_span();
            let dir = self.parse_direction();
            if let Some(dir) = dir {
                current_dir = Some(dir);
                current_kind = self.parse_net_kind();
                current_signed = self.eat_kw(Kw::Signed);
                current_range = self.parse_opt_range();
            } else if current_dir.is_some() && self.at(&Tk::LBracket) {
                // `input [7:0] a, [3:0] b` — unusual but accepted.
                current_range = self.parse_opt_range();
            }
            let Some((name, name_span)) = self.expect_ident("port name") else {
                self.recover_to(&[Tk::Comma, Tk::RParen]);
                if !self.eat(&Tk::Comma) {
                    break;
                }
                continue;
            };
            match current_dir {
                Some(direction) => ports.push(Port {
                    direction,
                    kind: current_kind,
                    signed: current_signed,
                    range: current_range.clone(),
                    name,
                    span: span.join(name_span),
                }),
                // Non-ANSI header: name only; direction filled by body decls.
                None => ports.push(Port {
                    direction: Direction::Input,
                    kind: None,
                    signed: false,
                    range: None,
                    name,
                    span: name_span,
                }),
            }
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
    }

    fn parse_direction(&mut self) -> Option<Direction> {
        if self.eat_kw(Kw::Input) {
            Some(Direction::Input)
        } else if self.eat_kw(Kw::Output) {
            Some(Direction::Output)
        } else if self.eat_kw(Kw::Inout) {
            Some(Direction::Inout)
        } else {
            None
        }
    }

    fn parse_net_kind(&mut self) -> Option<NetKind> {
        if self.eat_kw(Kw::Wire) {
            Some(NetKind::Wire)
        } else if self.eat_kw(Kw::Reg) {
            Some(NetKind::Reg)
        } else if self.eat_kw(Kw::Logic) {
            Some(NetKind::Logic)
        } else if self.eat_kw(Kw::Integer) || self.eat_kw(Kw::Int) || self.eat_kw(Kw::Bit) {
            Some(NetKind::Integer)
        } else {
            None
        }
    }

    fn parse_opt_range(&mut self) -> Option<RangeDecl> {
        if !self.at(&Tk::LBracket) {
            return None;
        }
        let start = self.peek_span();
        self.bump();
        let msb = self.parse_expr();
        self.expect(&Tk::Colon, "':'");
        let lsb = self.parse_expr();
        let end = self.peek_span();
        self.expect(&Tk::RBracket, "']'");
        Some(RangeDecl { msb, lsb, span: start.join(end) })
    }

    // ---- items ------------------------------------------------------------

    fn parse_item(&mut self) -> Option<Item> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tk::Kw(Kw::Input) | Tk::Kw(Kw::Output) | Tk::Kw(Kw::Inout) => {
                self.parse_body_port_decl()
            }
            Tk::Kw(Kw::Wire) | Tk::Kw(Kw::Reg) | Tk::Kw(Kw::Logic) | Tk::Kw(Kw::Integer)
            | Tk::Kw(Kw::Int) | Tk::Kw(Kw::Bit) => self.parse_net_decl(),
            Tk::Kw(Kw::Parameter) => {
                self.bump();
                let param = self.parse_param_decl(false);
                self.expect_semi();
                param.map(Item::Param)
            }
            Tk::Kw(Kw::Localparam) => {
                self.bump();
                let param = self.parse_param_decl(true);
                self.expect_semi();
                param.map(Item::Param)
            }
            Tk::Kw(Kw::Genvar) => {
                self.bump();
                let mut names = Vec::new();
                while let Some(pair) = self.expect_ident("genvar name") {
                    names.push(pair);
                    if !self.eat(&Tk::Comma) {
                        break;
                    }
                }
                self.expect_semi();
                Some(Item::Genvar { names, span: span.join(self.prev_span()) })
            }
            Tk::Kw(Kw::Assign) => {
                self.bump();
                let mut assigns = Vec::new();
                loop {
                    let lhs = self.parse_expr();
                    self.expect(&Tk::Assign, "'='");
                    let rhs = self.parse_expr();
                    assigns.push((lhs, rhs));
                    if !self.eat(&Tk::Comma) {
                        break;
                    }
                }
                self.expect_semi();
                Some(Item::ContinuousAssign { assigns, span: span.join(self.prev_span()) })
            }
            Tk::Kw(Kw::Always) => {
                self.bump();
                let sensitivity = self.parse_sensitivity();
                let body = self.parse_stmt();
                Some(Item::Always {
                    kind: AlwaysKind::Always,
                    sensitivity,
                    body,
                    span: span.join(self.prev_span()),
                })
            }
            Tk::Kw(Kw::AlwaysComb) => {
                self.bump();
                let body = self.parse_stmt();
                Some(Item::Always {
                    kind: AlwaysKind::Comb,
                    sensitivity: Sensitivity::Star,
                    body,
                    span: span.join(self.prev_span()),
                })
            }
            Tk::Kw(Kw::AlwaysFf) => {
                self.bump();
                let sensitivity = self.parse_sensitivity();
                let body = self.parse_stmt();
                Some(Item::Always {
                    kind: AlwaysKind::Ff,
                    sensitivity,
                    body,
                    span: span.join(self.prev_span()),
                })
            }
            Tk::Kw(Kw::Initial) => {
                self.bump();
                let body = self.parse_stmt();
                Some(Item::Initial { body, span: span.join(self.prev_span()) })
            }
            Tk::Kw(Kw::Generate) => {
                self.bump();
                let mut items = Vec::new();
                while !self.at_kw(Kw::Endgenerate) && !self.at(&Tk::Eof) && !self.at_kw(Kw::Endmodule)
                {
                    let before = self.pos;
                    if let Some(item) = self.parse_item() {
                        items.push(item);
                    }
                    if self.pos == before {
                        self.syntax_error("generate item");
                        self.bump();
                    }
                }
                if !self.eat_kw(Kw::Endgenerate) {
                    let span = self.peek_span();
                    self.diags.push(Diagnostic::error(
                        ErrorCategory::UnbalancedBlock,
                        span,
                        DiagData::Unbalanced { construct: "endgenerate".into() },
                    ));
                }
                Some(Item::Generate { items, span: span.join(self.prev_span()) })
            }
            Tk::Kw(Kw::For) => self.parse_gen_for(),
            Tk::Kw(Kw::Function) => self.parse_function(),
            Tk::Ident(_) => self.parse_instance(),
            _ => None,
        }
    }

    fn prev_span(&self) -> Span {
        self.tokens[(self.pos.saturating_sub(1)).min(self.tokens.len() - 1)].span
    }

    fn parse_body_port_decl(&mut self) -> Option<Item> {
        let span = self.peek_span();
        let direction = self.parse_direction().expect("caller checked");
        let kind = self.parse_net_kind();
        let signed = self.eat_kw(Kw::Signed);
        let range = self.parse_opt_range();
        // Multiple names per decl: emit one PortDecl per name; extra names
        // are returned as a combined span via a Generate wrapper — to keep
        // the item type simple we emit only the first as PortDecl and merge
        // the rest directly here.
        let mut first: Option<Item> = None;
        while let Some((name, name_span)) = self.expect_ident("port name") {
            let port = Port {
                direction,
                kind,
                signed,
                range: range.clone(),
                name,
                span: span.join(name_span),
            };
            if first.is_none() {
                first = Some(Item::PortDecl(port));
            } else {
                // Merge immediately; the AST keeps only the first for span
                // purposes, which is enough for diagnostics and repair.
                self.extra_port_decls.push(port);
            }
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect_semi();
        first
    }

    fn parse_net_decl(&mut self) -> Option<Item> {
        let span = self.peek_span();
        let kind = self.parse_net_kind().expect("caller checked");
        let signed = self.eat_kw(Kw::Signed);
        let range = self.parse_opt_range();
        let mut decls = Vec::new();
        loop {
            let Some((name, name_span)) = self.expect_ident("signal name") else {
                self.recover_to(&[Tk::Semi]);
                break;
            };
            let unpacked = self.parse_opt_range();
            let init = if self.eat(&Tk::Assign) { Some(self.parse_expr()) } else { None };
            decls.push(Declarator { name, unpacked, init, span: name_span });
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        self.expect_semi();
        Some(Item::Net { kind, signed, range, decls, span: span.join(self.prev_span()) })
    }

    fn parse_param_decl(&mut self, local: bool) -> Option<ParamDecl> {
        let span = self.peek_span();
        // Optional type noise: `parameter integer W = 4`.
        self.parse_net_kind();
        self.parse_opt_range();
        let (name, _) = self.expect_ident("parameter name")?;
        self.expect(&Tk::Assign, "'='");
        let value = self.parse_expr();
        Some(ParamDecl { local, name, value, span: span.join(self.prev_span()) })
    }

    fn parse_sensitivity(&mut self) -> Sensitivity {
        if !self.eat(&Tk::At) {
            return Sensitivity::None;
        }
        if self.eat(&Tk::Star) {
            return Sensitivity::Star;
        }
        if !self.eat(&Tk::LParen) {
            // `always @ posedge clk` without parens — tolerate single entry.
            if self.at_kw(Kw::Posedge) || self.at_kw(Kw::Negedge) {
                let edge = if self.eat_kw(Kw::Posedge) { Edge::Pos } else { Edge::Neg };
                let span = self.peek_span();
                let signal = self.parse_primary();
                return Sensitivity::Edges(vec![EdgeSpec { edge, signal, span }]);
            }
            self.syntax_error("'(' or '*'");
            return Sensitivity::None;
        }
        if self.eat(&Tk::Star) {
            self.expect(&Tk::RParen, "')'");
            return Sensitivity::Star;
        }
        let mut edges = Vec::new();
        let mut signals = Vec::new();
        loop {
            let span = self.peek_span();
            if self.eat_kw(Kw::Posedge) {
                let signal = self.parse_primary();
                edges.push(EdgeSpec { edge: Edge::Pos, signal, span });
            } else if self.eat_kw(Kw::Negedge) {
                let signal = self.parse_primary();
                edges.push(EdgeSpec { edge: Edge::Neg, signal, span });
            } else if let Tk::Ident(name) = self.peek().clone() {
                self.bump();
                signals.push((name, span));
            } else {
                self.syntax_error("sensitivity entry");
                break;
            }
            if self.eat(&Tk::Comma) || self.eat_kw(Kw::Or) {
                continue;
            }
            break;
        }
        self.expect(&Tk::RParen, "')'");
        if !edges.is_empty() {
            // Mixed lists are rare; treat any edge as edge-triggered.
            Sensitivity::Edges(edges)
        } else if !signals.is_empty() {
            Sensitivity::Signals(signals)
        } else {
            Sensitivity::None
        }
    }

    fn parse_gen_for(&mut self) -> Option<Item> {
        let span = self.peek_span();
        self.bump(); // for
        self.expect(&Tk::LParen, "'('");
        self.parse_net_kind(); // tolerate `genvar i = 0` style
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(&Tk::Assign, "'='");
        let init = self.parse_expr();
        self.expect_semi();
        let cond = self.parse_expr();
        self.expect_semi();
        let step = self.parse_loop_step(&var);
        self.expect(&Tk::RParen, "')'");
        self.expect_kw(Kw::Begin, "'begin'");
        let label = if self.eat(&Tk::Colon) {
            self.expect_ident("block label").map(|(name, _)| name)
        } else {
            None
        };
        let mut items = Vec::new();
        while !self.at_kw(Kw::End) && !self.at(&Tk::Eof) && !self.at_kw(Kw::Endmodule) {
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.syntax_error("generate-for item");
                self.bump();
            }
        }
        if !self.eat_kw(Kw::End) {
            let span = self.peek_span();
            self.diags.push(Diagnostic::error(
                ErrorCategory::UnbalancedBlock,
                span,
                DiagData::Unbalanced { construct: "end".into() },
            ));
        }
        Some(Item::GenFor {
            var,
            init,
            cond,
            step,
            label,
            items,
            span: span.join(self.prev_span()),
        })
    }

    fn expect_kw(&mut self, kw: Kw, expected: &str) -> bool {
        if self.eat_kw(kw) {
            true
        } else {
            self.syntax_error(expected);
            false
        }
    }

    /// Parses the step clause of a for loop: `i = i + 1`, or the C-style
    /// `i++` / `i += 1` (recorded as `CStyleConstruct` errors but folded into
    /// an equivalent step so parsing can continue).
    fn parse_loop_step(&mut self, var: &str) -> Expr {
        let span = self.peek_span();
        // C-style prefix increment: ++i
        if self.at(&Tk::PlusPlus) || self.at(&Tk::MinusMinus) {
            let tok = self.bump();
            self.diags.push(Diagnostic::error(
                ErrorCategory::CStyleConstruct,
                tok.span,
                DiagData::CStyle { construct: tok.kind.describe() },
            ));
            let _ = self.expect_ident("loop variable");
            return self.var_plus_one(var, span, tok.kind == Tk::MinusMinus);
        }
        let Some((_, _)) = self.expect_ident("loop variable") else {
            return self.var_plus_one(var, span, false);
        };
        match self.peek().clone() {
            Tk::Assign => {
                self.bump();
                self.parse_expr()
            }
            Tk::PlusPlus | Tk::MinusMinus | Tk::PlusEq | Tk::MinusEq | Tk::StarEq | Tk::SlashEq => {
                let tok = self.bump();
                self.diags.push(Diagnostic::error(
                    ErrorCategory::CStyleConstruct,
                    tok.span,
                    DiagData::CStyle { construct: tok.kind.describe() },
                ));
                let neg = matches!(tok.kind, Tk::MinusMinus | Tk::MinusEq);
                if matches!(tok.kind, Tk::PlusEq | Tk::MinusEq | Tk::StarEq | Tk::SlashEq) {
                    let _ = self.parse_expr();
                }
                self.var_plus_one(var, span, neg)
            }
            Tk::LtEq => {
                // `i <= i + 1` as a loop step — legal-ish, treat as step.
                self.bump();
                self.parse_expr()
            }
            _ => {
                self.syntax_error("'='");
                self.var_plus_one(var, span, false)
            }
        }
    }

    fn var_plus_one(&self, var: &str, span: Span, negative: bool) -> Expr {
        Expr::Binary {
            op: if negative { BinaryOp::Sub } else { BinaryOp::Add },
            lhs: Box::new(Expr::Ident { name: var.to_owned(), span }),
            rhs: Box::new(Expr::Literal {
                size: None,
                base: None,
                digits: "1".into(),
                signed: false,
                span,
            }),
            span,
        }
    }

    fn parse_function(&mut self) -> Option<Item> {
        let span = self.peek_span();
        self.bump(); // function
        // Tolerate `function automatic` — `automatic` lexes as an Ident, so
        // peek ahead: ident followed by another ident/range means the first
        // was a qualifier.
        if let (Tk::Ident(first), Tk::Ident(_)) = (self.nth(0), self.nth(1)) {
            if first == "automatic" {
                self.bump();
            }
        }
        let range = self.parse_opt_range();
        let (name, _) = self.expect_ident("function name")?;
        // Optional ANSI argument list.
        let mut args = Vec::new();
        if self.eat(&Tk::LParen) {
            if !self.at(&Tk::RParen) {
                self.parse_port_list(&mut args);
            }
            self.expect(&Tk::RParen, "')'");
        }
        self.expect_semi();
        // Non-ANSI argument declarations.
        while matches!(self.peek(), Tk::Kw(Kw::Input) | Tk::Kw(Kw::Output) | Tk::Kw(Kw::Inout)) {
            if let Some(Item::PortDecl(port)) = self.parse_body_port_decl() {
                args.push(port);
                for extra in self.extra_port_decls.drain(..) {
                    args.push(extra);
                }
            }
        }
        // Local declarations.
        let mut locals = Vec::new();
        while matches!(
            self.peek(),
            Tk::Kw(Kw::Reg) | Tk::Kw(Kw::Integer) | Tk::Kw(Kw::Int) | Tk::Kw(Kw::Bit)
        ) {
            if let Some(item) = self.parse_net_decl() {
                locals.push(item);
            }
        }
        let mut body = self.parse_stmt();
        if !locals.is_empty() {
            let body_span = body.span();
            body = Stmt::Block { label: None, decls: locals, stmts: vec![body], span: body_span };
        }
        if !self.eat_kw(Kw::Endfunction) {
            let span = self.peek_span();
            self.diags.push(Diagnostic::error(
                ErrorCategory::UnbalancedBlock,
                span,
                DiagData::Unbalanced { construct: "endfunction".into() },
            ));
        }
        Some(Item::Function { name, range, args, body, span: span.join(self.prev_span()) })
    }

    fn parse_instance(&mut self) -> Option<Item> {
        let span = self.peek_span();
        let (module, _) = self.expect_ident("module name")?;
        let mut params = Vec::new();
        if self.eat(&Tk::Hash) {
            self.expect(&Tk::LParen, "'('");
            params = self.parse_connections();
            self.expect(&Tk::RParen, "')'");
        }
        let Some((name, _)) = self.expect_ident("instance name") else {
            self.recover_to(&[Tk::Semi]);
            self.eat(&Tk::Semi);
            return None;
        };
        self.expect(&Tk::LParen, "'('");
        let conns = if self.at(&Tk::RParen) { Vec::new() } else { self.parse_connections() };
        self.expect(&Tk::RParen, "')'");
        self.expect_semi();
        Some(Item::Instance { module, name, params, conns, span: span.join(self.prev_span()) })
    }

    fn parse_connections(&mut self) -> Vec<Connection> {
        let mut conns = Vec::new();
        loop {
            let span = self.peek_span();
            if self.eat(&Tk::Dot) {
                let port = self.expect_ident("port name").map(|(name, _)| name);
                self.expect(&Tk::LParen, "'('");
                let expr = if self.at(&Tk::RParen) { None } else { Some(self.parse_expr()) };
                self.expect(&Tk::RParen, "')'");
                conns.push(Connection { port, expr, span: span.join(self.prev_span()) });
            } else if self.at(&Tk::RParen) {
                break;
            } else {
                let expr = self.parse_expr();
                conns.push(Connection { port: None, expr: Some(expr), span });
            }
            if !self.eat(&Tk::Comma) {
                break;
            }
        }
        conns
    }

    // ---- statements -------------------------------------------------------

    fn parse_stmt(&mut self) -> Stmt {
        let span = self.peek_span();
        if self.error_limit_reached() {
            return Stmt::Null(span);
        }
        match self.peek().clone() {
            Tk::Kw(Kw::Begin) => self.parse_block(),
            Tk::Kw(Kw::If) => {
                self.bump();
                self.expect(&Tk::LParen, "'('");
                let cond = self.parse_expr();
                self.expect(&Tk::RParen, "')'");
                let then_branch = Box::new(self.parse_stmt());
                let else_branch = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.parse_stmt()))
                } else {
                    None
                };
                Stmt::If { cond, then_branch, else_branch, span: span.join(self.prev_span()) }
            }
            Tk::Kw(Kw::Case) | Tk::Kw(Kw::Casez) | Tk::Kw(Kw::Casex) => self.parse_case(),
            Tk::Kw(Kw::For) => {
                self.bump();
                self.expect(&Tk::LParen, "'('");
                let decl = self.parse_net_kind();
                let var = self
                    .expect_ident("loop variable")
                    .map(|(name, _)| name)
                    .unwrap_or_else(|| "i".to_owned());
                self.expect(&Tk::Assign, "'='");
                let init = self.parse_expr();
                self.expect_semi();
                let cond = self.parse_expr();
                self.expect_semi();
                let step = self.parse_loop_step(&var);
                self.expect(&Tk::RParen, "')'");
                let body = Box::new(self.parse_stmt());
                Stmt::For { var, decl, init, cond, step, body, span: span.join(self.prev_span()) }
            }
            Tk::Kw(Kw::While) => {
                self.bump();
                self.expect(&Tk::LParen, "'('");
                let cond = self.parse_expr();
                self.expect(&Tk::RParen, "')'");
                let body = Box::new(self.parse_stmt());
                Stmt::While { cond, body, span: span.join(self.prev_span()) }
            }
            Tk::Kw(Kw::Repeat) => {
                self.bump();
                self.expect(&Tk::LParen, "'('");
                let count = self.parse_expr();
                self.expect(&Tk::RParen, "')'");
                let body = Box::new(self.parse_stmt());
                Stmt::Repeat { count, body, span: span.join(self.prev_span()) }
            }
            Tk::SystemIdent(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&Tk::LParen) {
                    if !self.at(&Tk::RParen) {
                        loop {
                            args.push(self.parse_expr());
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tk::RParen, "')'");
                }
                self.expect_semi();
                Stmt::SysCall { name, args, span: span.join(self.prev_span()) }
            }
            Tk::Semi => {
                self.bump();
                Stmt::Null(span)
            }
            Tk::Kw(Kw::End) | Tk::Kw(Kw::Endcase) | Tk::Kw(Kw::Endmodule) | Tk::Eof => {
                // Caller handles these; produce an empty statement.
                Stmt::Null(span)
            }
            _ => self.parse_assign_stmt(),
        }
    }

    fn parse_block(&mut self) -> Stmt {
        let span = self.peek_span();
        self.bump(); // begin
        let label = if self.eat(&Tk::Colon) {
            self.expect_ident("block label").map(|(name, _)| name)
        } else {
            None
        };
        let mut decls = Vec::new();
        // Block-local declarations (integer i; reg [3:0] t;).
        while matches!(
            self.peek(),
            Tk::Kw(Kw::Integer) | Tk::Kw(Kw::Int) | Tk::Kw(Kw::Reg) | Tk::Kw(Kw::Bit)
        ) {
            // Disambiguate declaration vs nothing: a kind keyword always
            // starts a declaration here.
            if let Some(item) = self.parse_net_decl() {
                decls.push(item);
            } else {
                break;
            }
        }
        let mut stmts = Vec::new();
        loop {
            if self.eat_kw(Kw::End) {
                return Stmt::Block { label, decls, stmts, span: span.join(self.prev_span()) };
            }
            if self.at(&Tk::Eof) || self.at_kw(Kw::Endmodule) || self.error_limit_reached() {
                let span = self.peek_span();
                self.diags.push(Diagnostic::error(
                    ErrorCategory::UnbalancedBlock,
                    span,
                    DiagData::Unbalanced { construct: "end".into() },
                ));
                return Stmt::Block { label, decls, stmts, span: span.join(self.prev_span()) };
            }
            let before = self.pos;
            stmts.push(self.parse_stmt());
            if self.pos == before {
                self.syntax_error("statement");
                self.bump();
            }
        }
    }

    fn parse_case(&mut self) -> Stmt {
        let span = self.peek_span();
        let kind = match self.bump().kind {
            Tk::Kw(Kw::Casez) => CaseKind::Casez,
            Tk::Kw(Kw::Casex) => CaseKind::Casex,
            _ => CaseKind::Case,
        };
        self.expect(&Tk::LParen, "'('");
        let scrutinee = self.parse_expr();
        self.expect(&Tk::RParen, "')'");
        let mut arms = Vec::new();
        let mut default = None;
        loop {
            if self.eat_kw(Kw::Endcase) {
                break;
            }
            if self.at(&Tk::Eof) || self.at_kw(Kw::Endmodule) || self.error_limit_reached() {
                let span = self.peek_span();
                self.diags.push(Diagnostic::error(
                    ErrorCategory::UnbalancedBlock,
                    span,
                    DiagData::Unbalanced { construct: "endcase".into() },
                ));
                break;
            }
            if self.eat_kw(Kw::Default) {
                self.eat(&Tk::Colon);
                default = Some(Box::new(self.parse_stmt()));
                continue;
            }
            let arm_span = self.peek_span();
            let mut labels = vec![self.parse_expr()];
            while self.eat(&Tk::Comma) {
                labels.push(self.parse_expr());
            }
            if !self.expect(&Tk::Colon, "':'") {
                self.recover_to(&[Tk::Colon, Tk::Semi]);
                self.eat(&Tk::Colon);
            }
            let body = self.parse_stmt();
            arms.push(CaseArm { labels, body, span: arm_span.join(self.prev_span()) });
        }
        Stmt::Case { kind, scrutinee, arms, default, span: span.join(self.prev_span()) }
    }

    fn parse_assign_stmt(&mut self) -> Stmt {
        let span = self.peek_span();
        // The LHS is parsed with the postfix (l-value) grammar, not the full
        // expression grammar — otherwise `q <= ~q;` would lex-parse as the
        // comparison `q <= (~q)` and the `<=` would never be seen as a
        // non-blocking assignment.
        let lhs = self.parse_postfix();
        let op = if self.eat(&Tk::Assign) {
            AssignOp::Blocking
        } else if self.eat(&Tk::LtEq) {
            AssignOp::NonBlocking
        } else if self.peek().is_c_style() {
            let tok = self.bump();
            self.diags.push(Diagnostic::error(
                ErrorCategory::CStyleConstruct,
                tok.span,
                DiagData::CStyle { construct: tok.kind.describe() },
            ));
            if matches!(tok.kind, Tk::PlusPlus | Tk::MinusMinus) {
                self.expect_semi();
                let rhs = match &lhs {
                    Expr::Ident { name, span } => self.var_plus_one(
                        name,
                        *span,
                        tok.kind == Tk::MinusMinus,
                    ),
                    _ => lhs.clone(),
                };
                return Stmt::Assign {
                    lhs,
                    op: AssignOp::Blocking,
                    rhs,
                    span: span.join(self.prev_span()),
                };
            }
            AssignOp::Blocking
        } else {
            self.syntax_error("'=' or '<='");
            self.recover_to(&[Tk::Semi]);
            self.eat(&Tk::Semi);
            return Stmt::Null(span);
        };
        let rhs = self.parse_expr();
        self.expect_semi();
        Stmt::Assign { lhs, op, rhs, span: span.join(self.prev_span()) }
    }

    // ---- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Expr {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Expr {
        let cond = self.parse_binary(0);
        if self.eat(&Tk::Question) {
            let span = cond.span();
            let then_expr = self.parse_expr();
            self.expect(&Tk::Colon, "':'");
            let else_expr = self.parse_expr();
            let full = span.join(else_expr.span());
            Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span: full,
            }
        } else {
            cond
        }
    }

    fn binary_op(tok: &Tk) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        Some(match tok {
            Tk::PipePipe => (LogOr, 1),
            Tk::AmpAmp => (LogAnd, 2),
            Tk::Pipe => (BitOr, 3),
            Tk::Caret => (BitXor, 4),
            Tk::TildeCaret => (BitXnor, 4),
            Tk::Amp => (BitAnd, 5),
            Tk::EqEq => (Eq, 6),
            Tk::NotEq => (Ne, 6),
            Tk::EqEqEq => (CaseEq, 6),
            Tk::NotEqEq => (CaseNe, 6),
            Tk::Lt => (Lt, 7),
            Tk::LtEq => (Le, 7),
            Tk::Gt => (Gt, 7),
            Tk::GtEq => (Ge, 7),
            Tk::Shl => (Shl, 8),
            Tk::Shr => (Shr, 8),
            Tk::AShl => (AShl, 8),
            Tk::AShr => (AShr, 8),
            Tk::Plus => (Add, 9),
            Tk::Minus => (Sub, 9),
            Tk::Star => (Mul, 10),
            Tk::Slash => (Div, 10),
            Tk::Percent => (Mod, 10),
            Tk::StarStar => (Pow, 11),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.parse_unary();
        while let Some((op, prec)) = Self::binary_op(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1);
            let span = lhs.span().join(rhs.span());
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        lhs
    }

    fn parse_unary(&mut self) -> Expr {
        let span = self.peek_span();
        let op = match self.peek() {
            Tk::Plus => Some(UnaryOp::Plus),
            Tk::Minus => Some(UnaryOp::Neg),
            Tk::Bang => Some(UnaryOp::Not),
            Tk::Tilde => Some(UnaryOp::BitNot),
            Tk::Amp => Some(UnaryOp::RedAnd),
            Tk::Pipe => Some(UnaryOp::RedOr),
            Tk::Caret => Some(UnaryOp::RedXor),
            Tk::TildeAmp => Some(UnaryOp::RedNand),
            Tk::TildePipe => Some(UnaryOp::RedNor),
            Tk::TildeCaret => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary();
            let full = span.join(operand.span());
            return Expr::Unary { op, operand: Box::new(operand), span: full };
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut expr = self.parse_primary();
        while let Tk::LBracket = self.peek() {
            let start = expr.span();
            self.bump();
            let first = self.parse_expr();
            match self.peek().clone() {
                Tk::Colon => {
                    self.bump();
                    let right = self.parse_expr();
                    let end = self.peek_span();
                    self.expect(&Tk::RBracket, "']'");
                    expr = Expr::Select {
                        base: Box::new(expr),
                        left: Box::new(first),
                        right: Box::new(right),
                        mode: SelectMode::Range,
                        span: start.join(end),
                    };
                }
                Tk::PlusColon | Tk::MinusColon => {
                    let mode = if self.bump().kind == Tk::PlusColon {
                        SelectMode::IndexedUp
                    } else {
                        SelectMode::IndexedDown
                    };
                    let right = self.parse_expr();
                    let end = self.peek_span();
                    self.expect(&Tk::RBracket, "']'");
                    expr = Expr::Select {
                        base: Box::new(expr),
                        left: Box::new(first),
                        right: Box::new(right),
                        mode,
                        span: start.join(end),
                    };
                }
                _ => {
                    let end = self.peek_span();
                    self.expect(&Tk::RBracket, "']'");
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(first),
                        span: start.join(end),
                    };
                }
            }
        }
        expr
    }

    fn parse_primary(&mut self) -> Expr {
        let span = self.peek_span();
        match self.peek().clone() {
            Tk::Ident(name) => {
                self.bump();
                if self.at(&Tk::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Tk::RParen) {
                        loop {
                            args.push(self.parse_expr());
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tk::RParen, "')'");
                    Expr::Call { name, args, span: span.join(self.prev_span()) }
                } else {
                    Expr::Ident { name, span }
                }
            }
            Tk::SystemIdent(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&Tk::LParen) {
                    if !self.at(&Tk::RParen) {
                        loop {
                            args.push(self.parse_expr());
                            if !self.eat(&Tk::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tk::RParen, "')'");
                }
                Expr::SysCall { name, args, span: span.join(self.prev_span()) }
            }
            Tk::Number { size, base, digits, signed } => {
                self.bump();
                Expr::Literal { size, base, digits, signed, span }
            }
            Tk::Str(value) => {
                self.bump();
                Expr::Str { value, span }
            }
            Tk::LParen => {
                self.bump();
                let inner = self.parse_expr();
                self.expect(&Tk::RParen, "')'");
                inner
            }
            Tk::LBrace => {
                self.bump();
                let first = self.parse_expr();
                if self.at(&Tk::LBrace) {
                    // Replication: {count{value}}
                    self.bump();
                    let mut parts = vec![self.parse_expr()];
                    while self.eat(&Tk::Comma) {
                        parts.push(self.parse_expr());
                    }
                    self.expect(&Tk::RBrace, "'}'");
                    let end = self.peek_span();
                    self.expect(&Tk::RBrace, "'}'");
                    let value = if parts.len() == 1 {
                        parts.pop().expect("one part")
                    } else {
                        Expr::Concat { parts, span: span.join(end) }
                    };
                    Expr::Replicate {
                        count: Box::new(first),
                        value: Box::new(value),
                        span: span.join(end),
                    }
                } else {
                    let mut parts = vec![first];
                    while self.eat(&Tk::Comma) {
                        parts.push(self.parse_expr());
                    }
                    let end = self.peek_span();
                    self.expect(&Tk::RBrace, "'}'");
                    Expr::Concat { parts, span: span.join(end) }
                }
            }
            other => {
                self.syntax_error("expression");
                if other != Tk::Eof && !matches!(other, Tk::Semi) {
                    self.bump();
                }
                Expr::Literal { size: None, base: None, digits: "0".into(), signed: false, span }
            }
        }
    }
}

impl Parser {
    fn take_extra_ports(&mut self) -> Vec<Port> {
        std::mem::take(&mut self.extra_port_decls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> SourceFile {
        let result = parse(src);
        assert!(
            result.diagnostics.iter().all(|d| !d.is_error()),
            "unexpected errors: {:?}",
            result.diagnostics
        );
        result.file
    }

    fn errors(src: &str) -> Vec<Diagnostic> {
        parse(src).diagnostics.into_iter().filter(|d| d.is_error()).collect()
    }

    #[test]
    fn parses_ansi_module() {
        let file = ok("module top_module(input [7:0] in, output [7:0] out);\n\
                       assign out = in;\nendmodule");
        let module = &file.modules[0];
        assert_eq!(module.name, "top_module");
        assert_eq!(module.ports.len(), 2);
        assert_eq!(module.ports[0].direction, Direction::Input);
        assert!(module.ports[0].range.is_some());
        assert_eq!(module.items.len(), 1);
    }

    #[test]
    fn parses_non_ansi_module() {
        let file = ok("module m(a, q);\ninput a;\noutput reg q;\nalways @(posedge a) q <= ~q;\nendmodule");
        let module = &file.modules[0];
        assert_eq!(module.port("q").unwrap().direction, Direction::Output);
        assert_eq!(module.port("q").unwrap().kind, Some(NetKind::Reg));
    }

    #[test]
    fn parses_multiple_ports_same_direction() {
        let file = ok("module m(input a, b, c, output y); assign y = a & b & c; endmodule");
        assert_eq!(file.modules[0].input_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn parses_always_ff_with_edges() {
        let file = ok("module m(input clk, input rst, output reg q);\n\
                       always @(posedge clk or negedge rst)\n\
                       if (!rst) q <= 0; else q <= 1;\nendmodule");
        let Item::Always { sensitivity, .. } = &file.modules[0].items[0] else {
            panic!("expected always");
        };
        let Sensitivity::Edges(edges) = sensitivity else { panic!("expected edges") };
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].edge, Edge::Pos);
        assert_eq!(edges[1].edge, Edge::Neg);
    }

    #[test]
    fn parses_star_sensitivity_forms() {
        ok("module m(input a, output reg y); always @* y = a; endmodule");
        ok("module m(input a, output reg y); always @(*) y = a; endmodule");
        ok("module m(input a, output reg y); always_comb y = a; endmodule");
    }

    #[test]
    fn parses_case_with_default() {
        let file = ok("module m(input [1:0] s, output reg [3:0] y);\n\
             always @* begin\n\
               case (s)\n\
                 2'b00: y = 4'b0001;\n\
                 2'b01, 2'b10: y = 4'b0010;\n\
                 default: y = 4'b0000;\n\
               endcase\n\
             end\nendmodule");
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Block { stmts, .. } = body else { panic!() };
        let Stmt::Case { arms, default, .. } = &stmts[0] else { panic!() };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn parses_for_loop_with_int_decl() {
        let file = ok("module m(input [7:0] in, output reg [7:0] out);\n\
             always @* begin\n\
               for (int i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n\
             end\nendmodule");
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Block { stmts, .. } = body else { panic!() };
        assert!(matches!(&stmts[0], Stmt::For { decl: Some(NetKind::Integer), .. }));
    }

    #[test]
    fn parses_concat_and_replicate() {
        ok("module m(input [3:0] a, output [7:0] y); assign y = {a, 4'b0}; endmodule");
        ok("module m(input a, output [7:0] y); assign y = {8{a}}; endmodule");
        ok("module m(input [3:0] a, output [15:0] y); assign y = {4{a[3], a[0]}}; endmodule");
    }

    #[test]
    fn parses_indexed_part_select() {
        ok("module m(input [31:0] a, input [1:0] s, output [7:0] y);\n\
            assign y = a[s*8 +: 8]; endmodule");
        ok("module m(input [31:0] a, output [7:0] y); assign y = a[15 -: 8]; endmodule");
    }

    #[test]
    fn parses_instance_named_and_positional() {
        let file = ok("module child(input a, output y); assign y = a; endmodule\n\
                       module top(input x, output z, output w);\n\
                       child c1(.a(x), .y(z));\n\
                       child c2(x, w);\nendmodule");
        let Item::Instance { module, conns, .. } = &file.modules[1].items[0] else { panic!() };
        assert_eq!(module, "child");
        assert_eq!(conns[0].port.as_deref(), Some("a"));
        let Item::Instance { conns, .. } = &file.modules[1].items[1] else { panic!() };
        assert!(conns[0].port.is_none());
    }

    #[test]
    fn parses_parameters() {
        let file = ok("module m #(parameter W = 8, parameter D = 4)(input [W-1:0] a, output [W-1:0] y);\n\
             localparam HALF = W / 2;\n\
             assign y = a;\nendmodule");
        assert_eq!(file.modules[0].header_params.len(), 2);
        assert!(matches!(file.modules[0].items[0], Item::Param(ParamDecl { local: true, .. })));
    }

    #[test]
    fn parses_generate_for() {
        let file = ok("module m(input [7:0] a, output [7:0] y);\n\
             genvar i;\n\
             generate\n\
               for (i = 0; i < 8; i = i + 1) begin : gen_bit\n\
                 assign y[i] = ~a[i];\n\
               end\n\
             endgenerate\nendmodule");
        let Item::Generate { items, .. } = &file.modules[0].items[1] else { panic!() };
        assert!(matches!(&items[0], Item::GenFor { label: Some(l), .. } if l == "gen_bit"));
    }

    #[test]
    fn parses_function() {
        ok("module m(input [7:0] a, output [3:0] y);\n\
            function [3:0] count_ones;\n\
              input [7:0] v;\n\
              integer i;\n\
              begin\n\
                count_ones = 0;\n\
                for (i = 0; i < 8; i = i + 1) count_ones = count_ones + v[i];\n\
              end\n\
            endfunction\n\
            assign y = count_ones(a);\nendmodule");
    }

    #[test]
    fn missing_semicolon_is_syntax_error() {
        let errs = errors("module m(input a, output y);\nassign y = a\nendmodule");
        assert!(errs.iter().any(|d| d.category == ErrorCategory::SyntaxError));
    }

    #[test]
    fn missing_endmodule_is_unbalanced() {
        let errs = errors("module m(input a, output y);\nassign y = a;\n");
        assert!(errs.iter().any(|d| d.category == ErrorCategory::UnbalancedBlock));
    }

    #[test]
    fn missing_end_is_unbalanced() {
        let errs = errors(
            "module m(input a, output reg y);\nalways @* begin\ny = a;\nendmodule",
        );
        assert!(errs.iter().any(|d| d.category == ErrorCategory::UnbalancedBlock));
    }

    #[test]
    fn c_style_increment_is_flagged() {
        let errs = errors(
            "module m(input [7:0] a, output reg [7:0] y);\n\
             always @* begin\n\
               for (int i = 0; i < 8; i++) y[i] = a[i];\n\
             end\nendmodule",
        );
        assert!(errs.iter().any(|d| d.category == ErrorCategory::CStyleConstruct));
    }

    #[test]
    fn c_style_plus_eq_is_flagged() {
        let errs = errors(
            "module m(input [7:0] a, output reg [7:0] s);\n\
             always @* begin\n\
               s = 0;\n\
               s += a;\n\
             end\nendmodule",
        );
        assert!(errs.iter().any(|d| d.category == ErrorCategory::CStyleConstruct));
    }

    #[test]
    fn keyword_as_identifier_is_flagged() {
        let errs = errors("module m(input a, output y); wire case; assign y = a; endmodule");
        assert!(errs.iter().any(|d| d.category == ErrorCategory::KeywordAsIdentifier));
    }

    #[test]
    fn timescale_inside_module_is_flagged() {
        let errs = errors(
            "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule",
        );
        assert!(errs.iter().any(|d| d.category == ErrorCategory::MisplacedDirective));
    }

    #[test]
    fn timescale_before_module_is_fine() {
        ok("`timescale 1ns/1ps\nmodule m(input a, output y); assign y = a; endmodule");
    }

    #[test]
    fn parser_never_loops_forever_on_garbage() {
        // Arbitrary junk must terminate (cap on errors + forced progress).
        let result = parse("module ; ] [ ) ( ** ?? @@ 1234 'h 'b module endmodule");
        assert!(!result.diagnostics.is_empty());
    }

    #[test]
    fn ternary_precedence() {
        let file = ok("module m(input s, input [7:0] a, b, output [7:0] y);\n\
                       assign y = s ? a + 1 : b - 1;\nendmodule");
        let Item::ContinuousAssign { assigns, .. } = &file.modules[0].items[0] else { panic!() };
        assert!(matches!(assigns[0].1, Expr::Ternary { .. }));
    }

    #[test]
    fn operator_precedence_mul_over_add() {
        let file = ok("module m(input [7:0] a, output [7:0] y); assign y = a + 2 * 3; endmodule");
        let Item::ContinuousAssign { assigns, .. } = &file.modules[0].items[0] else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, rhs, .. } = &assigns[0].1 else { panic!() };
        assert!(matches!(**rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn initial_block_with_system_task() {
        ok("module m(output reg [7:0] q);\ninitial begin q = 0; $display(\"hi %d\", q); end\nendmodule");
    }

    #[test]
    fn nonblocking_vs_comparison_disambiguation() {
        // `<=` is an assignment at statement level, a comparison in exprs.
        let file = ok("module m(input clk, input [7:0] a, output reg y);\n\
                       always @(posedge clk) y <= a <= 8'd5;\nendmodule");
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Assign { op, rhs, .. } = body else { panic!("got {body:?}") };
        assert_eq!(*op, AssignOp::NonBlocking);
        assert!(matches!(rhs, Expr::Binary { op: BinaryOp::Le, .. }));
    }
}
