//! Byte-offset spans and the [`SourceMap`] that converts them to
//! human-readable line/column positions.
//!
//! Every token, AST node and diagnostic in this crate carries a [`Span`] so
//! that compiler personalities (see the `rtlfixer-compilers` crate) can render
//! messages such as `main.v:5: error: ...` exactly the way real tools do.

use std::fmt;

/// A half-open byte range `[start, end)` into a single source file.
///
/// # Examples
///
/// ```
/// use rtlfixer_verilog::span::Span;
///
/// let span = Span::new(4, 10);
/// assert_eq!(span.len(), 6);
/// assert!(!span.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Span { start, end }
    }

    /// A zero-length span at `pos`, used for end-of-file diagnostics.
    pub fn point(pos: u32) -> Self {
        Span { start: pos, end: pos }
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// ```
    /// use rtlfixer_verilog::span::Span;
    /// let joined = Span::new(2, 5).join(Span::new(8, 11));
    /// assert_eq!(joined, Span::new(2, 11));
    /// ```
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Slice `source` with this span.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `source` or does not fall on
    /// UTF-8 character boundaries.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, as printed in compiler logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for one source file.
///
/// # Examples
///
/// ```
/// use rtlfixer_verilog::span::SourceMap;
///
/// let map = SourceMap::new("module m;\nendmodule\n");
/// assert_eq!(map.line_col(0).line, 1);
/// assert_eq!(map.line_col(10).line, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Builds a map by scanning `source` for newlines.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (idx, byte) in source.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(idx as u32 + 1);
            }
        }
        SourceMap { line_starts, len: source.len() as u32 }
    }

    /// Number of lines in the file (a trailing newline does not add a line
    /// unless characters follow it).
    pub fn line_count(&self) -> u32 {
        let n = self.line_starts.len() as u32;
        if *self.line_starts.last().expect("non-empty") >= self.len && n > 1 {
            n - 1
        } else {
            n
        }
    }

    /// 1-based line/column of a byte offset. Offsets past the end clamp to
    /// the final position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// 1-based line number of a byte offset (convenience for log rendering).
    pub fn line(&self, offset: u32) -> u32 {
        self.line_col(offset).line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_is_commutative_and_covering() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.join(b), b.join(a));
        assert_eq!(a.join(b), Span::new(3, 12));
    }

    #[test]
    fn span_point_is_empty() {
        assert!(Span::point(9).is_empty());
        assert_eq!(Span::point(9).len(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_inverted_range() {
        let _ = Span::new(5, 1);
    }

    #[test]
    fn span_slice_extracts_text() {
        let src = "module top;";
        assert_eq!(Span::new(0, 6).slice(src), "module");
    }

    #[test]
    fn line_col_first_line() {
        let map = SourceMap::new("abc\ndef");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_col_subsequent_lines() {
        let map = SourceMap::new("abc\ndef\nghi");
        assert_eq!(map.line_col(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let map = SourceMap::new("ab");
        assert_eq!(map.line_col(99), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_count_ignores_trailing_newline() {
        assert_eq!(SourceMap::new("a\nb\n").line_count(), 2);
        assert_eq!(SourceMap::new("a\nb\nc").line_count(), 3);
        assert_eq!(SourceMap::new("").line_count(), 1);
    }

    #[test]
    fn offset_on_newline_belongs_to_current_line() {
        let map = SourceMap::new("ab\ncd");
        // Offset 2 is the '\n' itself — still line 1.
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
    }
}
