//! Abstract syntax tree for the Verilog subset.
//!
//! The tree is deliberately close to the concrete syntax: every node keeps
//! its [`Span`] so that semantic diagnostics and the text-level repair
//! operators in `rtlfixer-llm` can point back into the original source.

use crate::span::Span;
use crate::token::Base;

/// A parsed source file: leading directives plus module definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Compiler directives seen at any point, in order (`name`, `rest`).
    pub directives: Vec<DirectiveUse>,
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// One use of a compiler directive (`` `timescale 1ns/1ps `` …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectiveUse {
    /// Directive name without the backtick.
    pub name: String,
    /// Remainder of the directive line.
    pub rest: String,
    /// Location.
    pub span: Span,
    /// Whether the directive appeared inside a module body (illegal for
    /// `timescale` — the rule-based pre-fixer targets exactly this).
    pub inside_module: bool,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// ANSI-style header ports plus any non-ANSI ports completed by body
    /// declarations.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// Parameter declarations from a `#(...)` header, in order.
    pub header_params: Vec<ParamDecl>,
    /// Span of the whole definition.
    pub span: Span,
    /// Span of just the header (through the closing `;`), which repair
    /// operators use to splice declarations right after it.
    pub header_span: Span,
}

impl Module {
    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Names of input ports, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == Direction::Input)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of output ports, in declaration order.
    pub fn output_names(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.direction == Direction::Output)
            .map(|p| p.name.as_str())
            .collect()
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

/// Data kind of a signal declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire` — a net; illegal as a procedural l-value.
    Wire,
    /// `reg` — a variable; illegal as a continuous-assign target.
    Reg,
    /// SystemVerilog `logic` — usable in both contexts.
    Logic,
    /// `integer` / `int` — 32-bit signed variable.
    Integer,
}

impl NetKind {
    /// Whether procedural assignment (`always` / `initial`) is legal.
    pub fn procedural_assignable(self) -> bool {
        !matches!(self, NetKind::Wire)
    }

    /// Whether continuous assignment (`assign`) is legal.
    pub fn continuous_assignable(self) -> bool {
        matches!(self, NetKind::Wire | NetKind::Logic)
    }
}

/// A `[msb:lsb]` vector range with unevaluated bound expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeDecl {
    /// Most-significant bound expression.
    pub msb: Expr,
    /// Least-significant bound expression.
    pub lsb: Expr,
    /// Location of the bracketed range.
    pub span: Span,
}

/// One module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Direction.
    pub direction: Direction,
    /// Declared kind; `None` means plain `input a` (implicitly a wire).
    pub kind: Option<NetKind>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional vector range.
    pub range: Option<RangeDecl>,
    /// Port name.
    pub name: String,
    /// Location of the declaration.
    pub span: Span,
}

/// A parameter or localparam declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// `true` for `localparam`.
    pub local: bool,
    /// Parameter name.
    pub name: String,
    /// Default/assigned value.
    pub value: Expr,
    /// Location.
    pub span: Span,
}

/// One declarator within a net/variable declaration (`wire a = 1, b;`).
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Optional unpacked array dimension (memory), e.g. `reg [7:0] mem [0:15]`.
    pub unpacked: Option<RangeDecl>,
    /// Optional initialiser.
    pub init: Option<Expr>,
    /// Location of the name.
    pub span: Span,
}

/// Sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@*` or `@(*)` — combinational.
    Star,
    /// `@(posedge a or negedge b, …)` — edge-triggered.
    Edges(Vec<EdgeSpec>),
    /// `@(a or b or c)` — level-sensitive list.
    Signals(Vec<(String, Span)>),
    /// `always` with no `@` at all (we report this as unsupported in sema
    /// unless it is `always_comb`).
    None,
}

/// Edge kind for sequential sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// One `posedge sig` / `negedge sig` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Edge polarity.
    pub edge: Edge,
    /// Signal expression (almost always an identifier).
    pub signal: Expr,
    /// Location.
    pub span: Span,
}

/// Flavour of an `always` construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlwaysKind {
    /// Plain `always`.
    Always,
    /// `always_comb`
    Comb,
    /// `always_ff`
    Ff,
}

/// A named or positional connection in an instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Port name for `.name(expr)` style; `None` for positional.
    pub port: Option<String>,
    /// Connected expression; `None` for an explicitly open `.name()`.
    pub expr: Option<Expr>,
    /// Location.
    pub span: Span,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Net/variable declaration.
    Net {
        /// wire/reg/logic/integer.
        kind: NetKind,
        /// Declared signed.
        signed: bool,
        /// Packed range.
        range: Option<RangeDecl>,
        /// Declared names.
        decls: Vec<Declarator>,
        /// Location of the whole declaration.
        span: Span,
    },
    /// Port direction declaration in the body (non-ANSI style), possibly
    /// also carrying a kind (`output reg [7:0] q;`).
    PortDecl(Port),
    /// `parameter` / `localparam`.
    Param(ParamDecl),
    /// `genvar i;`
    Genvar {
        /// Declared genvar names.
        names: Vec<(String, Span)>,
        /// Location.
        span: Span,
    },
    /// `assign lhs = rhs, lhs2 = rhs2;`
    ContinuousAssign {
        /// The individual assignments.
        assigns: Vec<(Expr, Expr)>,
        /// Location.
        span: Span,
    },
    /// `always … body`
    Always {
        /// Which always flavour.
        kind: AlwaysKind,
        /// Sensitivity list.
        sensitivity: Sensitivity,
        /// Body statement.
        body: Stmt,
        /// Location.
        span: Span,
    },
    /// `initial body`
    Initial {
        /// Body statement.
        body: Stmt,
        /// Location.
        span: Span,
    },
    /// Module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(...)` parameter overrides.
        params: Vec<Connection>,
        /// Port connections.
        conns: Vec<Connection>,
        /// Location.
        span: Span,
    },
    /// `generate … endgenerate` region (items inside, usually genfor).
    Generate {
        /// Contained items.
        items: Vec<Item>,
        /// Location.
        span: Span,
    },
    /// `for (i = …; …; …) begin : label … end` at item level (generate-for).
    GenFor {
        /// Loop variable name.
        var: String,
        /// Initial value expression.
        init: Expr,
        /// Loop condition.
        cond: Expr,
        /// Step assignment RHS (`i = <step>`).
        step: Expr,
        /// Optional block label.
        label: Option<String>,
        /// Items replicated per iteration.
        items: Vec<Item>,
        /// Location.
        span: Span,
    },
    /// Simplified function definition (single return assignment semantics).
    Function {
        /// Function name.
        name: String,
        /// Return range.
        range: Option<RangeDecl>,
        /// Arguments: (direction is always input) name + range.
        args: Vec<Port>,
        /// Body.
        body: Stmt,
        /// Location.
        span: Span,
    },
}

impl Item {
    /// The item's source span.
    pub fn span(&self) -> Span {
        match self {
            Item::Net { span, .. }
            | Item::Param(ParamDecl { span, .. })
            | Item::Genvar { span, .. }
            | Item::ContinuousAssign { span, .. }
            | Item::Always { span, .. }
            | Item::Initial { span, .. }
            | Item::Instance { span, .. }
            | Item::Generate { span, .. }
            | Item::GenFor { span, .. }
            | Item::Function { span, .. } => *span,
            Item::PortDecl(port) => port.span,
        }
    }
}

/// Case statement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// `case`
    Case,
    /// `casez` (`z`/`?` bits are wildcards)
    Casez,
    /// `casex` (`x`/`z`/`?` bits are wildcards)
    Casex,
}

/// One `labels: stmt` arm of a case statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Comma-separated label expressions.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
    /// Location.
    pub span: Span,
}

/// Blocking vs non-blocking procedural assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Blocking,
    /// `<=`
    NonBlocking,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin [: label] … end`
    Block {
        /// Optional label.
        label: Option<String>,
        /// Local declarations hoisted from the block body.
        decls: Vec<Item>,
        /// Statements.
        stmts: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `lhs = rhs;` or `lhs <= rhs;`
    Assign {
        /// Target expression.
        lhs: Expr,
        /// Blocking or non-blocking.
        op: AssignOp,
        /// Value expression.
        rhs: Expr,
        /// Location.
        span: Span,
    },
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
        /// Location.
        span: Span,
    },
    /// `case (expr) arms [default] endcase`
    Case {
        /// case/casez/casex.
        kind: CaseKind,
        /// Scrutinee.
        scrutinee: Expr,
        /// Arms in order.
        arms: Vec<CaseArm>,
        /// Optional default arm.
        default: Option<Box<Stmt>>,
        /// Location.
        span: Span,
    },
    /// `for (var = init; cond; var = step) body` — optionally with an inline
    /// SystemVerilog loop-variable declaration (`for (int i = 0; …)`).
    For {
        /// Loop variable.
        var: String,
        /// `Some(kind)` when the variable is declared inline.
        decl: Option<NetKind>,
        /// Initial value.
        init: Expr,
        /// Condition.
        cond: Expr,
        /// Step RHS.
        step: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// `repeat (count) body`
    Repeat {
        /// Iteration count.
        count: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// System task call, e.g. `$display("…", a)`.
    SysCall {
        /// Task name without `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// Lone `;`
    Null(Span),
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Repeat { span, .. }
            | Stmt::SysCall { span, .. } => *span,
            Stmt::Null(span) => *span,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Plus,
    Neg,
    Not,
    BitNot,
    RedAnd,
    RedOr,
    RedXor,
    RedNand,
    RedNor,
    RedXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
    LogAnd,
    LogOr,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShl,
    AShr,
}

/// Part-select mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectMode {
    /// `[msb:lsb]` with constant bounds.
    Range,
    /// `[base +: width]`
    IndexedUp,
    /// `[base -: width]`
    IndexedDown,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Ident {
        /// Name.
        name: String,
        /// Location.
        span: Span,
    },
    /// Number literal.
    Literal {
        /// Bit width prefix if sized.
        size: Option<u32>,
        /// Radix; `None` = plain decimal.
        base: Option<Base>,
        /// Digit text (lowercase, underscores removed; may contain x/z/?).
        digits: String,
        /// Signed marker.
        signed: bool,
        /// Location.
        span: Span,
    },
    /// String literal.
    Str {
        /// Contents.
        value: String,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `{a, b, c}`
    Concat {
        /// Parts, MSB-first.
        parts: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `{count{value}}`
    Replicate {
        /// Replication count (constant).
        count: Box<Expr>,
        /// Replicated expression.
        value: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `base[index]`
    Index {
        /// Indexed expression (identifier in our subset).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `base[a:b]`, `base[a +: w]`, `base[a -: w]`
    Select {
        /// Selected expression.
        base: Box<Expr>,
        /// Left bound / base index.
        left: Box<Expr>,
        /// Right bound / width.
        right: Box<Expr>,
        /// Which select form.
        mode: SelectMode,
        /// Location.
        span: Span,
    },
    /// User function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// System function call, e.g. `$signed(x)`, `$clog2(n)`.
    SysCall {
        /// Function name without `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::Literal { span, .. }
            | Expr::Str { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Concat { span, .. }
            | Expr::Replicate { span, .. }
            | Expr::Index { span, .. }
            | Expr::Select { span, .. }
            | Expr::Call { span, .. }
            | Expr::SysCall { span, .. } => *span,
        }
    }

    /// If this expression is a plain identifier, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The identifier at the root of an l-value expression
    /// (`a`, `a[i]`, `a[3:0]` all root at `a`).
    pub fn lvalue_root(&self) -> Option<&str> {
        match self {
            Expr::Ident { name, .. } => Some(name),
            Expr::Index { base, .. } | Expr::Select { base, .. } => base.lvalue_root(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr::Ident { name: name.into(), span: Span::point(0) }
    }

    #[test]
    fn net_kind_assignability_matrix() {
        assert!(!NetKind::Wire.procedural_assignable());
        assert!(NetKind::Reg.procedural_assignable());
        assert!(NetKind::Logic.procedural_assignable());
        assert!(NetKind::Wire.continuous_assignable());
        assert!(!NetKind::Reg.continuous_assignable());
        assert!(NetKind::Logic.continuous_assignable());
    }

    #[test]
    fn lvalue_root_traverses_selects() {
        let expr = Expr::Index {
            base: Box::new(Expr::Select {
                base: Box::new(ident("mem")),
                left: Box::new(ident("i")),
                right: Box::new(ident("j")),
                mode: SelectMode::Range,
                span: Span::point(0),
            }),
            index: Box::new(ident("k")),
            span: Span::point(0),
        };
        assert_eq!(expr.lvalue_root(), Some("mem"));
        let concat = Expr::Concat { parts: vec![ident("a")], span: Span::point(0) };
        assert_eq!(concat.lvalue_root(), None);
    }

    #[test]
    fn module_port_queries() {
        let module = Module {
            name: "m".into(),
            ports: vec![
                Port {
                    direction: Direction::Input,
                    kind: None,
                    signed: false,
                    range: None,
                    name: "a".into(),
                    span: Span::point(0),
                },
                Port {
                    direction: Direction::Output,
                    kind: Some(NetKind::Reg),
                    signed: false,
                    range: None,
                    name: "q".into(),
                    span: Span::point(0),
                },
            ],
            items: vec![],
            header_params: vec![],
            span: Span::point(0),
            header_span: Span::point(0),
        };
        assert_eq!(module.input_names(), vec!["a"]);
        assert_eq!(module.output_names(), vec!["q"]);
        assert!(module.port("q").is_some());
        assert!(module.port("zz").is_none());
    }
}
