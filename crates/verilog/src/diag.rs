//! Structured diagnostics produced by the Verilog frontend.
//!
//! The frontend never renders final user-facing text itself: it emits
//! [`Diagnostic`] values carrying a machine-readable [`ErrorCategory`] plus a
//! structured [`DiagData`] payload. The compiler *personalities* in the
//! `rtlfixer-compilers` crate (iverilog-style, Quartus-style) turn these into
//! logs of differing verbosity and informativeness, which is the axis the
//! paper's feedback-quality ablation (§4.3.1) varies.
//!
//! The category taxonomy mirrors the error groups the paper's retrieval
//! database is organised around (§3.3: 11 Quartus categories, 7 iverilog
//! categories).

use std::fmt;

use crate::span::Span;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Non-fatal; compilation still succeeds.
    Warning,
    /// Fatal; the design does not elaborate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The syntax/semantic error taxonomy shared by the compilers, the retrieval
/// database and the repair operators.
///
/// Each category corresponds to one group of compiler error tags in the
/// paper's curated database. [`ErrorCategory::quartus_code`] returns the
/// numeric tag the Quartus personality prints (modelled on real Quartus Prime
/// message IDs, e.g. `10161` for an undeclared object as in the paper's
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// Use of an identifier that was never declared (e.g. a missing `clk`).
    UndeclaredIdentifier,
    /// A *literal* constant index outside the declared vector range.
    IndexOutOfRange,
    /// An index that is out of range only after constant-folding arithmetic
    /// (the paper's Figure 6 failure case, e.g. `q[(i-1)*16 + (j-1)]`).
    IndexArithmetic,
    /// A net (`wire`) assigned inside an `always`/`initial` block.
    IllegalProceduralLvalue,
    /// A variable (`reg`) driven by a continuous `assign`.
    IllegalContinuousLvalue,
    /// An `input` port used as an assignment target.
    AssignToInput,
    /// Named/positional port connection does not match the instantiated
    /// module (unknown port name or arity mismatch).
    PortConnectionMismatch,
    /// Instantiation of a module that is not defined anywhere in the source.
    UnknownModule,
    /// The same name declared twice in one scope.
    Redeclaration,
    /// Generic parse error: unexpected token / missing punctuation.
    SyntaxError,
    /// Unbalanced `begin`/`end`, missing `endmodule`/`endcase`.
    UnbalancedBlock,
    /// C/C++ syntax that is invalid Verilog (`++`, `+=`, `bool`, …) — the
    /// paper notes LLMs are often confident in these (§5).
    CStyleConstruct,
    /// A compiler directive in an illegal position (e.g. `timescale` inside
    /// a module body). The rule-based pre-fixer of §4 targets these.
    MisplacedDirective,
    /// A reserved word used as an identifier.
    KeywordAsIdentifier,
    /// Assignment width mismatch (warning-level).
    WidthMismatch,
    /// Combinational always block that does not assign a variable on every
    /// path (latch inference; warning-level synthesis lint).
    InferredLatch,
    /// `case` without a `default` arm in combinational logic
    /// (warning-level synthesis lint).
    CaseMissingDefault,
    /// A declared signal that is never read (warning-level lint).
    UnusedSignal,
}

impl ErrorCategory {
    /// All categories, in a stable order.
    pub const ALL: [ErrorCategory; 18] = [
        ErrorCategory::UndeclaredIdentifier,
        ErrorCategory::IndexOutOfRange,
        ErrorCategory::IndexArithmetic,
        ErrorCategory::IllegalProceduralLvalue,
        ErrorCategory::IllegalContinuousLvalue,
        ErrorCategory::AssignToInput,
        ErrorCategory::PortConnectionMismatch,
        ErrorCategory::UnknownModule,
        ErrorCategory::Redeclaration,
        ErrorCategory::SyntaxError,
        ErrorCategory::UnbalancedBlock,
        ErrorCategory::CStyleConstruct,
        ErrorCategory::MisplacedDirective,
        ErrorCategory::KeywordAsIdentifier,
        ErrorCategory::WidthMismatch,
        ErrorCategory::InferredLatch,
        ErrorCategory::CaseMissingDefault,
        ErrorCategory::UnusedSignal,
    ];

    /// The numeric error tag printed by the Quartus personality.
    ///
    /// Tags are modelled on real Quartus Prime message IDs: `10161`
    /// (undeclared object), `10232` (index out of declared range), `10137`
    /// (illegal l-value), `10028`/`10170` and friends.
    pub fn quartus_code(self) -> u32 {
        match self {
            ErrorCategory::UndeclaredIdentifier => 10161,
            ErrorCategory::IndexOutOfRange => 10232,
            ErrorCategory::IndexArithmetic => 10232,
            ErrorCategory::IllegalProceduralLvalue => 10137,
            ErrorCategory::IllegalContinuousLvalue => 10044,
            ErrorCategory::AssignToInput => 10137,
            ErrorCategory::PortConnectionMismatch => 12002,
            ErrorCategory::UnknownModule => 12006,
            ErrorCategory::Redeclaration => 10028,
            ErrorCategory::SyntaxError => 10170,
            ErrorCategory::UnbalancedBlock => 10170,
            ErrorCategory::CStyleConstruct => 10170,
            ErrorCategory::MisplacedDirective => 10165,
            ErrorCategory::KeywordAsIdentifier => 10170,
            ErrorCategory::WidthMismatch => 10230,
            ErrorCategory::InferredLatch => 10240,
            ErrorCategory::CaseMissingDefault => 10270,
            ErrorCategory::UnusedSignal => 10036,
        }
    }

    /// Short stable snake_case name, used as a retrieval key and in reports.
    pub fn slug(self) -> &'static str {
        match self {
            ErrorCategory::UndeclaredIdentifier => "undeclared_identifier",
            ErrorCategory::IndexOutOfRange => "index_out_of_range",
            ErrorCategory::IndexArithmetic => "index_arithmetic",
            ErrorCategory::IllegalProceduralLvalue => "illegal_procedural_lvalue",
            ErrorCategory::IllegalContinuousLvalue => "illegal_continuous_lvalue",
            ErrorCategory::AssignToInput => "assign_to_input",
            ErrorCategory::PortConnectionMismatch => "port_connection_mismatch",
            ErrorCategory::UnknownModule => "unknown_module",
            ErrorCategory::Redeclaration => "redeclaration",
            ErrorCategory::SyntaxError => "syntax_error",
            ErrorCategory::UnbalancedBlock => "unbalanced_block",
            ErrorCategory::CStyleConstruct => "c_style_construct",
            ErrorCategory::MisplacedDirective => "misplaced_directive",
            ErrorCategory::KeywordAsIdentifier => "keyword_as_identifier",
            ErrorCategory::WidthMismatch => "width_mismatch",
            ErrorCategory::InferredLatch => "inferred_latch",
            ErrorCategory::CaseMissingDefault => "case_missing_default",
            ErrorCategory::UnusedSignal => "unused_signal",
        }
    }

    /// Looks a category up by its [`slug`](ErrorCategory::slug).
    pub fn from_slug(slug: &str) -> Option<ErrorCategory> {
        ErrorCategory::ALL.iter().copied().find(|c| c.slug() == slug)
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Structured, category-specific payload of a [`Diagnostic`].
///
/// Renderers read this to produce faithful log lines; repair operators read
/// it to know *what* to change (which name to declare, which index to clamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagData {
    /// An undeclared name was referenced.
    Undeclared {
        /// The unresolved identifier.
        name: String,
    },
    /// `target[index]` fell outside the declared range.
    IndexOob {
        /// Indexed signal name.
        target: String,
        /// The evaluated index value.
        index: i64,
        /// Declared most-significant bound.
        msb: i64,
        /// Declared least-significant bound.
        lsb: i64,
        /// Whether the index came from constant-folded arithmetic
        /// (the [`ErrorCategory::IndexArithmetic`] class).
        from_arithmetic: bool,
    },
    /// `name` is a net but was assigned procedurally.
    BadProceduralLvalue {
        /// The offending target.
        name: String,
    },
    /// `name` is a variable but was driven by `assign`.
    BadContinuousLvalue {
        /// The offending target.
        name: String,
    },
    /// An input port was assigned.
    InputAssigned {
        /// The input port name.
        name: String,
    },
    /// Port connection problem on `instance` of `module`.
    PortMismatch {
        /// Instance name.
        instance: String,
        /// Instantiated module name.
        module: String,
        /// The offending named port, if the problem is an unknown name.
        port: Option<String>,
        /// Ports the module declares.
        expected: usize,
        /// Connections the instance provides.
        found: usize,
    },
    /// Instantiated module is not defined.
    ModuleNotFound {
        /// The unknown module name.
        name: String,
    },
    /// `name` declared more than once.
    Redeclared {
        /// The re-declared name.
        name: String,
    },
    /// Parser-level error with the offending token text and an expectation.
    Syntax {
        /// Rendered text of the unexpected token.
        found: String,
        /// What the parser expected instead.
        expected: String,
    },
    /// Missing or surplus block terminator.
    Unbalanced {
        /// The missing terminator keyword (`end`, `endmodule`, …).
        construct: String,
    },
    /// C-style construct, with the offending operator/keyword text.
    CStyle {
        /// The offending construct (`++`, `+=`, …).
        construct: String,
    },
    /// Misplaced compiler directive.
    Directive {
        /// Directive name without the backtick.
        directive: String,
    },
    /// Reserved word used as identifier.
    KeywordAsId {
        /// The keyword text.
        keyword: String,
    },
    /// Width mismatch on an assignment.
    Width {
        /// Target width in bits.
        lhs_width: u32,
        /// Source width in bits.
        rhs_width: u32,
    },
    /// A latch would be inferred for `name` (incomplete assignment paths).
    Latch {
        /// The incompletely-assigned variable.
        name: String,
    },
    /// A combinational `case` lacks a default arm.
    NoDefault,
    /// `name` is declared but never read.
    Unused {
        /// The unread signal.
        name: String,
    },
}

/// One frontend finding: category + severity + location + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error group used for retrieval and repair dispatch.
    pub category: ErrorCategory,
    /// Error or warning.
    pub severity: Severity,
    /// Source location of the offending construct.
    pub span: Span,
    /// Category-specific structured data.
    pub data: DiagData,
}

impl Diagnostic {
    /// Convenience constructor for an error-severity diagnostic.
    pub fn error(category: ErrorCategory, span: Span, data: DiagData) -> Self {
        Diagnostic { category, severity: Severity::Error, span, data }
    }

    /// Convenience constructor for a warning-severity diagnostic.
    pub fn warning(category: ErrorCategory, span: Span, data: DiagData) -> Self {
        Diagnostic { category, severity: Severity::Warning, span, data }
    }

    /// Whether this diagnostic blocks elaboration.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// A neutral one-line description, independent of compiler personality.
    /// Used in traces and test assertions, not in rendered compiler logs.
    pub fn headline(&self) -> String {
        match &self.data {
            DiagData::Undeclared { name } => format!("'{name}' is not declared"),
            DiagData::IndexOob { target, index, msb, lsb, .. } => {
                format!("index {index} of '{target}' outside declared range [{msb}:{lsb}]")
            }
            DiagData::BadProceduralLvalue { name } => {
                format!("'{name}' is not a valid l-value in a procedural block")
            }
            DiagData::BadContinuousLvalue { name } => {
                format!("'{name}' is a variable and cannot be driven by a continuous assignment")
            }
            DiagData::InputAssigned { name } => format!("input port '{name}' cannot be assigned"),
            DiagData::PortMismatch { instance, module, port, expected, found } => match port {
                Some(p) => format!("instance '{instance}': module '{module}' has no port '{p}'"),
                None => format!(
                    "instance '{instance}' of '{module}': {found} connections for {expected} ports"
                ),
            },
            DiagData::ModuleNotFound { name } => format!("unknown module '{name}'"),
            DiagData::Redeclared { name } => format!("'{name}' is already declared"),
            DiagData::Syntax { found, expected } => {
                format!("syntax error near '{found}', expected {expected}")
            }
            DiagData::Unbalanced { construct } => format!("unbalanced '{construct}'"),
            DiagData::CStyle { construct } => {
                format!("'{construct}' is not valid Verilog syntax")
            }
            DiagData::Directive { directive } => format!("misplaced directive '`{directive}'"),
            DiagData::KeywordAsId { keyword } => {
                format!("reserved word '{keyword}' used as identifier")
            }
            DiagData::Width { lhs_width, rhs_width } => {
                format!("assignment width mismatch ({lhs_width} vs {rhs_width} bits)")
            }
            DiagData::Latch { name } => format!("inferring latch for '{name}'"),
            DiagData::NoDefault => "case statement has no default arm".to_owned(),
            DiagData::Unused { name } => format!("'{name}' is declared but never read"),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.headline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartus_codes_match_figure5_examples() {
        // Figure 5 of the paper: undeclared `clk` is Error (10161);
        // Figure 6: out-of-range index is Error (10232).
        assert_eq!(ErrorCategory::UndeclaredIdentifier.quartus_code(), 10161);
        assert_eq!(ErrorCategory::IndexOutOfRange.quartus_code(), 10232);
        assert_eq!(ErrorCategory::IndexArithmetic.quartus_code(), 10232);
    }

    #[test]
    fn slugs_round_trip() {
        for cat in ErrorCategory::ALL {
            assert_eq!(ErrorCategory::from_slug(cat.slug()), Some(cat));
        }
        assert_eq!(ErrorCategory::from_slug("nonsense"), None);
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<_> = ErrorCategory::ALL.iter().map(|c| c.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ErrorCategory::ALL.len());
    }

    #[test]
    fn headline_mentions_offender() {
        let d = Diagnostic::error(
            ErrorCategory::UndeclaredIdentifier,
            Span::new(0, 3),
            DiagData::Undeclared { name: "clk".into() },
        );
        assert!(d.headline().contains("clk"));
        assert!(d.is_error());
        assert_eq!(d.to_string(), "error: 'clk' is not declared");
    }

    #[test]
    fn warning_is_not_error() {
        let d = Diagnostic::warning(
            ErrorCategory::WidthMismatch,
            Span::point(0),
            DiagData::Width { lhs_width: 8, rhs_width: 16 },
        );
        assert!(!d.is_error());
        assert!(Severity::Warning < Severity::Error);
    }
}
