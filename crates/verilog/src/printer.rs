//! AST pretty-printer: renders a parsed [`SourceFile`] back to Verilog
//! source.
//!
//! The printer produces canonical formatting (it does not preserve the
//! original layout), but it is *semantically* round-trip stable: parsing
//! its output yields an equivalent tree. That property is enforced by the
//! test suite and by property tests in the workspace `tests/` directory.

use std::fmt::Write as _;

use crate::ast::*;
use crate::token::Base;

/// Renders a whole source file.
pub fn print_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for directive in &file.directives {
        if !directive.inside_module {
            let _ = writeln!(out, "`{} {}", directive.name, directive.rest);
        }
    }
    for module in &file.modules {
        out.push_str(&print_module(module));
        out.push('\n');
    }
    out
}

/// Renders one module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = write!(out, "module {}", module.name);
    if !module.header_params.is_empty() {
        let params: Vec<String> = module
            .header_params
            .iter()
            .map(|p| format!("parameter {} = {}", p.name, print_expr(&p.value)))
            .collect();
        let _ = write!(out, " #({})", params.join(", "));
    }
    if !module.ports.is_empty() {
        let ports: Vec<String> = module.ports.iter().map(print_port).collect();
        let _ = write!(out, "({})", ports.join(", "));
    }
    out.push_str(";\n");
    for item in &module.items {
        // Body port declarations were already merged into the header.
        if matches!(item, Item::PortDecl(_)) {
            continue;
        }
        out.push_str(&print_item(item, 1));
    }
    out.push_str("endmodule\n");
    out
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn print_port(port: &Port) -> String {
    let dir = match port.direction {
        Direction::Input => "input",
        Direction::Output => "output",
        Direction::Inout => "inout",
    };
    let kind = match port.kind {
        Some(NetKind::Reg) => " reg",
        Some(NetKind::Logic) => " logic",
        Some(NetKind::Integer) => " integer",
        Some(NetKind::Wire) | None => "",
    };
    let signed = if port.signed { " signed" } else { "" };
    let range = port
        .range
        .as_ref()
        .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
        .unwrap_or_default();
    format!("{dir}{kind}{signed}{range} {}", port.name)
}

fn print_net_kind(kind: NetKind) -> &'static str {
    match kind {
        NetKind::Wire => "wire",
        NetKind::Reg => "reg",
        NetKind::Logic => "logic",
        NetKind::Integer => "integer",
    }
}

/// Renders one module item at the given indent level.
pub fn print_item(item: &Item, level: usize) -> String {
    let pad = indent(level);
    match item {
        Item::Net { kind, signed, range, decls, .. } => {
            let signed = if *signed { " signed" } else { "" };
            let range = range
                .as_ref()
                .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                .unwrap_or_default();
            let decls: Vec<String> = decls
                .iter()
                .map(|d| {
                    let unpacked = d
                        .unpacked
                        .as_ref()
                        .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                        .unwrap_or_default();
                    let init = d
                        .init
                        .as_ref()
                        .map(|e| format!(" = {}", print_expr(e)))
                        .unwrap_or_default();
                    format!("{}{unpacked}{init}", d.name)
                })
                .collect();
            format!("{pad}{}{signed}{range} {};\n", print_net_kind(*kind), decls.join(", "))
        }
        Item::PortDecl(port) => format!("{pad}{};\n", print_port(port)),
        Item::Param(param) => format!(
            "{pad}{} {} = {};\n",
            if param.local { "localparam" } else { "parameter" },
            param.name,
            print_expr(&param.value)
        ),
        Item::Genvar { names, .. } => {
            let names: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
            format!("{pad}genvar {};\n", names.join(", "))
        }
        Item::ContinuousAssign { assigns, .. } => {
            let assigns: Vec<String> = assigns
                .iter()
                .map(|(lhs, rhs)| format!("{} = {}", print_expr(lhs), print_expr(rhs)))
                .collect();
            format!("{pad}assign {};\n", assigns.join(", "))
        }
        Item::Always { kind, sensitivity, body, .. } => {
            let head = match kind {
                AlwaysKind::Always => "always",
                AlwaysKind::Comb => "always_comb",
                AlwaysKind::Ff => "always_ff",
            };
            let sens = match (kind, sensitivity) {
                (AlwaysKind::Comb, _) => String::new(),
                (_, Sensitivity::Star) => " @(*)".to_owned(),
                (_, Sensitivity::Edges(edges)) => {
                    let edges: Vec<String> = edges
                        .iter()
                        .map(|e| {
                            format!(
                                "{} {}",
                                if e.edge == Edge::Pos { "posedge" } else { "negedge" },
                                print_expr(&e.signal)
                            )
                        })
                        .collect();
                    format!(" @({})", edges.join(" or "))
                }
                (_, Sensitivity::Signals(signals)) => {
                    let names: Vec<&str> = signals.iter().map(|(n, _)| n.as_str()).collect();
                    format!(" @({})", names.join(" or "))
                }
                (_, Sensitivity::None) => String::new(),
            };
            format!("{pad}{head}{sens}\n{}", print_stmt(body, level + 1))
        }
        Item::Initial { body, .. } => {
            format!("{pad}initial\n{}", print_stmt(body, level + 1))
        }
        Item::Instance { module, name, params, conns, .. } => {
            let params = if params.is_empty() {
                String::new()
            } else {
                format!(" #({})", print_connections(params))
            };
            format!("{pad}{module}{params} {name}({});\n", print_connections(conns))
        }
        Item::Generate { items, .. } => {
            let mut out = format!("{pad}generate\n");
            for item in items {
                out.push_str(&print_item(item, level + 1));
            }
            let _ = writeln!(out, "{pad}endgenerate");
            out
        }
        Item::GenFor { var, init, cond, step, label, items, .. } => {
            let label = label.as_ref().map(|l| format!(" : {l}")).unwrap_or_default();
            let mut out = format!(
                "{pad}for ({var} = {}; {}; {var} = {}) begin{label}\n",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            );
            for item in items {
                out.push_str(&print_item(item, level + 1));
            }
            let _ = writeln!(out, "{pad}end");
            out
        }
        Item::Function { name, range, args, body, .. } => {
            let range = range
                .as_ref()
                .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                .unwrap_or_default();
            let mut out = format!("{pad}function{range} {name};\n");
            for arg in args {
                let _ = writeln!(out, "{}{};", indent(level + 1), print_port(arg));
            }
            out.push_str(&print_stmt(body, level + 1));
            let _ = writeln!(out, "{pad}endfunction");
            out
        }
    }
}

fn print_connections(conns: &[Connection]) -> String {
    let rendered: Vec<String> = conns
        .iter()
        .map(|c| match (&c.port, &c.expr) {
            (Some(port), Some(expr)) => format!(".{port}({})", print_expr(expr)),
            (Some(port), None) => format!(".{port}()"),
            (None, Some(expr)) => print_expr(expr),
            (None, None) => String::new(),
        })
        .collect();
    rendered.join(", ")
}

/// Renders one statement at the given indent level.
pub fn print_stmt(stmt: &Stmt, level: usize) -> String {
    let pad = indent(level);
    match stmt {
        Stmt::Block { label, decls, stmts, .. } => {
            let label = label.as_ref().map(|l| format!(" : {l}")).unwrap_or_default();
            let mut out = format!("{}begin{label}\n", indent(level.saturating_sub(1)));
            for decl in decls {
                out.push_str(&print_item(decl, level));
            }
            for stmt in stmts {
                out.push_str(&print_stmt(stmt, level));
            }
            let _ = writeln!(out, "{}end", indent(level.saturating_sub(1)));
            out
        }
        Stmt::Assign { lhs, op, rhs, .. } => {
            let op = if *op == AssignOp::Blocking { "=" } else { "<=" };
            format!("{pad}{} {op} {};\n", print_expr(lhs), print_expr(rhs))
        }
        Stmt::If { cond, then_branch, else_branch, .. } => {
            let mut out = format!("{pad}if ({})\n", print_expr(cond));
            out.push_str(&print_stmt(then_branch, level + 1));
            if let Some(els) = else_branch {
                let _ = writeln!(out, "{pad}else");
                out.push_str(&print_stmt(els, level + 1));
            }
            out
        }
        Stmt::Case { kind, scrutinee, arms, default, .. } => {
            let keyword = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
                CaseKind::Casex => "casex",
            };
            let mut out = format!("{pad}{keyword} ({})\n", print_expr(scrutinee));
            for arm in arms {
                let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                let _ = writeln!(out, "{}{}:", indent(level + 1), labels.join(", "));
                out.push_str(&print_stmt(&arm.body, level + 2));
            }
            if let Some(default) = default {
                let _ = writeln!(out, "{}default:", indent(level + 1));
                out.push_str(&print_stmt(default, level + 2));
            }
            let _ = writeln!(out, "{pad}endcase");
            out
        }
        Stmt::For { var, decl, init, cond, step, body, .. } => {
            let decl = match decl {
                Some(NetKind::Integer) => "int ",
                Some(_) => "int ",
                None => "",
            };
            let mut out = format!(
                "{pad}for ({decl}{var} = {}; {}; {var} = {})\n",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            );
            out.push_str(&print_stmt(body, level + 1));
            out
        }
        Stmt::While { cond, body, .. } => {
            format!("{pad}while ({})\n{}", print_expr(cond), print_stmt(body, level + 1))
        }
        Stmt::Repeat { count, body, .. } => {
            format!("{pad}repeat ({})\n{}", print_expr(count), print_stmt(body, level + 1))
        }
        Stmt::SysCall { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            if args.is_empty() {
                format!("{pad}${name};\n")
            } else {
                format!("{pad}${name}({});\n", args.join(", "))
            }
        }
        Stmt::Null(_) => format!("{pad};\n"),
    }
}

fn unary_symbol(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Plus => "+",
        UnaryOp::Neg => "-",
        UnaryOp::Not => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
        UnaryOp::RedNand => "~&",
        UnaryOp::RedNor => "~|",
        UnaryOp::RedXnor => "~^",
    }
}

fn binary_symbol(op: BinaryOp) -> &'static str {
    use BinaryOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Pow => "**",
        BitAnd => "&",
        BitOr => "|",
        BitXor => "^",
        BitXnor => "~^",
        LogAnd => "&&",
        LogOr => "||",
        Eq => "==",
        Ne => "!=",
        CaseEq => "===",
        CaseNe => "!==",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Shl => "<<",
        Shr => ">>",
        AShl => "<<<",
        AShr => ">>>",
    }
}

/// Renders one expression (fully parenthesised where precedence could
/// matter, so re-parsing preserves the tree shape).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Ident { name, .. } => name.clone(),
        Expr::Literal { size, base, digits, signed, .. } => {
            let base_char = match base {
                None => return digits.clone(),
                Some(Base::Binary) => 'b',
                Some(Base::Octal) => 'o',
                Some(Base::Decimal) => 'd',
                Some(Base::Hex) => 'h',
            };
            let signed = if *signed { "s" } else { "" };
            match size {
                Some(size) => format!("{size}'{signed}{base_char}{digits}"),
                None => format!("'{signed}{base_char}{digits}"),
            }
        }
        Expr::Str { value, .. } => format!("\"{}\"", value.replace('"', "\\\"")),
        Expr::Unary { op, operand, .. } => {
            format!("{}({})", unary_symbol(*op), print_expr(operand))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", print_expr(lhs), binary_symbol(*op), print_expr(rhs))
        }
        Expr::Ternary { cond, then_expr, else_expr, .. } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
        Expr::Concat { parts, .. } => {
            let parts: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", parts.join(", "))
        }
        Expr::Replicate { count, value, .. } => {
            format!("{{{}{{{}}}}}", print_expr(count), print_expr(value))
        }
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", print_expr(base), print_expr(index))
        }
        Expr::Select { base, left, right, mode, .. } => {
            let sep = match mode {
                SelectMode::Range => ":",
                SelectMode::IndexedUp => " +: ",
                SelectMode::IndexedDown => " -: ",
            };
            format!("{}[{}{sep}{}]", print_expr(base), print_expr(left), print_expr(right))
        }
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::SysCall { name, args, .. } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            if args.is_empty() {
                format!("${name}")
            } else {
                format!("${name}({})", args.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parses, prints and re-parses; the re-parse must be error-free and
    /// produce semantically identical diagnostics (here: none).
    fn round_trip(src: &str) -> String {
        let first = parse(src);
        assert!(first.diagnostics.iter().all(|d| !d.is_error()), "{:?}", first.diagnostics);
        let printed = print_file(&first.file);
        let second = parse(&printed);
        assert!(
            second.diagnostics.iter().all(|d| !d.is_error()),
            "printed output fails to parse:\n{printed}\n{:?}",
            second.diagnostics
        );
        assert_eq!(
            first.file.modules.len(),
            second.file.modules.len(),
            "module count changed:\n{printed}"
        );
        printed
    }

    #[test]
    fn round_trips_combinational_module() {
        let printed = round_trip(
            "module m(input [7:0] a, input [7:0] b, output [7:0] y);\n\
             wire [7:0] t;\nassign t = a & b;\nassign y = ~t;\nendmodule",
        );
        assert!(printed.contains("assign t = (a & b);"));
    }

    #[test]
    fn round_trips_sequential_module() {
        round_trip(
            "module ctr(input clk, input reset, output reg [7:0] q);\n\
             always @(posedge clk) begin\n\
               if (reset) q <= 0; else q <= q + 1;\n\
             end\nendmodule",
        );
    }

    #[test]
    fn round_trips_case_statement() {
        round_trip(
            "module dec(input [1:0] s, output reg [3:0] y);\n\
             always @* begin\ncase (s)\n2'd0: y = 4'b0001;\n2'd1, 2'd2: y = 4'b0010;\n\
             default: y = 4'b1000;\nendcase\nend\nendmodule",
        );
    }

    #[test]
    fn round_trips_generate_loop() {
        round_trip(
            "module g(input [3:0] a, output [3:0] y);\ngenvar i;\ngenerate\n\
             for (i = 0; i < 4; i = i + 1) begin : blk\nassign y[i] = ~a[i];\nend\n\
             endgenerate\nendmodule",
        );
    }

    #[test]
    fn round_trips_instances_and_params() {
        round_trip(
            "module child #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);\n\
             assign y = a;\nendmodule\n\
             module top(input [7:0] p, output [7:0] q);\n\
             child #(.W(8)) u(.a(p), .y(q));\nendmodule",
        );
    }

    #[test]
    fn round_trips_function() {
        round_trip(
            "module m(input [7:0] a, output [3:0] y);\n\
             function [3:0] ones;\ninput [7:0] v;\ninteger i;\nbegin\nones = 0;\n\
             for (i = 0; i < 8; i = i + 1) ones = ones + v[i];\nend\nendfunction\n\
             assign y = ones(a);\nendmodule",
        );
    }

    #[test]
    fn round_trips_every_reference_solution() {
        // The printer must round-trip all benchmark solutions — the
        // strongest structural coverage we have.
        for src in [
            "module m(input a, output y); assign y = a ? 1'b0 : 1'b1; endmodule",
            "module m(input [31:0] a, input [1:0] s, output [7:0] y);\n\
             assign y = a[s*8 +: 8];\nendmodule",
            "module m(input [7:0] a, output [15:0] y); assign y = {2{a}}; endmodule",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn literal_rendering() {
        let result = parse("module m(output [7:0] y); assign y = 8'hFF; endmodule");
        let printed = print_file(&result.file);
        assert!(printed.contains("8'hff"), "{printed}");
    }
}
