//! # rtlfixer-verilog
//!
//! A from-scratch Verilog-2005 frontend (lexer, parser, semantic analysis)
//! built as the shared substrate of the RTLFixer reproduction. Both compiler
//! personalities (`rtlfixer-compilers`) and the simulator (`rtlfixer-sim`)
//! consume the [`Analysis`] this crate produces.
//!
//! The frontend targets the language subset that appears in
//! VerilogEval-style benchmark code: modules with ANSI or non-ANSI ports,
//! parameters, continuous assignments, combinational and edge-triggered
//! `always` blocks, case/if/for statements, functions, generate loops,
//! memories, and the full expression grammar (concatenation, replication,
//! part selects, reductions).
//!
//! Diagnostics are *structured* — every finding carries an
//! [`diag::ErrorCategory`] matching the error-group taxonomy of the paper's
//! retrieval database, plus machine-readable payload data
//! ([`diag::DiagData`]) that repair operators key off.
//!
//! ## Example
//!
//! ```
//! use rtlfixer_verilog::{compile, diag::ErrorCategory};
//!
//! // The paper's Figure 5 bug: `clk` is used but never declared.
//! let analysis = compile(
//!     "module top_module(input [99:0] in, output reg [99:0] out);
//!        always @(posedge clk) out <= in;
//!      endmodule",
//! );
//! assert!(!analysis.is_ok());
//! assert_eq!(analysis.errors()[0].category, ErrorCategory::UndeclaredIdentifier);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod const_eval;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod span;
pub mod token;

use std::sync::Arc;

use diag::Diagnostic;
use sema::ModuleSymbols;
use span::SourceMap;

/// The result of compiling one source string: the parse tree, per-module
/// symbol tables, all diagnostics and a [`SourceMap`] for rendering.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Parsed (possibly partial) file.
    pub file: ast::SourceFile,
    /// Symbol tables, one per module in file order.
    pub symbols: Vec<ModuleSymbols>,
    /// Combined parser + semantic diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Line/column lookup for the compiled source.
    pub source_map: SourceMap,
    /// Content hash of the compiled source ([`source_fingerprint`]).
    /// Downstream caches (compiler personalities, elaboration) key their
    /// artifacts on it, so it identifies the *source text* this analysis
    /// came from, independent of the `Analysis` allocation.
    pub fingerprint: u128,
}

impl Analysis {
    /// Whether the design elaborated without errors (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.diagnostics.iter().all(|d| !d.is_error())
    }

    /// Error-severity diagnostics only.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error()).collect()
    }

    /// Symbol table for a module by name.
    pub fn symbols_for(&self, module: &str) -> Option<&ModuleSymbols> {
        self.symbols.iter().find(|s| s.name == module)
    }
}

/// Compiles (parses + analyzes) Verilog source text. Never panics on any
/// input; all problems surface as diagnostics.
///
/// # Examples
///
/// ```
/// let ok = rtlfixer_verilog::compile(
///     "module m(input a, output y); assign y = ~a; endmodule",
/// );
/// assert!(ok.is_ok());
/// ```
pub fn compile(source: &str) -> Analysis {
    let parsed = parser::parse(source);
    let (symbols, sema_diags) = sema::analyze_file(&parsed.file);
    let mut diagnostics = parsed.diagnostics;
    diagnostics.extend(sema_diags);
    diagnostics.sort_by_key(|d| (d.span.start, d.category as u8));
    Analysis {
        file: parsed.file,
        symbols,
        diagnostics,
        source_map: SourceMap::new(source),
        fingerprint: source_fingerprint(source),
    }
}

/// The canonical content hash of a source string — the key space every
/// downstream artifact cache (compile outcomes, elaborated designs) is
/// addressed in.
pub fn source_fingerprint(source: &str) -> u128 {
    rtlfixer_cache::fingerprint128(source.as_bytes())
}

fn analysis_cache() -> &'static rtlfixer_cache::ShardedCache<u128, Arc<Analysis>> {
    static CACHE: std::sync::OnceLock<rtlfixer_cache::ShardedCache<u128, Arc<Analysis>>> =
        std::sync::OnceLock::new();
    // 64 shards × 256 entries bounds the working set to ~16k analyses;
    // shards clear wholesale when full (correctness-neutral, see
    // `rtlfixer_cache`).
    CACHE.get_or_init(|| rtlfixer_cache::ShardedCache::named(64, 256, "analyses"))
}

/// [`compile`], memoised process-wide behind the source's content hash.
///
/// The repair loop compiles the same candidate sources over and over —
/// every episode re-compiles its entry's broken code, and the §5 debugger
/// compiles each proposal both to screen it and to simulate it. `compile`
/// is a pure function of `source`, so identical sources compile exactly
/// once per process and every caller shares one [`Analysis`] allocation.
///
/// Behaviourally identical to [`compile`]; see [`rtlfixer_cache::enabled`]
/// for the kill switch.
pub fn compile_shared(source: &str) -> Arc<Analysis> {
    let key = source_fingerprint(source);
    analysis_cache().get_or_insert_with(key, || Arc::new(compile(source)))
}

/// Hit/miss counters of the process-wide [`compile_shared`] cache.
pub fn analysis_cache_stats() -> rtlfixer_cache::CacheStats {
    analysis_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::ErrorCategory;

    #[test]
    fn end_to_end_clean_compile() {
        let analysis = compile(
            "module mux2(input [7:0] a, input [7:0] b, input sel, output [7:0] y);\n\
             assign y = sel ? b : a;\nendmodule",
        );
        assert!(analysis.is_ok(), "{:?}", analysis.diagnostics);
        assert_eq!(analysis.file.modules.len(), 1);
        assert!(analysis.symbols_for("mux2").is_some());
    }

    #[test]
    fn end_to_end_error_compile() {
        let analysis = compile(
            "module m(input [7:0] in, output [7:0] out);\nassign out[8] = in[0];\nendmodule",
        );
        assert!(!analysis.is_ok());
        assert_eq!(analysis.errors()[0].category, ErrorCategory::IndexOutOfRange);
    }

    #[test]
    fn diagnostics_are_source_ordered() {
        let analysis = compile(
            "module m(input a, output y);\nassign y = b;\nassign y = c;\nendmodule",
        );
        let errors = analysis.errors();
        assert!(errors.len() >= 2);
        assert!(errors[0].span.start <= errors[1].span.start);
    }

    #[test]
    fn empty_source_is_clean() {
        assert!(compile("").is_ok());
    }

    #[test]
    fn garbage_never_panics() {
        let analysis = compile("]]]] module )( 'h 8' %%% \u{0} endmodule module");
        assert!(!analysis.is_ok());
    }

    #[test]
    fn fingerprint_tracks_source_content() {
        let a = compile("module m(input a, output y); assign y = a; endmodule");
        let b = compile("module m(input a, output y); assign y = a; endmodule");
        let c = compile("module m(input a, output y); assign y = ~a; endmodule");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
        assert_eq!(
            a.fingerprint,
            source_fingerprint("module m(input a, output y); assign y = a; endmodule")
        );
    }

    #[test]
    fn compile_shared_memoises_identical_sources() {
        let source = "module shared_memo_probe(input a, output y); assign y = a; endmodule";
        rtlfixer_cache::set_enabled(true);
        let a = compile_shared(source);
        let b = compile_shared(source);
        assert!(Arc::ptr_eq(&a, &b), "identical sources must share one Analysis");
        // The shared analysis is the same result as a direct compile.
        let direct = compile(source);
        assert_eq!(a.fingerprint, direct.fingerprint);
        assert_eq!(a.diagnostics.len(), direct.diagnostics.len());
        assert_eq!(a.is_ok(), direct.is_ok());
    }
}
