//! Frontend conformance matrix: a broad set of small Verilog snippets that
//! must compile cleanly, and erroneous snippets that must produce exactly
//! the expected error category.

use rtlfixer_verilog::compile;
use rtlfixer_verilog::diag::ErrorCategory;

/// Snippets that must compile without errors.
const CLEAN: &[(&str, &str)] = &[
    ("empty_module", "module m; endmodule"),
    ("scalar_ports", "module m(input a, input b, output y); assign y = a & b; endmodule"),
    (
        "vector_ports",
        "module m(input [15:0] a, output [15:0] y); assign y = a; endmodule",
    ),
    (
        "ascending_range",
        "module m(input [0:7] a, output [0:7] y); assign y = a; endmodule",
    ),
    (
        "signed_ports",
        "module m(input signed [7:0] a, output signed [7:0] y); assign y = a; endmodule",
    ),
    (
        "multiple_assign_targets",
        "module m(input a, output x, output y); assign x = a, y = ~a; endmodule",
    ),
    (
        "nested_ternary",
        "module m(input [1:0] s, output [3:0] y);\n\
         assign y = s[1] ? (s[0] ? 4'd3 : 4'd2) : (s[0] ? 4'd1 : 4'd0);\nendmodule",
    ),
    (
        "reduction_ops",
        "module m(input [7:0] a, output x, output y, output z);\n\
         assign x = &a; assign y = ~|a; assign z = ^a; endmodule",
    ),
    (
        "power_operator",
        "module m(output [7:0] y); localparam P = 2 ** 3; assign y = P; endmodule",
    ),
    (
        "case_equality",
        "module m(input [3:0] a, output y); assign y = (a === 4'b1x0z); endmodule",
    ),
    (
        "nested_begin_blocks",
        "module m(input a, output reg y);\nalways @* begin\nbegin\ny = a;\nend\nend\nendmodule",
    ),
    (
        "named_blocks",
        "module m(input a, output reg y);\nalways @* begin : outer\ny = a;\nend\nendmodule",
    ),
    (
        "while_loop",
        "module m(input [3:0] a, output reg [3:0] y);\n\
         integer i;\nalways @* begin\ny = 0;\ni = 0;\n\
         while (i < 4) begin\ny = y + a[i];\ni = i + 1;\nend\nend\nendmodule",
    ),
    (
        "repeat_loop",
        "module m(output reg [3:0] y);\nalways @* begin\ny = 0;\nrepeat (4) y = y + 1;\nend\nendmodule",
    ),
    (
        "initial_block",
        "module m(output reg [7:0] q);\ninitial q = 8'hA5;\nendmodule",
    ),
    (
        "display_task",
        "module m(input a);\ninitial $display(\"a=%b\", a);\nendmodule",
    ),
    (
        "memory_decl",
        "module m(input [2:0] addr, output [7:0] q);\n\
         reg [7:0] mem [0:7];\nassign q = mem[addr];\nendmodule",
    ),
    (
        "wire_with_init",
        "module m(output y); wire t = 1'b1; assign y = t; endmodule",
    ),
    (
        "localparam_expression",
        "module m(output [7:0] y);\nlocalparam W = 4;\nlocalparam M = (1 << W) - 1;\n\
         assign y = M;\nendmodule",
    ),
    (
        "clog2",
        "module m(output [7:0] y); localparam B = $clog2(256); assign y = B; endmodule",
    ),
    (
        "escaped_identifier",
        "module m(input a, output y); wire \\my$wire ; assign \\my$wire = a; \
         assign y = \\my$wire ; endmodule",
    ),
    (
        "negedge_only",
        "module m(input clk_n, input d, output reg q);\nalways @(negedge clk_n) q <= d;\nendmodule",
    ),
    (
        "always_at_signal_list",
        "module m(input a, input b, output reg y);\nalways @(a or b) y = a ^ b;\nendmodule",
    ),
    (
        "comment_styles",
        "// leading\nmodule m(input a, output y);\n/* block */ assign y = a; // trailing\nendmodule",
    ),
    (
        "timescale_top",
        "`timescale 1ns/1ps\nmodule m(input a, output y); assign y = a; endmodule",
    ),
    (
        "sized_literal_widths",
        "module m(output [63:0] y); assign y = 64'hDEAD_BEEF_CAFE_F00D; endmodule",
    ),
    (
        "unbased_literal",
        "module m(output [3:0] y); assign y = 'b1010; endmodule",
    ),
    (
        "shift_by_signal",
        "module m(input [7:0] a, input [2:0] s, output [7:0] y); assign y = a << s; endmodule",
    ),
    (
        "arithmetic_shift",
        "module m(input signed [7:0] a, output [7:0] y); assign y = a >>> 2; endmodule",
    ),
    (
        "inout_port",
        "module m(inout io, input oe, input d); assign io = oe ? d : 1'bz; endmodule",
    ),
];

/// Snippets that must fail with (at least) the given category.
const ERRONEOUS: &[(&str, &str, ErrorCategory)] = &[
    (
        "undeclared_rhs",
        "module m(output y); assign y = ghost; endmodule",
        ErrorCategory::UndeclaredIdentifier,
    ),
    (
        "undeclared_sensitivity",
        "module m(input d, output reg q); always @(posedge clk) q <= d; endmodule",
        ErrorCategory::UndeclaredIdentifier,
    ),
    (
        "undeclared_in_case",
        "module m(input [1:0] s, output reg y);\nalways @* begin\ncase (s)\n\
         2'd0: y = phantom;\ndefault: y = 0;\nendcase\nend\nendmodule",
        ErrorCategory::UndeclaredIdentifier,
    ),
    (
        "index_past_msb",
        "module m(input [7:0] a, output y); assign y = a[8]; endmodule",
        ErrorCategory::IndexOutOfRange,
    ),
    (
        "negative_literal_index",
        "module m(input [7:0] a, output [7:0] y); assign y[0] = a[0]; \
         assign y[7:1] = a[7:1]; wire t; assign t = a[9]; endmodule",
        ErrorCategory::IndexOutOfRange,
    ),
    (
        "part_select_oob",
        "module m(input [7:0] a, output [7:0] y); assign y = a[9:2]; endmodule",
        ErrorCategory::IndexOutOfRange,
    ),
    (
        "loop_index_arith",
        "module m(input [7:0] a, output reg [7:0] y);\ninteger i;\n\
         always @* begin\nfor (i = 0; i < 8; i = i + 1) y[i] = a[i + 1];\nend\nendmodule",
        ErrorCategory::IndexArithmetic,
    ),
    (
        "wire_in_always",
        "module m(input a, output y); always @(a) y = a; endmodule",
        ErrorCategory::IllegalProceduralLvalue,
    ),
    (
        "reg_in_assign",
        "module m(input a, output reg y); assign y = a; endmodule",
        ErrorCategory::IllegalContinuousLvalue,
    ),
    (
        "assign_to_input",
        "module m(input a, input b, output y); assign a = b; assign y = a; endmodule",
        ErrorCategory::AssignToInput,
    ),
    (
        "unknown_module",
        "module m(input a, output y); nothere u(.p(a), .q(y)); endmodule",
        ErrorCategory::UnknownModule,
    ),
    (
        "bad_port_name",
        "module c(input x, output z); assign z = x; endmodule\n\
         module m(input a, output y); c u(.x(a), .zz(y)); endmodule",
        ErrorCategory::PortConnectionMismatch,
    ),
    (
        "positional_arity",
        "module c(input x, input w, output z); assign z = x & w; endmodule\n\
         module m(input a, output y); c u(a, y); endmodule",
        ErrorCategory::PortConnectionMismatch,
    ),
    (
        "double_decl",
        "module m(input a, output y); wire t; wire t; assign y = a; endmodule",
        ErrorCategory::Redeclaration,
    ),
    (
        "missing_semi",
        "module m(input a, output y); assign y = a endmodule",
        ErrorCategory::SyntaxError,
    ),
    (
        "missing_end",
        "module m(input a, output reg y); always @* begin y = a; endmodule",
        ErrorCategory::UnbalancedBlock,
    ),
    (
        "missing_endmodule",
        "module m(input a, output y); assign y = a;",
        ErrorCategory::UnbalancedBlock,
    ),
    (
        "missing_endcase",
        "module m(input [1:0] s, output reg y);\nalways @* begin\ncase (s)\n\
         2'd0: y = 0;\ndefault: y = 1;\nend\nendmodule",
        ErrorCategory::UnbalancedBlock,
    ),
    (
        "cpp_increment",
        "module m(input [7:0] a, output reg [7:0] y);\ninteger i;\n\
         always @* begin\nfor (i = 0; i < 8; i++) y[i] = a[i];\nend\nendmodule",
        ErrorCategory::CStyleConstruct,
    ),
    (
        "cpp_compound",
        "module m(input [7:0] a, output reg [7:0] s);\n\
         always @* begin\ns = 0;\ns += a;\nend\nendmodule",
        ErrorCategory::CStyleConstruct,
    ),
    (
        "timescale_in_body",
        "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule",
        ErrorCategory::MisplacedDirective,
    ),
    (
        "keyword_name",
        "module m(input a, output y); wire disable; assign disable = a; \
         assign y = disable; endmodule",
        ErrorCategory::KeywordAsIdentifier,
    ),
    (
        "always_without_sensitivity",
        "module m(input a, output reg y); always begin y = a; end endmodule",
        ErrorCategory::SyntaxError,
    ),
];

#[test]
fn clean_snippets_compile() {
    for (name, src) in CLEAN {
        let analysis = compile(src);
        assert!(
            analysis.is_ok(),
            "{name}: unexpected errors {:?}",
            analysis.errors()
        );
    }
}

#[test]
fn erroneous_snippets_report_expected_category() {
    for (name, src, category) in ERRONEOUS {
        let analysis = compile(src);
        let cats: Vec<ErrorCategory> =
            analysis.errors().iter().map(|d| d.category).collect();
        assert!(
            cats.contains(category),
            "{name}: expected {category:?}, got {cats:?}"
        );
    }
}

#[test]
fn diagnostics_all_carry_spans_within_source() {
    for (_, src, _) in ERRONEOUS {
        let analysis = compile(src);
        for diag in &analysis.diagnostics {
            assert!(
                diag.span.end as usize <= src.len() + 1,
                "span {:?} outside source of {} bytes",
                diag.span,
                src.len()
            );
        }
    }
}

#[test]
fn headlines_are_nonempty_and_lowercase_style() {
    for (_, src, _) in ERRONEOUS {
        let analysis = compile(src);
        for diag in analysis.errors() {
            let headline = diag.headline();
            assert!(!headline.is_empty());
            assert!(!headline.ends_with('.'), "no trailing period: {headline}");
        }
    }
}
