//! The canonical single-episode execution path.
//!
//! Every consumer of the fix pipeline — the Table 1 grid, the ablation
//! sweeps, the chaos harness and the `rtlfixer-serve` daemon — runs the
//! same episode: build a seeded [`SimulatedLlm`], wrap it in the
//! [`ResilientModel`] transport, assemble an [`RtlFixerBuilder`] and call
//! `fix_problem`. Before this module each caller open-coded that recipe,
//! which is exactly how a served request and a batch episode drift apart.
//! [`run_repair`] is the one place the recipe lives: a served request with
//! the same [`RepairJob`] as a batch episode produces the same
//! [`FixOutcome`], bit for bit, which is what lets `servebench` check the
//! daemon's fix rate against the batch baseline.

use std::sync::Arc;

use rtlfixer_agent::{FixOutcome, RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_llm::{Capability, ResilientModel, SimulatedLlm};
use rtlfixer_rag::DistilledStore;

/// Everything that determines a repair episode's result. Two equal jobs
/// produce equal [`FixOutcome`]s regardless of where they run (batch pool,
/// serve worker, test harness).
#[derive(Debug, Clone, Copy)]
pub struct RepairJob<'a> {
    /// Natural-language problem description (may be empty).
    pub problem: &'a str,
    /// The broken RTL source.
    pub code: &'a str,
    /// Compiler personality providing feedback.
    pub compiler: CompilerKind,
    /// Fixing strategy (one-shot or ReAct).
    pub strategy: Strategy,
    /// Whether retrieval-augmented guidance is on.
    pub rag: bool,
    /// Simulated LLM capability class.
    pub capability: Capability,
    /// Episode seed: drives the model, the fault streams and the retry
    /// jitter.
    pub seed: u64,
    /// Optional deadline cap, in simulated ms, propagated into the
    /// [`ResilientModel`] retry budget — a served request never burns
    /// retries past its deadline.
    pub deadline_ms: Option<u64>,
    /// Optional distilled-guidance store. The episode snapshots it at
    /// fixer build time (so a concurrent merge never changes a running
    /// episode) and reports fresh entries via [`FixOutcome::distilled`];
    /// the caller merges those at its own barrier. `None` — the batch
    /// experiments' default — reproduces the static-database pipeline
    /// bit for bit.
    pub distilled: Option<&'a Arc<DistilledStore>>,
}

impl<'a> RepairJob<'a> {
    /// A job with the paper's defaults (ReAct ×10, Quartus, RAG on,
    /// GPT-3.5-class model, no deadline).
    pub fn new(problem: &'a str, code: &'a str, seed: u64) -> Self {
        RepairJob {
            problem,
            code,
            compiler: CompilerKind::Quartus,
            strategy: Strategy::React { max_iterations: 10 },
            rag: true,
            capability: Capability::Gpt35Class,
            seed,
            deadline_ms: None,
            distilled: None,
        }
    }
}

/// Runs one repair episode. The resilient transport and the compiler
/// fault stream are both seeded from the job seed: with `RTLFIXER_FAULTS`
/// unset they are inert pass-throughs, and with a spec set the injected
/// faults are identical at every worker count and in every host (batch or
/// daemon).
pub fn run_repair(job: &RepairJob) -> FixOutcome {
    let mut llm = ResilientModel::new(SimulatedLlm::new(job.capability, job.seed), job.seed);
    if let Some(deadline) = job.deadline_ms {
        llm = llm.with_deadline(deadline);
    }
    let mut builder = RtlFixerBuilder::new()
        .compiler(job.compiler)
        .strategy(job.strategy)
        .with_rag(job.rag)
        .fault_seed(job.seed);
    if let Some(store) = job.distilled {
        builder = builder.distilled(Arc::clone(store));
    }
    let mut fixer = builder.build(llm);
    fixer.fix_problem(job.problem, job.code)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BROKEN: &str = "module m(input [7:0] in, output reg [7:0] out);\n\
                          always @(posedge clk) out <= in;\nendmodule";

    #[test]
    fn equal_jobs_produce_equal_outcomes() {
        let job = RepairJob::new("register the input", BROKEN, 17);
        let a = run_repair(&job);
        let b = run_repair(&job);
        assert_eq!(a.success, b.success);
        assert_eq!(a.final_code, b.final_code);
        assert_eq!(a.revisions, b.revisions);
        assert_eq!(a.trace.steps.len(), b.trace.steps.len());
    }

    #[test]
    fn defaults_fix_a_simple_archetype() {
        let outcome = run_repair(&RepairJob::new("register the input", BROKEN, 3));
        assert!(outcome.success, "trace: {:?}", outcome.trace.steps);
        assert!(outcome.final_code.contains("endmodule"));
    }

    #[test]
    fn deadline_does_not_change_fault_free_results() {
        // With faults off the deadline only clips retry budgets that are
        // never spent; outcomes stay bit-identical.
        let base = RepairJob::new("register the input", BROKEN, 29);
        let capped = RepairJob { deadline_ms: Some(100), ..base };
        let a = run_repair(&base);
        let b = run_repair(&capped);
        assert_eq!(a.success, b.success);
        assert_eq!(a.final_code, b.final_code);
    }
}
