//! # rtlfixer-eval
//!
//! Metrics and experiment drivers for the RTLFixer reproduction:
//!
//! * [`metrics`] — the paper's Eq. 1 (fix rate) and Eq. 2 (unbiased
//!   pass@k).
//! * [`runner`] — the deterministic parallel episode-execution engine all
//!   experiments run on: a work-stealing thread pool plus the canonical
//!   per-episode seed derivation, guaranteeing results are bit-identical
//!   for any `--jobs` value.
//! * [`schedule`] — the planning layer over the runner: a telemetry-seeded
//!   cost model orders the claim queue longest-expected-first, specs
//!   sharing a source fingerprint coalesce into cache-warming batches, and
//!   [`schedule::Shard`] partitions grids for deterministic multi-process
//!   runs (`--shard i/n` + `merge-shards`). Scheduling never changes
//!   results — only when they are computed.
//! * [`experiments::table1`] — the fix-rate grid (strategy × RAG ×
//!   feedback × LLM), with the paper's reported values embedded for
//!   side-by-side comparison.
//! * [`experiments::table2`] — pass@{1,5} before/after syntax fixing on
//!   VerilogEval (plus the Figure 4 outcome shares) and Table 3 (RTLLM).
//! * [`experiments::figure7`] — the ReAct iteration histogram.
//! * [`experiments::ablations`] — retriever / iteration-budget /
//!   pre-fixer / database-size ablations beyond the paper.
//! * [`sim_debug`] — the §5 extension study: simulation-error (logic)
//!   debugging with waveform-style feedback, reproducing the paper's
//!   finding that it only helps on simple problems.
//!
//! The `rtlfixer-bench` crate's binaries drive these at paper scale and
//! print paper-vs-measured tables; the unit tests here run scaled-down
//! versions asserting the qualitative orderings.

#![warn(missing_docs)]

pub mod episode;
pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod schedule;
pub mod sim_debug;

pub use episode::{run_repair, RepairJob};
pub use metrics::{fix_rate, mean_pass_at_k, pass_at_k};
pub use runner::{
    cache_report, episode_seed, panic_message, resolve_jobs, run_episodes, run_episodes_checked,
    run_episodes_planned, run_indexed_checked, run_planned_checked, CacheReport, EpisodeFailure,
    EpisodeSpec, PlannedMetrics, RunStats,
};
pub use schedule::{
    scheduler_report, CostModel, EpisodeFeatures, Plan, Policy, SchedulerStats, Shard,
};
