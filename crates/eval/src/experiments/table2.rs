//! Table 2 (pass@k before/after syntax fixing on VerilogEval), Table 3
//! (RTLLM generalisation) and Figure 4 (error-class shares).

use serde::Serialize;

use rtlfixer_agent::{prefixer, RtlFixerBuilder, Strategy};
use rtlfixer_compilers::CompilerKind;
use rtlfixer_dataset::generation::{GenCapability, Generator};
use rtlfixer_dataset::{Difficulty, Problem, Verdict};
use rtlfixer_llm::{Capability, ResilientModel, SimulatedLlm};

use crate::metrics::mean_pass_at_k;
use crate::runner::{episode_seed, run_episodes_planned, EpisodeSpec, RunStats};
use crate::schedule::{self, EpisodeFeatures, Shard};

/// Configuration for generation-based experiments.
#[derive(Debug, Clone, Copy)]
pub struct PassAtKConfig {
    /// Samples per problem (the paper uses n = 20).
    pub samples: usize,
    /// Cap on problems per suite (`None` = all).
    pub max_problems: Option<usize>,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (`0` = available parallelism). Problems are the unit
    /// of parallelism; results are identical for every value.
    pub jobs: usize,
}

impl Default for PassAtKConfig {
    fn default() -> Self {
        PassAtKConfig { samples: 20, max_problems: None, seed: 11, jobs: 0 }
    }
}

/// Per-sample outcome classes, before and after fixing (Figure 4's pie).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct OutcomeShares {
    /// Fraction of samples passing simulation.
    pub pass: f64,
    /// Fraction failing to compile (syntax errors).
    pub syntax_error: f64,
    /// Fraction compiling but failing simulation.
    pub sim_error: f64,
}

/// One pass@k row (a Table 2 line).
#[derive(Debug, Clone, Serialize)]
pub struct PassRow {
    /// "All", "easy" or "hard".
    pub set: String,
    /// Problems in the split.
    pub problems: usize,
    /// pass@1 before fixing.
    pub pass1_original: f64,
    /// pass@1 after fixing syntax errors.
    pub pass1_fixed: f64,
    /// pass@5 before fixing.
    pub pass5_original: f64,
    /// pass@5 after fixing.
    pub pass5_fixed: f64,
}

/// Full result of a suite evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct SuiteEvaluation {
    /// Suite label.
    pub suite: String,
    /// All/easy/hard rows.
    pub rows: Vec<PassRow>,
    /// Outcome shares before fixing (Figure 4 inner ring).
    pub shares_original: OutcomeShares,
    /// Outcome shares after fixing (Figure 4 outer ring).
    pub shares_fixed: OutcomeShares,
    /// Fraction of generated samples that failed to compile.
    pub syntax_failure_rate: f64,
    /// Same, after fixing.
    pub syntax_failure_rate_fixed: f64,
    /// Wall-clock statistics (episodes = problems × samples).
    pub stats: RunStats,
}

/// Per-problem counts from one evaluation pass. Public (with the problem's
/// subset index) so sharded bench runs can write them into fragments and
/// `merge-shards` can reassemble a suite without re-running anything.
#[derive(Debug, Clone)]
pub struct ProblemCounts {
    /// Difficulty of the problem (for the easy/hard splits).
    pub difficulty: Difficulty,
    /// Samples passing simulation before fixing.
    pub pass_original: usize,
    /// Samples passing simulation after fixing.
    pub pass_fixed: usize,
    /// Samples generated for this problem.
    pub samples: usize,
    /// Samples failing to compile before fixing.
    pub syntax_original: usize,
    /// Samples failing to compile after fixing.
    pub syntax_fixed: usize,
    /// Samples compiling but failing simulation before fixing.
    pub sim_original: usize,
    /// Samples compiling but failing simulation after fixing.
    pub sim_fixed: usize,
}

/// Evaluates one problem: generates `samples` candidates, measures original
/// verdicts, applies the fixer to compile-failing candidates and re-measures.
fn evaluate_problem(problem: &Problem, config: &PassAtKConfig, index: u64) -> ProblemCounts {
    // Seed-namespace cells 40 (generation) and 41 (fixing) — see
    // [`crate::runner::episode_seed`].
    let gen_seed = episode_seed(config.seed, 40, index, 0);
    let mut generator = Generator::new(GenCapability::Gpt35, gen_seed);
    let mut counts = ProblemCounts {
        difficulty: problem.difficulty,
        pass_original: 0,
        pass_fixed: 0,
        samples: config.samples,
        syntax_original: 0,
        syntax_fixed: 0,
        sim_original: 0,
        sim_fixed: 0,
    };
    for sample in 0..config.samples {
        let candidate = generator.sample(problem);
        // §4 Setup: the rule-based fixer is applied to every generated
        // sample before evaluation.
        let normalised = prefixer::prefix_fix(&candidate.code);
        let original = problem.check(&normalised);
        match original {
            Verdict::Pass => counts.pass_original += 1,
            Verdict::CompileError => counts.syntax_original += 1,
            Verdict::SimMismatch => counts.sim_original += 1,
        }
        // Fixing pass: only compile errors go through RTLFixer.
        let fixed_verdict = if original == Verdict::CompileError {
            let fix_seed = episode_seed(config.seed, 41, index, sample as u64);
            let llm =
                ResilientModel::new(SimulatedLlm::new(Capability::Gpt35Class, fix_seed), fix_seed);
            let mut fixer = RtlFixerBuilder::new()
                .compiler(CompilerKind::Quartus)
                .strategy(Strategy::React { max_iterations: 10 })
                .with_rag(true)
                .fault_seed(fix_seed)
                .build(llm);
            let outcome = fixer.fix_problem(&problem.description, &normalised);
            problem.check(&outcome.final_code)
        } else {
            original
        };
        match fixed_verdict {
            Verdict::Pass => counts.pass_fixed += 1,
            Verdict::CompileError => counts.syntax_fixed += 1,
            Verdict::SimMismatch => counts.sim_fixed += 1,
        }
    }
    counts
}

fn shares(counts: &[ProblemCounts], fixed: bool) -> OutcomeShares {
    let total: usize = counts.iter().map(|c| c.samples).sum();
    if total == 0 {
        return OutcomeShares::default();
    }
    let (pass, syntax, sim) = counts.iter().fold((0usize, 0usize, 0usize), |acc, c| {
        if fixed {
            (acc.0 + c.pass_fixed, acc.1 + c.syntax_fixed, acc.2 + c.sim_fixed)
        } else {
            (acc.0 + c.pass_original, acc.1 + c.syntax_original, acc.2 + c.sim_original)
        }
    });
    OutcomeShares {
        pass: pass as f64 / total as f64,
        syntax_error: syntax as f64 / total as f64,
        sim_error: sim as f64 / total as f64,
    }
}

fn row(set: &str, counts: &[&ProblemCounts]) -> PassRow {
    let original: Vec<(usize, usize)> =
        counts.iter().map(|c| (c.pass_original, c.samples)).collect();
    let fixed: Vec<(usize, usize)> = counts.iter().map(|c| (c.pass_fixed, c.samples)).collect();
    PassRow {
        set: set.to_owned(),
        problems: counts.len(),
        pass1_original: mean_pass_at_k(&original, 1),
        pass1_fixed: mean_pass_at_k(&fixed, 1),
        pass5_original: mean_pass_at_k(&original, 5),
        pass5_fixed: mean_pass_at_k(&fixed, 5),
    }
}

/// The striding subset [`evaluate_suite`] evaluates: with `max_problems`
/// set, problems are sampled across the suite so both difficulty splits
/// stay represented (the suites are ordered hardest-first).
fn subset<'a>(problems: &'a [Problem], config: &PassAtKConfig) -> Vec<&'a Problem> {
    match config.max_problems {
        Some(cap) if cap < problems.len() => {
            let stride = (problems.len() / cap).max(1);
            problems.iter().step_by(stride).take(cap).collect()
        }
        _ => problems.iter().collect(),
    }
}

/// Evaluates one shard's stripe of a suite, returning raw per-problem
/// counts tagged with their subset index. A `--shard i/n` bench process
/// runs exactly this; [`suite_from_counts`] reassembles fragments into the
/// same [`SuiteEvaluation`] an unsharded run produces. Also publishes the
/// shard's scheduler stats as the process-wide report.
pub fn evaluate_suite_counts(
    problems: &[Problem],
    config: &PassAtKConfig,
    shard: Shard,
) -> (Vec<(usize, ProblemCounts)>, RunStats) {
    let problems = subset(problems, config);
    let positions = shard.indices(problems.len());
    // One problem per pool task: sample generation is sequential within a
    // problem (the generator's RNG stream is per-problem), but problems are
    // independent, seeded by subset index, and safe to run in any order.
    // Synthetic specs carry the subset index so the planner can order them;
    // the seeds episodes actually use derive inside `evaluate_problem`.
    let specs: Vec<EpisodeSpec> = positions
        .iter()
        .map(|&p| EpisodeSpec {
            cell: 40,
            entry: p,
            repeat: 0,
            seed: episode_seed(config.seed, 40, p as u64, 0),
        })
        .collect();
    let features: Vec<EpisodeFeatures> = positions
        .iter()
        .map(|&p| EpisodeFeatures::of(&problems[p].description, None))
        .collect();
    let (results, failures, mut stats) =
        run_episodes_planned(config.jobs, &specs, &features, |spec| {
            evaluate_problem(problems[spec.entry], config, spec.entry as u64)
        });
    if let Some(first) = failures.first() {
        panic!(
            "{} of {} problems panicked; first at subset index {}: {}",
            failures.len(),
            specs.len(),
            positions[first.index],
            first.message
        );
    }
    // Episodes are problems × samples, not problems: rescale the pool's
    // per-task accounting so throughput stays comparable to the old path.
    stats.episodes = specs.len() * config.samples;
    stats.episodes_per_sec =
        if stats.seconds > 0.0 { stats.episodes as f64 / stats.seconds } else { 0.0 };
    if let Some(scheduler) = stats.scheduler {
        schedule::publish_report(scheduler);
    }
    let counts = positions
        .into_iter()
        .zip(results)
        .map(|(position, counts)| (position, counts.expect("no failures")))
        .collect();
    (counts, stats)
}

/// Reassembles a [`SuiteEvaluation`] from shards' per-problem counts.
///
/// The fragments' subset indices must partition `0..subset_len` exactly —
/// overlaps, gaps and out-of-range indices are errors. Rows and shares are
/// recomputed from the reassembled counts through the same folds as an
/// unsharded run, so merged output is structurally identical.
pub fn suite_from_counts(
    suite_label: &str,
    problems: &[Problem],
    config: &PassAtKConfig,
    shards: &[Vec<(usize, ProblemCounts)>],
    stats: RunStats,
) -> Result<SuiteEvaluation, String> {
    let subset_len = subset(problems, config).len();
    let mut slots: Vec<Option<ProblemCounts>> = vec![None; subset_len];
    for fragment in shards {
        for (position, counts) in fragment {
            let slot = slots.get_mut(*position).ok_or_else(|| {
                format!(
                    "{suite_label}: problem index {position} outside the \
                     {subset_len}-problem subset (shard configs must match)"
                )
            })?;
            if slot.replace(counts.clone()).is_some() {
                return Err(format!(
                    "{suite_label}: problem index {position} covered twice (overlapping shards)"
                ));
            }
        }
    }
    let counts: Vec<ProblemCounts> = slots
        .into_iter()
        .enumerate()
        .map(|(position, slot)| {
            slot.ok_or_else(|| {
                format!("{suite_label}: problem index {position} missing (incomplete shards)")
            })
        })
        .collect::<Result<_, String>>()?;
    Ok(assemble_suite(suite_label, counts, stats))
}

/// Runs the Table 2 evaluation over a problem suite, producing All/easy/hard
/// rows plus the Figure 4 shares.
pub fn evaluate_suite(
    suite_label: &str,
    problems: &[Problem],
    config: &PassAtKConfig,
) -> SuiteEvaluation {
    let (tagged, stats) = evaluate_suite_counts(problems, config, Shard::FULL);
    let counts: Vec<ProblemCounts> = tagged.into_iter().map(|(_, counts)| counts).collect();
    assemble_suite(suite_label, counts, stats)
}

/// The shared fold from reassembled per-problem counts to a rendered
/// evaluation (rows, shares, failure rates).
fn assemble_suite(
    suite_label: &str,
    counts: Vec<ProblemCounts>,
    stats: RunStats,
) -> SuiteEvaluation {
    let all: Vec<&ProblemCounts> = counts.iter().collect();
    let easy: Vec<&ProblemCounts> =
        counts.iter().filter(|c| c.difficulty == Difficulty::Easy).collect();
    let hard: Vec<&ProblemCounts> =
        counts.iter().filter(|c| c.difficulty == Difficulty::Hard).collect();
    let shares_original = shares(&counts, false);
    let shares_fixed = shares(&counts, true);
    SuiteEvaluation {
        suite: suite_label.to_owned(),
        rows: vec![row("All", &all), row("easy", &easy), row("hard", &hard)],
        shares_original,
        shares_fixed,
        syntax_failure_rate: shares_original.syntax_error,
        syntax_failure_rate_fixed: shares_fixed.syntax_error,
        stats,
    }
}

/// Table 3: RTLLM syntax success rate and pass@1, before/after RTLFixer.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Result {
    /// Fraction of generated samples that compile, before fixing.
    pub syntax_success_original: f64,
    /// Same after ReAct + RAG fixing.
    pub syntax_success_fixed: f64,
    /// pass@1 before fixing.
    pub pass1_original: f64,
    /// pass@1 after fixing.
    pub pass1_fixed: f64,
}

/// Runs the Table 3 evaluation on the RTLLM suite.
pub fn table3(config: &PassAtKConfig) -> Table3Result {
    table3_timed(config).0
}

/// [`table3`] plus the underlying suite run's wall-clock stats.
pub fn table3_timed(config: &PassAtKConfig) -> (Table3Result, RunStats) {
    let problems = rtlfixer_dataset::rtllm();
    let evaluation = evaluate_suite("RTLLM", &problems, config);
    let all = &evaluation.rows[0];
    let result = Table3Result {
        syntax_success_original: 1.0 - evaluation.syntax_failure_rate,
        syntax_success_fixed: 1.0 - evaluation.syntax_failure_rate_fixed,
        pass1_original: all.pass1_original,
        pass1_fixed: all.pass1_fixed,
    };
    (result, evaluation.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PassAtKConfig {
        PassAtKConfig { samples: 6, max_problems: Some(16), seed: 5, jobs: 1 }
    }

    #[test]
    fn fixing_improves_human_pass_rate() {
        let problems = rtlfixer_dataset::verilog_eval_human();
        let result = evaluate_suite("Human", &problems, &small_config());
        let all = &result.rows[0];
        assert!(
            all.pass1_fixed >= all.pass1_original,
            "fixed {} < original {}",
            all.pass1_fixed,
            all.pass1_original
        );
        assert!(result.syntax_failure_rate_fixed < result.syntax_failure_rate);
    }

    #[test]
    fn pass5_bounds_pass1() {
        let problems = rtlfixer_dataset::verilog_eval_human();
        let result = evaluate_suite("Human", &problems, &small_config());
        for row in &result.rows {
            assert!(row.pass5_original >= row.pass1_original, "{row:?}");
            assert!(row.pass5_fixed >= row.pass1_fixed, "{row:?}");
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let problems = rtlfixer_dataset::verilog_eval_machine();
        let result = evaluate_suite("Machine", &problems, &small_config());
        let total = result.shares_original.pass
            + result.shares_original.syntax_error
            + result.shares_original.sim_error;
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn easy_outperforms_hard() {
        let problems = rtlfixer_dataset::verilog_eval_human();
        let config = PassAtKConfig { samples: 8, max_problems: Some(40), seed: 5, jobs: 1 };
        let result = evaluate_suite("Human", &problems, &config);
        let easy = result.rows.iter().find(|r| r.set == "easy").unwrap();
        let hard = result.rows.iter().find(|r| r.set == "hard").unwrap();
        assert!(
            easy.pass1_original > hard.pass1_original,
            "easy {} vs hard {}",
            easy.pass1_original,
            hard.pass1_original
        );
    }

    #[test]
    fn suite_evaluation_is_jobs_invariant() {
        let problems = rtlfixer_dataset::verilog_eval_human();
        let serial = evaluate_suite("Human", &problems, &small_config());
        let parallel_config = PassAtKConfig { jobs: 4, ..small_config() };
        let parallel = evaluate_suite("Human", &problems, &parallel_config);
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.pass1_original, b.pass1_original);
            assert_eq!(a.pass1_fixed, b.pass1_fixed);
            assert_eq!(a.pass5_original, b.pass5_original);
            assert_eq!(a.pass5_fixed, b.pass5_fixed);
        }
        assert_eq!(serial.syntax_failure_rate, parallel.syntax_failure_rate);
    }

    #[test]
    fn sharded_suite_merge_matches_unsharded_bitwise() {
        let problems = rtlfixer_dataset::verilog_eval_human();
        let config = small_config();
        let full = evaluate_suite("Human", &problems, &config);
        let (half0, stats0) =
            evaluate_suite_counts(&problems, &config, Shard { index: 0, count: 2 });
        let (half1, stats1) =
            evaluate_suite_counts(&problems, &config, Shard { index: 1, count: 2 });
        let mut stats = stats0;
        stats.accumulate(&stats1);
        let halves = [half0, half1];
        let merged = suite_from_counts("Human", &problems, &config, &halves, stats)
            .expect("halves partition the subset");
        for (a, b) in full.rows.iter().zip(&merged.rows) {
            assert_eq!(a.pass1_original.to_bits(), b.pass1_original.to_bits(), "{}", a.set);
            assert_eq!(a.pass1_fixed.to_bits(), b.pass1_fixed.to_bits(), "{}", a.set);
            assert_eq!(a.pass5_original.to_bits(), b.pass5_original.to_bits(), "{}", a.set);
            assert_eq!(a.pass5_fixed.to_bits(), b.pass5_fixed.to_bits(), "{}", a.set);
            assert_eq!(a.problems, b.problems);
        }
        assert_eq!(
            full.syntax_failure_rate.to_bits(),
            merged.syntax_failure_rate.to_bits()
        );
        // Incomplete and overlapping fragment sets are rejected.
        let one = std::slice::from_ref(&halves[0]);
        let err = suite_from_counts("Human", &problems, &config, one, stats).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let twice = [halves[0].clone(), halves[0].clone()];
        let err = suite_from_counts("Human", &problems, &config, &twice, stats).unwrap_err();
        assert!(err.contains("covered twice"), "{err}");
    }

    #[test]
    fn table3_improves_syntax_success() {
        let config = PassAtKConfig { samples: 6, max_problems: Some(12), seed: 5, jobs: 1 };
        let result = table3(&config);
        assert!(result.syntax_success_fixed > result.syntax_success_original);
        assert!(result.pass1_fixed >= result.pass1_original);
    }
}
