//! Experiment drivers, one module per paper table/figure (see the
//! experiment index in DESIGN.md §3).

pub mod ablations;
pub mod chaos;
pub mod figure7;
pub mod table1;
pub mod table2;
pub mod table_learning;
