//! Table 1: fix rate on VerilogEval-syntax across prompting strategy,
//! RAG, feedback quality and LLM capability.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;

use rtlfixer_agent::Strategy;
use rtlfixer_compilers::CompilerKind;
use rtlfixer_dataset::SyntaxBenchEntry;
use rtlfixer_llm::Capability;

use crate::episode::{run_repair, RepairJob};
use crate::metrics::fix_rate;
use crate::runner::{episode_grid, run_episodes_planned, EpisodeSpec, RunStats};
use crate::schedule::{self, EpisodeFeatures, Shard};

/// Configuration for fix-rate experiments.
#[derive(Debug, Clone, Copy)]
pub struct FixRateConfig {
    /// Cap on dataset entries (`None` = all 212).
    pub max_entries: Option<usize>,
    /// Repeats per entry (the paper uses 10).
    pub repeats: usize,
    /// Seed for the dataset build.
    pub dataset_seed: u64,
    /// Base seed for episode randomness.
    pub base_seed: u64,
    /// Worker threads for episode execution (`0` = available parallelism).
    /// Results are identical for every value; this only changes wall-clock.
    pub jobs: usize,
}

impl Default for FixRateConfig {
    fn default() -> Self {
        FixRateConfig { max_entries: None, repeats: 10, dataset_seed: 7, base_seed: 1, jobs: 0 }
    }
}

/// One Table 1 cell result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Cell {
    /// "One-shot" or "ReAct".
    pub strategy: String,
    /// RAG on/off.
    pub rag: bool,
    /// Feedback source.
    pub compiler: String,
    /// LLM capability label.
    pub llm: String,
    /// Measured fix rate.
    pub fix_rate: f64,
    /// The paper's reported value for this cell, for comparison.
    pub paper: f64,
    /// Wall-clock statistics for this cell's episodes.
    pub stats: RunStats,
}

/// The paper's Table 1 values, as (strategy, rag, compiler, llm, value).
pub const PAPER_TABLE1: &[(&str, bool, &str, &str, f64)] = &[
    ("One-shot", false, "Simple", "GPT-3.5", 0.414),
    ("One-shot", false, "iverilog", "GPT-3.5", 0.536),
    ("One-shot", false, "Quartus", "GPT-3.5", 0.587),
    ("One-shot", true, "iverilog", "GPT-3.5", 0.800),
    ("One-shot", true, "Quartus", "GPT-3.5", 0.899),
    ("ReAct", false, "Simple", "GPT-3.5", 0.671),
    ("ReAct", false, "iverilog", "GPT-3.5", 0.731),
    ("ReAct", false, "Quartus", "GPT-3.5", 0.799),
    ("ReAct", true, "iverilog", "GPT-3.5", 0.820),
    ("ReAct", true, "Quartus", "GPT-3.5", 0.985),
    ("One-shot", false, "Quartus", "GPT-4", 0.91),
    ("One-shot", true, "Quartus", "GPT-4", 0.98),
    ("ReAct", false, "Quartus", "GPT-4", 0.92),
    ("ReAct", true, "Quartus", "GPT-4", 0.99),
];

fn compiler_from_label(label: &str) -> CompilerKind {
    match label {
        "Simple" => CompilerKind::Simple,
        "iverilog" => CompilerKind::Iverilog,
        _ => CompilerKind::Quartus,
    }
}

fn capability_from_label(label: &str) -> Capability {
    if label == "GPT-4" {
        Capability::Gpt4Class
    } else {
        Capability::Gpt35Class
    }
}

/// Raw per-episode verdicts of one Table 1 cell — the whole grid when run
/// unsharded, or one shard's stripe of it. Positions are indices into the
/// cell's entry-major episode grid, so fragments from different processes
/// reassemble without any shared state beyond the config.
#[derive(Debug, Clone)]
pub struct CellVerdicts {
    /// `(grid position, fixed?)` pairs, ascending by position.
    pub successes: Vec<(usize, bool)>,
    /// Wall-clock stats over the episodes this process actually ran.
    pub stats: RunStats,
}

/// Folds a cell's full success vector (grid order, entry-major) into the
/// paper's Eq. 1 fix rate.
pub fn fix_rate_from_successes(successes: &[bool], repeats: usize) -> f64 {
    let per_problem: Vec<(usize, usize)> = successes
        .chunks(repeats.max(1))
        .map(|repeats| (repeats.iter().filter(|s| **s).count(), repeats.len()))
        .collect();
    fix_rate(&per_problem)
}

/// Runs one Table 1 cell's shard, returning raw verdicts by grid position.
///
/// Episodes execute on the planned pool ([`run_episodes_planned`]): the
/// active `RTLFIXER_SCHED` policy picks the claim order (LPT + fingerprint
/// batching by default), but per-episode seeds come from the canonical
/// [`episode_seed`](crate::runner::episode_seed) grid and results land by
/// position — bit-identical for every `config.jobs` value, policy and
/// shard split.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_verdicts(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
    shard: Shard,
) -> CellVerdicts {
    let grid = episode_grid(config.base_seed, cell_index, entries.len(), config.repeats);
    let positions = shard.indices(grid.len());
    let specs: Vec<EpisodeSpec> = positions.iter().map(|&p| grid[p]).collect();
    let features: Vec<EpisodeFeatures> = specs
        .iter()
        .map(|spec| {
            let entry = &entries[spec.entry];
            EpisodeFeatures::of(&entry.code, entry.categories.first().map(|c| c.slug()))
        })
        .collect();
    let (results, failures, stats) = run_episodes_planned(config.jobs, &specs, &features, |spec| {
        let entry = &entries[spec.entry];
        // The canonical episode path (`episode::run_repair`) — shared with
        // the serve daemon, so a served request reproduces a batch episode
        // exactly.
        run_repair(&RepairJob {
            problem: &entry.description,
            code: &entry.code,
            compiler,
            strategy,
            rag,
            capability,
            seed: spec.seed,
            deadline_ms: None,
            distilled: None,
        })
        .success
    });
    if let Some(first) = failures.first() {
        panic!(
            "{} of {} episodes panicked; first at position {}: {}",
            failures.len(),
            specs.len(),
            positions[first.index],
            first.message
        );
    }
    let successes = positions
        .into_iter()
        .zip(results)
        .map(|(position, success)| (position, success.expect("no failures")))
        .collect();
    CellVerdicts { successes, stats }
}

/// Runs one Table 1 cell over `entries`, returning the fix rate plus
/// wall-clock stats.
pub fn run_cell_timed(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
) -> (f64, RunStats) {
    let verdicts = run_cell_verdicts(
        entries,
        strategy,
        compiler,
        rag,
        capability,
        config,
        cell_index,
        Shard::FULL,
    );
    let successes: Vec<bool> = verdicts.successes.iter().map(|&(_, s)| s).collect();
    (fix_rate_from_successes(&successes, config.repeats), verdicts.stats)
}

/// Runs one Table 1 cell over `entries` and returns the fix rate.
pub fn run_cell(
    entries: &[SyntaxBenchEntry],
    strategy: Strategy,
    compiler: CompilerKind,
    rag: bool,
    capability: Capability,
    config: &FixRateConfig,
    cell_index: u64,
) -> f64 {
    run_cell_timed(entries, strategy, compiler, rag, capability, config, cell_index).0
}

/// Loads the dataset (possibly capped) for fix-rate experiments.
///
/// Cached per `(dataset_seed, max_entries)` behind an `Arc`: every
/// experiment binary calls this (table1, ablations, figure7, …), and a
/// multi-experiment run must build each dataset view exactly once.
pub fn load_entries(config: &FixRateConfig) -> Arc<Vec<SyntaxBenchEntry>> {
    type Key = (u64, Option<usize>);
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Vec<SyntaxBenchEntry>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (config.dataset_seed, config.max_entries);
    if let Some(hit) = cache.lock().expect("entries cache lock").get(&key) {
        return Arc::clone(hit);
    }
    let full = rtlfixer_dataset::verilog_eval_syntax_shared(config.dataset_seed);
    let view = match config.max_entries {
        Some(cap) if cap < full.len() => Arc::new(full[..cap].to_vec()),
        // Uncapped (or over-sized cap): alias the dataset crate's own Arc.
        _ => full,
    };
    Arc::clone(cache.lock().expect("entries cache lock").entry(key).or_insert(view))
}

/// Runs one shard of the full Table 1 grid (14 cells), returning raw
/// verdicts per cell. A `--shard i/n` bench process runs exactly this and
/// writes the result as a fragment; `merge-shards` reassembles fragments
/// through [`merge_table1_verdicts`]. Also publishes the shard's folded
/// scheduler stats as the process-wide report.
pub fn table1_verdicts(config: &FixRateConfig, shard: Shard) -> Vec<CellVerdicts> {
    let entries = load_entries(config);
    let cells: Vec<CellVerdicts> = PAPER_TABLE1
        .iter()
        .enumerate()
        .map(|(cell_index, &(strategy_label, rag, compiler_label, llm_label, _))| {
            let strategy = if strategy_label == "One-shot" {
                Strategy::OneShot
            } else {
                Strategy::React { max_iterations: 10 }
            };
            run_cell_verdicts(
                &entries,
                strategy,
                compiler_from_label(compiler_label),
                rag,
                capability_from_label(llm_label),
                config,
                cell_index as u64,
                shard,
            )
        })
        .collect();
    let mut total = RunStats::new(0, std::time::Duration::ZERO);
    for cell in &cells {
        total.accumulate(&cell.stats);
    }
    if let Some(scheduler) = total.scheduler {
        schedule::publish_report(scheduler);
    }
    cells
}

/// A merged Table 1 run: the rendered cells plus the 128-bit fingerprint
/// over the grid's success bits (cell-major, grid order) — the
/// cross-process identity a sharded merge must reproduce exactly.
#[derive(Debug, Clone)]
pub struct Table1Merge {
    /// The 14 rendered cells, paper row order.
    pub cells: Vec<Table1Cell>,
    /// `fingerprint128` over the merged success bits.
    pub verdict_fingerprint: u128,
}

/// Reassembles Table 1 cells from one or more shards' verdicts.
///
/// Every fragment must hold the same 14 cells, and per cell the fragments'
/// positions must partition the grid exactly — overlaps, gaps and
/// grid-size mismatches are errors (a merge must never silently fabricate
/// a verdict). Fix rates are recomputed from the reassembled success
/// vectors through the same fold as an unsharded run, so merged output is
/// structurally identical, not just numerically close.
pub fn merge_table1_verdicts(
    config: &FixRateConfig,
    shards: &[Vec<CellVerdicts>],
) -> Result<Table1Merge, String> {
    let entries = load_entries(config);
    let grid_len = entries.len() * config.repeats;
    for (index, fragment) in shards.iter().enumerate() {
        if fragment.len() != PAPER_TABLE1.len() {
            return Err(format!(
                "fragment {index} holds {} cells, expected {}",
                fragment.len(),
                PAPER_TABLE1.len()
            ));
        }
    }
    let mut bits: Vec<u8> = Vec::with_capacity(grid_len * PAPER_TABLE1.len());
    let mut cells = Vec::with_capacity(PAPER_TABLE1.len());
    for (cell_index, &(strategy_label, rag, compiler_label, llm_label, paper)) in
        PAPER_TABLE1.iter().enumerate()
    {
        let mut successes: Vec<Option<bool>> = vec![None; grid_len];
        let mut stats = RunStats::new(0, std::time::Duration::ZERO);
        for fragment in shards {
            let cell = &fragment[cell_index];
            for &(position, success) in &cell.successes {
                let slot = successes.get_mut(position).ok_or_else(|| {
                    format!(
                        "cell {cell_index}: position {position} outside the \
                         {grid_len}-episode grid (shard configs must match)"
                    )
                })?;
                if slot.replace(success).is_some() {
                    return Err(format!(
                        "cell {cell_index}: position {position} covered twice \
                         (overlapping shards)"
                    ));
                }
            }
            stats.accumulate(&cell.stats);
        }
        let successes: Vec<bool> = successes
            .into_iter()
            .enumerate()
            .map(|(position, slot)| {
                slot.ok_or_else(|| {
                    format!("cell {cell_index}: position {position} missing (incomplete shards)")
                })
            })
            .collect::<Result<_, String>>()?;
        bits.extend(successes.iter().map(|&s| s as u8));
        cells.push(Table1Cell {
            strategy: strategy_label.to_owned(),
            rag,
            compiler: compiler_label.to_owned(),
            llm: llm_label.to_owned(),
            fix_rate: fix_rate_from_successes(&successes, config.repeats),
            paper,
            stats,
        });
    }
    Ok(Table1Merge { cells, verdict_fingerprint: rtlfixer_cache::fingerprint128(&bits) })
}

/// Reproduces the full Table 1 grid (14 cells).
pub fn table1(config: &FixRateConfig) -> Vec<Table1Cell> {
    table1_merged(config).cells
}

/// [`table1`] plus the verdict fingerprint: a single-process run expressed
/// as a one-fragment merge, so unsharded and merged outputs flow through
/// byte-identical code paths.
pub fn table1_merged(config: &FixRateConfig) -> Table1Merge {
    let verdicts = table1_verdicts(config, Shard::FULL);
    merge_table1_verdicts(config, std::slice::from_ref(&verdicts))
        .expect("a full shard is a complete partition")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FixRateConfig {
        FixRateConfig {
            max_entries: Some(30),
            repeats: 3,
            dataset_seed: 7,
            base_seed: 1,
            jobs: 1,
        }
    }

    #[test]
    fn react_quartus_rag_beats_one_shot_simple() {
        // The qualitative corner-to-corner ordering of Table 1.
        let config = small_config();
        let entries = load_entries(&config);
        let worst = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Simple,
            false,
            Capability::Gpt35Class,
            &config,
            0,
        );
        let best = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            1,
        );
        assert!(best > worst + 0.15, "best {best} vs worst {worst}");
        assert!(best > 0.8, "best cell should be high: {best}");
    }

    #[test]
    fn rag_improves_react_quartus() {
        let config = small_config();
        let entries = load_entries(&config);
        let without = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            false,
            Capability::Gpt35Class,
            &config,
            2,
        );
        let with = run_cell(
            &entries,
            Strategy::React { max_iterations: 10 },
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            3,
        );
        assert!(with > without, "with {with} vs without {without}");
    }

    #[test]
    fn results_are_deterministic() {
        let config = FixRateConfig { max_entries: Some(10), repeats: 2, ..Default::default() };
        let entries = load_entries(&config);
        let a = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        let b = run_cell(
            &entries,
            Strategy::OneShot,
            CompilerKind::Quartus,
            true,
            Capability::Gpt35Class,
            &config,
            4,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_results_match_serial_byte_for_byte() {
        // The parallel engine's core guarantee: a --quick Table 1 cell
        // produces byte-identical fix rates at jobs = 1, 2 and 8.
        let base = FixRateConfig {
            max_entries: Some(20),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 1,
            jobs: 1,
        };
        let entries = load_entries(&base);
        let run = |jobs: usize| {
            let config = FixRateConfig { jobs, ..base };
            let rate = run_cell(
                &entries,
                Strategy::React { max_iterations: 10 },
                CompilerKind::Quartus,
                true,
                Capability::Gpt35Class,
                &config,
                9,
            );
            // Byte-level comparison through the serialised representation,
            // the form results tables and JSON artifacts are built from.
            format!("{rate:.17}")
        };
        let serial = run(1);
        assert_eq!(run(2), serial, "jobs=2 must match jobs=1");
        assert_eq!(run(8), serial, "jobs=8 must match jobs=1");
    }

    #[test]
    fn sharded_merge_matches_unsharded_bitwise() {
        let config = FixRateConfig {
            max_entries: Some(8),
            repeats: 2,
            dataset_seed: 7,
            base_seed: 1,
            jobs: 2,
        };
        let full = table1_merged(&config);
        let halves = [
            table1_verdicts(&config, Shard { index: 0, count: 2 }),
            table1_verdicts(&config, Shard { index: 1, count: 2 }),
        ];
        let merged = merge_table1_verdicts(&config, &halves).expect("halves partition the grid");
        assert_eq!(merged.verdict_fingerprint, full.verdict_fingerprint);
        for (a, b) in full.cells.iter().zip(&merged.cells) {
            // Bit-pattern equality: the merge recomputes fix rates through
            // the same fold, so the floats are identical, not just close.
            assert_eq!(a.fix_rate.to_bits(), b.fix_rate.to_bits(), "{}", a.strategy);
            assert_eq!(a.stats.episodes, b.stats.episodes);
        }
        // Incomplete and overlapping fragment sets are rejected.
        let one = std::slice::from_ref(&halves[0]);
        assert!(merge_table1_verdicts(&config, one).unwrap_err().contains("missing"));
        let twice = [halves[0].clone(), halves[0].clone()];
        assert!(merge_table1_verdicts(&config, &twice).unwrap_err().contains("covered twice"));
    }

    #[test]
    fn load_entries_shares_one_build_per_view() {
        let config = small_config();
        let a = load_entries(&config);
        let b = load_entries(&config);
        assert!(Arc::ptr_eq(&a, &b), "same (seed, cap) must share one Vec");
        assert_eq!(a.len(), 30);
        let uncapped = FixRateConfig { max_entries: None, ..config };
        let full = load_entries(&uncapped);
        assert_eq!(full.len(), rtlfixer_dataset::SYNTAX_BENCH_COUNT);
        assert!(full[..30].iter().zip(a.iter()).all(|(x, y)| x.code == y.code));
    }
}
